(* omcheck — validate the observability exporters' output files.

     omcheck run.metrics.txt            # OpenMetrics text exposition
     omcheck --chrome run.trace.json    # Chrome trace-event JSON

   Exits 0 iff every named file validates, 1 on any invalid file, 2 on
   usage errors.  The OpenMetrics check is the library parser in
   [Vbl_obs.Export] (the same one the tests round-trip through); the
   Chrome check is a self-contained JSON reader asserting the
   trace-event shape about:tracing needs: a top-level object with a
   "traceEvents" array whose events carry a string "name"/"ph" and a
   numeric "ts". *)

open Cmdliner

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

(* Minimal recursive-descent JSON reader: enough to validate shape. *)
let parse_json s =
  let n = String.length s in
  let i = ref 0 in
  let error msg = raise (Bad (Printf.sprintf "%s at byte %d" msg !i)) in
  let peek () = if !i < n then s.[!i] else '\255' in
  let skip_ws () =
    while
      !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr i
    done
  in
  let expect c = if peek () = c then incr i else error (Printf.sprintf "expected %C" c) in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then error "unterminated string"
      else
        match s.[!i] with
        | '"' ->
            incr i;
            Buffer.contents b
        | '\\' ->
            incr i;
            if !i >= n then error "unterminated escape";
            (match s.[!i] with
            | '"' -> Buffer.add_char b '"'
            | '\\' -> Buffer.add_char b '\\'
            | '/' -> Buffer.add_char b '/'
            | 'b' -> Buffer.add_char b '\b'
            | 'f' -> Buffer.add_char b '\012'
            | 'n' -> Buffer.add_char b '\n'
            | 'r' -> Buffer.add_char b '\r'
            | 't' -> Buffer.add_char b '\t'
            | 'u' ->
                (* Shape-checked, not decoded: validation never needs the
                   code point's value. *)
                if !i + 4 >= n then error "truncated \\u escape";
                for k = 1 to 4 do
                  match s.[!i + k] with
                  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> ()
                  | _ -> error "bad \\u escape"
                done;
                i := !i + 4;
                Buffer.add_char b '?'
            | _ -> error "bad escape");
            incr i;
            go ()
        | c ->
            Buffer.add_char b c;
            incr i;
            go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> Str (string_lit ())
    | 't' -> lit "true" (Bool true)
    | 'f' -> lit "false" (Bool false)
    | 'n' -> lit "null" Null
    | '-' | '0' .. '9' -> number ()
    | _ -> error "unexpected character"
  and lit w v =
    let k = String.length w in
    if !i + k <= n && String.sub s !i k = w then begin
      i := !i + k;
      v
    end
    else error ("expected " ^ w)
  and number () =
    let start = !i in
    if peek () = '-' then incr i;
    while
      match peek () with '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true | _ -> false
    do
      incr i
    done;
    match float_of_string_opt (String.sub s start (!i - start)) with
    | Some f -> Num f
    | None -> error "bad number"
  and obj () =
    expect '{';
    skip_ws ();
    if peek () = '}' then begin
      incr i;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws ();
        let k = string_lit () in
        skip_ws ();
        expect ':';
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            incr i;
            members ((k, v) :: acc)
        | '}' ->
            incr i;
            Obj (List.rev ((k, v) :: acc))
        | _ -> error "expected ',' or '}'"
      in
      members []
    end
  and arr () =
    expect '[';
    skip_ws ();
    if peek () = ']' then begin
      incr i;
      Arr []
    end
    else begin
      let rec elems acc =
        let v = value () in
        skip_ws ();
        match peek () with
        | ',' ->
            incr i;
            elems (v :: acc)
        | ']' ->
            incr i;
            Arr (List.rev (v :: acc))
        | _ -> error "expected ',' or ']'"
      in
      elems []
    end
  in
  let v = value () in
  skip_ws ();
  if !i <> n then error "trailing content";
  v

let validate_chrome text =
  match parse_json text with
  | exception Bad m -> Error ("not valid JSON: " ^ m)
  | Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (Arr events) ->
          let check k e =
            match e with
            | Obj ev ->
                let str f =
                  match List.assoc_opt f ev with Some (Str _) -> true | _ -> false
                in
                let num f =
                  match List.assoc_opt f ev with Some (Num _) -> true | _ -> false
                in
                if not (str "name") then
                  Error (Printf.sprintf "event %d: missing string \"name\"" k)
                else if not (str "ph") then
                  Error (Printf.sprintf "event %d: missing string \"ph\"" k)
                else if not (num "ts") then
                  Error (Printf.sprintf "event %d: missing numeric \"ts\"" k)
                else Ok ()
            | _ -> Error (Printf.sprintf "event %d: not an object" k)
          in
          let rec go k = function
            | [] -> Ok (List.length events)
            | e :: tl -> ( match check k e with Ok () -> go (k + 1) tl | Error _ as e -> e)
          in
          go 0 events
      | Some _ -> Error "\"traceEvents\" is not an array"
      | None -> Error "missing \"traceEvents\" array")
  | _ -> Error "top level is not an object"

let read_file f =
  let ic = open_in_bin f in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let run chrome files =
  let ok = ref true in
  List.iter
    (fun f ->
      match read_file f with
      | exception Sys_error m ->
          Printf.eprintf "%s: %s\n" f m;
          ok := false
      | text -> (
          let r =
            if chrome then
              Result.map
                (fun n -> Printf.sprintf "valid Chrome trace (%d events)" n)
                (validate_chrome text)
            else
              Result.map
                (fun n -> Printf.sprintf "valid OpenMetrics (%d samples)" n)
                (Vbl_obs.Export.validate text)
          in
          match r with
          | Ok msg -> Printf.printf "%s: %s\n" f msg
          | Error m ->
              Printf.eprintf "%s: INVALID: %s\n" f m;
              ok := false))
    files;
  if not !ok then exit 1

let chrome_arg =
  Arg.(
    value & flag
    & info [ "chrome" ]
        ~doc:
          "Validate Chrome trace-event JSON (the $(b,.trace.json) exporter \
           output) instead of OpenMetrics text.")

let files_arg = Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE")

let cmd =
  let doc = "validate OpenMetrics and Chrome trace exporter output" in
  Cmd.v (Cmd.info "omcheck" ~doc) Term.(const run $ chrome_arg $ files_arg)

let () = exit (Cmd.eval cmd)
