(* figures — regenerate the paper's evaluation figures as tables.

     figures fig1                     simulated engine, paper thread sweep
     figures fig4                     simulated engine, full 3x4 grid
     figures headlines                the 1.6x ratios the paper quotes
     figures all                      everything above
     figures fig1 --engine real       real domains on this host instead

   Options: --engine real|sim, --quick (coarser sweep), --csv (raw points),
   --seed N.                                                              *)

let parse_flags argv =
  let engine = ref `Sim and quick = ref false and csv = ref false and seed = ref 42 in
  let machine = ref "intel" in
  let rest = ref [] in
  let i = ref 1 in
  let n = Array.length argv in
  while !i < n do
    (match argv.(!i) with
    | "--engine" when !i + 1 < n ->
        incr i;
        engine := (match argv.(!i) with "real" -> `Real | "sim" -> `Sim | _ -> `Sim)
    | "--machine" when !i + 1 < n ->
        incr i;
        machine := argv.(!i)
    | "--quick" -> quick := true
    | "--csv" -> csv := true
    | "--seed" when !i + 1 < n ->
        incr i;
        seed := int_of_string argv.(!i)
    | other -> rest := other :: !rest);
    incr i
  done;
  (!engine, !quick, !csv, Int64.of_int !seed, !machine, List.rev !rest)

let engine_of machine = function
  | `Sim, quick ->
      Vbl_harness.Sweep.simulated
        ~costs:(Vbl_sim.Coherence.profile_exn machine)
        ~horizon:(if quick then 40_000. else 100_000.)
        ~trials:(if quick then 2 else 5)
        ()
  | `Real, quick ->
      Vbl_harness.Sweep.Real
        {
          duration_s = (if quick then 0.3 else 1.0);
          warmup_s = (if quick then 0.1 else 0.5);
          trials = (if quick then 2 else 5);
        }

let thread_sweep engine quick =
  match engine with
  | Vbl_harness.Sweep.Real _ ->
      (* Real scaling is bounded by this host's cores. *)
      let cores = Domain.recommended_domain_count () in
      List.sort_uniq compare (List.filter (fun t -> t <= max 2 (2 * cores)) [ 1; 2; 4; 8 ])
  | Vbl_harness.Sweep.Simulated _ ->
      if quick then [ 1; 8; 24; 48; 72 ] else [ 1; 4; 8; 16; 24; 32; 40; 48; 56; 64; 72 ]

let fig1 engine quick csv seed =
  let points = Vbl_harness.Sweep.figure1 ~thread_counts:(thread_sweep engine quick) engine ~seed in
  if csv then print_endline (Vbl_harness.Report.points_csv points)
  else begin
    print_endline (Vbl_harness.Report.render_figure1 engine points);
    print_newline ()
  end

let fig4 engine quick csv seed =
  let thread_counts =
    match engine with
    | Vbl_harness.Sweep.Real _ -> thread_sweep engine quick
    | Vbl_harness.Sweep.Simulated _ -> if quick then [ 1; 24; 72 ] else [ 1; 8; 24; 48; 72 ]
  in
  let key_ranges =
    if quick then [ 50; 2_000 ] else Vbl_harness.Workload.paper_key_ranges
  in
  let panels = Vbl_harness.Sweep.figure4 ~thread_counts ~key_ranges engine ~seed in
  if csv then
    print_endline (Vbl_harness.Report.points_csv (List.concat_map snd panels))
  else begin
    print_endline (Vbl_harness.Report.render_figure4 engine panels);
    print_newline ()
  end

let headlines engine _quick _csv seed =
  let threads =
    match engine with
    | Vbl_harness.Sweep.Real _ -> max 2 (Domain.recommended_domain_count ())
    | Vbl_harness.Sweep.Simulated _ -> 72
  in
  print_endline (Vbl_harness.Report.render_headlines (Vbl_harness.Sweep.headlines ~threads engine ~seed));
  print_newline ()

let () =
  let engine_kind, quick, csv, seed, machine, targets = parse_flags Sys.argv in
  let engine = engine_of machine (engine_kind, quick) in
  if machine <> "intel" then Printf.printf "(machine profile: %s)\n\n" machine;
  let targets = if targets = [] then [ "all" ] else targets in
  List.iter
    (fun target ->
      match target with
      | "fig1" -> fig1 engine quick csv seed
      | "fig4" -> fig4 engine quick csv seed
      | "headlines" -> headlines engine quick csv seed
      | "all" ->
          fig1 engine quick csv seed;
          fig4 engine quick csv seed;
          headlines engine quick csv seed
      | other ->
          Printf.eprintf "unknown target %S (fig1|fig4|headlines|all)\n" other;
          exit 2)
    targets
