(* schedules — narrate the paper's Figure 2 and Figure 3 as executable
   demonstrations: print the schedule, check it is correct per Definition 1
   where applicable, then drive it against each implementation and report
   who accepts and who rejects (and why).

     schedules fig2
     schedules fig3
     schedules all        (default)                                      *)

open Vbl_sched

let show_outcome name outcome =
  match outcome with
  | Directed.Accepted { trace } ->
      Printf.printf "  %-24s ACCEPTS  (realised in %d steps)\n" name (List.length trace)
  | Directed.Rejected { at; reason; _ } ->
      Format.printf "  %-24s rejects at script step %d: %a@." name (at + 1)
        Directed.pp_rejection reason

let print_script script =
  List.iteri
    (fun i d ->
      match d with
      | Directed.Step (tid, pat) ->
          Format.printf "  %2d. thread %d: %a@." (i + 1) tid Pattern.pp pat
      | Directed.Ret (tid, r) -> Format.printf "  %2d. thread %d: return %b@." (i + 1) tid r)
    script

let fig2 () =
  print_endline "=== Figure 2: a correct schedule the Lazy Linked List rejects ===";
  print_endline "";
  print_endline "Initial list {X1=1}; insert(1) is thread 0, insert(2) is thread 1.";
  print_endline "The schedule lets insert(1) read X1 and return false while insert(2)";
  print_endline "holds X1 between creating X2 and linking it.";
  print_endline "";
  print_endline "Script (in the paper's step vocabulary):";
  print_script Paper_figures.Fig2.script;
  print_endline "";
  let abstract = Paper_figures.Fig2.abstract () in
  Printf.printf "Correct per Definition 1 (checked on sequential LL): %b\n"
    (Ll_abstract.correct abstract);
  Printf.printf "Final abstract list: {%s}\n"
    (String.concat ", " (List.map string_of_int (Ll_abstract.final_values abstract)));
  print_endline "";
  print_endline "Driving the schedule against each implementation:";
  show_outcome "vbl" (Paper_figures.Fig2.run (module Drive.Vbl_i));
  show_outcome "lazy" (Paper_figures.Fig2.run (module Drive.Lazy_i));
  print_endline ""

let fig3 () =
  print_endline "=== Figure 3: a schedule the Harris-Michael list rejects ===";
  print_endline "";
  print_endline "Initial list {X2, X3, X4}.  Phase A: insert(1) || remove(2) — the";
  print_endline "remove marks X2 but its physical unlink CAS fails (insert(1) already";
  print_endline "updated the head) and, Harris-Michael style, the operation completes.";
  print_endline "Phase B: insert(3) || insert(4) both traverse onto the marked X2 and";
  print_endline "both unlink it; the schedule needs both writes to take effect, but";
  print_endline "Harris-Michael restarts insert(4) when its CAS fails.";
  print_endline "";
  print_endline "Script (Harris-Michael's adjusted-LL vocabulary):";
  print_script Paper_figures.Fig3.script;
  print_endline "";
  print_endline "Driving the schedule against the Harris-Michael variants:";
  show_outcome "harris-michael (AMR)" (Paper_figures.Fig3.run (module Drive.Hm_i));
  show_outcome "harris-michael (RTTI)" (Paper_figures.Fig3.run (module Drive.Hm_tagged_i));
  print_endline "";
  print_endline "The same four-operation scenario under VBL (remove(2) unlinks X2";
  print_endline "immediately, so phase B interleaves freely with no restarts):";
  show_outcome "vbl" (Paper_figures.Fig3.run_vbl ());
  print_endline ""

(* The §3 motivation for lockNextAtValue, §3.2 "Removing a node": a
   remove sleeps between locating its victim and locking; the value is
   removed and re-inserted meanwhile.  Shows post-wake step counts per
   validation strategy. *)
let aba () =
  print_endline "=== The remove+reinsert scenario behind lockNextAtValue (paper §3) ===";
  print_endline "";
  print_endline "Thread A's remove(2) locates (X1, X2) on {1, 2} and falls asleep;";
  print_endline "thread B removes 2 and re-inserts it (a brand-new node, same value).";
  print_endline "A then wakes and tries to finish.  Steps A needs after waking:";
  print_endline "";
  let measure name (module S : Vbl_lists.Set_intf.S) =
    let module Instr = Vbl_memops.Instr_mem in
    let t =
      Instr.run_sequential (fun () ->
          let t = S.create () in
          ignore (S.insert t 1);
          ignore (S.insert t 2);
          t)
    in
    let result_a = ref None in
    let exec =
      Exec.create
        [
          (fun () -> result_a := Some (S.remove t 2));
          (fun () ->
            ignore (S.remove t 2);
            ignore (S.insert t 2));
        ]
    in
    let rec advance_a () =
      match Exec.pending exec 0 with
      | Exec.Access a when a.Instr.name = "X2.val" && a.Instr.kind = Instr.Read ->
          Exec.step exec 0
      | Exec.Access _ ->
          Exec.step exec 0;
          advance_a ()
      | Exec.Blocked _ | Exec.Done -> failwith "unexpected"
    in
    advance_a ();
    while Exec.pending exec 1 <> Exec.Done do
      Exec.step exec 1
    done;
    let steps = ref 0 in
    while Exec.pending exec 0 <> Exec.Done do
      Exec.step exec 0;
      incr steps
    done;
    Printf.printf "  %-16s %3d steps  (remove returned %s)
" name !steps
      (match !result_a with Some b -> string_of_bool b | None -> "nothing")
  in
  measure "vbl" (module Drive.Vbl_i);
  measure "vbl-versioned" (module Drive.Vbl_versioned_i);
  measure "vbl-postlock" (module Drive.Vbl_postlock_i);
  print_endline "";
  print_endline "(vbl validates by VALUE under the lock — the new node still stores 2,";
  print_endline " so it proceeds with no re-traversal; the other strategies restart)";
  print_endline ""

let usage () =
  prerr_endline "usage: schedules [fig2|fig3|aba|all]";
  exit 2

let () =
  match if Array.length Sys.argv > 1 then Sys.argv.(1) else "all" with
  | "fig2" -> fig2 ()
  | "fig3" -> fig3 ()
  | "aba" -> aba ()
  | "all" ->
      fig2 ();
      fig3 ();
      aba ()
  | _ -> usage ()
