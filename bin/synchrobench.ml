(* synchrobench — benchmark one list algorithm under one workload, in the
   style of the Synchrobench suite the paper uses (gramoli/synchrobench):

     synchrobench -a vbl -t 8 -u 20 -r 2000 -d 2 -n 5
     synchrobench --engine sim -a lazy -t 72 -u 20 -r 50
     synchrobench -a vbl --matrix --csv

   The real engine uses OCaml domains on this host; the sim engine runs the
   same algorithm on the deterministic coherence-model multicore, which is
   how thread counts beyond the physical core count stay meaningful.

   --matrix sweeps the scaling grid (threads up to -t doubling, update
   ratios 0/20/100, key ranges 50/200/2000/20000) for one algorithm instead
   of a single point.  The special algorithm "vbl-direct" (real engine
   only) is the hand-specialised ablation baseline from bench/. *)

open Cmdliner

let algorithms () =
  List.map Vbl_lists.Registry.name Vbl_lists.Registry.all
  @ List.map
      (fun i ->
        let module S = (val i : Vbl_lists.Set_intf.S) in
        S.name)
      (Vbl_skiplists.Registry.all @ Vbl_trees.Registry.all @ Vbl_shard.Registry.all)
  @ [ "vbl-direct" ]

(* The ablation baseline lives outside the registries (bench/) and has no
   instrumented counterpart, so it is real-engine only. *)
let measure_point ~metrics ~profile ?interval_s engine_v ~algorithm ~threads ~update_percent
    ~key_range ~seed =
  if algorithm = "vbl-direct" then
    Vbl_harness.Sweep.measure_impl ~metrics ~profile ?interval_s engine_v
      (module Vbl_direct : Vbl_lists.Set_intf.S)
      ~algorithm ~threads ~update_percent ~key_range ~seed
  else
    Vbl_harness.Sweep.measure ~metrics ~profile ?interval_s engine_v ~algorithm ~threads
      ~update_percent ~key_range ~seed

let algo_arg =
  let doc =
    Printf.sprintf "Algorithm to benchmark. One of: %s."
      (String.concat ", " (algorithms ()))
  in
  Arg.(value & opt string "vbl" & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let threads_arg =
  Arg.(value & opt int 2 & info [ "t"; "threads" ] ~docv:"N" ~doc:"Number of threads.")

let update_arg =
  Arg.(
    value & opt int 20
    & info [ "u"; "update" ] ~docv:"PCT"
        ~doc:"Update percentage: PCT/2 inserts, PCT/2 removes, rest contains.")

let range_arg =
  Arg.(
    value & opt int 200
    & info [ "r"; "range" ] ~docv:"RANGE" ~doc:"Keys are uniform in [1, RANGE].")

let duration_arg =
  Arg.(
    value & opt float 1.0
    & info [ "d"; "duration" ] ~docv:"SECONDS" ~doc:"Measured duration per trial (real engine).")

let warmup_arg =
  Arg.(value & opt float 0.5 & info [ "w"; "warmup" ] ~docv:"SECONDS" ~doc:"Warm-up time.")

let trials_arg =
  Arg.(value & opt int 5 & info [ "n"; "trials" ] ~docv:"N" ~doc:"Number of measured trials.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic workload seed.")

let horizon_arg =
  Arg.(
    value & opt float 100_000.
    & info [ "horizon" ] ~docv:"CYCLES" ~doc:"Simulated duration in cycles (sim engine).")

let engine_arg =
  let e = Arg.enum [ ("real", `Real); ("sim", `Sim) ] in
  Arg.(
    value & opt e `Real
    & info [ "engine" ] ~docv:"ENGINE" ~doc:"Measurement engine: $(b,real) domains or $(b,sim).")

let csv_arg = Arg.(value & flag & info [ "csv" ] ~doc:"Emit a CSV row instead of prose.")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:
          "Collect per-operation counters (restarts, lock failures, traversal \
           steps, ...) and, on the real engine, per-op latency percentiles.")

let metrics_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-json" ] ~docv:"FILE"
        ~doc:"Write the measured point (throughput + counters + latency) as JSON to $(docv). Implies $(b,--metrics).")

let trace_arg =
  Arg.(
    value & opt int 0
    & info [ "trace" ] ~docv:"N"
        ~doc:
          "Dump the first $(docv) events of a short deterministic run on the \
           simulated engine (one line per schedule step).")

let trace_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-json" ] ~docv:"FILE"
        ~doc:
          "Write the instrumented-schedule timeline of a short deterministic \
           run (the same run $(b,--trace) prints) as Chrome trace-event JSON \
           to $(docv); load it in about:tracing or Perfetto.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Enable the contention profiler and flight recorder around the \
           measured trials (real engine only; implies $(b,--metrics)).  \
           Prints the per-site lock wait/hold attribution table, the \
           hot-shard ranking and the tail of the flight recorder after the \
           run.")

let export_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "export" ] ~docv:"PREFIX"
        ~doc:
          "With $(b,--profile): write $(docv).metrics.txt (OpenMetrics \
           exposition of all counters and contention histograms) and \
           $(docv).trace.json (Chrome trace-event timeline of the flight \
           recorder) after the run.")

let interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "interval" ] ~docv:"SECONDS"
        ~doc:
          "Print a snapshot-delta progress line (throughput, restart rate, \
           contention rate, shard skew) every $(docv) seconds during the \
           measured trials (real engine only).")

let shards_arg =
  Arg.(
    value
    & opt (list int) []
    & info [ "shards" ] ~docv:"LIST"
        ~doc:
          "Shard-count axis: measure $(b,-a)'s sharded frontend at each count \
           in the comma-separated $(docv) (1 means the unsharded base \
           algorithm, s maps to $(b,ALGO-sharded-s)).  Composes with \
           $(b,--matrix); $(b,--metrics-json) then collects every cell across \
           the axis.")

let churn_arg =
  Arg.(
    value & flag
    & info [ "churn" ]
        ~doc:
          "Churn preset: override $(b,-u) to 90 and $(b,-r) to 256 — \
           update-heavy traffic on a small key range, where nodes cycle \
           through unlink, retire and recycle continuously.  The target \
           workload of the reclaiming backends (pair with $(b,-a) \
           vbl-reclaim / lazy-reclaim / harris-michael-reclaim and compare \
           against the plain algorithm).")

let matrix_arg =
  Arg.(
    value & flag
    & info [ "matrix" ]
        ~doc:
          "Sweep the scaling grid instead of one point: thread counts doubling \
           up to $(b,-t), update ratios 0/20/100, key ranges 50/200/2000/20000. \
           Prints one CSV row per cell (with $(b,--csv)) or a prose line each; \
           $(b,--metrics-json) then collects every cell.")

(* The grid the scaling matrix sweeps, shared with bench/main.exe --matrix. *)
let matrix_updates = [ 0; 20; 100 ]
let matrix_ranges = [ 50; 200; 2_000; 20_000 ]

let matrix_threads up_to =
  let rec doubling t acc = if t > up_to then List.rev acc else doubling (2 * t) (t :: acc) in
  doubling 1 []

let run_matrix ~algo ~threads ~engine_v ~metrics ~seed ~csv =
  List.concat_map
    (fun key_range ->
      List.concat_map
        (fun update_percent ->
          List.map
            (fun threads ->
              let p =
                measure_point ~metrics ~profile:false engine_v ~algorithm:algo ~threads
                  ~update_percent ~key_range ~seed
              in
              let s = p.Vbl_harness.Sweep.throughput in
              if csv then
                Printf.printf "%s,%d,%d,%d,%s,%.4f,%.4f\n%!" algo threads
                  update_percent key_range
                  (Vbl_harness.Report.engine_name engine_v)
                  s.Vbl_util.Stats.mean s.Vbl_util.Stats.stddev
              else
                Printf.printf "%-22s t=%d u=%3d%% r=%-6d  %s %s\n%!" algo threads
                  update_percent key_range
                  (Vbl_util.Table.si_cell s.Vbl_util.Stats.mean)
                  (Vbl_harness.Report.engine_unit engine_v);
              p)
            (matrix_threads threads))
        matrix_updates)
    matrix_ranges

let run_single ~algo ~threads ~update ~range ~engine_v ~metrics ~profile ~interval_s ~seed
    ~csv =
  let point =
    measure_point ~metrics ~profile ?interval_s engine_v ~algorithm:algo ~threads
      ~update_percent:update ~key_range:range ~seed
  in
  let s = point.Vbl_harness.Sweep.throughput in
  if csv then
    Printf.printf "%s,%d,%d,%d,%s,%.4f,%.4f\n" algo threads update range
      (Vbl_harness.Report.engine_name engine_v)
      s.Vbl_util.Stats.mean s.Vbl_util.Stats.stddev
  else begin
    Printf.printf "algorithm        : %s\n" algo;
    Printf.printf "engine           : %s\n" (Vbl_harness.Report.engine_name engine_v);
    Printf.printf "threads          : %d\n" threads;
    Printf.printf "workload         : %d%% updates, key range %d\n" update range;
    Printf.printf "trials           : %d\n" s.Vbl_util.Stats.n;
    Printf.printf "throughput       : %s %s (stddev %s, min %s, max %s)\n"
      (Vbl_util.Table.si_cell s.Vbl_util.Stats.mean)
      (Vbl_harness.Report.engine_unit engine_v)
      (Vbl_util.Table.si_cell s.Vbl_util.Stats.stddev)
      (Vbl_util.Table.si_cell s.Vbl_util.Stats.min)
      (Vbl_util.Table.si_cell s.Vbl_util.Stats.max)
  end;
  if metrics && not csv then begin
    print_newline ();
    print_endline (Vbl_harness.Report.render_metrics ~title:"per-operation counters:" [ point ]);
    if point.Vbl_harness.Sweep.latency <> [] then begin
      print_newline ();
      print_endline
        (Vbl_harness.Report.render_latency ~title:"per-operation latency (ns):" [ point ])
    end
  end;
  if profile && not csv then begin
    print_newline ();
    print_endline (Vbl_obs.Contention.render_site_table ());
    let hot = Vbl_obs.Contention.render_hot_shards () in
    if hot <> "" then begin
      print_newline ();
      print_endline hot
    end;
    print_newline ();
    print_endline (Vbl_obs.Recorder.dump ~last:12 ())
  end;
  point

let run algo threads update range duration warmup trials seed horizon engine csv metrics
    metrics_json trace_n trace_json profile export interval_s matrix shards churn =
  let update = if churn then 90 else update
  and range = if churn then 256 else range in
  if churn && matrix then begin
    Printf.eprintf "--churn fixes one workload cell; drop --matrix\n";
    exit 2
  end;
  if profile && engine = `Sim then begin
    Printf.eprintf "--profile needs the wall clock; use --engine real\n";
    exit 2
  end;
  if profile && matrix then begin
    Printf.eprintf "--profile attributes one measured point; drop --matrix\n";
    exit 2
  end;
  if export <> None && not profile then begin
    Printf.eprintf "--export requires --profile (nothing to export otherwise)\n";
    exit 2
  end;
  (* The shard axis maps each count s to ALGO-sharded-s (1 = the base
     algorithm), so one invocation sweeps an algorithm's sharded frontends
     alongside it. *)
  let algos =
    match shards with
    | [] -> [ algo ]
    | counts ->
        List.map
          (fun s -> if s = 1 then algo else Printf.sprintf "%s-sharded-%d" algo s)
          counts
  in
  List.iter
    (fun a ->
      if not (List.mem a (algorithms ())) then begin
        Printf.eprintf "unknown algorithm %S; known: %s\n" a
          (String.concat ", " (algorithms ()));
        exit 2
      end;
      if a = "vbl-direct" && engine = `Sim then begin
        Printf.eprintf "vbl-direct has no instrumented build; use --engine real\n";
        exit 2
      end)
    algos;
  let seed = Int64.of_int seed in
  let metrics = metrics || metrics_json <> None || profile in
  let engine_v =
    match engine with
    | `Real -> Vbl_harness.Sweep.Real { duration_s = duration; warmup_s = warmup; trials }
    | `Sim -> Vbl_harness.Sweep.simulated ~horizon ~trials ()
  in
  let points =
    List.concat_map
      (fun (i, a) ->
        if matrix then run_matrix ~algo:a ~threads ~engine_v ~metrics ~seed ~csv
        else begin
          if i > 0 && not csv then print_newline ();
          [
            run_single ~algo:a ~threads ~update ~range ~engine_v ~metrics ~profile
              ~interval_s ~seed ~csv;
          ]
        end)
      (List.mapi (fun i a -> (i, a)) algos)
  in
  (match metrics_json with
  | Some file ->
      let oc = open_out file in
      output_string oc (Vbl_harness.Report.points_json ~engine:engine_v points);
      output_string oc "\n";
      close_out oc;
      if not csv then Printf.printf "\n(wrote %s: %d points)\n" file (List.length points)
  | None -> ());
  let write_file file s =
    let oc = open_out file in
    output_string oc s;
    close_out oc
  in
  (match export with
  | Some prefix ->
      let mfile = prefix ^ ".metrics.txt" and tfile = prefix ^ ".trace.json" in
      write_file mfile (Vbl_obs.Export.openmetrics_of_run ());
      write_file tfile (Vbl_obs.Export.chrome_trace_of_entries (Vbl_obs.Recorder.entries ()));
      if not csv then
        Printf.printf "\n(wrote %s and %s — load the trace in about:tracing)\n" mfile tfile
  | None -> ());
  if (trace_n > 0 || trace_json <> None) && not matrix then begin
    (* Tracing hooks live in the schedule conductor, so the dump always
       comes from a short deterministic run on the simulated engine,
       whatever --engine was used for the measurement above. *)
    let tr = Vbl_obs.Trace.create () in
    Vbl_obs.Probe.install (Vbl_obs.Probe.tracer tr);
    ignore
      (Vbl_harness.Sweep.measure
         (Vbl_harness.Sweep.simulated ~horizon:600. ~trials:1 ())
         ~algorithm:(List.hd algos) ~threads ~update_percent:update ~key_range:range ~seed);
    Vbl_obs.Probe.uninstall ();
    if trace_n > 0 then begin
      Printf.printf "\nevent trace (simulated engine, first %d of %d steps):\n" trace_n
        (Vbl_obs.Trace.emitted tr);
      List.iteri
        (fun i e -> if i < trace_n then print_endline ("  " ^ Vbl_obs.Trace.event_to_string e))
        (Vbl_obs.Trace.events tr)
    end;
    match trace_json with
    | Some file ->
        write_file file (Vbl_obs.Export.chrome_trace_of_trace tr);
        if not csv then
          Printf.printf "\n(wrote %s: instrumented-schedule timeline, %d steps)\n" file
            (Vbl_obs.Trace.emitted tr)
    | None -> ()
  end

let cmd =
  let doc = "synchrobench-style benchmark for the list-based set family" in
  Cmd.v
    (Cmd.info "synchrobench" ~doc)
    Term.(
      const run $ algo_arg $ threads_arg $ update_arg $ range_arg $ duration_arg $ warmup_arg
      $ trials_arg $ seed_arg $ horizon_arg $ engine_arg $ csv_arg $ metrics_arg
      $ metrics_json_arg $ trace_arg $ trace_json_arg $ profile_arg $ export_arg
      $ interval_arg $ matrix_arg $ shards_arg $ churn_arg)

let () = exit (Cmd.eval cmd)
