(* explore — bounded model checking of an algorithm from the command line.

     explore -a vbl --ops "insert 1, remove 2" --initial "2" [--preemptions 3]
             [--analyze] [--dfs] [--stats]

   Explores interleavings of the given operations on the instrumented
   backend, checking every complete execution for linearizability (with the
   sigma-bar contains-extension) and structural invariants.  By default the
   explorer uses sleep-set DPOR; --dfs selects the naive brute-force search
   (mainly to measure the reduction), --analyze additionally attaches the
   happens-before race detector and lock-discipline linter, --analyze also
   accepts the seeded mutants from vbl.analysis by name (e.g.
   vbl-unlocked-unlink), and --stats prints explorer statistics.          *)

let usage =
  "usage: explore [-a ALGO] [--initial \"v1, v2\"] [--ops \"insert 1, remove 2\"]\n\
  \               [--preemptions N|none] [--max-executions N] [--analyze] [--dfs]\n\
  \               [--stats]"

let parse_ops s =
  s |> String.split_on_char ','
  |> List.filter_map (fun chunk ->
         match String.split_on_char ' ' (String.trim chunk) with
         | [ "" ] -> None
         | [ "insert"; v ] -> Some (Vbl_sched.Ll_abstract.insert (int_of_string v))
         | [ "remove"; v ] -> Some (Vbl_sched.Ll_abstract.remove (int_of_string v))
         | [ "contains"; v ] -> Some (Vbl_sched.Ll_abstract.contains (int_of_string v))
         | _ -> failwith ("cannot parse operation: " ^ chunk))

let parse_ints s =
  s |> String.split_on_char ','
  |> List.filter_map (fun x ->
         let x = String.trim x in
         if x = "" then None else Some (int_of_string x))

let find_impl nm =
  try Vbl_harness.Sweep.find_instrumented nm
  with Invalid_argument _ -> Vbl_analysis.Mutants.find nm

let () =
  let algo = ref "vbl" in
  let initial = ref "" in
  let ops = ref "insert 1, insert 2" in
  let preemptions = ref "3" in
  let max_executions = ref 200_000 in
  let analyze = ref false in
  let dfs = ref false in
  let stats = ref false in
  let spec =
    [
      ("-a", Arg.Set_string algo, "algorithm (default vbl)");
      ("--initial", Arg.Set_string initial, "initial values, comma-separated");
      ("--ops", Arg.Set_string ops, "operations, e.g. \"insert 1, remove 2\"");
      ("--preemptions", Arg.Set_string preemptions, "preemption bound, or 'none'");
      ("--max-executions", Arg.Set_int max_executions, "execution cap");
      ( "--analyze",
        Arg.Set analyze,
        "attach the race detector and lock-discipline linter; also accepts mutant names" );
      ("--dfs", Arg.Set dfs, "use the naive DFS instead of DPOR");
      ("--stats", Arg.Set stats, "print explorer statistics");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let impl = if !analyze then find_impl !algo else Vbl_harness.Sweep.find_instrumented !algo in
  let ops = parse_ops !ops in
  let initial = parse_ints !initial in
  let config =
    {
      Vbl_sched.Explore.max_executions = !max_executions;
      preemption_bound = (if !preemptions = "none" then None else Some (int_of_string !preemptions));
      max_steps = 20_000;
    }
  in
  Format.printf "exploring %s: initial {%s}, ops [%a], preemption bound %s%s%s@." !algo
    (String.concat ", " (List.map string_of_int initial))
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Vbl_sched.Ll_abstract.pp_opspec)
    ops !preemptions
    (if !dfs then ", naive dfs" else ", dpor")
    (if !analyze then ", analysis on" else "");
  let scenario = Vbl_sched.Drive.explore_scenario impl ~initial ~ops in
  let monitor =
    if !analyze then
      Some (Vbl_analysis.Monitor.make ~threads:(max 2 (List.length ops)) ())
    else None
  in
  let started = Unix.gettimeofday () in
  let report =
    (if !dfs then Vbl_sched.Explore.run_naive else Vbl_sched.Explore.run)
      ~config ?monitor scenario
  in
  let dt = Unix.gettimeofday () -. started in
  Printf.printf "executions explored : %d%s  (%.2fs)\n" report.Vbl_sched.Explore.executions
    (if report.Vbl_sched.Explore.truncated then " (truncated)" else "")
    dt;
  if !stats then begin
    Printf.printf "sleep-set blocked   : %d\n" report.Vbl_sched.Explore.sleep_blocked;
    Printf.printf "backtrack races     : %d\n" report.Vbl_sched.Explore.races
  end;
  match report.Vbl_sched.Explore.failure with
  | None ->
      print_endline
        (if !analyze then "verdict             : linearizable, race-free, lock-disciplined"
         else "verdict             : all explored executions linearizable")
  | Some f ->
      Format.printf "verdict             : FAILURE@.%a@." Vbl_sched.Explore.pp_failure f;
      Printf.printf "schedule            : [%s]\n"
        (String.concat "; "
           (List.map string_of_int (Vbl_sched.Explore.failure_schedule f)));
      exit 1
