(* explore — bounded model checking of an algorithm from the command line.

     explore -a vbl --ops "insert 1, remove 2" --initial "2" [--preemptions 3]
             [--bound preempt:3|delay:2|none] [--sct random:SEED:ITERS]
             [--shrink] [--analyze] [--dfs] [--stats]

   Explores interleavings of the given operations on the instrumented
   backend, checking every complete execution for linearizability (with the
   sigma-bar contains-extension) and structural invariants.  By default the
   explorer uses sleep-set DPOR; --dfs selects the naive brute-force search
   (mainly to measure the reduction), --bound picks the schedule bound the
   systematic strategies apply (preemption, delay, or none), --sct switches
   to the randomized swarm scheduler (weights and preemption probabilities
   re-drawn per run from the seed), --shrink delta-debugs any failing
   schedule down to a locally minimal counterexample, --analyze attaches
   the happens-before race detector and lock-discipline linter (and also
   accepts the seeded mutants from vbl.analysis by name, e.g.
   vbl-unlocked-unlink), and --stats prints explorer statistics.

   Exit status: 0 all explored executions pass, 1 a violation was found,
   2 malformed command line (unparseable --bound/--sct/--preemptions). *)

module Explore = Vbl_sched.Explore
module Shrink = Vbl_sched.Shrink

let usage =
  "usage: explore [-a ALGO] [--initial \"v1, v2\"] [--ops \"insert 1, remove 2\"]\n\
  \               [--preemptions N|none] [--bound preempt:N|delay:N|none]\n\
  \               [--sct random:SEED:ITERS] [--shrink] [--max-executions N]\n\
  \               [--analyze] [--dfs] [--stats]"

let bad fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("explore: " ^ msg);
      exit 2)
    fmt

let parse_ops s =
  s |> String.split_on_char ','
  |> List.filter_map (fun chunk ->
         match String.split_on_char ' ' (String.trim chunk) with
         | [ "" ] -> None
         | [ "insert"; v ] -> Some (Vbl_sched.Ll_abstract.insert (int_of_string v))
         | [ "remove"; v ] -> Some (Vbl_sched.Ll_abstract.remove (int_of_string v))
         | [ "contains"; v ] -> Some (Vbl_sched.Ll_abstract.contains (int_of_string v))
         | _ -> failwith ("cannot parse operation: " ^ chunk))

let parse_ints s =
  s |> String.split_on_char ','
  |> List.filter_map (fun x ->
         let x = String.trim x in
         if x = "" then None else Some (int_of_string x))

let parse_bound s =
  let budget kind n =
    match int_of_string_opt n with
    | Some k when k >= 0 -> k
    | _ -> bad "invalid --bound %S: the %s budget must be a non-negative integer" s kind
  in
  match String.split_on_char ':' s with
  | [ "none" ] -> Explore.none
  | [ "preempt"; n ] -> Explore.preempt (budget "preempt" n)
  | [ "delay"; n ] -> Explore.delay (budget "delay" n)
  | _ -> bad "invalid --bound %S (expected preempt:N, delay:N, or none)" s

let parse_sct s =
  match String.split_on_char ':' s with
  | [ "random"; seed; iters ] -> (
      match (Int64.of_string_opt seed, int_of_string_opt iters) with
      | Some seed, Some iters when iters > 0 -> { Explore.seed; iters }
      | _ -> bad "invalid --sct %S: need an integer seed and a positive iteration count" s)
  | _ -> bad "invalid --sct %S (expected random:SEED:ITERS)" s

let find_impl nm =
  try Vbl_harness.Sweep.find_instrumented nm
  with Invalid_argument _ -> Vbl_analysis.Mutants.find nm

let () =
  let algo = ref "vbl" in
  let initial = ref "" in
  let ops = ref "insert 1, insert 2" in
  let preemptions = ref "3" in
  let bound_spec = ref None in
  let sct_spec = ref None in
  let shrink = ref false in
  let max_executions = ref 200_000 in
  let analyze = ref false in
  let dfs = ref false in
  let stats = ref false in
  let spec =
    [
      ("-a", Arg.Set_string algo, "algorithm (default vbl)");
      ("--initial", Arg.Set_string initial, "initial values, comma-separated");
      ("--ops", Arg.Set_string ops, "operations, e.g. \"insert 1, remove 2\"");
      ("--preemptions", Arg.Set_string preemptions, "preemption bound, or 'none'");
      ( "--bound",
        Arg.String (fun s -> bound_spec := Some s),
        "schedule bound: preempt:N, delay:N, or none (overrides --preemptions)" );
      ( "--sct",
        Arg.String (fun s -> sct_spec := Some s),
        "randomized swarm scheduling: random:SEED:ITERS" );
      ("--shrink", Arg.Set shrink, "shrink any failing schedule to a local minimum");
      ("--max-executions", Arg.Set_int max_executions, "execution cap");
      ( "--analyze",
        Arg.Set analyze,
        "attach the race detector and lock-discipline linter; also accepts mutant names" );
      ("--dfs", Arg.Set dfs, "use the naive DFS instead of DPOR");
      ("--stats", Arg.Set stats, "print explorer statistics");
    ]
  in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let impl = find_impl !algo in
  let ops = parse_ops !ops in
  let initial = parse_ints !initial in
  let preemption_bound =
    if !preemptions = "none" then None
    else
      match int_of_string_opt !preemptions with
      | Some n when n >= 0 -> Some n
      | _ -> bad "invalid --preemptions %S (expected a non-negative integer or 'none')" !preemptions
  in
  let config =
    { Vbl_sched.Explore.max_executions = !max_executions; preemption_bound; max_steps = 20_000 }
  in
  let strategy =
    match !sct_spec with
    | Some s ->
        if !dfs then bad "--sct cannot be combined with --dfs";
        if !bound_spec <> None then bad "--sct cannot be combined with --bound";
        Explore.Random (parse_sct s)
    | None ->
        let b =
          match !bound_spec with
          | Some s -> parse_bound s
          | None -> Explore.bound_of_config config
        in
        if !dfs then Explore.Dfs b else Explore.Dpor b
  in
  let mode =
    match !sct_spec with
    | Some s -> "sct " ^ s
    | None ->
        (match !bound_spec with
        | Some s -> "bound " ^ s
        | None -> "preemption bound " ^ !preemptions)
        ^ (if !dfs then ", naive dfs" else ", dpor")
  in
  Format.printf "exploring %s: initial {%s}, ops [%a], %s%s@." !algo
    (String.concat ", " (List.map string_of_int initial))
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       Vbl_sched.Ll_abstract.pp_opspec)
    ops mode
    (if !analyze then ", analysis on" else "");
  let scenario = Vbl_sched.Drive.explore_scenario impl ~initial ~ops in
  let monitor =
    if !analyze then Some (Vbl_analysis.Monitor.make ~threads:(max 2 (List.length ops)) ())
    else None
  in
  let started = Unix.gettimeofday () in
  let report = Explore.run ~config ?monitor ~strategy scenario in
  let dt = Unix.gettimeofday () -. started in
  Printf.printf "executions explored : %d%s  (%.2fs)\n" report.Explore.executions
    (if report.Explore.truncated then " (truncated)" else "")
    dt;
  if !stats then begin
    Printf.printf "sleep-set blocked   : %d\n" report.Explore.sleep_blocked;
    Printf.printf "backtrack races     : %d\n" report.Explore.races;
    Printf.printf "bound prunes        : %d\n" report.Explore.bound_prunes;
    Printf.printf "distinct schedules  : %d\n" report.Explore.distinct_schedules
  end;
  match report.Explore.failure with
  | None ->
      print_endline
        (if !analyze then "verdict             : linearizable, race-free, lock-disciplined"
         else "verdict             : all explored executions linearizable")
  | Some f ->
      Format.printf "verdict             : FAILURE@.%a@." Explore.pp_failure f;
      Printf.printf "schedule            : [%s]\n"
        (String.concat "; " (List.map string_of_int (Explore.failure_schedule f)));
      if !shrink then begin
        let r = Shrink.shrink ?monitor ~max_steps:config.Explore.max_steps scenario f in
        Printf.printf "shrink              : %d -> %d steps (%d replays)\n"
          (List.length r.Shrink.original) (List.length r.Shrink.shrunk) r.Shrink.attempts;
        Format.printf "shrunk schedule     : %a@." Shrink.pp_steps r.Shrink.shrunk;
        match r.Shrink.failure with
        | Some sf -> Format.printf "shrunk verdict      : %a@." Explore.pp_failure sf
        | None -> ()
      end;
      exit 1
