(* lint — the AST-level concurrency-discipline linter.

     lint [--rule L1,L2,...] [--format text|json|sarif] [--dir DIR]... ROOT
     lint [--rule ...] [--format ...] FILE.ml

   Parses every algorithm source under ROOT (default directories
   lib/lists, lib/skiplists, lib/trees, lib/shard with all seven rules,
   plus lib/reclaim with the backend subset L3..L7 — override with
   repeated --dir, which lints the named directories uniformly) and
   enforces the discipline rules of vbl.lint; see FRAMEWORK.md "Static
   lint layer".  Exit status: 0 clean, 1 findings, 2 usage or
   missing-directory errors.                                            *)

let usage =
  "usage: lint [--rule L1,L2,...] [--format text|json|sarif] [--dir DIR]... ROOT|FILE.ml"

module F = Vbl_lint.Finding

let parse_rules s =
  s |> String.split_on_char ','
  |> List.filter_map (fun chunk ->
         let chunk = String.trim chunk in
         if chunk = "" then None
         else
           match F.rule_of_string chunk with
           | Some r -> Some r
           | None -> failwith ("unknown rule: " ^ chunk ^ " (expected L1..L7)"))

let emit_text ~target findings =
  List.iter (fun f -> print_endline (F.to_string f)) findings;
  match findings with
  | [] -> Printf.printf "lint: clean (%s)\n" target
  | fs -> Printf.eprintf "lint: %d finding(s)\n" (List.length fs)

let emit_json ~target findings =
  Printf.printf "{\"target\": \"%s\", \"count\": %d, \"findings\": [%s]}\n"
    (F.json_escape target) (List.length findings)
    (String.concat ", " (List.map F.to_json findings))

(* SARIF 2.1.0, the schema GitHub code scanning ingests.  One run, one
   driver, a rule table built from the selectable rules, one result per
   finding. *)
let emit_sarif findings =
  let rule_entry r =
    Printf.sprintf {|{"id":"%s","shortDescription":{"text":"%s"}}|} (F.rule_to_string r)
      (F.json_escape (F.describe r))
  in
  let rules = String.concat "," (List.map rule_entry F.all_rules) in
  let results = String.concat "," (List.map F.to_sarif_result findings) in
  Printf.printf
    {|{"$schema":"https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json","version":"2.1.0","runs":[{"tool":{"driver":{"name":"vbl-lint","informationUri":"https://example.invalid/vbl-lint","rules":[%s]}},"results":[%s]}]}|}
    rules results;
  print_newline ()

let () =
  let rules = ref F.all_rules in
  let format = ref "text" in
  let dirs = ref [] in
  let target = ref None in
  let spec =
    [
      ( "--rule",
        Arg.String (fun s -> rules := parse_rules s),
        "RULES comma-separated subset of L1..L7 (default: all)" );
      ( "--format",
        Arg.Symbol ([ "text"; "json"; "sarif" ], fun s -> format := s),
        " output format (default text)" );
      ( "--dir",
        Arg.String (fun d -> dirs := !dirs @ [ d ]),
        "DIR lint this directory under ROOT (repeatable; replaces the default set)" );
    ]
  in
  let anon s =
    match !target with
    | None -> target := Some s
    | Some _ -> raise (Arg.Bad "exactly one ROOT or FILE.ml expected")
  in
  (try Arg.parse spec anon usage
   with Failure msg ->
     prerr_endline ("lint: " ^ msg);
     exit 2);
  let target = Option.value !target ~default:"." in
  let result =
    if Sys.file_exists target && not (Sys.is_directory target) then
      if Filename.check_suffix target ".ml" then
        Ok (target, Vbl_lint.Lint.lint_file ~rules:!rules target)
      else Error (target ^ " is not an .ml file")
    else
      let targets =
        match !dirs with
        | [] -> Vbl_lint.Lint.default_targets
        | ds -> List.map (fun d -> (d, F.all_rules)) ds
      in
      match Vbl_lint.Lint.lint_root ~rules:!rules ~targets target with
      | Ok findings -> Ok (String.concat " " (List.map fst targets), findings)
      | Error msg -> Error msg
  in
  match result with
  | Error msg ->
      prerr_endline ("lint: " ^ msg);
      exit 2
  | Ok (shown, findings) ->
      let findings = List.sort_uniq F.compare findings in
      (match !format with
      | "json" -> emit_json ~target:shown findings
      | "sarif" -> emit_sarif findings
      | _ -> emit_text ~target:shown findings);
      exit (if findings = [] then 0 else 1)
