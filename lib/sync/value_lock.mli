(** The value-aware try-lock pattern of §3.1.

    The paper attaches two operations to every list node:

    - [lockNextAt node'] — take the node's lock, then check that the node is
      not logically deleted and that its [next] field still points at
      [node']; release and fail otherwise.
    - [lockNextAtValue v] — take the node's lock, then check that the node is
      not logically deleted and that the {e value} stored in the next node is
      still [v]; release and fail otherwise.

    Both are instances of one pattern: {e acquire, validate under the lock,
    keep the lock only if validation passes}.  The node-specific validation
    predicates live with the node type (see [Vbl_lists.Vbl_list]); this
    module provides the pattern itself so it is testable in isolation and
    reusable by the ablation variants. *)

type t

val create : unit -> t

val lock_when : t -> validate:(unit -> bool) -> bool
(** [lock_when t ~validate] acquires [t] (spinning if needed), then runs
    [validate ()].  On [true] the lock stays held and the call returns
    [true]; on [false] the lock is released and the call returns [false].
    [validate] therefore always runs under the lock. *)

val try_lock_when : t -> validate:(unit -> bool) -> bool
(** Like {!lock_when} but makes a single acquisition attempt; an already-held
    lock yields [false] without running [validate]. *)

val unlock : t -> unit

val is_locked : t -> bool
(** Racy observation, for assertions and tests only. *)
