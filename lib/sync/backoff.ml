type t = { min_wait : int; max_wait : int; mutable wait : int }

let create ?(min_wait = 16) ?(max_wait = 4096) () =
  if min_wait <= 0 || min_wait > max_wait then
    invalid_arg "Backoff.create: need 0 < min_wait <= max_wait";
  { min_wait; max_wait; wait = min_wait }

let once t =
  for _ = 1 to t.wait do
    Domain.cpu_relax ()
  done;
  t.wait <- min t.max_wait (t.wait * 2)

let reset t = t.wait <- t.min_wait
