type t = { min_wait : int; max_wait : int; mutable wait : int }

let create ?(min_wait = 16) ?(max_wait = 4096) () =
  if min_wait <= 0 || min_wait > max_wait then
    invalid_arg "Backoff.create: need 0 < min_wait <= max_wait";
  { min_wait; max_wait; wait = min_wait }

let once t =
  for _ = 1 to t.wait do
    Domain.cpu_relax ()
  done;
  t.wait <- min t.max_wait (t.wait * 2)

let reset t = t.wait <- t.min_wait

let default_min_wait = 16
let default_max_wait = 4096

(* Allocation-free variant for hot acquire loops: the caller threads the
   window through its own (register-allocated) loop parameter instead of a
   heap record, e.g.
     let rec spin wait = if attempt () then () else spin (Backoff.spin wait)
   started at [default_min_wait]. *)
let[@inline] spin wait =
  for _ = 1 to wait do
    Domain.cpu_relax ()
  done;
  min default_max_wait (wait * 2)
