(** Cache-line padding for hot shared words (cf. multicore-magic's
    [copy_as_padded]). *)

val words_per_cache_line : int
(** 8 — one 64-byte line in 8-byte words. *)

val copy_as_padded : 'a -> 'a
(** [copy_as_padded v] returns a copy of the heap block [v] whose
    allocation spans at least one cache line, so the word after it never
    shares [v]'s line.  Immediates and no-scan blocks are returned
    unchanged.  Only safe for values whose primitives touch declared
    fields only (e.g. ['a Atomic.t], records); do not use on values
    inspected with [Obj.size]. *)
