type t = Try_lock.t

let create () = Try_lock.create ()

let lock_when t ~validate =
  Try_lock.lock t;
  if validate () then true
  else begin
    Try_lock.unlock t;
    false
  end

let try_lock_when t ~validate =
  Try_lock.try_lock t
  && (validate ()
     ||
     begin
       Try_lock.unlock t;
       false
     end)

let unlock t = Try_lock.unlock t

let is_locked t = Try_lock.is_locked t
