module Probe = Vbl_obs.Probe
module C = Vbl_obs.Metrics

type t = Try_lock.t

let create () = Try_lock.create ()

let lock_when t ~validate =
  Try_lock.lock t;
  if validate () then begin
    Probe.count C.Lock_acquisitions;
    true
  end
  else begin
    Probe.count C.Validation_failures;
    Try_lock.unlock t;
    false
  end

let try_lock_when t ~validate =
  Try_lock.try_lock t
  && (if validate () then begin
        Probe.count C.Lock_acquisitions;
        true
      end
      else begin
        Probe.count C.Validation_failures;
        Try_lock.unlock t;
        false
      end)

let unlock t = Try_lock.unlock t

let is_locked t = Try_lock.is_locked t
