type t = bool Atomic.t

let create () = Atomic.make false

(* Same lock word, re-allocated so it owns a whole cache line: a release
   then invalidates nothing but the lock itself.  Costs 8 words per lock
   instead of 2, so it is opt-in (see Real_mem.padded_locks). *)
let create_padded () = Padding.copy_as_padded (Atomic.make false)

let[@inline] try_lock t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

(* The backoff window lives in the spin loop's parameters, not a heap
   record, and the loop is a closed top-level function: a blocking
   acquire — contended or not — allocates nothing.  (This used to build a
   Backoff.t per call, i.e. one minor-heap record per update operation in
   every list that locks.) *)
let rec spin_lock t wait =
  Vbl_obs.Probe.count Vbl_obs.Metrics.Lock_contended;
  let wait = Backoff.spin wait in
  if not (try_lock t) then spin_lock t wait

(* Wait-time attribution for the contended path only: the uncontended
   acquire stays a single CAS with no extra branch, and the profiling
   check itself is only reached once the lock was observed held. *)
let spin_lock_profiled t =
  let t0 = Vbl_obs.Contention.now_ns () in
  spin_lock t Backoff.default_min_wait;
  Vbl_obs.Contention.record_wait Vbl_obs.Contention.Blocking_acquire
    (Vbl_obs.Contention.now_ns () - t0)

let lock t =
  if not (try_lock t) then
    if !Vbl_obs.Contention.profiling then spin_lock_profiled t
    else spin_lock t Backoff.default_min_wait

let[@inline] unlock t = Atomic.set t false

let[@inline] is_locked t = Atomic.get t
