type t = bool Atomic.t

let create () = Atomic.make false

let try_lock t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

let lock t =
  let b = Backoff.create () in
  while not (try_lock t) do
    Backoff.once b
  done

let unlock t = Atomic.set t false

let is_locked t = Atomic.get t
