type t = bool Atomic.t

let create () = Atomic.make false

(* Same lock word, re-allocated so it owns a whole cache line: a release
   then invalidates nothing but the lock itself.  Costs 8 words per lock
   instead of 2, so it is opt-in (see Real_mem.padded_locks). *)
let create_padded () = Padding.copy_as_padded (Atomic.make false)

let[@inline] try_lock t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

(* The backoff window lives in the spin loop's parameters, not a heap
   record, and the loop is a closed top-level function: a blocking
   acquire — contended or not — allocates nothing.  (This used to build a
   Backoff.t per call, i.e. one minor-heap record per update operation in
   every list that locks.) *)
let rec spin_lock t wait =
  Vbl_obs.Probe.count Vbl_obs.Metrics.Lock_contended;
  let wait = Backoff.spin wait in
  if not (try_lock t) then spin_lock t wait

let lock t = if not (try_lock t) then spin_lock t Backoff.default_min_wait

let[@inline] unlock t = Atomic.set t false

let[@inline] is_locked t = Atomic.get t
