type t = bool Atomic.t

let create () = Atomic.make false

let try_lock t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

let lock t =
  let b = Backoff.create () in
  while not (try_lock t) do
    Vbl_obs.Probe.count Vbl_obs.Metrics.Lock_contended;
    Backoff.once b
  done

let unlock t = Atomic.set t false

let is_locked t = Atomic.get t
