(* Cache-line padding for hot shared words, in the style of
   multicore-magic's [copy_as_padded]: re-allocate a heap block with enough
   trailing unused fields that the payload's cache line is not shared with
   the next allocation.  Used for per-node lock words, where false sharing
   with the adjacent node fields (or a neighbouring node's lock) turns
   every release into an invalidation of an innocent reader's line.

   The copy has the same tag and meaningful fields as the original, so all
   primitives that only touch declared fields (everything in [Atomic])
   behave identically; only [Obj.size]-style reflection can tell the
   difference. *)

(* 8 words of 8 bytes = one 64-byte cache line, the line size of both of
   the paper's testbeds. *)
let words_per_cache_line = 8

let copy_as_padded (v : 'a) : 'a =
  let o = Obj.repr v in
  if not (Obj.is_block o) || Obj.tag o >= Obj.no_scan_tag then v
  else begin
    let n = Obj.size o in
    let padded = Obj.new_block (Obj.tag o) (max n words_per_cache_line) in
    for i = 0 to n - 1 do
      Obj.set_field padded i (Obj.field o i)
    done;
    Obj.obj padded
  end
