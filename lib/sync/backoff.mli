(** Truncated exponential backoff for contended retry loops.

    Synchrobench-style microbenchmarks are extremely sensitive to retry
    storms; every CAS loop in this repository that can fail under contention
    takes a [Backoff.t] and calls {!once} on failure. *)

type t

val create : ?min_wait:int -> ?max_wait:int -> unit -> t
(** [create ?min_wait ?max_wait ()] builds a backoff whose spin window starts
    at [min_wait] iterations (default 16) and doubles up to [max_wait]
    (default 4096).  Raises [Invalid_argument] unless
    [0 < min_wait <= max_wait]. *)

val once : t -> unit
(** Spin for the current window (with [Domain.cpu_relax]) and double it. *)

val reset : t -> unit
(** Return the window to [min_wait]; call after a successful acquisition. *)

val default_min_wait : int
(** 16 — the starting window of {!create} and {!spin}-based loops. *)

val default_max_wait : int
(** 4096 — the truncation point of {!create} and {!spin}-based loops. *)

val spin : int -> int
(** [spin wait] spins for [wait] iterations (with [Domain.cpu_relax]) and
    returns the doubled, truncated window.  The allocation-free analogue of
    {!once}: callers keep the window in a loop parameter instead of a heap
    record, so a contended acquire allocates nothing. *)
