type t = bool Atomic.t

let create () = Atomic.make false

let try_acquire t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

let acquire t =
  let b = Backoff.create () in
  let rec loop () =
    if Atomic.get t then begin
      Domain.cpu_relax ();
      loop ()
    end
    else if not (Atomic.compare_and_set t false true) then begin
      Backoff.once b;
      loop ()
    end
  in
  loop ()

let release t = Atomic.set t false

let is_locked t = Atomic.get t
