type t = bool Atomic.t

let create () = Atomic.make false

let try_acquire t = (not (Atomic.get t)) && Atomic.compare_and_set t false true

(* As in Try_lock.lock, the backoff window is a parameter of a closed
   top-level loop rather than a Backoff.t record (or a captured closure),
   so acquisition never allocates. *)
let rec acquire_loop t wait =
  if Atomic.get t then begin
    Domain.cpu_relax ();
    acquire_loop t wait
  end
  else if not (Atomic.compare_and_set t false true) then
    acquire_loop t (Backoff.spin wait)

let acquire t = acquire_loop t Backoff.default_min_wait

let release t = Atomic.set t false

let is_locked t = Atomic.get t
