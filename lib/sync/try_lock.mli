(** CAS-based try-lock.

    Unlike {!Ttas_lock}, the fast path here is the failure path: callers that
    cannot get the lock immediately are expected to go do something useful
    (re-validate, restart a traversal) rather than wait.  This is the raw
    primitive underneath the paper's value-aware try-lock (§3.1). *)

type t

val create : unit -> t

val create_padded : unit -> t
(** Like {!create}, but the lock word is allocated on its own cache line
    ({!Padding.copy_as_padded}): a handoff invalidates only the lock, not
    whatever happened to be allocated next to it.  8 words instead of 2 —
    worth it for per-node locks under real contention, wasteful for
    fine-grained single-threaded use. *)

val try_lock : t -> bool
(** Single CAS attempt; [true] iff now held by the caller. *)

val lock : t -> unit
(** Blocking acquire: spin with exponential backoff until held. *)

val unlock : t -> unit

val is_locked : t -> bool
(** Racy observation, for assertions and tests only. *)
