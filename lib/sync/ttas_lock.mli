(** Test-and-test-and-set spin lock.

    This is the mutex the Lazy list baseline hangs off each node: cheap when
    uncontended, reads the lock word locally while waiting so the waiting
    traffic stays in the cache until a release invalidates it. *)

type t

val create : unit -> t

val acquire : t -> unit
(** Spin (TTAS with backoff) until the lock is held by the caller. *)

val try_acquire : t -> bool
(** One attempt; [true] iff the lock was free and is now held. *)

val release : t -> unit
(** Release.  The implementation does not check ownership: releasing a lock
    you do not hold is a programming error with undefined behaviour, exactly
    as with the Java intrinsic locks used by the paper's implementation. *)

val is_locked : t -> bool
(** Racy observation, for assertions and tests only. *)
