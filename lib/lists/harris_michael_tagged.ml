(** Harris-Michael lock-free list, tagged-link variant (the "RTTI"
    optimisation of §4).

    The paper's fastest Harris-Michael build avoids the
    AtomicMarkableReference indirection by letting run-time type information
    carry the mark: the successor reference is an instance of either the
    unmarked or the marked node subclass, so one load yields both the
    successor and the logical-deletion state.  The OCaml analogue is a
    two-constructor link type, [Live of node | Marked of node], in a single
    CAS-able cell: one [M.get] per hop, no [touch], no separate pair line.

    Algorithmically identical to {!Harris_michael}; only the link encoding
    differs, which is exactly the ablation the paper performs. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "harris-michael-tagged"

  module Probe = Vbl_obs.Probe
  module C = Vbl_obs.Metrics

  type node =
    | Node of { value : int M.cell; link : link M.cell }
    | Tail of { value : int M.cell }

  (* [Live succ] — this node is present, successor is [succ].
     [Marked succ] — this node is logically deleted; same successor. *)
  and link = Live of node | Marked of node

  type t = { head : node }

  let link_cell_exn = function Node n -> n.link | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          link = M.make ~name:(Naming.next_cell nm) ~line (Live next);
        }
    end
    else
      Node { value = M.make ~line value; link = M.make ~line (Live next) }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail { value = M.make ~name:(Naming.value_cell Naming.tail) ~line:tl max_int }
      else Tail { value = M.make ~line:tl max_int }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value = M.make ~name:(Naming.value_cell Naming.head) ~line:hl min_int;
            link = M.make ~name:(Naming.next_cell Naming.head) ~line:hl (Live tail);
          }
      else Node { value = M.make ~line:hl min_int; link = M.make ~line:hl (Live tail) }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* Michael's find over tagged links; same structure as the AMR variant,
     one load per hop.  [advance] is a closed top-level loop (not a
     closure over [t]/[v]) so the traversal itself allocates nothing; the
     result tuple is one small allocation per update.  Hops flush in one
     probe call per traversal (see vbl_list). *)
  let rec find t v =
    match M.get (link_cell_exn t.head) with
    | Live first as head_link -> advance t v t.head head_link first 0
    | Marked _ -> assert false (* the head sentinel is never deleted *)

  and advance t v prev prev_link curr hops =
    match curr with
    | Tail _ ->
        if !Probe.enabled then Probe.add C.Traversal_steps hops;
        (prev, prev_link, curr, max_int)
    | Node n -> begin
        match M.get n.link with
        | Marked succ ->
            let replacement = Live succ in
            Probe.count C.Cas_attempts;
            if M.cas (link_cell_exn prev) prev_link replacement then begin
              Probe.count C.Physical_unlinks;
              advance t v prev replacement succ (hops + 1)
            end
            else begin
              if !Probe.enabled then Probe.add C.Traversal_steps (hops + 1);
              Probe.count C.Cas_failures;
              Probe.count C.Restarts;
              find t v
            end
        | Live succ as curr_link ->
            let cv = M.get n.value in
            if cv >= v then begin
              if !Probe.enabled then Probe.add C.Traversal_steps (hops + 1);
              (prev, prev_link, curr, cv)
            end
            else advance t v curr curr_link succ (hops + 1)
      end

  let rec insert t v =
    check_key v;
    let prev, prev_link, curr, cv = find t v in
    if cv = v then false
    else begin
      let x = make_node v curr in
      Probe.count C.Cas_attempts;
      if M.cas (link_cell_exn prev) prev_link (Live x) then true
      else begin
        Probe.count C.Cas_failures;
        Probe.count C.Restarts;
        insert t v
      end
    end

  let rec remove t v =
    check_key v;
    let prev, prev_link, curr, cv = find t v in
    if cv <> v then false
    else begin
      match M.get (link_cell_exn curr) with
      | Marked _ ->
          Probe.count C.Restarts;
          remove t v
      | Live succ as curr_link ->
          Probe.count C.Cas_attempts;
          if not (M.cas (link_cell_exn curr) curr_link (Marked succ)) then begin
            Probe.count C.Cas_failures;
            Probe.count C.Restarts;
            remove t v
          end
          else begin
            Probe.count C.Logical_deletes;
            (* Best-effort physical unlink, as in the AMR variant. *)
            Probe.count C.Cas_attempts;
            if M.cas (link_cell_exn prev) prev_link (Live succ) then
              Probe.count C.Physical_unlinks
            else Probe.count C.Cas_failures;
            true
          end
    end

  (* Closed top-level walk: zero allocation per call on the real backend. *)
  let[@hot] rec contains_walk v curr hops =
    match curr with
    | Tail _ ->
        if !Probe.enabled then Probe.add C.Traversal_steps hops;
        false
    | Node n -> begin
        match M.get n.link with
        | Live succ ->
            let cv = M.get n.value in
            if cv < v then contains_walk v succ (hops + 1)
            else begin
              if !Probe.enabled then Probe.add C.Traversal_steps (hops + 1);
              cv = v
            end
        | Marked succ ->
            (* A marked node is absent whatever its value. *)
            let cv = M.get n.value in
            if cv < v then contains_walk v succ (hops + 1)
            else begin
              if !Probe.enabled then Probe.add C.Traversal_steps (hops + 1);
              false
            end
      end

  let contains t v =
    check_key v;
    match M.get (link_cell_exn t.head) with
    | Live first -> contains_walk v first 0
    | Marked _ -> assert false

  let link_parts = function Live succ -> (succ, false) | Marked succ -> (succ, true)

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let succ, marked = link_parts (M.get n.link) in
          let v = M.get n.value in
          let keep = v <> min_int && not marked in
          let acc = if keep then f acc v else acc in
          loop acc succ
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value = max_int then Ok ()
            else Error "tail sentinel does not store max_int"
        | Node n ->
            let succ, _ = link_parts (M.get n.link) in
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else loop v succ (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
