(** Step-name conventions shared by all instrumented list algorithms: the
    paper writes [h] for the head, [X_i] for the node storing value [i].
    Schedule scripts refer to implementation steps through these names. *)

val head : string
val tail : string

val node : int -> string
(** ["h"], ["t"], or ["X<value>"]. *)

val value_cell : string -> string
val next_cell : string -> string
val deleted_cell : string -> string
val lock_cell : string -> string
val amr_cell : string -> string
val amr_pair : string -> string
