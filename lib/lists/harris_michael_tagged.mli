(** Harris-Michael lock-free list, tagged-link variant — the OCaml
    analogue of the paper's RTTI optimisation: one load per hop yields
    both the successor and the logical-deletion state. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
