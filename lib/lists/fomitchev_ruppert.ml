(** The lock-free linked list of Fomitchev & Ruppert (PODC 2004), cited by
    the paper's related work (§5) as the backlink-based alternative to
    restarting from the head: when a CAS fails because the predecessor got
    deleted, the operation walks {e backlinks} to the nearest live
    predecessor instead of re-traversing from the head.

    Link encoding — each node's successor field atomically holds one of:

    - [Live next] — normal;
    - [Marked next] — this node is logically deleted;
    - [Flagged next] — [next] is pinned for deletion: nothing else may
      change this successor field until that deletion completes.

    Deleting [del] with live predecessor [prev] is a three-step protocol:
    flag [prev]'s link ([try_flag]), set [del.backlink <- prev] and mark
    [del], then physically unlink — all bundled in [help_flagged].  The
    flag makes the unlink CAS infallible, so marked nodes never linger;
    an insert that finds its predecessor flagged helps the stalled deleter
    first, which is what makes the algorithm lock-free.

    Key invariant (used for the double-remove argument): while a node is
    marked and still linked, its unique live predecessor is flagged at it,
    so a second [remove] of the same node can never win the flagging CAS.

    As the paper notes (§5), backlinks and flags are more metadata for
    operations to conflict on — this algorithm is not concurrency-optimal
    either; it is included as a further measured baseline. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "fomitchev-ruppert"

  type node =
    | Node of { key : int M.cell; succ : link M.cell; backlink : node M.cell }
    | Tail of { key : int M.cell }

  and link = Live of node | Marked of node | Flagged of node

  type t = { head : node }

  let node_key = function Node n -> M.get n.key | Tail n -> M.get n.key
  let succ_cell_exn = function Node n -> n.succ | Tail _ -> assert false

  let right node =
    match M.get (succ_cell_exn node) with Live s | Marked s | Flagged s -> s

  let is_marked = function
    | Tail _ -> false
    | Node n -> ( match M.get n.succ with Marked _ -> true | Live _ | Flagged _ -> false)

  let set_backlink node target =
    match node with
    | Node n -> M.set n.backlink target
    | Tail _ -> ()

  let backlink = function
    | Node n -> M.get n.backlink
    | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node key next back =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node key in
      M.new_node ~name:nm ~line;
      Node
        {
          key = M.make ~name:(Naming.value_cell nm) ~line key;
          succ = M.make ~name:(Naming.next_cell nm) ~line (Live next);
          backlink = M.make ~name:(nm ^ ".back") ~line back;
        }
    end
    else
      Node
        {
          key = M.make ~line key;
          succ = M.make ~line (Live next);
          backlink = M.make ~line back;
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail { key = M.make ~name:(Naming.value_cell Naming.tail) ~line:tl max_int }
      else Tail { key = M.make ~line:tl max_int }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            key = M.make ~name:(Naming.value_cell Naming.head) ~line:hl min_int;
            succ = M.make ~name:(Naming.next_cell Naming.head) ~line:hl (Live tail);
            (* The head is never marked, so its backlink is never followed. *)
            backlink = M.make ~name:"h.back" ~line:hl tail;
          }
      else
        Node
          {
            key = M.make ~line:hl min_int;
            succ = M.make ~line:hl (Live tail);
            backlink = M.make ~line:hl tail;
          }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* Walk backlinks off marked nodes to the nearest live predecessor. *)
  let rec live_pred p = if is_marked p then live_pred (backlink p) else p

  (* Mark [del], whose predecessor is flagged (so [del]'s own link can only
     change by this very marking). *)
  let rec try_mark del =
    match del with
    | Tail _ -> assert false (* sentinels are never deleted *)
    | Node n -> (
        match M.get n.succ with
        | Marked _ -> ()
        | Live next as witness ->
            if M.cas n.succ witness (Marked next) then () else try_mark del
        | Flagged next as fl ->
            (* del is itself mid-deleting its successor; help it first. *)
            help_flagged del fl next;
            try_mark del)

  (* [prev]'s link is [prev_link = Flagged del]: finish [del]'s deletion —
     backlink, mark, unlink.  The unlink CAS can only fail if another
     helper already performed it. *)
  and help_flagged prev prev_link del =
    set_backlink del prev;
    if not (is_marked del) then try_mark del;
    let next = right del in
    ignore (M.cas (succ_cell_exn prev) prev_link (Live next))

  (* Traversal: find (curr, next) with [below curr.key k] and not
     [below next.key k].  [below] is [<=] for membership/insertion and [<]
     for the strict predecessor search removal needs.  As in the original
     SearchFrom, passing a node whose deletion is flagged-and-marked helps
     complete the unlink — without this, an operation retrying around a
     stalled deleter would spin instead of making its progress for it
     (lock-freedom).  Other marked nodes are simply traversed through:
     their successor links stay valid. *)
  let search_from ~below k start =
    let rec loop curr next =
      if below (node_key next) k then begin
        match M.get (succ_cell_exn curr) with
        | Flagged s as fl when s == next && is_marked next ->
            help_flagged curr fl next;
            loop curr (right curr)
        | Live _ | Marked _ | Flagged _ -> loop next (right next)
      end
      else (curr, next)
    in
    loop start (right start)

  let below_leq a b = a <= b
  let below_lt a b = a < b

  (* Flag [prev]'s link at [target].  [Some (prev, true)] — we flagged;
     [Some (prev, false)] — another deleter holds the flag; [None] — the
     target is gone. *)
  let rec try_flag t prev target k =
    match M.get (succ_cell_exn prev) with
    | Flagged s when s == target -> Some (prev, false)
    | Live s as witness when s == target ->
        if M.cas (succ_cell_exn prev) witness (Flagged target) then Some (prev, true)
        else try_flag t prev target k
    | Flagged s as fl ->
        (* prev is deleting some other successor; help and retry. *)
        help_flagged prev fl s;
        try_flag t prev target k
    | Live _ | Marked _ ->
        let prev = live_pred prev in
        let prev, del = search_from ~below:below_lt k prev in
        if del == target then try_flag t prev target k else None

  let insert t v =
    check_key v;
    let rec attempt prev next =
      if node_key prev = v && not (is_marked prev) then false
      else begin
        let x = make_node v next t.head in
        try_link x prev next
      end
    and try_link x prev next =
      match M.get (succ_cell_exn prev) with
      | Flagged s as fl ->
          help_flagged prev fl s;
          re_search x prev
      | Marked _ -> re_search x (live_pred prev)
      | Live s as witness when s == next ->
          (match x with Node n -> M.set n.succ witness | Tail _ -> ());
          if M.cas (succ_cell_exn prev) witness (Live x) then true else try_link x prev next
      | Live _ -> re_search x prev
    and re_search x prev =
      let prev, next = search_from ~below:below_leq v prev in
      if node_key prev = v && not (is_marked prev) then false else try_link x prev next
    in
    let prev, next = search_from ~below:below_leq v t.head in
    attempt prev next

  let remove t v =
    check_key v;
    let prev, del = search_from ~below:below_lt v t.head in
    if node_key del <> v then false
    else
      match try_flag t prev del v with
      | None -> false
      | Some (prev, status) ->
          (* Whether we won the flag or found it, drive the deletion to its
             unlink so the list stays garbage-free. *)
          (match M.get (succ_cell_exn prev) with
          | Flagged s as fl when s == del -> help_flagged prev fl del
          | Live _ | Flagged _ | Marked _ -> () (* already completed by a helper *));
          status

  let contains t v =
    check_key v;
    let curr, _ = search_from ~below:below_leq v t.head in
    node_key curr = v && not (is_marked curr)

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let succ, marked =
            match M.get n.succ with
            | Live s | Flagged s -> (s, false)
            | Marked s -> (s, true)
          in
          let v = M.get n.key in
          let keep = v <> min_int && not marked in
          let acc = if keep then f acc v else acc in
          loop acc succ
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.key = max_int then Ok ()
            else Error "tail sentinel does not store max_int"
        | Node n ->
            let v = M.get n.key in
            let succ, marked =
              match M.get n.succ with
              | Live s | Flagged s -> (s, false)
              | Marked s -> (s, true)
            in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "keys not strictly increasing at %d" v)
            else if steps > 0 && marked then
              (* Flagging makes unlinks infallible, so at quiescence no
                 marked node is reachable. *)
              Error (Printf.sprintf "marked node %d still reachable" v)
            else loop v succ (steps + 1)
    in
    match t.head with
    | Node n when M.get n.key = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
