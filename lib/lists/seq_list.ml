(** The sequential sorted linked list [LL] (paper Algorithm 1).

    This is the reference implementation whose interleavings define the
    paper's schedules (§2.2): every read of a [val] or [next] field, every
    write and every node creation goes through the memory backend and is
    therefore a schedule step under {!Vbl_memops.Instr_mem}.  It is {e not}
    safe for concurrent use — that is the point: running it concurrently
    under the schedule framework is how correct and incorrect schedules are
    told apart. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "sequential"

  type node =
    | Node of { value : int M.cell; next : node M.cell }
    | Tail of { value : int M.cell }

  type t = { head : node }

  let node_value = function
    | Node n -> M.get n.value
    | Tail n -> M.get n.value

  let next_cell_exn = function
    | Node n -> n.next
    | Tail _ -> assert false (* traversals stop at the tail's +inf value *)

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
        }
    end
    else Node { value = M.make ~line value; next = M.make ~line next }

  let create () =
    let tail_line = M.fresh_line () in
    let tail =
      if M.named then
        Tail { value = M.make ~name:(Naming.value_cell Naming.tail) ~line:tail_line max_int }
      else Tail { value = M.make ~line:tail_line max_int }
    in
    let head_line = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value = M.make ~name:(Naming.value_cell Naming.head) ~line:head_line min_int;
            next = M.make ~name:(Naming.next_cell Naming.head) ~line:head_line tail;
          }
      else Node { value = M.make ~line:head_line min_int; next = M.make ~line:head_line tail }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* The traversal of Algorithm 1: returns the first node with value >= v,
     its observed value, and the predecessor. *)
  let locate t v =
    let rec loop prev curr =
      let tval = node_value curr in
      if tval < v then loop curr (M.get (next_cell_exn curr)) else (prev, curr, tval)
    in
    let prev = t.head in
    let curr = M.get (next_cell_exn prev) in
    loop prev curr

  let insert t v =
    check_key v;
    let prev, curr, tval = locate t v in
    if tval = v then false
    else begin
      let x = make_node v curr in
      M.set (next_cell_exn prev) x;
      true
    end

  let remove t v =
    check_key v;
    let prev, curr, tval = locate t v in
    if tval = v then begin
      let tnext = M.get (next_cell_exn curr) in
      M.set (next_cell_exn prev) tnext;
      true
    end
    else false

  let contains t v =
    check_key v;
    let _, _, tval = locate t v in
    tval = v

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let acc = if v = min_int then acc else f acc v in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)

  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value = max_int then Ok ()
            else Error "tail sentinel does not store max_int"
        | Node n ->
            let v = M.get n.value in
            if v <= last && not (v = min_int && steps = 0) then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
