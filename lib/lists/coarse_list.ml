(** Coarse-grained locking: the sequential list behind one global lock.

    Not measured in the paper, but it is the zero-concurrency anchor of the
    synchrobench family and gives the benchmark harness a lower bound:
    every algorithm in this library should beat it as soon as there is any
    parallelism to exploit. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  module Seq = Seq_list.Make (M)

  let name = "coarse"

  type t = { lock : M.lock; inner : Seq.t }

  let create () =
    let line = M.fresh_line () in
    { lock = M.make_lock ~name:"global.lock" ~line (); inner = Seq.create () }

  let critical t f =
    M.lock t.lock;
    Fun.protect ~finally:(fun () -> M.unlock t.lock) f

  let insert t v = critical t (fun () -> Seq.insert t.inner v)
  let remove t v = critical t (fun () -> Seq.remove t.inner v)
  let contains t v = critical t (fun () -> Seq.contains t.inner v)
  let to_list t = Seq.to_list t.inner
  let size t = Seq.size t.inner
  let check_invariants t = Seq.check_invariants t.inner
  (* Reads serialize with writers too: Seq_list is not built for
     concurrent traversal (a walk racing a remove's splice can observe
     mid-update states), and coarse is the zero-concurrency anchor, so
     fold/iter and the derived approx_size take the global lock like
     everything else. *)
  let fold f init t = critical t (fun () -> Seq.fold f init t.inner)
  let iter f t = critical t (fun () -> Seq.iter f t.inner)

  (* A single collection under the global lock is a true snapshot, so
     this is the one list family member whose range_query is genuinely
     linearizable (Set_intf.Derive's double-collect certifies nothing). *)
  let range_query t lo hi = critical t (fun () -> Seq.range_query t.inner lo hi)
  let approx_size t = critical t (fun () -> Seq.approx_size t.inner)
end
