(** Harris-Michael lock-free list, AtomicMarkableReference variant: the
    successor pointer and deletion mark live in a separate immutable pair
    object, costing an extra dependent load per hop — the traversal
    overhead the paper measures against (§4). *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
