(** Coarse-grained locking: the sequential list behind one global lock —
    the zero-concurrency anchor of the family. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
