(** First-class-module registry of every algorithm instantiated on the real
    (Atomic) backend.  This is what the CLI, the examples and the benchmark
    harness select implementations from. *)

module R = Vbl_memops.Real_mem
module RR = Vbl_memops.Reclaim_mem

module Sequential = Seq_list.Make (R)
module Coarse = Coarse_list.Make (R)
module Hand_over_hand = Hoh_list.Make (R)
module Optimistic = Optimistic_list.Make (R)
module Lazy = Lazy_list.Make (R)
module Harris_michael_amr = Harris_michael.Make (R)
module Harris_michael_rtti = Harris_michael_tagged.Make (R)
module Fomitchev_ruppert_list = Fomitchev_ruppert.Make (R)
module Vbl = Vbl_list.Make (R)
module Vbl_postlock_ablation = Vbl_postlock.Make (R)
module Vbl_versioned_variant = Vbl_versioned.Make (R)

(* Reclaiming variants: the same algorithm sources instantiated on the
   epoch-based reclamation backend.  Node unlinks feed per-domain limbo
   bags and the insert hot path recycles aged-out nodes instead of
   allocating. *)
module Lazy_reclaim = struct
  include Lazy_list.Make (RR)

  let name = "lazy-reclaim"
end

module Harris_michael_reclaim = struct
  include Harris_michael.Make (RR)

  let name = "harris-michael-reclaim"
end

module Vbl_reclaim = struct
  include Vbl_list.Make (RR)

  let name = "vbl-reclaim"
end

type impl = (module Set_intf.S)

(* Concurrency-safe implementations, in roughly increasing concurrency
   order.  The sequential list is deliberately excluded: it is only correct
   single-threaded (it exists to define schedules, §2.2). *)
let concurrent : impl list =
  [
    (module Coarse);
    (module Hand_over_hand);
    (module Optimistic);
    (module Lazy);
    (module Harris_michael_amr);
    (module Harris_michael_rtti);
    (module Fomitchev_ruppert_list);
    (module Vbl_postlock_ablation);
    (module Vbl_versioned_variant);
    (module Vbl);
    (module Lazy_reclaim);
    (module Harris_michael_reclaim);
    (module Vbl_reclaim);
  ]

let all : impl list = (module Sequential : Set_intf.S) :: concurrent

(* The three algorithms the paper's Figures 1 and 4 measure. *)
let measured : impl list =
  [ (module Lazy); (module Harris_michael_rtti); (module Vbl) ]

let name (impl : impl) =
  let module I = (val impl) in
  I.name

let find nm : impl option = List.find_opt (fun i -> name i = nm) all

let find_exn nm =
  match find nm with
  | Some i -> i
  | None ->
      invalid_arg
        (Printf.sprintf "unknown algorithm %S (known: %s)" nm
           (String.concat ", " (List.map name all)))
