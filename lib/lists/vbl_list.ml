(** The Value-Based List (VBL) — the paper's contribution (§3, Algorithm 2).

    Ingredients, each kept faithful to the pseudo-code:

    - {b wait-free traversal} ([waitfreeTraversal]) that ignores locks and
      marks, restarts from its own [prev] rather than the head, and falls
      back to the head only if [prev] itself got deleted (lines 14-21);
    - {b value checks before any locking}: an [insert] of a present value
      and a [remove] of an absent value return without touching a lock
      (lines 25 and 36) — the property that makes the algorithm accept the
      schedules the lazy list rejects;
    - the {b value-aware try-lock} of §3.1: [lock_next_at] validates
      adjacency by {e identity} and [lock_next_at_value] by {e value}, both
      after acquiring the node's lock and both releasing it on failure;
    - {b logical deletion} ([deleted] flag, separate from the [next]
      pointer as the paper advocates) followed by immediate physical unlink
      under both locks (lines 44-45).

    Progress: deadlock-free (locks are acquired in list order; an update
    that keeps restarting implies other updates completed).  [contains] is
    wait-free and, per the paper's pseudo-code (lines 9-13), does {e not}
    consult the [deleted] flag: a logically deleted node still being
    unlinked counts as present, which linearizes the [contains] before the
    concurrent [remove]. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "vbl"

  module Probe = Vbl_obs.Probe
  module C = Vbl_obs.Metrics
  module Prof = Vbl_obs.Contention

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell;
        deleted : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell; deleted : bool M.cell; lock : M.lock }

  type t = { head : node; pool : node M.pool }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_deleted = function Node n -> M.get n.deleted | Tail n -> M.get n.deleted
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]); on the
     real backend an insert allocates exactly the node and its cells. *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          deleted = M.make ~name:(Naming.deleted_cell nm) ~line false;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = M.make ~line next;
          deleted = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail
          {
            value = M.make ~name:(Naming.value_cell Naming.tail) ~line:tl max_int;
            deleted = M.make ~name:(Naming.deleted_cell Naming.tail) ~line:tl false;
            lock = M.make_lock ~name:(Naming.lock_cell Naming.tail) ~line:tl ();
          }
      else
        Tail
          {
            value = M.make ~line:tl max_int;
            deleted = M.make ~line:tl false;
            lock = M.make_lock ~line:tl ();
          }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value = M.make ~name:(Naming.value_cell Naming.head) ~line:hl min_int;
            next = M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail;
            deleted = M.make ~name:(Naming.deleted_cell Naming.head) ~line:hl false;
            lock = M.make_lock ~name:(Naming.lock_cell Naming.head) ~line:hl ();
          }
      else
        Node
          {
            value = M.make ~line:hl min_int;
            next = M.make ~line:hl tail;
            deleted = M.make ~line:hl false;
            lock = M.make_lock ~line:hl ();
          }
    in
    (* The head sentinel doubles as the pool's miss sentinel: it can never
       be retired, so [x == t.head] is an unambiguous "free-list empty". *)
    { head; pool = M.make_pool ~dummy:head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* Lines 14-21 (waitfreeTraversal) are inlined into each update below as
     closed tail-recursive walks with explicit parameters.  Without
     flambda, a traversal that returns a (prev, curr) tuple — or a local
     loop closing over [v] — allocates on every operation; the walks keep
     everything in registers so the real-engine hot path allocates nothing
     but the inserted node.  Hops accumulate in [hops] (a register) and
     flush in one probe call per traversal; the shared-memory access
     sequence is exactly that of the former waitfree_traversal helper, so
     instrumented schedules are unchanged. *)

  (* §3.1 (1): lock [node], then require it undeleted and still pointing at
     [at]; release and fail otherwise.  [@acquires]: on success the lock is
     handed to the caller, so the static pairing rule (lint L3) does not
     apply to this body. *)
  (* Wait-time attribution (disabled: one branch; the timing never touches
     M-managed memory, so instrumented schedules are unchanged). *)
  let[@hot] [@acquires] timed_lock l site =
    let t0 = Prof.now_ns () in
    M.lock l;
    Prof.record_wait site (Prof.now_ns () - t0)

  let[@hot] [@acquires] lock_next_at node at =
    if !Prof.profiling then timed_lock (node_lock node) Prof.Lock_next_at
    else M.lock (node_lock node);
    if (not (node_deleted node)) && M.get (next_cell_exn node) == at then begin
      Probe.count C.Lock_acquisitions;
      true
    end
    else begin
      Probe.count C.Lock_next_at_failures;
      M.unlock (node_lock node);
      false
    end

  (* §3.1 (2): lock [node], then require it undeleted and the {e value} of
     its successor to still be [v]; release and fail otherwise. *)
  let[@hot] [@acquires] lock_next_at_value node v =
    if !Prof.profiling then timed_lock (node_lock node) Prof.Lock_next_at_value
    else M.lock (node_lock node);
    if (not (node_deleted node)) && node_value (M.get (next_cell_exn node)) = v then begin
      Probe.count C.Lock_acquisitions;
      true
    end
    else begin
      Probe.count C.Lock_next_at_value_failures;
      M.unlock (node_lock node);
      false
    end

  (* Reclaiming insert path: serve the node from the free-list when some
     retired node's grace period has passed, reinitializing its cells in
     place (it is unreachable, so the order of the three stores is
     irrelevant and its lock is long released); allocate fresh on a miss.
     The miss check is one physical comparison against the head sentinel
     — never an option, which would allocate under [@hot]. *)
  let[@hot] recycle_node t v next =
    let x = M.recycle t.pool in
    if x == t.head then make_node v next
    else begin
      (match x with
      | Node n ->
          M.set n.value v;
          M.set n.next next;
          M.set n.deleted false
      | Tail _ -> assert false);
      x
    end

  (* Lines 22-32; restarts resume from [prev] (line 24). *)
  let[@hot] rec insert_attempt t v prev =
    let prev = if node_deleted prev then t.head else prev in
    insert_walk t v prev (M.get (next_cell_exn prev)) 1

  and[@hot] insert_walk t v prev curr hops =
    if node_value curr < v then
      insert_walk t v curr (M.get (next_cell_exn curr)) (hops + 1)
    else begin
      if !Probe.enabled then Probe.add C.Traversal_steps hops;
      if node_value curr = v then false
      else begin
        let x = if M.reclaiming then recycle_node t v curr else make_node v curr in
        if lock_next_at prev curr then begin
          let t_acq = if !Prof.profiling then Prof.now_ns () else 0 in
          M.set (next_cell_exn prev) x;
          M.unlock (node_lock prev);
          if !Prof.profiling then
            Prof.record_hold Prof.Lock_next_at (Prof.now_ns () - t_acq);
          true
        end
        else begin
          Probe.count C.Restarts;
          (* [x] was never published; route it back through the pool so a
             restart storm cannot leak recycled nodes. *)
          if M.reclaiming then M.retire t.pool x;
          insert_attempt t v prev (* goto line 24 *)
        end
      end
    end

  (* On reclaiming backends every operation runs inside an epoch bracket:
     while it is open, nothing the operation can reach may be recycled.
     The [M.reclaiming] guard keeps the plain backends' code paths
     byte-for-byte unchanged (one immutable-flag branch, like
     [M.named]). *)
  let insert t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = insert_attempt t v t.head in
      M.op_exit t.pool h;
      r
    end
    else insert_attempt t v t.head

  (* Lines 33-48; restarts resume from [prev] (line 35). *)
  let[@hot] rec remove_attempt t v prev =
    let prev = if node_deleted prev then t.head else prev in
    remove_walk t v prev (M.get (next_cell_exn prev)) 1

  and[@hot] remove_walk t v prev curr hops =
    if node_value curr < v then
      remove_walk t v curr (M.get (next_cell_exn curr)) (hops + 1)
    else begin
      if !Probe.enabled then Probe.add C.Traversal_steps hops;
      if node_value curr <> v then false
      else begin
        let next = M.get (next_cell_exn curr) in
        if not (lock_next_at_value prev v) then begin
          Probe.count C.Restarts;
          remove_attempt t v prev (* goto line 35 *)
        end
        else begin
          let t_prev = if !Prof.profiling then Prof.now_ns () else 0 in
          (* Line 40: re-read the successor under the lock; a concurrent
             remove+insert of [v] may have replaced the node. *)
          let curr = M.get (next_cell_exn prev) in
          if not (lock_next_at curr next) then begin
            Probe.count C.Restarts;
            M.unlock (node_lock prev);
            if !Prof.profiling then
              Prof.record_hold Prof.Lock_next_at_value (Prof.now_ns () - t_prev);
            remove_attempt t v prev (* goto line 35 *)
          end
          else begin
            let t_curr = if !Prof.profiling then Prof.now_ns () else 0 in
            (match curr with
            | Node n -> M.set n.deleted true
            | Tail _ -> assert false);
            Probe.count C.Logical_deletes;
            M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
            Probe.count C.Physical_unlinks;
            M.unlock (node_lock curr);
            M.unlock (node_lock prev);
            if !Prof.profiling then begin
              let stop = Prof.now_ns () in
              Prof.record_hold Prof.Lock_next_at (stop - t_curr);
              Prof.record_hold Prof.Lock_next_at_value (stop - t_prev)
            end;
            (* [curr] is unlinked (exactly once, under both locks) and its
               lock released above: quarantine it until the grace period
               passes. *)
            if M.reclaiming then M.retire t.pool curr;
            true
          end
        end
      end
    end

  let remove t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = remove_attempt t v t.head in
      M.op_exit t.pool h;
      r
    end
    else remove_attempt t v t.head

  (* Lines 9-13: value-only wait-free membership test. *)
  let[@hot] rec contains_walk v curr hops =
    if node_value curr < v then contains_walk v (M.get (next_cell_exn curr)) (hops + 1)
    else begin
      if !Probe.enabled then Probe.add C.Traversal_steps hops;
      node_value curr = v
    end

  let contains t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = contains_walk v t.head 0 in
      M.op_exit t.pool h;
      r
    end
    else contains_walk v t.head 0

  (* Quiescent observers: callers guarantee no concurrent mutators, so
     these read outside any epoch bracket — [@quiescent] records that
     for L5. *)
  let[@quiescent] fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && not (M.get n.deleted) in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let[@quiescent] check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value <> max_int then Error "tail sentinel does not store max_int"
            else if M.get n.deleted then Error "tail sentinel is marked deleted"
            else Ok ()
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else if steps > 0 && M.get n.deleted then
              (* VBL unlinks under the same lock pair that marks, so at
                 quiescence no deleted node is reachable. *)
              Error (Printf.sprintf "deleted node %d still reachable" v)
            else if M.lock_held (node_lock node) then
              Error (Printf.sprintf "node %d left locked" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
