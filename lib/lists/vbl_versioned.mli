(** Variant: VBL validating by per-node version counters instead of
    pointer identity / successor value (the "versions" its §5 mentions).
    More conservative than {!Vbl_list} (an ABA forces a retry) and one
    extra write per update; the validation-strategy ablation. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
