(** Fine-grained hand-over-hand (lock-coupling) list: every traversal
    holds at most two locks, acquiring ahead before releasing behind
    (Herlihy & Shavit ch. 9.5). *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
