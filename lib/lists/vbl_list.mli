(** The Value-Based List (VBL) — the paper's contribution (§3,
    Algorithm 2): wait-free traversal resuming from [prev], value checks
    before any locking, the §3.1 value-aware try-lock
    ([lockNextAt]/[lockNextAtValue]), and logical deletion with immediate
    unlink.  Concurrency-optimal (Theorems 1-3); the executable evidence
    lives in the sched test suite. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
