(** Fine-grained (hand-over-hand, "lock coupling") list.

    Every node carries a lock; a traversal holds at most two locks at a
    time, acquiring the successor's before releasing the predecessor's, so
    traversals pipeline behind each other but never interleave unsafely.
    This is the classic fine-grained baseline from Herlihy & Shavit ch. 9;
    the paper's concurrency hierarchy places it strictly below the
    optimistic and lazy lists because every operation — including read-only
    ones — locks every node it passes. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "hand-over-hand"

  type node =
    | Node of { value : int M.cell; next : node M.cell; lock : M.lock }
    | Tail of { value : int M.cell; lock : M.lock }

  type t = { head : node }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = M.make ~line next;
          lock = M.make_lock ~line ();
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail
          {
            value = M.make ~name:(Naming.value_cell Naming.tail) ~line:tl max_int;
            lock = M.make_lock ~name:(Naming.lock_cell Naming.tail) ~line:tl ();
          }
      else Tail { value = M.make ~line:tl max_int; lock = M.make_lock ~line:tl () }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value = M.make ~name:(Naming.value_cell Naming.head) ~line:hl min_int;
            next = M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail;
            lock = M.make_lock ~name:(Naming.lock_cell Naming.head) ~line:hl ();
          }
      else
        Node
          {
            value = M.make ~line:hl min_int;
            next = M.make ~line:hl tail;
            lock = M.make_lock ~line:hl ();
          }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* Crab from the head until [curr] is the first node with value >= v.
     Returns with the locks on both [prev] and [curr] held — the caller
     releases them, so the static pairing rule (lint L3) is exempted. *)
  let[@acquires] locate_locked t v =
    let rec crab prev curr =
      let tval = node_value curr in
      if tval < v then begin
        let succ = M.get (next_cell_exn curr) in
        M.lock (node_lock succ);
        M.unlock (node_lock prev);
        crab curr succ
      end
      else (prev, curr, tval)
    in
    M.lock (node_lock t.head);
    let curr = M.get (next_cell_exn t.head) in
    M.lock (node_lock curr);
    crab t.head curr

  let unlock2 prev curr =
    M.unlock (node_lock curr);
    M.unlock (node_lock prev)

  let insert t v =
    check_key v;
    let prev, curr, tval = locate_locked t v in
    let result =
      if tval = v then false
      else begin
        M.set (next_cell_exn prev) (make_node v curr);
        true
      end
    in
    unlock2 prev curr;
    result

  let remove t v =
    check_key v;
    let prev, curr, tval = locate_locked t v in
    let result =
      if tval = v then begin
        M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
        true
      end
      else false
    in
    unlock2 prev curr;
    result

  let contains t v =
    check_key v;
    let prev, curr, tval = locate_locked t v in
    unlock2 prev curr;
    tval = v

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let acc = if v = min_int then acc else f acc v in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value = max_int then Ok ()
            else Error "tail sentinel does not store max_int"
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
