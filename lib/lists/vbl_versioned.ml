(** Variant: VBL with {e version-based} validation.

    The paper's §5 notes that its implementation "separates metadata
    (logical deletion and versions) from the structural data".  This
    variant makes the version mechanism concrete: every node carries a
    version counter bumped on each [next] write, updates snapshot the
    version during traversal, and the try-lock validates
    {e version-unchanged} instead of VBL's pointer-identity /
    successor-value checks.

    Compared to {!Vbl_list} this is a strictly more conservative
    validation — an ABA on the successor (remove value, re-insert it)
    changes the version and forces a retry where [lockNextAtValue] would
    have sailed through — so it accepts fewer schedules; and it costs one
    extra write per update.  It is benchmarked as the validation-strategy
    ablation. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "vbl-versioned"

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell;
        version : int M.cell;  (** bumped on every [next] write *)
        deleted : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell; deleted : bool M.cell; lock : M.lock }

  type t = { head : node }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_deleted = function Node n -> M.get n.deleted | Tail n -> M.get n.deleted
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false
  let version_exn = function Node n -> M.get n.version | Tail _ -> assert false

  (* The bump must FOLLOW the [next] write.  Traversals snapshot the
     version before reading [next], so a reader that observes the new
     version has also observed the new successor; bumping first opens a
     window where a reader pairs the bumped version with the old [next]
     and the try-lock then validates a stale successor — a lost insert
     (or, via stale pointers, a cycle). *)
  let set_next node target =
    match node with
    | Node n ->
        M.set n.next target;
        M.set n.version (M.get n.version + 1)
    | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          version = M.make ~name:(nm ^ ".ver") ~line 0;
          deleted = M.make ~name:(Naming.deleted_cell nm) ~line false;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = M.make ~line next;
          version = M.make ~line 0;
          deleted = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail
          {
            value = M.make ~name:(Naming.value_cell Naming.tail) ~line:tl max_int;
            deleted = M.make ~name:(Naming.deleted_cell Naming.tail) ~line:tl false;
            lock = M.make_lock ~name:(Naming.lock_cell Naming.tail) ~line:tl ();
          }
      else
        Tail
          {
            value = M.make ~line:tl max_int;
            deleted = M.make ~line:tl false;
            lock = M.make_lock ~line:tl ();
          }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value = M.make ~name:(Naming.value_cell Naming.head) ~line:hl min_int;
            next = M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail;
            version = M.make ~name:"h.ver" ~line:hl 0;
            deleted = M.make ~name:(Naming.deleted_cell Naming.head) ~line:hl false;
            lock = M.make_lock ~name:(Naming.lock_cell Naming.head) ~line:hl ();
          }
      else
        Node
          {
            value = M.make ~line:hl min_int;
            next = M.make ~line:hl tail;
            version = M.make ~line:hl 0;
            deleted = M.make ~line:hl false;
            lock = M.make_lock ~line:hl ();
          }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* Traversal additionally snapshots the version of [prev] at the moment
     it reads [prev.next] — the witness the try-lock revalidates. *)
  let waitfree_traversal t v prev =
    let prev = if node_deleted prev then t.head else prev in
    let rec loop prev pver curr =
      if node_value curr < v then begin
        let cver = version_exn curr in
        loop curr cver (M.get (next_cell_exn curr))
      end
      else (prev, pver, curr)
    in
    let pver = version_exn prev in
    loop prev pver (M.get (next_cell_exn prev))

  (* Version-based try-lock: lock, then require the node live and its
     version unchanged since the traversal's snapshot.  [@acquires]: on
     success the lock is handed to the caller (lint L3 exemption). *)
  let[@acquires] lock_at_version node ver =
    M.lock (node_lock node);
    if (not (node_deleted node)) && version_exn node = ver then true
    else begin
      M.unlock (node_lock node);
      false
    end

  let insert t v =
    check_key v;
    let rec attempt prev =
      let prev, pver, curr = waitfree_traversal t v prev in
      if node_value curr = v then false
      else begin
        let x = make_node v curr in
        if lock_at_version prev pver then begin
          set_next prev x;
          M.unlock (node_lock prev);
          true
        end
        else attempt prev
      end
    in
    attempt t.head

  let remove t v =
    check_key v;
    let rec attempt prev =
      let prev, pver, curr = waitfree_traversal t v prev in
      if node_value curr <> v then false
      else begin
        let cver = version_exn curr in
        if not (lock_at_version prev pver) then attempt prev
        else if not (lock_at_version curr cver) then begin
          M.unlock (node_lock prev);
          attempt prev
        end
        else begin
          (match curr with
          | Node n -> M.set n.deleted true
          | Tail _ -> assert false);
          set_next prev (M.get (next_cell_exn curr));
          M.unlock (node_lock curr);
          M.unlock (node_lock prev);
          true
        end
      end
    in
    attempt t.head

  let contains t v =
    check_key v;
    let rec loop curr =
      if node_value curr < v then loop (M.get (next_cell_exn curr)) else node_value curr = v
    in
    loop t.head

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && not (M.get n.deleted) in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value <> max_int then Error "tail sentinel does not store max_int"
            else if M.get n.deleted then Error "tail sentinel is marked deleted"
            else Ok ()
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else if steps > 0 && M.get n.deleted then
              Error (Printf.sprintf "deleted node %d still reachable" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
