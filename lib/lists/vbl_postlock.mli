(** Ablation: VBL with the lazy list's post-locking validation — updates
    acquire the predecessor lock before knowing whether the value is even
    present.  Benchmarked against {!Vbl_list} to isolate §3.1. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
