(** The list-based set interface shared by every algorithm in this library.

    All implementations store integers strictly between [min_int] and
    [max_int]; the two extremes are reserved for the head and tail sentinels
    (the paper's -inf / +inf).  Operations follow the sequential
    specification of the paper's §2.1:

    - [insert t v] returns [true] iff [v] was absent, and makes it present;
    - [remove t v] returns [true] iff [v] was present, and makes it absent;
    - [contains t v] returns [true] iff [v] is present.

    [to_list], [size] and [check_invariants] are test/diagnostic helpers and
    are only meaningful at quiescence (no concurrent operations). *)

module type S = sig
  type t

  val name : string
  (** Short identifier used by the CLI, the registry and benchmark output,
      e.g. ["vbl"], ["lazy"], ["harris-michael"]. *)

  val create : unit -> t
  (** A fresh empty set: head and tail sentinels only. *)

  val insert : t -> int -> bool

  val remove : t -> int -> bool

  val contains : t -> int -> bool

  val to_list : t -> int list
  (** Present values in ascending order.  Quiescent use only: the traversal
      takes no locks and applies the algorithm's own notion of presence
      (e.g. it skips logically deleted nodes). *)

  val size : t -> int
  (** [List.length (to_list t)], computed without building the list. *)

  val check_invariants : t -> (unit, string) result
  (** Structural sanity at quiescence: sentinel values intact, strictly
      sorted reachable values, termination at the tail sentinel, and
      algorithm-specific conditions (e.g. VBL: no reachable node is marked
      deleted; lazy/Harris lists tolerate reachable marked nodes only where
      their semantics allow it).  [Error msg] pinpoints the violation. *)
end

(** All algorithms are functors over the memory backend, so the same source
    runs under benchmarks ({!Real_mem}) and under deterministic schedule
    control ({!Instr_mem}). *)
module type MAKER = functor (M : Vbl_memops.Mem_intf.S) -> S
