(** The list-based set interface shared by every algorithm in this library.

    All implementations store integers strictly between [min_int] and
    [max_int]; the two extremes are reserved for the head and tail sentinels
    (the paper's -inf / +inf).  Operations follow the sequential
    specification of the paper's §2.1:

    - [insert t v] returns [true] iff [v] was absent, and makes it present;
    - [remove t v] returns [true] iff [v] was present, and makes it absent;
    - [contains t v] returns [true] iff [v] is present.

    [to_list], [size] and [check_invariants] are test/diagnostic helpers and
    are only meaningful at quiescence (no concurrent operations). *)

module type S = sig
  type t

  val name : string
  (** Short identifier used by the CLI, the registry and benchmark output,
      e.g. ["vbl"], ["lazy"], ["harris-michael"]. *)

  val create : unit -> t
  (** A fresh empty set: head and tail sentinels only. *)

  val insert : t -> int -> bool

  val remove : t -> int -> bool

  val contains : t -> int -> bool

  val to_list : t -> int list
  (** Present values in ascending order.  Quiescent use only: the traversal
      takes no locks and applies the algorithm's own notion of presence
      (e.g. it skips logically deleted nodes). *)

  val size : t -> int
  (** [List.length (to_list t)], computed without building the list. *)

  val check_invariants : t -> (unit, string) result
  (** Structural sanity at quiescence: sentinel values intact, strictly
      sorted reachable values, termination at the tail sentinel, and
      algorithm-specific conditions (e.g. VBL: no reachable node is marked
      deleted; lazy/Harris lists tolerate reachable marked nodes only where
      their semantics allow it).  [Error msg] pinpoints the violation. *)

  val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
  (** In-order fold over the present values, ascending.  Concurrent-safe
      in the same best-effort sense as a single collecting traversal: the
      walk takes no locks and applies the algorithm's own notion of
      presence, so under concurrent updates it sees some interleaving of
      them (each visited value was present at the moment its node was
      read).  At quiescence it is exact. *)

  val iter : (int -> unit) -> t -> unit
  (** [fold]-derived ordered iteration over the present values. *)

  val range_query : t -> int -> int -> int list
  (** [range_query t lo hi] returns the present values in the inclusive
      window [lo, hi], ascending.  [lo > hi] yields [[]].  Atomicity is
      per-implementation: genuinely linearizable only where the
      collection runs in mutual exclusion (the coarse wrappers collect
      under their global lock).  Everywhere else the operation derives
      from {!Derive} and is best-effort: the traversal repeats until two
      successive collections agree (bounded retries), which filters most
      torn windows but certifies nothing — a key removed and re-inserted
      between the two collections (ABA) restores agreement, so the
      result can be a window that no single instant ever contained, and
      an agreeing result is indistinguishable from one returned because
      the retry budget ran out.  Each implementation documents which
      contract it provides. *)

  val approx_size : t -> int
  (** A cheap, possibly stale cardinality estimate.  Exact at
      quiescence.  Structures with auxiliary counters (e.g. the sharded
      frontend's striped counters) answer in O(1); plain structures fall
      back to a counting traversal. *)
end

(** All algorithms are functors over the memory backend, so the same source
    runs under benchmarks ({!Real_mem}) and under deterministic schedule
    control ({!Instr_mem}). *)
module type MAKER = functor (M : Vbl_memops.Mem_intf.S) -> S

(** Derives the range operations from a presence-aware ascending [fold].

    [range_query] uses the double-collect discipline: collect the window,
    collect it again, retry until two successive collections agree.
    This is a stabilisation heuristic, {e not} a snapshot certificate.
    Agreement does not imply the window was stable: with initial [{1}],
    a single updater running
    [remove 1; insert 2; remove 2; insert 1; remove 1; insert 2]
    concurrently with [range_query 1 2] can let both collections observe
    [[1; 2]] even though [{1, 2}] never exists at any instant — the
    removal and re-insertion between the two collections (ABA) restores
    agreement.  Certifying stability would need per-node modification
    stamps in the collected view (plus boundary-predecessor stamps for
    the lists and routing-node stamps for the trees); no family carries
    them, so {e every} structure deriving its range ops from this
    functor — locked, versioned and lock-free alike — provides the
    best-effort contract only.  The retry budget bounds the cost under
    adversarial churn; when it runs out the latest collection is
    returned as-is.  That surrender is deliberately not surfaced to the
    caller: since agreement certifies nothing either, a flag separating
    the two outcomes would carry no semantic weight.  Truly linearizable
    range queries live where a single collection runs in mutual
    exclusion — the coarse wrappers, which collect under their global
    lock. *)
module Derive (Base : sig
  type t

  val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
end) =
struct
  let iter f t = Base.fold (fun () v -> f v) () t
  let approx_size t = Base.fold (fun n _ -> n + 1) 0 t

  (* Descending collection (no final reverse) — cheaper to compare across
     retries; reversed once on acceptance. *)
  let collect t lo hi =
    Base.fold (fun acc v -> if lo <= v && v <= hi then v :: acc else acc) [] t

  let stabilize_budget = 64

  let range_query t lo hi =
    if lo > hi then []
    else
      let rec stabilize prev budget =
        let cur = collect t lo hi in
        if cur = prev || budget <= 0 then List.rev cur
        else stabilize cur (budget - 1)
      in
      stabilize (collect t lo hi) stabilize_budget
end
