(** The list-based set interface shared by every algorithm in this library.

    All implementations store integers strictly between [min_int] and
    [max_int]; the two extremes are reserved for the head and tail sentinels
    (the paper's -inf / +inf).  Operations follow the sequential
    specification of the paper's §2.1:

    - [insert t v] returns [true] iff [v] was absent, and makes it present;
    - [remove t v] returns [true] iff [v] was present, and makes it absent;
    - [contains t v] returns [true] iff [v] is present.

    [to_list], [size] and [check_invariants] are test/diagnostic helpers and
    are only meaningful at quiescence (no concurrent operations). *)

module type S = sig
  type t

  val name : string
  (** Short identifier used by the CLI, the registry and benchmark output,
      e.g. ["vbl"], ["lazy"], ["harris-michael"]. *)

  val create : unit -> t
  (** A fresh empty set: head and tail sentinels only. *)

  val insert : t -> int -> bool

  val remove : t -> int -> bool

  val contains : t -> int -> bool

  val to_list : t -> int list
  (** Present values in ascending order.  Quiescent use only: the traversal
      takes no locks and applies the algorithm's own notion of presence
      (e.g. it skips logically deleted nodes). *)

  val size : t -> int
  (** [List.length (to_list t)], computed without building the list. *)

  val check_invariants : t -> (unit, string) result
  (** Structural sanity at quiescence: sentinel values intact, strictly
      sorted reachable values, termination at the tail sentinel, and
      algorithm-specific conditions (e.g. VBL: no reachable node is marked
      deleted; lazy/Harris lists tolerate reachable marked nodes only where
      their semantics allow it).  [Error msg] pinpoints the violation. *)

  val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
  (** In-order fold over the present values, ascending.  Concurrent-safe
      in the same best-effort sense as a single collecting traversal: the
      walk takes no locks and applies the algorithm's own notion of
      presence, so under concurrent updates it sees some interleaving of
      them (each visited value was present at the moment its node was
      read).  At quiescence it is exact. *)

  val iter : (int -> unit) -> t -> unit
  (** [fold]-derived ordered iteration over the present values. *)

  val range_query : t -> int -> int -> int list
  (** [range_query t lo hi] returns the present values in the inclusive
      window [lo, hi], ascending.  [lo > hi] yields [[]].  Linearizable
      in the versioned/locked families via double-collect snapshots (the
      traversal is repeated until two successive collections agree, so
      the result is the window contents at a single point between the
      two agreeing collections); best-effort atomic in the lock-free
      family, where a bounded number of stabilisation retries may still
      surrender to heavy churn and return the last collection.  Each
      implementation documents which contract it provides. *)

  val approx_size : t -> int
  (** A cheap, possibly stale cardinality estimate.  Exact at
      quiescence.  Structures with auxiliary counters (e.g. the sharded
      frontend's striped counters) answer in O(1); plain structures fall
      back to a counting traversal. *)
end

(** All algorithms are functors over the memory backend, so the same source
    runs under benchmarks ({!Real_mem}) and under deterministic schedule
    control ({!Instr_mem}). *)
module type MAKER = functor (M : Vbl_memops.Mem_intf.S) -> S

(** Derives the range operations from a presence-aware ascending [fold].

    [range_query] uses the double-collect discipline: collect the window,
    collect it again, and accept only when two successive collections
    agree — the agreeing result is then the window contents at every
    point between the two traversals, which makes the whole query
    linearizable whenever the underlying fold only ever observes values
    that were simultaneously present (true of the locked and versioned
    families, where presence flips atomically under a lock or a single
    write).  The retry budget bounds the cost under adversarial churn;
    when it runs out we return the latest collection, which is the
    documented best-effort contract of the lock-free variants. *)
module Derive (Base : sig
  type t

  val fold : ('a -> int -> 'a) -> 'a -> t -> 'a
end) =
struct
  let iter f t = Base.fold (fun () v -> f v) () t
  let approx_size t = Base.fold (fun n _ -> n + 1) 0 t

  (* Descending collection (no final reverse) — cheaper to compare across
     retries; reversed once on acceptance. *)
  let collect t lo hi =
    Base.fold (fun acc v -> if lo <= v && v <= hi then v :: acc else acc) [] t

  let stabilize_budget = 64

  let range_query t lo hi =
    if lo > hi then []
    else
      let rec stabilize prev budget =
        let cur = collect t lo hi in
        if cur = prev || budget <= 0 then List.rev cur
        else stabilize cur (budget - 1)
      in
      stabilize (collect t lo hi) stabilize_budget
end
