(** Optimistic locking list (Herlihy & Shavit ch. 9.6): lock-free
    traversal, lock the candidate pair, validate by re-traversal from the
    head. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
