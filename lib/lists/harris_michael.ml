(** Harris-Michael lock-free list, AtomicMarkableReference variant.

    This mirrors the Java implementation from Herlihy & Shavit ch. 9 that
    the paper measures: each node's successor pointer and its logical
    deletion mark live together in a separate immutable pair object (Java's
    [AtomicMarkableReference]), swapped wholesale by CAS.  Reading the
    successor therefore costs {e two} dependent loads — the cell, then the
    pair — which is exactly the traversal overhead the paper blames for
    Harris-Michael losing read-only workloads by up to 1.6x (§4,
    "Comparison against Harris-Michael").  The instrumented backend charges
    the second load via [M.touch] on the pair's own line.

    Progress: lock-free updates, wait-free [contains].  A failed physical
    unlink during [remove] is abandoned (the node stays logically deleted
    and is reclaimed by a later traversal's helping), which is the behaviour
    the paper's Figure 3 schedule exposes as concurrency-suboptimal. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "harris-michael"

  module Probe = Vbl_obs.Probe
  module C = Vbl_obs.Metrics

  type node =
    | Node of { value : int M.cell; amr : pair M.cell }
    | Tail of { value : int M.cell }

  (* The AtomicMarkableReference payload: immutable, one allocation per
     link-state change, on its own coherence line.  On the real backend
     [M.cas] compiles down to [Atomic.compare_and_set] on the cell — the
     algorithm itself never touches [Atomic.] or [Mutex.] directly, and
     the AST lint (unlike its grep predecessor) knows this comment is not
     code. *)
  and pair = { p_next : node; p_marked : bool; p_line : int }

  type t = { head : node; pool : node M.pool }

  let amr_cell_exn = function Node n -> n.amr | Tail _ -> assert false

  let make_pair next marked = { p_next = next; p_marked = marked; p_line = M.fresh_line () }

  (* Names are only built for instrumented backends ([M.named]); on the
     real backend an insert allocates exactly the node, its cells and the
     AMR pair the variant is defined by. *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          amr = M.make ~name:(Naming.amr_cell nm) ~line (make_pair next false);
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          amr = M.make ~line (make_pair next false);
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail { value = M.make ~name:(Naming.value_cell Naming.tail) ~line:tl max_int }
      else Tail { value = M.make ~line:tl max_int }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value = M.make ~name:(Naming.value_cell Naming.head) ~line:hl min_int;
            amr =
              M.make ~name:(Naming.amr_cell Naming.head) ~line:hl
                (make_pair tail false);
          }
      else
        Node
          {
            value = M.make ~line:hl min_int;
            amr = M.make ~line:hl (make_pair tail false);
          }
    in
    (* The head sentinel doubles as the pool's miss sentinel: it can never
       be retired. *)
    { head; pool = M.make_pool ~dummy:head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* Reclaiming insert path: reuse an aged-out node's record and cells; a
     recycled insert still allocates its AMR pair (the pair is immutable
     by design — it is what the CAS swaps), so recycling saves the node
     record and both cells but not the pair.  Miss check is one physical
     comparison against the head sentinel. *)
  let recycle_node t v next =
    let x = M.recycle t.pool in
    if x == t.head then make_node v next
    else begin
      (match x with
      | Node n ->
          M.set n.value v;
          M.set n.amr (make_pair next false)
      | Tail _ -> assert false);
      x
    end

  (* Michael's find: locate the first unmarked node with value >= v,
     physically unlinking every marked node encountered on the way; a failed
     helping CAS restarts from the head.  Returns
     (prev, prev_pair-as-read, curr, curr value).  [advance] is a closed
     top-level loop (not a closure over [t]/[v]) so the traversal itself
     allocates nothing; the result tuple is one small allocation per
     update, inherent to returning four values.  The [touch] charging the
     pair's dependent load only concerns instrumented backends, so the real
     engine skips the indirect no-op call ([M.named]).  Hops flush in one
     probe call per traversal (see vbl_list). *)
  let rec find t v =
    let head_pair = M.get (amr_cell_exn t.head) in
    if M.named then M.touch ~line:head_pair.p_line ~name:"pair";
    advance t v t.head head_pair head_pair.p_next 0

  and advance t v prev prev_pair curr hops =
    match curr with
    | Tail _ ->
        if !Probe.enabled then Probe.add C.Traversal_steps hops;
        (prev, prev_pair, curr, max_int)
    | Node n ->
        let curr_pair = M.get n.amr in
        if M.named then M.touch ~line:curr_pair.p_line ~name:"pair";
        if curr_pair.p_marked then begin
          (* Help unlink the logically deleted [curr]. *)
          let replacement = make_pair curr_pair.p_next false in
          Probe.count C.Cas_attempts;
          if M.cas (amr_cell_exn prev) prev_pair replacement then begin
            Probe.count C.Physical_unlinks;
            (* Exactly one unlinking CAS can succeed for [curr] (pairs are
               compared by identity and never reused), so this is the
               single retire point for a helped node. *)
            if M.reclaiming then M.retire t.pool curr;
            advance t v prev replacement curr_pair.p_next (hops + 1)
          end
          else begin
            if !Probe.enabled then Probe.add C.Traversal_steps (hops + 1);
            Probe.count C.Cas_failures;
            Probe.count C.Restarts;
            find t v
          end
        end
        else begin
          let cv = M.get n.value in
          if cv >= v then begin
            if !Probe.enabled then Probe.add C.Traversal_steps (hops + 1);
            (prev, prev_pair, curr, cv)
          end
          else advance t v curr curr_pair curr_pair.p_next (hops + 1)
        end

  let rec insert_loop t v =
    let prev, prev_pair, curr, cv = find t v in
    if cv = v then false
    else begin
      let x = if M.reclaiming then recycle_node t v curr else make_node v curr in
      let linked = make_pair x false in
      Probe.count C.Cas_attempts;
      if M.cas (amr_cell_exn prev) prev_pair linked then true
      else begin
        Probe.count C.Cas_failures;
        Probe.count C.Restarts;
        (* [x] was never published; route it back through the pool. *)
        if M.reclaiming then M.retire t.pool x;
        insert_loop t v
      end
    end

  let insert t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = insert_loop t v in
      M.op_exit t.pool h;
      r
    end
    else insert_loop t v

  let rec remove_loop t v =
    let prev, prev_pair, curr, cv = find t v in
    if cv <> v then false
    else begin
      let curr_pair = M.get (amr_cell_exn curr) in
      if M.named then M.touch ~line:curr_pair.p_line ~name:"pair";
      if curr_pair.p_marked then begin
        Probe.count C.Restarts;
        remove_loop t v
      end
      else begin
        let marked = make_pair curr_pair.p_next true in
        Probe.count C.Cas_attempts;
        if not (M.cas (amr_cell_exn curr) curr_pair marked) then begin
          (* Logical deletion failed (concurrent insert after curr or a
             concurrent remove of curr): restart the operation. *)
          Probe.count C.Cas_failures;
          Probe.count C.Restarts;
          remove_loop t v
        end
        else begin
          Probe.count C.Logical_deletes;
          (* Physical unlink is best-effort; on failure the node is left for
             a future traversal's helping step (which then retires it). *)
          let unlinked = make_pair curr_pair.p_next false in
          Probe.count C.Cas_attempts;
          if M.cas (amr_cell_exn prev) prev_pair unlinked then begin
            Probe.count C.Physical_unlinks;
            if M.reclaiming then M.retire t.pool curr
          end
          else Probe.count C.Cas_failures;
          true
        end
      end
    end

  let remove t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = remove_loop t v in
      M.op_exit t.pool h;
      r
    end
    else remove_loop t v

  (* Wait-free contains: traverse without helping, check the final mark.
     Closed top-level walk: zero allocation per call on the real backend. *)
  let[@hot] rec contains_walk v curr hops =
    match curr with
    | Tail _ ->
        if !Probe.enabled then Probe.add C.Traversal_steps hops;
        false
    | Node n ->
        let pair = M.get n.amr in
        if M.named then M.touch ~line:pair.p_line ~name:"pair";
        let cv = M.get n.value in
        if cv < v then contains_walk v pair.p_next (hops + 1)
        else begin
          if !Probe.enabled then Probe.add C.Traversal_steps (hops + 1);
          cv = v && not pair.p_marked
        end

  let contains_start t v =
    match t.head with
    | Node n ->
        let head_pair = M.get n.amr in
        if M.named then M.touch ~line:head_pair.p_line ~name:"pair";
        contains_walk v head_pair.p_next 0
    | Tail _ -> assert false

  let contains t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = contains_start t v in
      M.op_exit t.pool h;
      r
    end
    else contains_start t v

  (* Quiescent observers: callers guarantee no concurrent mutators, so
     these read outside any epoch bracket — [@quiescent] records that
     for L5. *)
  let[@quiescent] fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let pair = M.get n.amr in
          let v = M.get n.value in
          let keep = v <> min_int && not pair.p_marked in
          let acc = if keep then f acc v else acc in
          loop acc pair.p_next
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let[@quiescent] check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value = max_int then Ok ()
            else Error "tail sentinel does not store max_int"
        | Node n ->
            let v = M.get n.value in
            let pair = M.get n.amr in
            (* Marked nodes may legitimately remain linked (deferred
               unlinking), but sortedness must hold across them. *)
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else loop v pair.p_next (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
