(** Ablation: VBL with the lazy list's {e post-locking} validation.

    Identical to {!Vbl_list} — same node layout, same wait-free traversal
    restarting from [prev], same logical-delete-then-unlink removal — except
    that updates acquire the predecessor's lock {e before} checking whether
    the value is present, exactly like the lazy list's updates.  A failed
    insert (value already there) or failed remove (value absent) therefore
    contends on the lock it will never use.

    Benchmarked against {!Vbl_list} this isolates the contribution of §3.1
    ("validate before locking") from everything else the two algorithms
    share; the paper attributes the Figure 1 gap to precisely this. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "vbl-postlock"

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell;
        deleted : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell; deleted : bool M.cell; lock : M.lock }

  type t = { head : node }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_deleted = function Node n -> M.get n.deleted | Tail n -> M.get n.deleted
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          deleted = M.make ~name:(Naming.deleted_cell nm) ~line false;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = M.make ~line next;
          deleted = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let make_sentinel value =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      ( line,
        M.make ~name:(Naming.value_cell nm) ~line value,
        M.make ~name:(Naming.deleted_cell nm) ~line false,
        M.make_lock ~name:(Naming.lock_cell nm) ~line () )
    end
    else (line, M.make ~line value, M.make ~line false, M.make_lock ~line ())

  let create () =
    let _, tv, td, tlk = make_sentinel max_int in
    let tail = Tail { value = tv; deleted = td; lock = tlk } in
    let hl, hv, hd, hlk = make_sentinel min_int in
    let next =
      if M.named then M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail
      else M.make ~line:hl tail
    in
    let head = Node { value = hv; next; deleted = hd; lock = hlk } in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  let waitfree_traversal t v prev =
    let prev = if node_deleted prev then t.head else prev in
    let rec loop prev curr =
      if node_value curr < v then loop curr (M.get (next_cell_exn curr)) else (prev, curr)
    in
    loop prev (M.get (next_cell_exn prev))

  (* The ablated discipline: take the lock first, then find out whether the
     operation was even needed. *)
  let insert t v =
    check_key v;
    let rec attempt prev =
      let prev, curr = waitfree_traversal t v prev in
      M.lock (node_lock prev);
      if node_deleted prev || not (M.get (next_cell_exn prev) == curr) then begin
        M.unlock (node_lock prev);
        attempt prev
      end
      else if node_value curr = v then begin
        M.unlock (node_lock prev);
        false
      end
      else begin
        let x = make_node v curr in
        M.set (next_cell_exn prev) x;
        M.unlock (node_lock prev);
        true
      end
    in
    attempt t.head

  let remove t v =
    check_key v;
    let rec attempt prev =
      let prev, curr = waitfree_traversal t v prev in
      M.lock (node_lock prev);
      if node_deleted prev || not (M.get (next_cell_exn prev) == curr) then begin
        M.unlock (node_lock prev);
        attempt prev
      end
      else if node_value curr <> v then begin
        M.unlock (node_lock prev);
        false
      end
      else begin
        M.lock (node_lock curr);
        (* curr is lock-protected and prev.next == curr, so curr is not
           deleted; its successor is stable under its lock. *)
        (match curr with
        | Node n -> M.set n.deleted true
        | Tail _ -> assert false);
        M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        true
      end
    in
    attempt t.head

  let contains t v =
    check_key v;
    let rec loop curr =
      if node_value curr < v then loop (M.get (next_cell_exn curr)) else node_value curr = v
    in
    loop t.head

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && not (M.get n.deleted) in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value <> max_int then Error "tail sentinel does not store max_int"
            else if M.get n.deleted then Error "tail sentinel is marked deleted"
            else Ok ()
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else if steps > 0 && M.get n.deleted then
              Error (Printf.sprintf "deleted node %d still reachable" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
