(** Step-name conventions shared by all instrumented list algorithms.

    The paper's schedule figures write [h] for the head sentinel, [X_i] for
    the node storing value [i], and [new(X_i)] for node creation.  Every
    algorithm names its cells with these helpers so schedule scripts
    (lib/sched) can refer to implementation steps in the paper's own
    vocabulary. *)

let head = "h"
let tail = "t"

let node value =
  if value = min_int then head
  else if value = max_int then tail
  else "X" ^ string_of_int value

let value_cell n = n ^ ".val"
let next_cell n = n ^ ".next"
let deleted_cell n = n ^ ".del"
let lock_cell n = n ^ ".lock"
let amr_cell n = n ^ ".amr"
let amr_pair n = n ^ ".pair"
