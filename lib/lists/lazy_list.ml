(** The Lazy Linked List of Heller et al. (OPODIS 2006) — the paper's main
    lock-based baseline.

    Removal is split into a logical step (setting the node's [marked] flag)
    and a physical unlink, which buys an O(1) validation — [prev] and
    [curr] unmarked and still adjacent — instead of the optimistic list's
    re-traversal, and a wait-free [contains].

    The concurrency-suboptimality the paper exploits (its Figure 2) is kept
    faithfully: {e both} update operations lock [prev] and [curr] {e before}
    checking whether the value is even present, so an [insert] of an
    already-present value and a [remove] of an absent value still contend on
    the locks.  The traversal restarts from the head on every validation
    failure, also as in the original algorithm. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "lazy"

  module Probe = Vbl_obs.Probe
  module C = Vbl_obs.Metrics

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell;
        marked : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell; marked : bool M.cell; lock : M.lock }

  type t = { head : node }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_marked = function Node n -> M.get n.marked | Tail n -> M.get n.marked
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false

  let make_node value next =
    let nm = Naming.node value in
    let line = M.fresh_line () in
    M.new_node ~name:nm ~line;
    Node
      {
        value = M.make ~name:(Naming.value_cell nm) ~line value;
        next = M.make ~name:(Naming.next_cell nm) ~line next;
        marked = M.make ~name:(Naming.deleted_cell nm) ~line false;
        lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
      }

  let make_sentinel value =
    let nm = Naming.node value in
    let line = M.fresh_line () in
    ( line,
      M.make ~name:(Naming.value_cell nm) ~line value,
      M.make ~name:(Naming.deleted_cell nm) ~line false,
      M.make_lock ~name:(Naming.lock_cell nm) ~line () )

  let create () =
    let _, tv, tm, tlk = make_sentinel max_int in
    let tail = Tail { value = tv; marked = tm; lock = tlk } in
    let hl, hv, hm, hlk = make_sentinel min_int in
    let head =
      Node
        {
          value = hv;
          next = M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail;
          marked = hm;
          lock = hlk;
        }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* Wait-free traversal: ignores locks and marks entirely. *)
  let locate t v =
    (* Hops flush in one probe call per traversal (see vbl_list). *)
    let rec loop prev curr hops =
      if node_value curr < v then loop curr (M.get (next_cell_exn curr)) (hops + 1)
      else begin
        if !Probe.enabled then Probe.add C.Traversal_steps hops;
        (prev, curr)
      end
    in
    loop t.head (M.get (next_cell_exn t.head)) 1

  (* O(1) validation under both locks (Heller et al. fig. 4). *)
  let validate prev curr =
    (not (node_marked prev)) && (not (node_marked curr)) && M.get (next_cell_exn prev) == curr

  (* Post-locking discipline, kept faithful: locks are taken before the
     operation knows whether it will modify the list. *)
  let rec with_locked_pair t v (k : node -> node -> int -> bool) =
    let prev, curr = locate t v in
    M.lock (node_lock prev);
    M.lock (node_lock curr);
    if validate prev curr then begin
      Probe.count C.Lock_acquisitions;
      Probe.count C.Lock_acquisitions;
      let result = k prev curr (node_value curr) in
      M.unlock (node_lock curr);
      M.unlock (node_lock prev);
      result
    end
    else begin
      Probe.count C.Validation_failures;
      Probe.count C.Restarts;
      M.unlock (node_lock curr);
      M.unlock (node_lock prev);
      with_locked_pair t v k
    end

  let insert t v =
    check_key v;
    with_locked_pair t v (fun prev curr tval ->
        if tval = v then false
        else begin
          M.set (next_cell_exn prev) (make_node v curr);
          true
        end)

  let remove t v =
    check_key v;
    with_locked_pair t v (fun prev curr tval ->
        if tval <> v then false
        else begin
          (match curr with Node n -> M.set n.marked true | Tail _ -> assert false);
          Probe.count C.Logical_deletes;
          M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
          Probe.count C.Physical_unlinks;
          true
        end)

  let contains t v =
    check_key v;
    let _, curr = locate t v in
    node_value curr = v && not (node_marked curr)

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && not (M.get n.marked) in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value <> max_int then Error "tail sentinel does not store max_int"
            else if M.get n.marked then Error "tail sentinel is marked"
            else Ok ()
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else if steps > 0 && M.get n.marked then
              (* At quiescence every marked node has also been unlinked. *)
              Error (Printf.sprintf "marked node %d still reachable" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
