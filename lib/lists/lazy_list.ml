(** The Lazy Linked List of Heller et al. (OPODIS 2006) — the paper's main
    lock-based baseline.

    Removal is split into a logical step (setting the node's [marked] flag)
    and a physical unlink, which buys an O(1) validation — [prev] and
    [curr] unmarked and still adjacent — instead of the optimistic list's
    re-traversal, and a wait-free [contains].

    The concurrency-suboptimality the paper exploits (its Figure 2) is kept
    faithfully: {e both} update operations lock [prev] and [curr] {e before}
    checking whether the value is even present, so an [insert] of an
    already-present value and a [remove] of an absent value still contend on
    the locks.  The traversal restarts from the head on every validation
    failure, also as in the original algorithm. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S = struct
  let name = "lazy"

  module Probe = Vbl_obs.Probe
  module C = Vbl_obs.Metrics

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell;
        marked : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell; marked : bool M.cell; lock : M.lock }

  type t = { head : node; pool : node M.pool }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_marked = function Node n -> M.get n.marked | Tail n -> M.get n.marked
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]); on the
     real backend an insert allocates exactly the node and its cells. *)
  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          marked = M.make ~name:(Naming.deleted_cell nm) ~line false;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = M.make ~line next;
          marked = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let make_sentinel value =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      ( line,
        M.make ~name:(Naming.value_cell nm) ~line value,
        M.make ~name:(Naming.deleted_cell nm) ~line false,
        M.make_lock ~name:(Naming.lock_cell nm) ~line () )
    end
    else (line, M.make ~line value, M.make ~line false, M.make_lock ~line ())

  let create () =
    let _, tv, tm, tlk = make_sentinel max_int in
    let tail = Tail { value = tv; marked = tm; lock = tlk } in
    let hl, hv, hm, hlk = make_sentinel min_int in
    let next =
      if M.named then M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail
      else M.make ~line:hl tail
    in
    let head = Node { value = hv; next; marked = hm; lock = hlk } in
    (* The head sentinel doubles as the pool's miss sentinel: it can never
       be retired. *)
    { head; pool = M.make_pool ~dummy:head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  (* The wait-free traversal (ignores locks and marks) is inlined into
     each operation below as a closed tail-recursive walk with explicit
     parameters: without flambda, a (prev, curr)-returning locate — or the
     former continuation passed to with_locked_pair — allocates on every
     operation, whereas the walks keep everything in registers.  Hops
     flush in one probe call per traversal; the shared-memory access
     sequence is exactly that of the former locate/with_locked_pair pair,
     so instrumented schedules are unchanged. *)

  (* Reclaiming insert path: reinitialize an aged-out retired node in
     place (it is unreachable and its lock long released) instead of
     allocating; one physical miss-check against the head sentinel, no
     option under [@hot]. *)
  let[@hot] recycle_node t v next =
    let x = M.recycle t.pool in
    if x == t.head then make_node v next
    else begin
      (match x with
      | Node n ->
          M.set n.value v;
          M.set n.next next;
          M.set n.marked false
      | Tail _ -> assert false);
      x
    end

  (* O(1) validation under both locks (Heller et al. fig. 4). *)
  let[@hot] validate prev curr =
    (not (node_marked prev)) && (not (node_marked curr)) && M.get (next_cell_exn prev) == curr

  (* Post-locking discipline, kept faithful: locks are taken before the
     operation knows whether it will modify the list, and every validation
     failure restarts from the head. *)
  let[@hot] rec insert_walk t v prev curr hops =
    if node_value curr < v then insert_walk t v curr (M.get (next_cell_exn curr)) (hops + 1)
    else begin
      if !Probe.enabled then Probe.add C.Traversal_steps hops;
      M.lock (node_lock prev);
      M.lock (node_lock curr);
      if validate prev curr then begin
        Probe.count C.Lock_acquisitions;
        Probe.count C.Lock_acquisitions;
        let tval = node_value curr in
        let result =
          if tval = v then false
          else begin
            M.set (next_cell_exn prev)
              (if M.reclaiming then recycle_node t v curr else make_node v curr);
            true
          end
        in
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        result
      end
      else begin
        Probe.count C.Validation_failures;
        Probe.count C.Restarts;
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        insert_walk t v t.head (M.get (next_cell_exn t.head)) 1
      end
    end

  (* Epoch brackets on reclaiming backends; plain backends take the
     unchanged direct path (one immutable-flag branch, like [M.named]). *)
  let insert t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = insert_walk t v t.head (M.get (next_cell_exn t.head)) 1 in
      M.op_exit t.pool h;
      r
    end
    else insert_walk t v t.head (M.get (next_cell_exn t.head)) 1

  let[@hot] rec remove_walk t v prev curr hops =
    if node_value curr < v then remove_walk t v curr (M.get (next_cell_exn curr)) (hops + 1)
    else begin
      if !Probe.enabled then Probe.add C.Traversal_steps hops;
      M.lock (node_lock prev);
      M.lock (node_lock curr);
      if validate prev curr then begin
        Probe.count C.Lock_acquisitions;
        Probe.count C.Lock_acquisitions;
        let tval = node_value curr in
        let result =
          if tval <> v then false
          else begin
            (match curr with Node n -> M.set n.marked true | Tail _ -> assert false);
            Probe.count C.Logical_deletes;
            M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
            Probe.count C.Physical_unlinks;
            true
          end
        in
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        (* Unlinked exactly once (validated, under both locks), and
           retired only after its lock is handed back — L6 forbids
           touching [curr] past the retire.  Still inside the operation's
           bracket, so the grace period cannot pass before we return. *)
        if M.reclaiming && result then M.retire t.pool curr;
        result
      end
      else begin
        Probe.count C.Validation_failures;
        Probe.count C.Restarts;
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        remove_walk t v t.head (M.get (next_cell_exn t.head)) 1
      end
    end

  let remove t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = remove_walk t v t.head (M.get (next_cell_exn t.head)) 1 in
      M.op_exit t.pool h;
      r
    end
    else remove_walk t v t.head (M.get (next_cell_exn t.head)) 1

  let[@hot] rec contains_walk v curr hops =
    if node_value curr < v then contains_walk v (M.get (next_cell_exn curr)) (hops + 1)
    else begin
      if !Probe.enabled then Probe.add C.Traversal_steps hops;
      node_value curr = v && not (node_marked curr)
    end

  let contains t v =
    check_key v;
    if M.reclaiming then begin
      let h = M.op_enter t.pool in
      let r = contains_walk v (M.get (next_cell_exn t.head)) 1 in
      M.op_exit t.pool h;
      r
    end
    else contains_walk v (M.get (next_cell_exn t.head)) 1

  (* Quiescent observers: callers guarantee no concurrent mutators, so
     these read outside any epoch bracket — [@quiescent] records that
     for L5. *)
  let[@quiescent] fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && not (M.get n.marked) in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let[@quiescent] check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value <> max_int then Error "tail sentinel does not store max_int"
            else if M.get n.marked then Error "tail sentinel is marked"
            else Ok ()
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else if steps > 0 && M.get n.marked then
              (* At quiescence every marked node has also been unlinked. *)
              Error (Printf.sprintf "marked node %d still reachable" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end
