(** First-class-module registry of every algorithm instantiated on the
    real (Atomic) backend — what the CLI, examples and benchmarks select
    implementations from. *)

module Sequential : Set_intf.S
module Coarse : Set_intf.S
module Hand_over_hand : Set_intf.S
module Optimistic : Set_intf.S
module Lazy : Set_intf.S
module Harris_michael_amr : Set_intf.S
module Harris_michael_rtti : Set_intf.S
module Fomitchev_ruppert_list : Set_intf.S
module Vbl : Set_intf.S
module Vbl_postlock_ablation : Set_intf.S
module Vbl_versioned_variant : Set_intf.S

(** The same algorithm sources on the epoch-based reclamation backend
    ({!Vbl_memops.Reclaim_mem}): unlinked nodes are retired into limbo
    bags and recycled on the insert hot path once a grace period has
    passed. *)

module Lazy_reclaim : Set_intf.S
module Harris_michael_reclaim : Set_intf.S
module Vbl_reclaim : Set_intf.S

type impl = (module Set_intf.S)

val concurrent : impl list
(** Every concurrency-safe implementation, in roughly increasing
    concurrency order.  Excludes the sequential list. *)

val all : impl list
(** [concurrent] plus the sequential list. *)

val measured : impl list
(** The three algorithms the paper's figures measure. *)

val name : impl -> string

val find : string -> impl option

val find_exn : string -> impl
(** [Invalid_argument] listing known names on failure. *)
