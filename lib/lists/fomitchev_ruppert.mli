(** The lock-free list of Fomitchev & Ruppert (PODC 2004), cited in the
    paper's §5: flag/mark/backlink deletion protocol; failed operations
    recover via backlinks instead of restarting from the head. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
