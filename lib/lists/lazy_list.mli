(** The Lazy Linked List of Heller et al. (OPODIS 2006): logical deletion
    + O(1) post-lock validation + wait-free contains.  The paper's main
    lock-based baseline, kept faithful including the discipline its
    Figure 2 faults: updates lock before checking value presence. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
