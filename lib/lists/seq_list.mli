(** The sequential sorted linked list [LL] (paper Algorithm 1) — the
    reference implementation whose interleavings define schedules (§2.2).
    Not safe for concurrent use; that is the point. *)

module Make (M : Vbl_memops.Mem_intf.S) : Set_intf.S
