(** Driver for the static concurrency-discipline linter: parse [.ml]
    files with the compiler's own parser and run the {!Rules} over them.
    This replaces the grep-based [lint_atomics.sh]: because it works on
    the AST it resolves local aliases and opens, and never false-positives
    on comments or string literals.

    A run over a root parses every file first, computes the {!Summaries}
    pass over all of them, and only then fires the rules — so L3's
    releaser inference and L5's call-graph reachability see each file
    whole. *)

val default_targets : (string * Finding.rule list) list
(** The directories the discipline applies to, each with the rules that
    make sense there: the structure directories ([lib/lists],
    [lib/skiplists], [lib/shard]) get all seven rules; [lib/trees] is
    capped at L1–L4 until reclamation lands there (L5–L7 constrain
    epoch-bracketed, retiring code only); [lib/reclaim] is backend code —
    it implements the cells and pools the functor hands out, so raw
    atomics and mutable fields are its job — and is linted with L3–L7
    only. *)

val default_dirs : string list
(** [List.map fst default_targets]. *)

val lint_file :
  ?rules:Finding.rule list -> ?display_name:string -> string -> Finding.t list
(** Lint one file ([rules] defaults to all seven).  [display_name] is the
    path recorded in findings (defaults to the path itself).  The summary
    pass sees just this file.  A file that does not parse yields a single
    {!Finding.Parse} finding rather than being skipped. *)

val lint_targets :
  ?rules:Finding.rule list ->
  targets:(string * Finding.rule list) list ->
  string ->
  (Finding.t list, string) result
(** Lint every [.ml] file in each target directory under the given root,
    intersecting [rules] with the directory's cap.  [Error msg] if any
    requested directory is missing — the shell lint silently skipped
    absent directories; this one refuses. *)

val lint_root :
  ?rules:Finding.rule list ->
  ?targets:(string * Finding.rule list) list ->
  string ->
  (Finding.t list, string) result
(** [lint_targets] with [targets] defaulting to {!default_targets}. *)
