(** Driver for the static concurrency-discipline linter: parse [.ml]
    files with the compiler's own parser and run the {!Rules} over them.
    This replaces the grep-based [lint_atomics.sh]: because it works on
    the AST it resolves local aliases and opens, and never false-positives
    on comments or string literals. *)

val default_dirs : string list
(** The algorithm directories the discipline applies to:
    [lib/lists], [lib/skiplists], [lib/trees], [lib/shard]. *)

val lint_file :
  ?rules:Finding.rule list -> ?display_name:string -> string -> Finding.t list
(** Lint one file ([rules] defaults to all four).  [display_name] is the
    path recorded in findings (defaults to the path itself).  A file that
    does not parse yields a single {!Finding.Parse} finding rather than
    being skipped. *)

val lint_root :
  ?rules:Finding.rule list -> ?dirs:string list -> string -> (Finding.t list, string) result
(** Lint every [.ml] file in [dirs] (default {!default_dirs}) under the
    given root.  [Error msg] if any requested directory is missing — the
    shell lint silently skipped absent directories; this one refuses. *)
