(** The seven concurrency-discipline rules, as a static pass over a parsed
    implementation.  What each rule enforces — and the approximations the
    pass knowingly makes — in one place:

    {b L1 — backend confinement.}  Algorithm code must reach shared memory
    only through the [M : Mem_intf.S] functor argument.  Flagged: any
    identifier path containing [Atomic] or [Mutex] (local [module X = Atomic]
    aliases are resolved, chained aliases included); [open]/[include] of
    those modules (after which raw uses would be invisible, so the open
    itself is the finding); mutable record fields in type declarations;
    record-field assignment [e.f <- v]; and [ref] allocations that escape a
    local [let x = ref e] binder.  Allowed: [let]-bound local refs, [!], [:=]
    and array element writes — the thread-local temporary idiom of the
    skiplists, invisible to schedules.  Mentions in comments and string
    literals never flag (the grep lint's false-positive class).

    {b L2 — named-guard discipline.}  Any identifier path containing the
    [Naming] module must occur under a guard mentioning an identifier whose
    last component is [named] — the then-branch of [if M.named then ...] or
    a [when M.named] match guard — so the real backend never builds step
    names (the PR 2 zero-allocation contract).

    {b L3 — static lock pairing.}  Within each function body (nested
    [let rec attempt ... in] loops included), every syntactic [M.lock]
    acquisition (any single-module qualifier; [M.try_lock] in an [if]
    condition counts on the then-branch, [if not (M.try_lock ...)] on the
    else-branch — and, through the summary pass, so does a call to a local
    [\[@acquires\]]-tagged wrapper) must be released by [M.unlock] on every
    syntactic exit.  Unlocks inside [Fun.protect ~finally:...] count on all
    exits.  Branches that disagree while acquiring, and loop bodies with a
    net-positive balance, are reported at the construct; exits that raise
    are out of scope.  Releases of locks acquired elsewhere (wrapper calls,
    loop helpers) are never flagged.  A binding tagged [\[@acquires\]] — a
    lock wrapper that hands the held lock to its caller ([lock_next_at]) —
    is exempt, body included.  So is a binding that releases through a
    local {e releaser} helper (a function the summary pass sees unlocking
    without ever locking, like the skiplists' [unlock_distinct]): its
    pairing is deliberately non-syntactic, and the inference replaces the
    blanket [\[@acquires\]] tags those functions used to need.

    {b L4 — hot-path allocation.}  Bindings tagged [\[@hot\]] (the
    contains/insert/remove cores whose zero-allocation behaviour
    [test_alloc] measures) may not contain closures, tuple/record/array
    construction, allocating constructor applications, [lazy], binding
    operators, [ref] allocation, or staged applications [(f x) y] — the
    syntactic footprint of a partial application.  The leading parameter
    lambdas of the tagged binding itself are not flagged.

    {b L5 — epoch-bracket discipline.}  In a {e reclaiming module} (one
    that applies [op_enter]/[retire]/[recycle] qualified), shared cells may
    only be touched from inside a balanced [M.op_enter]/[M.op_exit]
    bracket: a node read outside a bracket can be freed under the reader.
    Two parts.  (a) Bracket balance per function body, with exactly L3's
    branch/loop/exit machinery applied to [op_enter]/[op_exit].  (b)
    Reachability through the {!Summaries} call graph: a dereference
    ([M.get]/[M.set]/[M.cas]/lock ops/[M.retire]/[M.recycle]) or a call to
    a function that transitively dereferences is a finding when it sits in
    an {e unprotected} function outside a bracket and outside the
    unreclaiming arm of an [if M.reclaiming].  Helpers reached only from
    bracketed call sites are protected by inference — no tag needed;
    [\[@protected\]] asserts it for helpers the fixpoint cannot see
    (function pointers), and [\[@quiescent\]] marks single-threaded
    observers ([fold], [check_invariants]) whose unbracketed reads are
    deliberate.

    {b L6 — retire/use discipline.}  Intraprocedural forward dataflow: a
    value passed to [M.retire] is poisoned for the rest of the function —
    any later mention (field read, lock/unlock, re-retire) is a finding,
    since the node may already be recycled by a concurrent insert.  A
    retire of a value the function did not bind locally (a parameter or
    helper result, i.e. a node that was reachable) must be preceded by an
    unlinking [M.set]/[M.cas] earlier in the walk.  The walk threads
    if/match arms in statement order (path-insensitive: an arm's poison
    flows into the sibling text that follows it — sound for the
    straight-line unlink-then-retire idiom the lists use).

    {b L7 — publish-before-reachable.}  Within a function, once a node is
    {e published} — its name occurs in the value stored by an
    [M.set]/[M.cas], or its [version] field is bumped (the versioned
    lists' publication witness) — a non-constant store to a direct field
    cell [n.field] of it is a finding: every cell of a fresh or
    [recycle]d node must be written before other threads can reach it.
    This is the rule that catches the PR 6 vbl_versioned
    version-before-next bug shape statically.  Constant stores
    ([M.set n.fully_linked true]) are the deliberate post-publish flag
    idiom and stay exempt; cells reached through accessor helpers
    ([next_cell_exn prev]) are surgery on already-reachable nodes and
    only count as publish sites, never violations. *)

val file :
  ?summaries:Summaries.file_info ->
  rules:Finding.rule list ->
  file:string ->
  Parsetree.structure ->
  Finding.t list
(** Run the selected rules over one parsed file; [file] is the name put in
    findings.  [summaries] (default {!Summaries.empty}) feeds L3's
    releaser/[@acquires] inference and L5's reachability — without it those
    collapse to their intraprocedural parts.  Results are sorted by
    position. *)
