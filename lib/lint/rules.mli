(** The four concurrency-discipline rules, as a static pass over a parsed
    implementation.  What each rule enforces — and the approximations the
    pass knowingly makes — in one place:

    {b L1 — backend confinement.}  Algorithm code must reach shared memory
    only through the [M : Mem_intf.S] functor argument.  Flagged: any
    identifier path containing [Atomic] or [Mutex] (local [module X = Atomic]
    aliases are resolved, chained aliases included); [open]/[include] of
    those modules (after which raw uses would be invisible, so the open
    itself is the finding); mutable record fields in type declarations;
    record-field assignment [e.f <- v]; and [ref] allocations that escape a
    local [let x = ref e] binder.  Allowed: [let]-bound local refs, [!], [:=]
    and array element writes — the thread-local temporary idiom of the
    skiplists, invisible to schedules.  Mentions in comments and string
    literals never flag (the grep lint's false-positive class).

    {b L2 — named-guard discipline.}  Any identifier path containing the
    [Naming] module must occur under a guard mentioning an identifier whose
    last component is [named] — the then-branch of [if M.named then ...] or
    a [when M.named] match guard — so the real backend never builds step
    names (the PR 2 zero-allocation contract).

    {b L3 — static lock pairing.}  Within each function body (nested
    [let rec attempt ... in] loops included), every syntactic [M.lock]
    acquisition (any single-module qualifier; [M.try_lock] in an [if]
    condition counts on the then-branch, [if not (M.try_lock ...)] on the
    else-branch) must be released by [M.unlock] on every syntactic exit.
    Unlocks inside [Fun.protect ~finally:...] count on all exits.  Branches
    that disagree while acquiring, and loop bodies with a net-positive
    balance, are reported at the construct; exits that raise are out of
    scope.  Releases of locks acquired elsewhere (wrapper calls, loop
    helpers) are never flagged.  A binding tagged [\[@acquires\]] — a lock
    wrapper that hands the held lock to its caller ([lock_next_at]), or a
    function releasing through a helper over an array of predecessors (the
    skiplists) — is exempt, body included; the tag is the greppable record
    that the pairing argument is deliberately non-syntactic there.

    {b L4 — hot-path allocation.}  Bindings tagged [\[@hot\]] (the
    contains/insert/remove cores whose zero-allocation behaviour
    [test_alloc] measures) may not contain closures, tuple/record/array
    construction, allocating constructor applications, [lazy], binding
    operators, [ref] allocation, or staged applications [(f x) y] — the
    syntactic footprint of a partial application.  The leading parameter
    lambdas of the tagged binding itself are not flagged. *)

val file : rules:Finding.rule list -> file:string -> Parsetree.structure -> Finding.t list
(** Run the selected rules over one parsed file; [file] is the name put in
    findings.  Results are sorted by position. *)
