(* See finding.mli. *)

type rule = L1 | L2 | L3 | L4 | L5 | L6 | L7 | Parse

let rule_to_string = function
  | L1 -> "L1"
  | L2 -> "L2"
  | L3 -> "L3"
  | L4 -> "L4"
  | L5 -> "L5"
  | L6 -> "L6"
  | L7 -> "L7"
  | Parse -> "parse"

let rule_of_string = function
  | "L1" | "l1" -> Some L1
  | "L2" | "l2" -> Some L2
  | "L3" | "l3" -> Some L3
  | "L4" | "l4" -> Some L4
  | "L5" | "l5" -> Some L5
  | "L6" | "l6" -> Some L6
  | "L7" | "l7" -> Some L7
  | _ -> None

let describe = function
  | L1 -> "backend confinement: shared accesses only through the memory-backend functor"
  | L2 -> "named-guard discipline: Naming.* only under an [if M.named] guard"
  | L3 -> "static lock pairing: every acquisition released on all syntactic exits"
  | L4 -> "hot-path allocation: no closures, tuples, records or staged applications under [@hot]"
  | L5 ->
      "epoch-bracket discipline: in reclaiming modules, shared cells are touched only from a \
       balanced op_enter/op_exit bracket"
  | L6 ->
      "retire/use discipline: a retired node is poisoned (no later use, unlock or re-retire) and \
       retire follows the unlinking store/CAS"
  | L7 ->
      "publish-before-reachable: every cell of a fresh or recycled node is written before the \
       store/CAS (or version bump) that publishes it"
  | Parse -> "file does not parse"

let all_rules = [ L1; L2; L3; L4; L5; L6; L7 ]

type t = { rule : rule; file : string; line : int; col : int; message : string }

let v ~rule ~file ~line ~col message = { rule; file; line; col; message }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.message b.message

let to_string f =
  Printf.sprintf "%s:%d:%d: [%s] %s" f.file f.line f.col (rule_to_string f.rule) f.message

(* Hand-rolled JSON, as elsewhere in this repo (compare_bench). *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf {|{"rule":"%s","file":"%s","line":%d,"col":%d,"message":"%s"}|}
    (rule_to_string f.rule) (json_escape f.file) f.line f.col (json_escape f.message)

(* One finding as a SARIF result object.  SARIF regions are 1-based in
   both coordinates; the linter's columns are 0-based (compiler
   convention), hence the [col + 1]. *)
let to_sarif_result f =
  Printf.sprintf
    {|{"ruleId":"%s","level":"error","message":{"text":"%s"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"%s"},"region":{"startLine":%d,"startColumn":%d}}}]}|}
    (rule_to_string f.rule) (json_escape f.message) (json_escape f.file) f.line (f.col + 1)
