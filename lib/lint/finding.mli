(** Lint findings: a rule identifier plus a [file:line:col] span and a
    human-readable message.  The rules themselves live in {!Rules}; this
    module only knows how to name, order and print them. *)

type rule =
  | L1  (** backend confinement — no raw [Atomic]/[Mutex]/mutation outside [M.] *)
  | L2  (** named-guard discipline — [Naming.*] only under [if M.named] *)
  | L3  (** static lock pairing — acquisitions released on all syntactic exits *)
  | L4  (** hot-path allocation — no closures/tuples/records under [@hot] *)
  | L5
      (** epoch-bracket discipline — in reclaiming modules, backend cells are
          touched only from a balanced [op_enter]/[op_exit] bracket, checked
          interprocedurally through the {!Summaries} call-graph pass *)
  | L6
      (** retire/use discipline — a value passed to [M.retire] is poisoned for
          the rest of the function, and retire follows the unlinking store/CAS *)
  | L7
      (** publish-before-reachable — every cell of a fresh/recycled node is
          written before the store/CAS (or version bump) that publishes it *)
  | Parse  (** the file failed to parse (reported like a finding so a broken
               file cannot slip through a lint run unnoticed) *)

val rule_to_string : rule -> string
val rule_of_string : string -> rule option
(** Recognizes ["L1"]..["L7"] (case-insensitive); [Parse] is not selectable. *)

val describe : rule -> string
(** One-line summary of what the rule enforces. *)

val all_rules : rule list
(** The seven selectable rules, in order. *)

type t = { rule : rule; file : string; line : int; col : int; message : string }

val v : rule:rule -> file:string -> line:int -> col:int -> string -> t
val compare : t -> t -> int
(** Order by file, then line, then column — the order reports print in. *)

val to_string : t -> string
(** ["file:line:col: [L1] message"]. *)

val to_json : t -> string
(** One finding as a JSON object. *)

val to_sarif_result : t -> string
(** One finding as a SARIF 2.1.0 [result] object (1-based columns). *)

val json_escape : string -> string
(** Escape a string for embedding in hand-rolled JSON output. *)
