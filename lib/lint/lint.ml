(* See lint.mli. *)

let default_dirs = [ "lib/lists"; "lib/skiplists"; "lib/trees"; "lib/shard" ]

let parse_impl ~display_name path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf display_name;
      match Parse.implementation lexbuf with
      | str -> Ok str
      | exception Syntaxerr.Error err ->
          let loc = Syntaxerr.location_of_error err in
          let p = loc.Location.loc_start in
          Error (p.pos_lnum, p.pos_cnum - p.pos_bol, "syntax error")
      | exception exn -> Error (1, 0, "cannot parse: " ^ Printexc.to_string exn))

let lint_file ?(rules = Finding.all_rules) ?display_name path =
  let display_name = Option.value display_name ~default:path in
  match parse_impl ~display_name path with
  | Ok str -> Rules.file ~rules ~file:display_name str
  | Error (line, col, msg) -> [ Finding.v ~rule:Finding.Parse ~file:display_name ~line ~col msg ]

let ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort String.compare

let lint_root ?(rules = Finding.all_rules) ?(dirs = default_dirs) root =
  let missing = List.filter (fun d -> not (Sys.file_exists (Filename.concat root d))) dirs in
  match missing with
  | _ :: _ -> Error (Printf.sprintf "missing directories under %s: %s" root (String.concat ", " missing))
  | [] ->
      Ok
        (List.concat_map
           (fun dir ->
             ml_files (Filename.concat root dir)
             |> List.concat_map (fun f ->
                    let path = Filename.concat (Filename.concat root dir) f in
                    lint_file ~rules ~display_name:(Filename.concat dir f) path))
           dirs)
