(* See lint.mli. *)

let structure_dirs = [ "lib/lists"; "lib/skiplists"; "lib/trees"; "lib/shard" ]

let backend_rules = Finding.[ L3; L4; L5; L6; L7 ]

(* The source-discipline subset for non-reclaiming algorithm directories:
   the reclamation-safety rules L5–L7 only constrain code that brackets
   epochs and retires nodes, which lib/trees does not do yet — cap it at
   L1–L4 until a tree gains a -reclaim twin. *)
let non_reclaiming_rules = Finding.[ L1; L2; L3; L4 ]

let default_targets =
  List.map
    (fun d ->
      (d, if d = "lib/trees" then non_reclaiming_rules else Finding.all_rules))
    structure_dirs
  @ [ ("lib/reclaim", backend_rules) ]

let default_dirs = List.map fst default_targets

let parse_impl ~display_name path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lexbuf = Lexing.from_channel ic in
      Location.init lexbuf display_name;
      match Parse.implementation lexbuf with
      | str -> Ok str
      | exception Syntaxerr.Error err ->
          let loc = Syntaxerr.location_of_error err in
          let p = loc.Location.loc_start in
          Error (p.pos_lnum, p.pos_cnum - p.pos_bol, "syntax error")
      | exception exn -> Error (1, 0, "cannot parse: " ^ Printexc.to_string exn))

let lint_file ?(rules = Finding.all_rules) ?display_name path =
  let display_name = Option.value display_name ~default:path in
  match parse_impl ~display_name path with
  | Ok str ->
      let summaries = Summaries.of_sources [ (display_name, str) ] in
      Rules.file ~summaries:(Summaries.find summaries display_name) ~rules ~file:display_name str
  | Error (line, col, msg) -> [ Finding.v ~rule:Finding.Parse ~file:display_name ~line ~col msg ]

let ml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort String.compare

let inter rules cap = List.filter (fun r -> List.mem r cap) rules

let lint_targets ?(rules = Finding.all_rules) ~targets root =
  let missing =
    List.filter (fun (d, _) -> not (Sys.file_exists (Filename.concat root d))) targets
  in
  match missing with
  | _ :: _ ->
      Error
        (Printf.sprintf "missing directories under %s: %s" root
           (String.concat ", " (List.map fst missing)))
  | [] ->
      (* Parse everything first: the summary pass wants every file of a
         run in hand before any rule fires. *)
      let parsed =
        List.concat_map
          (fun (dir, cap) ->
            ml_files (Filename.concat root dir)
            |> List.map (fun f ->
                   let path = Filename.concat (Filename.concat root dir) f in
                   let display_name = Filename.concat dir f in
                   (display_name, cap, parse_impl ~display_name path)))
          targets
      in
      let sources =
        List.filter_map
          (fun (name, _, r) -> match r with Ok str -> Some (name, str) | Error _ -> None)
          parsed
      in
      let summaries = Summaries.of_sources sources in
      Ok
        (List.concat_map
           (fun (name, cap, r) ->
             match r with
             | Ok str ->
                 Rules.file
                   ~summaries:(Summaries.find summaries name)
                   ~rules:(inter rules cap) ~file:name str
             | Error (line, col, msg) ->
                 [ Finding.v ~rule:Finding.Parse ~file:name ~line ~col msg ])
           parsed)

let lint_root ?(rules = Finding.all_rules) ?targets root =
  let targets = Option.value targets ~default:default_targets in
  lint_targets ~rules ~targets root
