(* See summaries.mli.  One pass over every parsed file, before the rules
   run: extract per-function effect summaries (shared-cell dereferences,
   local calls, lock/unlock counts) with the syntactic context of each
   site (inside an op_enter/op_exit bracket?  under the unreclaiming arm
   of an [if M.reclaiming] guard?), then close over the in-file call
   graph so L3 and L5 can reason about helpers without per-helper
   annotations. *)

open Parsetree

type pos = { line : int; col : int }

type site = {
  s_pos : pos;
  s_bracketed : bool;  (** at this point the op_enter/op_exit balance is positive *)
  s_unreclaiming : bool;  (** under the arm of an [if M.reclaiming] where it is false *)
}

type deref = { d_site : site; d_op : string }
type call = { c_site : site; c_callee : string }

type fn = {
  fn_name : string;
  fn_protected : bool;
  fn_quiescent : bool;
  fn_acquires : bool;
  fn_derefs : deref list;
  fn_calls : call list;
  fn_locks : int;
  fn_unlocks : int;
}

type status = Protected | Unprotected

type file_info = {
  fi_reclaiming : bool;
  fi_fns : fn list;
  fi_status : (string, status) Hashtbl.t;
  fi_touches : (string, bool) Hashtbl.t;
  fi_called : (string, unit) Hashtbl.t;
}

type t = (string * file_info) list

(* ------------------------------------------------------------------ *)
(* Extraction                                                          *)
(* ------------------------------------------------------------------ *)

let flatten lid = try Longident.flatten lid with _ -> []

let pos_of (loc : Location.t) =
  { line = loc.loc_start.pos_lnum; col = loc.loc_start.pos_cnum - loc.loc_start.pos_bol }

(* The backend operations that dereference a shared cell or lock word.
   Allocation ([make], [make_lock], [make_pool], ...) and the bracket
   operations themselves are deliberately absent. *)
let deref_ops =
  [ "get"; "set"; "cas"; "lock"; "unlock"; "try_lock"; "lock_held"; "retire"; "recycle" ]

let has_attr name attrs = List.exists (fun a -> String.equal a.attr_name.txt name) attrs

let is_function_expr e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | _ -> e

let ends_with_reclaiming txt =
  match List.rev (flatten txt) with "reclaiming" :: _ -> true | _ -> false

(* [if M.reclaiming then ... else ...]: the else-arm never runs with
   reclamation on, so unbracketed dereferences there are safe.  Returns
   the polarity of the condition, [None] for ordinary conditions. *)
let reclaiming_cond c =
  match c.pexp_desc with
  | Pexp_ident { txt; _ } when ends_with_reclaiming txt -> Some true
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "not"; _ }; _ },
        [ (_, { pexp_desc = Pexp_ident { txt; _ }; _ }) ] )
    when ends_with_reclaiming txt ->
      Some false
  | _ -> None

(* Walk one function body, threading the syntactic op_enter/op_exit
   balance [bal] and the [unrecl] guard flag through the statement
   order, recording every dereference and every unqualified call with
   the context at its site.  Branches propagate the larger balance
   (imbalance itself is L5's paired-op check, not the summary's job).
   Closure and nested-function bodies are walked with the context of
   their definition point. *)
let walk_body record_deref record_call body =
  let rec walk bal unrecl e =
    match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        let bal = List.fold_left (fun b (_, a) -> walk b unrecl a) bal args in
        match f.pexp_desc with
        | Pexp_ident { txt; loc } -> (
            match flatten txt with
            | [ _; "op_enter" ] -> bal + 1
            | [ _; "op_exit" ] -> bal - 1
            | [ _; op ] when List.mem op deref_ops ->
                record_deref loc bal unrecl op;
                bal
            | [ name ] ->
                record_call loc bal unrecl name;
                bal
            | _ -> bal)
        | _ -> walk bal unrecl f)
    | Pexp_sequence (a, b) -> walk (walk bal unrecl a) unrecl b
    | Pexp_let (_, vbs, body) ->
        let bal =
          List.fold_left
            (fun b vb ->
              if is_function_expr vb.pvb_expr then begin
                ignore (walk b unrecl (strip_params vb.pvb_expr));
                b
              end
              else walk b unrecl vb.pvb_expr)
            bal vbs
        in
        walk bal unrecl body
    | Pexp_ifthenelse (c, t, eo) ->
        let bal = walk bal unrecl c in
        let then_unrecl, else_unrecl =
          match reclaiming_cond c with
          | Some true -> (unrecl, true)
          | Some false -> (true, unrecl)
          | None -> (unrecl, unrecl)
        in
        let bt = walk bal then_unrecl t in
        let be = match eo with Some e2 -> walk bal else_unrecl e2 | None -> bal in
        max bt be
    | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
        let bal = walk bal unrecl scr in
        List.fold_left
          (fun acc c ->
            (match c.pc_guard with Some g -> ignore (walk bal unrecl g) | None -> ());
            max acc (walk bal unrecl c.pc_rhs))
          bal cases
    | Pexp_while (c, body) ->
        ignore (walk bal unrecl c);
        ignore (walk bal unrecl body);
        bal
    | Pexp_for (_, lo, hi, _, body) ->
        ignore (walk bal unrecl lo);
        ignore (walk bal unrecl hi);
        ignore (walk bal unrecl body);
        bal
    | Pexp_fun (_, _, _, b) ->
        ignore (walk bal unrecl b);
        bal
    | Pexp_function cases ->
        List.iter (fun c -> ignore (walk bal unrecl c.pc_rhs)) cases;
        bal
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
    | Pexp_letmodule (_, _, e) | Pexp_newtype (_, e) | Pexp_letexception (_, e)
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_field (e, _)
    | Pexp_assert e | Pexp_lazy e ->
        walk bal unrecl e
    | Pexp_setfield (a, _, b) -> walk (walk bal unrecl a) unrecl b
    | Pexp_tuple es | Pexp_array es -> List.fold_left (fun b e -> walk b unrecl e) bal es
    | Pexp_record (fields, base) ->
        let bal = List.fold_left (fun b (_, e) -> walk b unrecl e) bal fields in
        (match base with Some e -> walk bal unrecl e | None -> bal)
    | _ -> bal
  in
  ignore (walk 0 false body)

let count_lock_ops e =
  let locks = ref 0 and unlocks = ref 0 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match flatten txt with
              | [ _; ("lock" | "try_lock") ] -> incr locks
              | [ _; "unlock" ] -> incr unlocks
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  (!locks, !unlocks)

let extract_fn name vb =
  let derefs = ref [] and calls = ref [] in
  let site loc bal unrecl =
    { s_pos = pos_of loc; s_bracketed = bal > 0; s_unreclaiming = unrecl }
  in
  walk_body
    (fun loc bal unrecl op -> derefs := { d_site = site loc bal unrecl; d_op = op } :: !derefs)
    (fun loc bal unrecl callee ->
      calls := { c_site = site loc bal unrecl; c_callee = callee } :: !calls)
    (strip_params vb.pvb_expr);
  let locks, unlocks = count_lock_ops vb.pvb_expr in
  {
    fn_name = name;
    fn_protected = has_attr "protected" vb.pvb_attributes;
    fn_quiescent = has_attr "quiescent" vb.pvb_attributes;
    fn_acquires = has_attr "acquires" vb.pvb_attributes;
    fn_derefs = List.rev !derefs;
    fn_calls = List.rev !calls;
    fn_locks = locks;
    fn_unlocks = unlocks;
  }

(* Top-level bindings, looking through [module Make (M : S) = struct]
   functor wrappers.  Nested [let rec attempt ... in] helpers are folded
   into their host function's summary by the body walk above. *)
let rec structure_fns acc str = List.fold_left item_fns acc str

and item_fns acc si =
  match si.pstr_desc with
  | Pstr_value (_, vbs) ->
      List.fold_left
        (fun acc vb ->
          match vb.pvb_pat.ppat_desc with
          | Ppat_var { txt = name; _ } when is_function_expr vb.pvb_expr ->
              extract_fn name vb :: acc
          | _ -> acc)
        acc vbs
  | Pstr_module mb -> module_fns acc mb.pmb_expr
  | Pstr_recmodule mbs -> List.fold_left (fun acc mb -> module_fns acc mb.pmb_expr) acc mbs
  | _ -> acc

and module_fns acc me =
  match me.pmod_desc with
  | Pmod_structure str -> structure_fns acc str
  | Pmod_functor (_, body) -> module_fns acc body
  | Pmod_constraint (me, _) -> module_fns acc me
  | _ -> acc

(* A module is "reclaiming" iff it applies the reclamation API — the
   backends in lib/reclaim define these operations but never apply them
   qualified, so they are not swept in. *)
let uses_reclamation str =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
              match flatten txt with
              | [ _; ("op_enter" | "retire" | "recycle") ] -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.structure it str;
  !found

(* ------------------------------------------------------------------ *)
(* Closure                                                             *)
(* ------------------------------------------------------------------ *)

let site_unprotected s = (not s.s_bracketed) && not s.s_unreclaiming

(* touches(f): f dereferences shared cells without arranging its own
   protection — an unguarded deref in its body, or an unguarded call to
   an in-file function that touches.  Bracketed/unreclaiming sites do
   not propagate: a function that opens its own bracket (the public
   insert/remove/contains wrappers) is safe to call from anywhere.
   [@quiescent] bodies are exempt wholesale (single-threaded phases). *)
let compute_touches fn_tbl fns =
  let touches = Hashtbl.create 16 in
  List.iter
    (fun f ->
      Hashtbl.replace touches f.fn_name
        ((not f.fn_quiescent) && List.exists (fun d -> site_unprotected d.d_site) f.fn_derefs))
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun f ->
        if (not f.fn_quiescent) && not (Hashtbl.find touches f.fn_name) then
          let hit =
            List.exists
              (fun c ->
                site_unprotected c.c_site
                && Hashtbl.mem fn_tbl c.c_callee
                && (try Hashtbl.find touches c.c_callee with Not_found -> false))
              f.fn_calls
          in
          if hit then begin
            Hashtbl.replace touches f.fn_name true;
            changed := true
          end)
      fns
  done;
  touches

(* Protection fixpoint.  Roots (no in-file call site) are Unprotected
   unless tagged; helpers start optimistically Protected and are demoted
   when some call site is neither bracketed, nor unreclaiming, nor in a
   protected/quiescent caller.  Monotone demotion, so it terminates. *)
let compute_status fn_tbl called fns =
  let status = Hashtbl.create 16 in
  List.iter
    (fun f ->
      let st =
        if f.fn_protected then Protected
        else if not (Hashtbl.mem called f.fn_name) then Unprotected
        else Protected
      in
      Hashtbl.replace status f.fn_name st)
    fns;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun caller ->
        let caller_protected =
          caller.fn_quiescent || Hashtbl.find status caller.fn_name = Protected
        in
        List.iter
          (fun c ->
            match Hashtbl.find_opt fn_tbl c.c_callee with
            | Some callee when not callee.fn_protected ->
                if
                  site_unprotected c.c_site && (not caller_protected)
                  && Hashtbl.find status callee.fn_name = Protected
                then begin
                  Hashtbl.replace status callee.fn_name Unprotected;
                  changed := true
                end
            | _ -> ())
          caller.fn_calls)
      fns
  done;
  status

let summarize_file str =
  let fns = List.rev (structure_fns [] str) in
  let fn_tbl = Hashtbl.create 16 in
  List.iter (fun f -> Hashtbl.replace fn_tbl f.fn_name f) fns;
  let called = Hashtbl.create 16 in
  List.iter
    (fun f -> List.iter (fun c -> if Hashtbl.mem fn_tbl c.c_callee then Hashtbl.replace called c.c_callee ()) f.fn_calls)
    fns;
  {
    fi_reclaiming = uses_reclamation str;
    fi_fns = fns;
    fi_status = compute_status fn_tbl called fns;
    fi_touches = compute_touches fn_tbl fns;
    fi_called = called;
  }

let of_sources sources = List.map (fun (name, str) -> (name, summarize_file str)) sources

let empty =
  {
    fi_reclaiming = false;
    fi_fns = [];
    fi_status = Hashtbl.create 1;
    fi_touches = Hashtbl.create 1;
    fi_called = Hashtbl.create 1;
  }

let find t name = match List.assoc_opt name t with Some fi -> fi | None -> empty

(* ------------------------------------------------------------------ *)
(* Queries                                                             *)
(* ------------------------------------------------------------------ *)

let reclaiming fi = fi.fi_reclaiming
let fns fi = fi.fi_fns
let find_fn fi name = List.find_opt (fun f -> String.equal f.fn_name name) fi.fi_fns

let status fi name =
  match Hashtbl.find_opt fi.fi_status name with Some s -> s | None -> Unprotected

let touches_shared fi name =
  match Hashtbl.find_opt fi.fi_touches name with Some b -> b | None -> false

let is_root fi name = not (Hashtbl.mem fi.fi_called name)
let is_quiescent fi name = match find_fn fi name with Some f -> f.fn_quiescent | None -> false
let is_acquires fi name = match find_fn fi name with Some f -> f.fn_acquires | None -> false

let is_releaser fi name =
  match find_fn fi name with Some f -> f.fn_unlocks > 0 && f.fn_locks = 0 | None -> false
