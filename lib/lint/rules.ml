(* The four concurrency-discipline rules, implemented over the parsetree.
   See rules.mli for the contract of each rule and the exact approximations
   this pass makes.  The walk is a single Ast_iterator traversal for the
   scoped rules (L1/L2) with per-function analyses (L3/L4) triggered from
   the value-binding hook, so nested [let rec attempt ... in] loops are
   checked exactly like top-level bindings. *)

open Parsetree

module SMap = Map.Make (String)

type ctx = {
  file : string;
  l1 : bool;
  l2 : bool;
  l3 : bool;
  l4 : bool;
  mutable env : string list SMap.t;  (** local module aliases, name -> canonical path *)
  mutable guarded : bool;  (** inside the then-branch of an [if M.named] *)
  mutable exempt : int;  (** depth of enclosing [@acquires] bindings (L3 off) *)
  mutable ref_ok : (int * int) list;  (** locs of [ref] idents in local let binders *)
  mutable findings : Finding.t list;
}

let report ctx rule (loc : Location.t) msg =
  let p = loc.loc_start in
  ctx.findings <-
    Finding.v ~rule ~file:ctx.file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) msg
    :: ctx.findings

let flatten lid = try Longident.flatten lid with _ -> []

let resolve env path =
  match path with
  | [] -> []
  | hd :: rest -> ( match SMap.find_opt hd env with Some tgt -> tgt @ rest | None -> path)

let is_forbidden_root c = String.equal c "Atomic" || String.equal c "Mutex"

let is_ref_path = function [ "ref" ] | [ "Stdlib"; "ref" ] -> true | _ -> false

let has_attr name attrs =
  List.exists (fun a -> String.equal a.attr_name.txt name) attrs

let loc_key (loc : Location.t) = (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum)

(* ------------------------------------------------------------------ *)
(* Shared path checks (L1 confinement, L2 naming mentions)            *)
(* ------------------------------------------------------------------ *)

let check_path ctx (loc : Location.t) path =
  let resolved = resolve ctx.env path in
  if ctx.l1 && List.exists is_forbidden_root resolved then
    report ctx Finding.L1 loc
      (Printf.sprintf "raw %s access outside the memory backend (use the M.* functor argument)"
         (String.concat "." resolved));
  if ctx.l2 && List.exists (String.equal "Naming") resolved && not ctx.guarded then
    report ctx Finding.L2 loc
      (Printf.sprintf "%s outside an [if M.named] guard (names must not be built on the real backend)"
         (String.concat "." path))

(* Does an expression mention an identifier whose last component is
   [named] (e.g. [M.named])?  Used to recognize L2 guards. *)
let mentions_named e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match List.rev (flatten txt) with
              | "named" :: _ -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* L3: static lock pairing                                            *)
(* ------------------------------------------------------------------ *)

(* Qualified backend lock operations: [M.lock] / [M.unlock] /
   [M.try_lock] (any one-module qualifier).  Unqualified calls are
   helper functions ([node_lock], wrappers) and are not tracked. *)
type lock_op = Acquire | Release | Try_acquire

let lock_op_of_expr f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match flatten txt with
      | [ _; "lock" ] -> Some Acquire
      | [ _; "unlock" ] -> Some Release
      | [ _; "try_lock" ] -> Some Try_acquire
      | _ -> None)
  | _ -> None

let is_fun_protect f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten txt = [ "Fun"; "protect" ]
  | _ -> false

(* Count [*.unlock] applications anywhere in [e], including inside
   closures — used for [Fun.protect ~finally:(fun () -> M.unlock ...)],
   whose release runs on every exit including exceptional ones. *)
let count_unlocks e =
  let n = ref 0 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _) when lock_op_of_expr f = Some Release -> incr n
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !n

(* An expression that leaves the function by raising rather than
   returning; lock balance on exceptional exits is out of scope. *)
let is_exception_exit e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match List.rev (flatten txt) with
      | ("raise" | "raise_notrace" | "failwith" | "invalid_arg") :: _ -> true
      | _ -> false)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } -> true
  | _ -> false

(* If the condition of an [if] is a try-lock attempt, the then/else
   branches start with different lock balances. *)
let cond_acquire c =
  match c.pexp_desc with
  | Pexp_apply (f, _) when lock_op_of_expr f = Some Try_acquire -> (1, 0)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "not"; _ }; _ },
        [ (_, { pexp_desc = Pexp_apply (f, _); _ }) ] )
    when lock_op_of_expr f = Some Try_acquire ->
      (0, 1)
  | _ -> (0, 0)

let is_function_expr e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

(* Net lock-balance change of evaluating [e] in statement position.
   Branch constructs whose arms disagree while acquiring are reported;
   the larger (more-held) arm is propagated so a leak is still caught at
   the exit.  Closures contribute zero: their bodies run later. *)
let rec delta ctx e =
  match e.pexp_desc with
  | Pexp_apply (f, args) ->
      if is_fun_protect f then
        List.fold_left
          (fun acc (label, arg) ->
            match label with
            | Asttypes.Labelled "finally" -> acc - count_unlocks arg
            | _ -> acc + delta ctx arg)
          0 args
      else
        let base = List.fold_left (fun acc (_, arg) -> acc + delta ctx arg) 0 args in
        (match lock_op_of_expr f with
        | Some Acquire -> base + 1
        | Some Release -> base - 1
        | Some Try_acquire | None -> base + delta ctx f)
  | Pexp_sequence (a, b) -> delta ctx a + delta ctx b
  | Pexp_let (_, vbs, body) ->
      List.fold_left
        (fun acc vb -> if is_function_expr vb.pvb_expr then acc else acc + delta ctx vb.pvb_expr)
        0 vbs
      + delta ctx body
  | Pexp_ifthenelse (c, t, eo) ->
      let base = delta ctx c in
      let ta, ea = cond_acquire c in
      let dt = ta + delta ctx t in
      let de = ea + match eo with Some e2 -> delta ctx e2 | None -> 0 in
      if dt <> de && max dt de > 0 then
        report ctx Finding.L3 e.pexp_loc
          (Printf.sprintf "lock balance differs across if branches (%+d vs %+d)" dt de);
      base + max dt de
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      let base = delta ctx scr in
      let ds = List.map (fun c -> delta ctx c.pc_rhs) cases in
      let mx = List.fold_left max min_int ds and mn = List.fold_left min max_int ds in
      if mx <> mn && mx > 0 then
        report ctx Finding.L3 e.pexp_loc
          (Printf.sprintf "lock balance differs across match branches (%+d vs %+d)" mn mx);
      base + if cases = [] then 0 else mx
  | Pexp_while (c, body) ->
      let db = delta ctx body in
      if db > 0 then
        report ctx Finding.L3 e.pexp_loc
          (Printf.sprintf "loop body acquires %d lock(s) not released within the iteration" db);
      delta ctx c
  | Pexp_for (_, lo, hi, _, body) ->
      let db = delta ctx body in
      if db > 0 then
        report ctx Finding.L3 e.pexp_loc
          (Printf.sprintf "loop body acquires %d lock(s) not released within the iteration" db);
      delta ctx lo + delta ctx hi
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_letmodule (_, _, e) | Pexp_newtype (_, e) ->
      delta ctx e
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_field (e, _)
  | Pexp_assert e | Pexp_letexception (_, e) ->
      delta ctx e
  | Pexp_setfield (a, _, b) -> delta ctx a + delta ctx b
  | Pexp_tuple es | Pexp_array es -> List.fold_left (fun acc e -> acc + delta ctx e) 0 es
  | Pexp_record (fields, base) ->
      List.fold_left (fun acc (_, e) -> acc + delta ctx e) 0 fields
      + (match base with Some e -> delta ctx e | None -> 0)
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> 0
  | _ -> 0

(* Check [e] in tail position of a function whose current syntactic lock
   balance is [bal]; every exit with a positive balance is a finding. *)
let rec check_tail ctx bal e =
  match e.pexp_desc with
  | Pexp_sequence (a, b) -> check_tail ctx (bal + delta ctx a) b
  | Pexp_let (_, vbs, body) ->
      let bal =
        List.fold_left
          (fun acc vb ->
            if is_function_expr vb.pvb_expr then acc else acc + delta ctx vb.pvb_expr)
          bal vbs
      in
      check_tail ctx bal body
  | Pexp_ifthenelse (c, t, eo) -> (
      let bal = bal + delta ctx c in
      let ta, ea = cond_acquire c in
      check_tail ctx (bal + ta) t;
      match eo with
      | Some e2 -> check_tail ctx (bal + ea) e2
      | None ->
          if bal + ea > 0 then
            report ctx Finding.L3 e.pexp_loc
              (Printf.sprintf "implicit else branch exits holding %d lock(s)" (bal + ea)))
  | Pexp_match (scr, cases) ->
      let bal = bal + delta ctx scr in
      List.iter (fun c -> check_tail ctx bal c.pc_rhs) cases
  | Pexp_try (body, cases) ->
      check_tail ctx bal body;
      List.iter (fun c -> check_tail ctx bal c.pc_rhs) cases
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_letmodule (_, _, e) ->
      check_tail ctx bal e
  | _ ->
      if not (is_exception_exit e) then begin
        let final = bal + delta ctx e in
        if final > 0 then
          report ctx Finding.L3 e.pexp_loc
            (Printf.sprintf
               "exits holding %d lock(s); release on every path or tag the binding [@acquires]"
               final)
      end

let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | _ -> e

let l3_check ctx vb =
  if is_function_expr vb.pvb_expr then
    match (strip_params vb.pvb_expr).pexp_desc with
    | Pexp_function cases ->
        List.iter (fun c -> check_tail ctx 0 c.pc_rhs) cases
    | _ -> check_tail ctx 0 (strip_params vb.pvb_expr)

(* ------------------------------------------------------------------ *)
(* L4: hot-path allocation lint                                       *)
(* ------------------------------------------------------------------ *)

let l4_check ctx vb =
  let flag loc what = report ctx Finding.L4 loc (what ^ " in a [@hot] body allocates") in
  let body = strip_params vb.pvb_expr in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> flag e.pexp_loc "closure"
          | Pexp_tuple _ -> flag e.pexp_loc "tuple construction"
          | Pexp_record _ -> flag e.pexp_loc "record construction"
          | Pexp_array _ -> flag e.pexp_loc "array construction"
          | Pexp_lazy _ -> flag e.pexp_loc "lazy suspension"
          | Pexp_letop _ -> flag e.pexp_loc "binding operator"
          | Pexp_construct (_, Some _) | Pexp_variant (_, Some _) ->
              flag e.pexp_loc "constructor application"
          | Pexp_apply ({ pexp_desc = Pexp_apply _; _ }, _) ->
              flag e.pexp_loc "staged (partial) application"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when is_ref_path (flatten txt) ->
              flag e.pexp_loc "ref cell allocation"
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body

(* ------------------------------------------------------------------ *)
(* The traversal                                                       *)
(* ------------------------------------------------------------------ *)

let module_expr_path me =
  match me.pmod_desc with Pmod_ident { txt; _ } -> Some (flatten txt) | _ -> None

let file ~rules ~file:fname (str : structure) : Finding.t list =
  let has r = List.mem r rules in
  let ctx =
    {
      file = fname;
      l1 = has Finding.L1;
      l2 = has Finding.L2;
      l3 = has Finding.L3;
      l4 = has Finding.L4;
      env = SMap.empty;
      guarded = false;
      exempt = 0;
      ref_ok = [];
      findings = [];
    }
  in
  let scoped_env f =
    let saved = ctx.env in
    f ();
    ctx.env <- saved
  in
  let register_alias name me =
    match module_expr_path me with
    | Some path -> ctx.env <- SMap.add name (resolve ctx.env path) ctx.env
    | None -> ()
  in
  let check_open_like (loc : Location.t) me =
    match module_expr_path me with Some path -> check_path ctx loc path | None -> ()
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } ->
              let path = flatten txt in
              if ctx.l1 && is_ref_path (resolve ctx.env path)
                 && not (List.mem (loc_key loc) ctx.ref_ok)
              then
                report ctx Finding.L1 loc
                  "ref allocation escaping a local let binding (shared state must be an M.cell)";
              check_path ctx loc path
          | Pexp_setfield (a, _, b) ->
              if ctx.l1 then
                report ctx Finding.L1 e.pexp_loc
                  "mutable field assignment outside the memory backend (use M.set)";
              it.expr it a;
              it.expr it b
          | Pexp_let (_, vbs, body) ->
              (* [let x = ref e in ...] is the accepted thread-local
                 temporary idiom; remember the binder so the ident check
                 lets it through. *)
              List.iter
                (fun vb ->
                  match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
                  | Ppat_var _, Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
                    when is_ref_path (resolve ctx.env (flatten txt)) ->
                      ctx.ref_ok <- loc_key loc :: ctx.ref_ok
                  | _ -> ())
                vbs;
              List.iter (it.value_binding it) vbs;
              it.expr it body
          | Pexp_ifthenelse (c, t, eo) ->
              it.expr it c;
              if ctx.l2 && mentions_named c then begin
                let saved = ctx.guarded in
                ctx.guarded <- true;
                it.expr it t;
                ctx.guarded <- saved
              end
              else it.expr it t;
              Option.iter (it.expr it) eo
          | Pexp_open (od, body) ->
              check_open_like od.popen_loc od.popen_expr;
              scoped_env (fun () -> it.expr it body)
          | Pexp_letmodule (name, me, body) ->
              scoped_env (fun () ->
                  (match name.txt with
                  | Some n -> register_alias n me
                  | None -> ());
                  (match module_expr_path me with
                  | Some _ -> ()
                  | None -> it.module_expr it me);
                  it.expr it body)
          | _ -> default.expr it e)
      ;
      case =
        (fun it c ->
          it.pat it c.pc_lhs;
          match c.pc_guard with
          | Some g when ctx.l2 && mentions_named g ->
              it.expr it g;
              let saved = ctx.guarded in
              ctx.guarded <- true;
              it.expr it c.pc_rhs;
              ctx.guarded <- saved
          | Some g ->
              it.expr it g;
              it.expr it c.pc_rhs
          | None -> it.expr it c.pc_rhs);
      value_binding =
        (fun it vb ->
          if ctx.l4 && has_attr "hot" vb.pvb_attributes then l4_check ctx vb;
          let acquires = has_attr "acquires" vb.pvb_attributes in
          if ctx.l3 && ctx.exempt = 0 && not acquires then l3_check ctx vb;
          if acquires then begin
            ctx.exempt <- ctx.exempt + 1;
            default.value_binding it vb;
            ctx.exempt <- ctx.exempt - 1
          end
          else default.value_binding it vb);
      module_binding =
        (fun it mb ->
          match (mb.pmb_name.txt, module_expr_path mb.pmb_expr) with
          | Some n, Some _ ->
              register_alias n mb.pmb_expr
              (* pure alias: nothing further to walk *)
          | _ -> default.module_binding it mb);
      structure_item =
        (fun it si ->
          match si.pstr_desc with
          | Pstr_open od ->
              check_open_like od.popen_loc od.popen_expr;
              default.structure_item it si
          | Pstr_include incl ->
              check_open_like incl.pincl_loc incl.pincl_mod;
              default.structure_item it si
          | Pstr_type (_, decls) ->
              if ctx.l1 then
                List.iter
                  (fun d ->
                    match d.ptype_kind with
                    | Ptype_record labels ->
                        List.iter
                          (fun l ->
                            if l.pld_mutable = Asttypes.Mutable then
                              report ctx Finding.L1 l.pld_loc
                                (Printf.sprintf
                                   "mutable record field '%s' (shared state must be an M.cell)"
                                   l.pld_name.txt))
                          labels
                    | _ -> ())
                  decls;
              default.structure_item it si
          | _ -> default.structure_item it si);
    }
  in
  it.structure it str;
  List.sort Finding.compare ctx.findings
