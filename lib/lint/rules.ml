(* The seven concurrency-discipline rules, implemented over the parsetree.
   See rules.mli for the contract of each rule and the exact approximations
   this pass makes.  The walk is a single Ast_iterator traversal for the
   scoped rules (L1/L2) with per-function analyses (L3/L4/L6/L7 and L5's
   bracket balance) triggered from the value-binding hook, so nested
   [let rec attempt ... in] loops are checked exactly like top-level
   bindings.  L5's interprocedural part runs off the {!Summaries} pass
   after the traversal. *)

open Parsetree

module SMap = Map.Make (String)

type ctx = {
  file : string;
  l1 : bool;
  l2 : bool;
  l3 : bool;
  l4 : bool;
  l5 : bool;
  l6 : bool;
  l7 : bool;
  summary : Summaries.file_info;
  mutable env : string list SMap.t;  (** local module aliases, name -> canonical path *)
  mutable guarded : bool;  (** inside the then-branch of an [if M.named] *)
  mutable exempt : int;  (** depth of enclosing [@acquires]/inferred-release bindings (L3 off) *)
  mutable ref_ok : (int * int) list;  (** locs of [ref] idents in local let binders *)
  mutable findings : Finding.t list;
}

let report ctx rule (loc : Location.t) msg =
  let p = loc.loc_start in
  ctx.findings <-
    Finding.v ~rule ~file:ctx.file ~line:p.pos_lnum ~col:(p.pos_cnum - p.pos_bol) msg
    :: ctx.findings

let report_pos ctx rule (pos : Summaries.pos) msg =
  ctx.findings <-
    Finding.v ~rule ~file:ctx.file ~line:pos.line ~col:pos.col msg :: ctx.findings

let flatten lid = try Longident.flatten lid with _ -> []

let resolve env path =
  match path with
  | [] -> []
  | hd :: rest -> ( match SMap.find_opt hd env with Some tgt -> tgt @ rest | None -> path)

let is_forbidden_root c = String.equal c "Atomic" || String.equal c "Mutex"

let is_ref_path = function [ "ref" ] | [ "Stdlib"; "ref" ] -> true | _ -> false

let has_attr name attrs =
  List.exists (fun a -> String.equal a.attr_name.txt name) attrs

let loc_key (loc : Location.t) = (loc.loc_start.pos_lnum, loc.loc_start.pos_cnum)

(* ------------------------------------------------------------------ *)
(* Shared path checks (L1 confinement, L2 naming mentions)            *)
(* ------------------------------------------------------------------ *)

let check_path ctx (loc : Location.t) path =
  let resolved = resolve ctx.env path in
  if ctx.l1 && List.exists is_forbidden_root resolved then
    report ctx Finding.L1 loc
      (Printf.sprintf "raw %s access outside the memory backend (use the M.* functor argument)"
         (String.concat "." resolved));
  if ctx.l2 && List.exists (String.equal "Naming") resolved && not ctx.guarded then
    report ctx Finding.L2 loc
      (Printf.sprintf "%s outside an [if M.named] guard (names must not be built on the real backend)"
         (String.concat "." path))

(* Does an expression mention an identifier whose last component is
   [named] (e.g. [M.named])?  Used to recognize L2 guards. *)
let mentions_named e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt; _ } -> (
              match List.rev (flatten txt) with
              | "named" :: _ -> found := true
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Paired-operation balance (L3 locks, L5 epoch brackets)             *)
(* ------------------------------------------------------------------ *)

(* L3 tracks qualified backend lock operations: [M.lock] / [M.unlock] /
   [M.try_lock] (any one-module qualifier); unqualified calls to local
   functions the summary pass knows as [@acquires] count as try-style
   acquisitions in [if] conditions.  L5 reuses the same machinery for
   [M.op_enter] / [M.op_exit] epoch brackets.  Only the classifier and
   the report text differ, so both are parameters. *)
type pair_kind = Acquire | Release | Try_acquire

type pair_ops = {
  po_classify : expression -> pair_kind option;  (** on the function position of an apply *)
  po_rule : Finding.rule;
  po_branch : string -> int -> int -> string;  (** construct word, branch balances *)
  po_loop : int -> string;
  po_implicit : int -> string;
  po_exit : int -> string;
}

let lock_ops ctx =
  {
    po_classify =
      (fun f ->
        match f.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match flatten txt with
            | [ _; "lock" ] -> Some Acquire
            | [ _; "unlock" ] -> Some Release
            | [ _; "try_lock" ] -> Some Try_acquire
            | [ name ] when Summaries.is_acquires ctx.summary name -> Some Try_acquire
            | _ -> None)
        | _ -> None);
    po_rule = Finding.L3;
    po_branch =
      (fun word a b -> Printf.sprintf "lock balance differs across %s branches (%+d vs %+d)" word a b);
    po_loop =
      Printf.sprintf "loop body acquires %d lock(s) not released within the iteration";
    po_implicit = Printf.sprintf "implicit else branch exits holding %d lock(s)";
    po_exit =
      Printf.sprintf "exits holding %d lock(s); release on every path or tag the binding [@acquires]";
  }

let bracket_ops =
  {
    po_classify =
      (fun f ->
        match f.pexp_desc with
        | Pexp_ident { txt; _ } -> (
            match flatten txt with
            | [ _; "op_enter" ] -> Some Acquire
            | [ _; "op_exit" ] -> Some Release
            | _ -> None)
        | _ -> None);
    po_rule = Finding.L5;
    po_branch =
      (fun word a b ->
        Printf.sprintf "epoch-bracket balance differs across %s branches (%+d vs %+d)" word a b);
    po_loop =
      Printf.sprintf "loop body opens %d epoch bracket(s) not closed within the iteration";
    po_implicit = Printf.sprintf "implicit else branch exits with %d open epoch bracket(s)";
    po_exit =
      Printf.sprintf "exits with %d open epoch bracket(s); close the bracket on every path";
  }

let is_fun_protect f =
  match f.pexp_desc with
  | Pexp_ident { txt; _ } -> flatten txt = [ "Fun"; "protect" ]
  | _ -> false

(* Count release applications anywhere in [e], including inside
   closures — used for [Fun.protect ~finally:(fun () -> M.unlock ...)],
   whose release runs on every exit including exceptional ones. *)
let count_releases ops e =
  let n = ref 0 in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _) when ops.po_classify f = Some Release -> incr n
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !n

(* An expression that leaves the function by raising rather than
   returning; balance on exceptional exits is out of scope. *)
let is_exception_exit e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _) -> (
      match List.rev (flatten txt) with
      | ("raise" | "raise_notrace" | "failwith" | "invalid_arg") :: _ -> true
      | _ -> false)
  | Pexp_assert { pexp_desc = Pexp_construct ({ txt = Lident "false"; _ }, None); _ } -> true
  | _ -> false

(* If the condition of an [if] is a try-acquire attempt, the then/else
   branches start with different balances. *)
let cond_acquire ops c =
  match c.pexp_desc with
  | Pexp_apply (f, _) when ops.po_classify f = Some Try_acquire -> (1, 0)
  | Pexp_apply
      ( { pexp_desc = Pexp_ident { txt = Lident "not"; _ }; _ },
        [ (_, { pexp_desc = Pexp_apply (f, _); _ }) ] )
    when ops.po_classify f = Some Try_acquire ->
      (0, 1)
  | _ -> (0, 0)

let is_function_expr e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | _ -> false

(* Net balance change of evaluating [e] in statement position.
   Branch constructs whose arms disagree while acquiring are reported;
   the larger (more-held) arm is propagated so a leak is still caught at
   the exit.  Closures contribute zero: their bodies run later. *)
let rec delta ctx ops e =
  match e.pexp_desc with
  | Pexp_apply (f, args) ->
      if is_fun_protect f then
        List.fold_left
          (fun acc (label, arg) ->
            match label with
            | Asttypes.Labelled "finally" -> acc - count_releases ops arg
            | _ -> acc + delta ctx ops arg)
          0 args
      else
        let base = List.fold_left (fun acc (_, arg) -> acc + delta ctx ops arg) 0 args in
        (match ops.po_classify f with
        | Some Acquire -> base + 1
        | Some Release -> base - 1
        | Some Try_acquire | None -> base + delta ctx ops f)
  | Pexp_sequence (a, b) -> delta ctx ops a + delta ctx ops b
  | Pexp_let (_, vbs, body) ->
      List.fold_left
        (fun acc vb ->
          if is_function_expr vb.pvb_expr then acc else acc + delta ctx ops vb.pvb_expr)
        0 vbs
      + delta ctx ops body
  | Pexp_ifthenelse (c, t, eo) ->
      let base = delta ctx ops c in
      let ta, ea = cond_acquire ops c in
      let dt = ta + delta ctx ops t in
      let de = ea + match eo with Some e2 -> delta ctx ops e2 | None -> 0 in
      if dt <> de && max dt de > 0 then
        report ctx ops.po_rule e.pexp_loc (ops.po_branch "if" dt de);
      base + max dt de
  | Pexp_match (scr, cases) | Pexp_try (scr, cases) ->
      let base = delta ctx ops scr in
      let ds = List.map (fun c -> delta ctx ops c.pc_rhs) cases in
      let mx = List.fold_left max min_int ds and mn = List.fold_left min max_int ds in
      if mx <> mn && mx > 0 then
        report ctx ops.po_rule e.pexp_loc (ops.po_branch "match" mn mx);
      base + if cases = [] then 0 else mx
  | Pexp_while (c, body) ->
      let db = delta ctx ops body in
      if db > 0 then report ctx ops.po_rule e.pexp_loc (ops.po_loop db);
      delta ctx ops c
  | Pexp_for (_, lo, hi, _, body) ->
      let db = delta ctx ops body in
      if db > 0 then report ctx ops.po_rule e.pexp_loc (ops.po_loop db);
      delta ctx ops lo + delta ctx ops hi
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_letmodule (_, _, e) | Pexp_newtype (_, e) ->
      delta ctx ops e
  | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_field (e, _)
  | Pexp_assert e | Pexp_letexception (_, e) ->
      delta ctx ops e
  | Pexp_setfield (a, _, b) -> delta ctx ops a + delta ctx ops b
  | Pexp_tuple es | Pexp_array es -> List.fold_left (fun acc e -> acc + delta ctx ops e) 0 es
  | Pexp_record (fields, base) ->
      List.fold_left (fun acc (_, e) -> acc + delta ctx ops e) 0 fields
      + (match base with Some e -> delta ctx ops e | None -> 0)
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> 0
  | _ -> 0

(* Check [e] in tail position of a function whose current syntactic
   balance is [bal]; every exit with a positive balance is a finding. *)
let rec check_tail ctx ops bal e =
  match e.pexp_desc with
  | Pexp_sequence (a, b) -> check_tail ctx ops (bal + delta ctx ops a) b
  | Pexp_let (_, vbs, body) ->
      let bal =
        List.fold_left
          (fun acc vb ->
            if is_function_expr vb.pvb_expr then acc else acc + delta ctx ops vb.pvb_expr)
          bal vbs
      in
      check_tail ctx ops bal body
  | Pexp_ifthenelse (c, t, eo) -> (
      let bal = bal + delta ctx ops c in
      let ta, ea = cond_acquire ops c in
      check_tail ctx ops (bal + ta) t;
      match eo with
      | Some e2 -> check_tail ctx ops (bal + ea) e2
      | None -> if bal + ea > 0 then report ctx ops.po_rule e.pexp_loc (ops.po_implicit (bal + ea)))
  | Pexp_match (scr, cases) ->
      let bal = bal + delta ctx ops scr in
      List.iter (fun c -> check_tail ctx ops bal c.pc_rhs) cases
  | Pexp_try (body, cases) ->
      check_tail ctx ops bal body;
      List.iter (fun c -> check_tail ctx ops bal c.pc_rhs) cases
  | Pexp_constraint (e, _) | Pexp_open (_, e) | Pexp_letmodule (_, _, e) ->
      check_tail ctx ops bal e
  | _ ->
      if not (is_exception_exit e) then begin
        let final = bal + delta ctx ops e in
        if final > 0 then report ctx ops.po_rule e.pexp_loc (ops.po_exit final)
      end

let rec strip_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) -> strip_params body
  | Pexp_newtype (_, body) -> strip_params body
  | _ -> e

let pair_check ctx ops vb =
  if is_function_expr vb.pvb_expr then
    match (strip_params vb.pvb_expr).pexp_desc with
    | Pexp_function cases ->
        List.iter (fun c -> check_tail ctx ops 0 c.pc_rhs) cases
    | _ -> check_tail ctx ops 0 (strip_params vb.pvb_expr)

(* A function whose body releases through a local releaser helper
   ([unlock_distinct] over an array of predecessors) cannot be tracked
   syntactically; it gets the same exemption as an explicit [@acquires]
   tag, inferred from the summary pass. *)
let calls_releaser ctx e =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt = Lident name; _ }; _ }, _)
            when Summaries.is_releaser ctx.summary name ->
              found := true
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* L4: hot-path allocation lint                                       *)
(* ------------------------------------------------------------------ *)

let l4_check ctx vb =
  let flag loc what = report ctx Finding.L4 loc (what ^ " in a [@hot] body allocates") in
  let body = strip_params vb.pvb_expr in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_fun _ | Pexp_function _ -> flag e.pexp_loc "closure"
          | Pexp_tuple _ -> flag e.pexp_loc "tuple construction"
          | Pexp_record _ -> flag e.pexp_loc "record construction"
          | Pexp_array _ -> flag e.pexp_loc "array construction"
          | Pexp_lazy _ -> flag e.pexp_loc "lazy suspension"
          | Pexp_letop _ -> flag e.pexp_loc "binding operator"
          | Pexp_construct (_, Some _) | Pexp_variant (_, Some _) ->
              flag e.pexp_loc "constructor application"
          | Pexp_apply ({ pexp_desc = Pexp_apply _; _ }, _) ->
              flag e.pexp_loc "staged (partial) application"
          | Pexp_apply ({ pexp_desc = Pexp_ident { txt; _ }; _ }, _)
            when is_ref_path (flatten txt) ->
              flag e.pexp_loc "ref cell allocation"
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it body

(* ------------------------------------------------------------------ *)
(* L6: retire/use discipline                                          *)
(* ------------------------------------------------------------------ *)

(* Intraprocedural forward dataflow over the statement walk: a value
   passed to [M.retire] is poisoned — any later mention (field read,
   lock call, re-retire) in the same function is a finding.  A retire of
   a value the function did not allocate itself (a parameter or
   traversal result) must additionally be preceded by an unlinking
   [M.set]/[M.cas] on some path walked earlier.  Poison is branch-local:
   each if/match arm starts from the state before the construct and the
   arms union at the join, so a retire in one arm never taints its
   siblings — only the code after the construct.  Closures and nested
   functions are their own scope. *)
let l6_check ctx vb =
  if is_function_expr vb.pvb_expr then begin
    let poisoned : (string, unit) Hashtbl.t ref = ref (Hashtbl.create 4) in
    let local : (string, unit) Hashtbl.t = Hashtbl.create 4 in
    let unlink_seen = ref false in
    let rec bind_pat p =
      match p.ppat_desc with
      | Ppat_var { txt; _ } -> Hashtbl.replace local txt ()
      | Ppat_tuple ps -> List.iter bind_pat ps
      | Ppat_constraint (p, _) | Ppat_alias (p, _) -> bind_pat p
      | _ -> ()
    in
    (* Walk each arm from a copy of the pre-construct state, then union
       the arms' poison into the state after the construct. *)
    let rec branches thunks =
      let base = !poisoned in
      let outcomes =
        List.map
          (fun thunk ->
            poisoned := Hashtbl.copy base;
            thunk ();
            !poisoned)
          thunks
      in
      List.iter (fun tbl -> Hashtbl.iter (fun k () -> Hashtbl.replace base k ()) tbl) outcomes;
      poisoned := base
    and go e =
      match e.pexp_desc with
      | Pexp_ident { txt = Lident x; loc } ->
          if Hashtbl.mem !poisoned x then
            report ctx Finding.L6 loc
              (Printf.sprintf "use of %s after M.retire (the node may already be recycled)" x)
      | Pexp_apply (f, args) -> (
          let path =
            match f.pexp_desc with Pexp_ident { txt; _ } -> flatten txt | _ -> []
          in
          match (path, List.rev args) with
          | [ _; "retire" ], (_, { pexp_desc = Pexp_ident { txt = Lident x; loc }; _ }) :: rest
            ->
              List.iter (fun (_, a) -> go a) (List.rev rest);
              if Hashtbl.mem !poisoned x then
                report ctx Finding.L6 loc
                  (Printf.sprintf "%s retired twice (retire happens at most once per unlink)" x)
              else begin
                if (not (Hashtbl.mem local x)) && not !unlink_seen then
                  report ctx Finding.L6 loc
                    (Printf.sprintf
                       "retire of %s is not dominated by an unlinking store/CAS (only unlinked \
                        or never-published nodes may be retired)"
                       x);
                Hashtbl.replace !poisoned x ()
              end
          | _ ->
              go f;
              List.iter (fun (_, a) -> go a) args;
              (match path with [ _; ("set" | "cas") ] -> unlink_seen := true | _ -> ()))
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun b ->
              if not (is_function_expr b.pvb_expr) then begin
                go b.pvb_expr;
                bind_pat b.pvb_pat
              end)
            vbs;
          go body
      | Pexp_sequence (a, b) -> go a; go b
      | Pexp_ifthenelse (c, t, eo) ->
          go c;
          branches [ (fun () -> go t); (fun () -> Option.iter go eo) ]
      | Pexp_match (s, cs) | Pexp_try (s, cs) ->
          go s;
          branches
            (List.map
               (fun c () ->
                 Option.iter go c.pc_guard;
                 go c.pc_rhs)
               cs)
      | Pexp_while (c, b) -> go c; go b
      | Pexp_for (_, a, b, _, body) -> go a; go b; go body
      | Pexp_fun _ | Pexp_function _ -> ()
      | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_field (e, _)
      | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_assert e | Pexp_lazy e
      | Pexp_open (_, e) | Pexp_newtype (_, e) | Pexp_letmodule (_, _, e)
      | Pexp_letexception (_, e) ->
          go e
      | Pexp_setfield (a, _, b) -> go a; go b
      | Pexp_tuple es | Pexp_array es -> List.iter go es
      | Pexp_record (fs, base) ->
          List.iter (fun (_, e) -> go e) fs;
          Option.iter go base
      | _ -> ()
    in
    go (strip_params vb.pvb_expr)
  end

(* ------------------------------------------------------------------ *)
(* L7: publish-before-reachable                                       *)
(* ------------------------------------------------------------------ *)

(* Once a node is published — its name appears in the stored value of an
   [M.set]/[M.cas], or its [version] field is bumped — writing a direct
   field cell of it with a non-constant value is a finding: other
   threads can already reach the node, so initialization came too late.
   Constant stores ([M.set n.fully_linked true]) are the deliberate
   post-publish flag idiom and stay exempt.  Cells reached through
   accessor helpers ([next_cell_exn prev]) are list surgery on already
   reachable nodes, never initialization, so only direct [n.field] cells
   can violate.  [match x with Node n -> ...] aliases [n] to [x]. *)
let l7_check ctx vb =
  if is_function_expr vb.pvb_expr then begin
    let alias : (string, string) Hashtbl.t = Hashtbl.create 4 in
    let published : (string, [ `Store | `Version ]) Hashtbl.t = Hashtbl.create 4 in
    let rec resolve_root fuel x =
      if fuel = 0 then x
      else
        match Hashtbl.find_opt alias x with
        | Some y when y <> x -> resolve_root (fuel - 1) y
        | _ -> x
    in
    let resolve_root = resolve_root 8 in
    (* Idents mentioned in value position (function positions excluded). *)
    let rec mentions acc e =
      match e.pexp_desc with
      | Pexp_ident { txt = Lident x; _ } -> x :: acc
      | Pexp_ident _ -> acc
      | Pexp_apply (f, args) ->
          let acc =
            match f.pexp_desc with Pexp_ident _ -> acc | _ -> mentions acc f
          in
          List.fold_left (fun acc (_, a) -> mentions acc a) acc args
      | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_field (e, _)
      | Pexp_constraint (e, _) | Pexp_lazy e | Pexp_open (_, e) ->
          mentions acc e
      | Pexp_tuple es | Pexp_array es -> List.fold_left mentions acc es
      | Pexp_record (fs, base) ->
          let acc = List.fold_left (fun acc (_, e) -> mentions acc e) acc fs in
          (match base with Some e -> mentions acc e | None -> acc)
      | Pexp_ifthenelse (c, t, eo) ->
          let acc = mentions (mentions acc c) t in
          (match eo with Some e -> mentions acc e | None -> acc)
      | Pexp_sequence (a, b) -> mentions (mentions acc a) b
      | _ -> acc
    in
    let is_const v =
      match v.pexp_desc with
      | Pexp_constant _ | Pexp_construct (_, None) | Pexp_variant (_, None) -> true
      | _ -> false
    in
    let register_aliases root pat =
      let rec binders p =
        match p.ppat_desc with
        | Ppat_var { txt; _ } -> [ txt ]
        | Ppat_alias (p, { txt; _ }) -> txt :: binders p
        | Ppat_tuple ps | Ppat_array ps -> List.concat_map binders ps
        | Ppat_record (fields, _) -> List.concat_map (fun (_, p) -> binders p) fields
        | Ppat_constraint (p, _) -> binders p
        | _ -> []
      in
      match pat.ppat_desc with
      | Ppat_construct (_, Some (_, arg)) ->
          List.iter (fun b -> Hashtbl.replace alias b root) (binders arg)
      | _ -> ()
    in
    let handle_store cell v loc =
      let field_cell =
        match cell.pexp_desc with
        | Pexp_field ({ pexp_desc = Pexp_ident { txt = Lident n; _ }; _ }, { txt = fld; _ }) ->
            Some (resolve_root n, (match List.rev (flatten fld) with f :: _ -> f | [] -> ""))
        | _ -> None
      in
      (* Violation: non-constant store to a field of an already published root. *)
      (match field_cell with
      | Some (root, fld) when not (is_const v) -> (
          match Hashtbl.find_opt published root with
          | Some `Store ->
              report ctx Finding.L7 loc
                (Printf.sprintf
                   "field '%s' of %s written after the node was published by a store/CAS \
                    (initialize every cell before publishing)"
                   fld root)
          | Some `Version ->
              report ctx Finding.L7 loc
                (Printf.sprintf
                   "field '%s' of %s written after its version bump (the bump publishes the \
                    node's pending writes; write data fields first)"
                   fld root)
          | None -> ())
      | _ -> ());
      (* Publish effects of this store. *)
      let cell_root = Option.map fst field_cell in
      List.iter
        (fun y ->
          let y = resolve_root y in
          if Some y <> cell_root then
            if not (Hashtbl.mem published y) then Hashtbl.replace published y `Store)
        (mentions [] v);
      match field_cell with
      | Some (root, "version") ->
          if not (Hashtbl.mem published root) then Hashtbl.replace published root `Version
      | _ -> ()
    in
    let rec go e =
      match e.pexp_desc with
      | Pexp_apply (f, args) -> (
          go f;
          List.iter (fun (_, a) -> go a) args;
          let path =
            match f.pexp_desc with Pexp_ident { txt; _ } -> flatten txt | _ -> []
          in
          match (path, args) with
          | [ _; "set" ], [ (_, cell); (_, v) ] -> handle_store cell v e.pexp_loc
          | [ _; "cas" ], [ (_, cell); _; (_, v) ] -> handle_store cell v e.pexp_loc
          | _ -> ())
      | Pexp_let (_, vbs, body) ->
          List.iter
            (fun b ->
              if not (is_function_expr b.pvb_expr) then begin
                go b.pvb_expr;
                match b.pvb_pat.ppat_desc with
                | Ppat_var { txt; _ } ->
                    (* rebinding starts a fresh, unpublished value *)
                    Hashtbl.remove published txt;
                    Hashtbl.remove alias txt
                | _ -> ()
              end)
            vbs;
          go body
      | Pexp_match (scr, cases) ->
          go scr;
          (match scr.pexp_desc with
          | Pexp_ident { txt = Lident x; _ } ->
              List.iter (fun c -> register_aliases (resolve_root x) c.pc_lhs) cases
          | _ -> ());
          List.iter
            (fun c ->
              Option.iter go c.pc_guard;
              go c.pc_rhs)
            cases
      | Pexp_try (s, cs) ->
          go s;
          List.iter
            (fun c ->
              Option.iter go c.pc_guard;
              go c.pc_rhs)
            cs
      | Pexp_sequence (a, b) -> go a; go b
      | Pexp_ifthenelse (c, t, eo) -> go c; go t; Option.iter go eo
      | Pexp_while (c, b) -> go c; go b
      | Pexp_for (_, a, b, _, body) -> go a; go b; go body
      | Pexp_fun _ | Pexp_function _ -> ()
      | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) | Pexp_field (e, _)
      | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_assert e | Pexp_lazy e
      | Pexp_open (_, e) | Pexp_newtype (_, e) | Pexp_letmodule (_, _, e)
      | Pexp_letexception (_, e) ->
          go e
      | Pexp_setfield (a, _, b) -> go a; go b
      | Pexp_tuple es | Pexp_array es -> List.iter go es
      | Pexp_record (fs, base) ->
          List.iter (fun (_, e) -> go e) fs;
          Option.iter go base
      | _ -> ()
    in
    go (strip_params vb.pvb_expr)
  end

(* ------------------------------------------------------------------ *)
(* L5: interprocedural epoch-bracket reachability                     *)
(* ------------------------------------------------------------------ *)

(* Runs off the summary pass after the traversal: in a reclaiming
   module, an unprotected function may not reach shared cells outside a
   bracket — neither by direct dereference (reported on roots, where the
   protocol obligation sits) nor by calling an in-file function that
   touches shared cells without its own protection. *)
let l5_reachability ctx =
  let s = ctx.summary in
  if Summaries.reclaiming s then
    List.iter
      (fun (fn : Summaries.fn) ->
        let unprotected =
          Summaries.status s fn.Summaries.fn_name = Summaries.Unprotected
          && not fn.Summaries.fn_quiescent
        in
        if unprotected then begin
          List.iter
            (fun (c : Summaries.call) ->
              if
                (not c.Summaries.c_site.s_bracketed)
                && (not c.Summaries.c_site.s_unreclaiming)
                && Summaries.touches_shared s c.Summaries.c_callee
              then
                report_pos ctx Finding.L5 c.Summaries.c_site.s_pos
                  (Printf.sprintf
                     "call to %s, which touches shared cells, outside an op_enter/op_exit \
                      bracket (bracket the call, tag %s [@protected], or the caller \
                      [@quiescent])"
                     c.Summaries.c_callee c.Summaries.c_callee))
            fn.Summaries.fn_calls;
          if Summaries.is_root s fn.Summaries.fn_name then
            List.iter
              (fun (d : Summaries.deref) ->
                if
                  (not d.Summaries.d_site.s_bracketed)
                  && not d.Summaries.d_site.s_unreclaiming
                then
                  report_pos ctx Finding.L5 d.Summaries.d_site.s_pos
                    (Printf.sprintf
                       "M.%s outside an op_enter/op_exit bracket in a reclaiming module (open \
                        a bracket, or tag the function [@protected] or [@quiescent])"
                       d.Summaries.d_op))
              fn.Summaries.fn_derefs
        end)
      (Summaries.fns s)

(* ------------------------------------------------------------------ *)
(* The traversal                                                       *)
(* ------------------------------------------------------------------ *)

let module_expr_path me =
  match me.pmod_desc with Pmod_ident { txt; _ } -> Some (flatten txt) | _ -> None

let file ?(summaries = Summaries.empty) ~rules ~file:fname (str : structure) : Finding.t list =
  let has r = List.mem r rules in
  let ctx =
    {
      file = fname;
      l1 = has Finding.L1;
      l2 = has Finding.L2;
      l3 = has Finding.L3;
      l4 = has Finding.L4;
      l5 = has Finding.L5;
      l6 = has Finding.L6;
      l7 = has Finding.L7;
      summary = summaries;
      env = SMap.empty;
      guarded = false;
      exempt = 0;
      ref_ok = [];
      findings = [];
    }
  in
  let lops = lock_ops ctx in
  let scoped_env f =
    let saved = ctx.env in
    f ();
    ctx.env <- saved
  in
  let register_alias name me =
    match module_expr_path me with
    | Some path -> ctx.env <- SMap.add name (resolve ctx.env path) ctx.env
    | None -> ()
  in
  let check_open_like (loc : Location.t) me =
    match module_expr_path me with Some path -> check_path ctx loc path | None -> ()
  in
  let default = Ast_iterator.default_iterator in
  let it =
    {
      default with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } ->
              let path = flatten txt in
              if ctx.l1 && is_ref_path (resolve ctx.env path)
                 && not (List.mem (loc_key loc) ctx.ref_ok)
              then
                report ctx Finding.L1 loc
                  "ref allocation escaping a local let binding (shared state must be an M.cell)";
              check_path ctx loc path
          | Pexp_setfield (a, _, b) ->
              if ctx.l1 then
                report ctx Finding.L1 e.pexp_loc
                  "mutable field assignment outside the memory backend (use M.set)";
              it.expr it a;
              it.expr it b
          | Pexp_let (_, vbs, body) ->
              (* [let x = ref e in ...] is the accepted thread-local
                 temporary idiom; remember the binder so the ident check
                 lets it through. *)
              List.iter
                (fun vb ->
                  match (vb.pvb_pat.ppat_desc, vb.pvb_expr.pexp_desc) with
                  | Ppat_var _, Pexp_apply ({ pexp_desc = Pexp_ident { txt; loc }; _ }, _)
                    when is_ref_path (resolve ctx.env (flatten txt)) ->
                      ctx.ref_ok <- loc_key loc :: ctx.ref_ok
                  | _ -> ())
                vbs;
              List.iter (it.value_binding it) vbs;
              it.expr it body
          | Pexp_ifthenelse (c, t, eo) ->
              it.expr it c;
              if ctx.l2 && mentions_named c then begin
                let saved = ctx.guarded in
                ctx.guarded <- true;
                it.expr it t;
                ctx.guarded <- saved
              end
              else it.expr it t;
              Option.iter (it.expr it) eo
          | Pexp_open (od, body) ->
              check_open_like od.popen_loc od.popen_expr;
              scoped_env (fun () -> it.expr it body)
          | Pexp_letmodule (name, me, body) ->
              scoped_env (fun () ->
                  (match name.txt with
                  | Some n -> register_alias n me
                  | None -> ());
                  (match module_expr_path me with
                  | Some _ -> ()
                  | None -> it.module_expr it me);
                  it.expr it body)
          | _ -> default.expr it e)
      ;
      case =
        (fun it c ->
          it.pat it c.pc_lhs;
          match c.pc_guard with
          | Some g when ctx.l2 && mentions_named g ->
              it.expr it g;
              let saved = ctx.guarded in
              ctx.guarded <- true;
              it.expr it c.pc_rhs;
              ctx.guarded <- saved
          | Some g ->
              it.expr it g;
              it.expr it c.pc_rhs
          | None -> it.expr it c.pc_rhs);
      value_binding =
        (fun it vb ->
          if ctx.l4 && has_attr "hot" vb.pvb_attributes then l4_check ctx vb;
          let acquires = has_attr "acquires" vb.pvb_attributes in
          let inferred =
            (not acquires) && ctx.l3 && is_function_expr vb.pvb_expr
            && calls_releaser ctx vb.pvb_expr
          in
          if ctx.l3 && ctx.exempt = 0 && (not acquires) && not inferred then
            pair_check ctx lops vb;
          if ctx.l5 && Summaries.reclaiming ctx.summary then pair_check ctx bracket_ops vb;
          if ctx.l6 then l6_check ctx vb;
          if ctx.l7 then l7_check ctx vb;
          if acquires || inferred then begin
            ctx.exempt <- ctx.exempt + 1;
            default.value_binding it vb;
            ctx.exempt <- ctx.exempt - 1
          end
          else default.value_binding it vb);
      module_binding =
        (fun it mb ->
          match (mb.pmb_name.txt, module_expr_path mb.pmb_expr) with
          | Some n, Some _ ->
              register_alias n mb.pmb_expr
              (* pure alias: nothing further to walk *)
          | _ -> default.module_binding it mb);
      structure_item =
        (fun it si ->
          match si.pstr_desc with
          | Pstr_open od ->
              check_open_like od.popen_loc od.popen_expr;
              default.structure_item it si
          | Pstr_include incl ->
              check_open_like incl.pincl_loc incl.pincl_mod;
              default.structure_item it si
          | Pstr_type (_, decls) ->
              if ctx.l1 then
                List.iter
                  (fun d ->
                    match d.ptype_kind with
                    | Ptype_record labels ->
                        List.iter
                          (fun l ->
                            if l.pld_mutable = Asttypes.Mutable then
                              report ctx Finding.L1 l.pld_loc
                                (Printf.sprintf
                                   "mutable record field '%s' (shared state must be an M.cell)"
                                   l.pld_name.txt))
                          labels
                    | _ -> ())
                  decls;
              default.structure_item it si
          | _ -> default.structure_item it si);
    }
  in
  it.structure it str;
  if ctx.l5 then l5_reachability ctx;
  List.sort Finding.compare ctx.findings
