(** Interprocedural effect summaries for the lint pass.

    One pass over every parsed file, before the {!Rules} run, computes a
    per-function summary: which backend cells it dereferences, which
    in-file functions it calls, and how many raw lock/unlock operations
    its body contains — each dereference and call site annotated with
    its syntactic context (is the [op_enter]/[op_exit] balance positive
    there?  is it under the unreclaiming arm of an [if M.reclaiming]?).

    Two fixpoints close the in-file call graph:

    - {e protection}: a function is [Protected] when every in-file call
      site reaching it is bracketed, unreclaiming-guarded, or in a
      protected/quiescent caller (or it carries [\[@protected\]]).
      Roots — functions with no in-file call site — are [Unprotected]
      unless tagged.  This is what lets helpers like [locate] inherit
      the bracket from the public wrappers without per-helper tags.
    - {e touches-shared}: a function touches shared cells without
      arranging its own protection — an unguarded dereference in its
      body or an unguarded call to a touching function.  A wrapper that
      opens its own bracket does {e not} touch, so calling it from
      anywhere is fine.  [\[@quiescent\]] bodies (single-threaded
      observers: [fold], [check_invariants]) are exempt wholesale.

    L5 consumes both; L3 consumes the lock counts ([is_releaser]) and
    the [\[@acquires\]] tags ([is_acquires]) to shrink the annotation
    burden — see rules.mli. *)

type pos = { line : int; col : int }

type site = {
  s_pos : pos;
  s_bracketed : bool;
  s_unreclaiming : bool;
}

type deref = { d_site : site; d_op : string }
type call = { c_site : site; c_callee : string }

type fn = {
  fn_name : string;
  fn_protected : bool;  (** carries [\[@protected\]] *)
  fn_quiescent : bool;  (** carries [\[@quiescent\]] *)
  fn_acquires : bool;  (** carries [\[@acquires\]] *)
  fn_derefs : deref list;
  fn_calls : call list;
  fn_locks : int;  (** syntactic [M.lock]/[M.try_lock] count, closures included *)
  fn_unlocks : int;  (** syntactic [M.unlock] count, closures included *)
}

type status = Protected | Unprotected

type file_info

type t = (string * file_info) list
(** Keyed by the display name the findings will carry. *)

val of_sources : (string * Parsetree.structure) list -> t

val find : t -> string -> file_info
(** The summary for one file; an empty summary for unknown names, so a
    single-file lint run degrades to purely intraprocedural checking. *)

val empty : file_info

val reclaiming : file_info -> bool
(** Does the file apply [op_enter]/[retire]/[recycle] (qualified)?  The
    backends in [lib/reclaim] define but never apply them, so they are
    not swept in. *)

val fns : file_info -> fn list
val find_fn : file_info -> string -> fn option
val status : file_info -> string -> status
val touches_shared : file_info -> string -> bool

val is_root : file_info -> string -> bool
(** No in-file call site — an API entry point, from L5's viewpoint. *)

val is_quiescent : file_info -> string -> bool
val is_acquires : file_info -> string -> bool

val is_releaser : file_info -> string -> bool
(** Releases locks it never acquires ([fn_unlocks > 0 && fn_locks = 0]) —
    the [unlock_distinct] shape.  A function calling a releaser gets the
    same L3 exemption as an explicit [\[@acquires\]] tag: its pairing is
    deliberately non-syntactic. *)
