(* Per-domain limbo bags and recycling free-lists on top of {!Epoch}.

   Retired nodes are stamped with the epoch they were unlinked under by
   landing in the calling domain's bag for [epoch mod 3]; when the global
   epoch reaches [e + 2] the bag for [e] has aged out and its contents
   move wholesale onto the same domain's free-list, where {!recycle}
   hands them back to inserts.  Everything here is single-writer: a
   domain only ever touches its own bags and free-list (reached through
   {!Domain.DLS}), so the hot paths are plain loads and stores — the
   epoch counter is the only shared state.

   Costs, for the cost model in FRAMEWORK.md: a retire pushes one list
   cons (3 words) and every [advance_period]-th retire pays one
   {!Epoch.try_advance} scan; a recycle that hits the free-list is
   allocation-free (one DLS read, one list-head pop); a recycle miss
   attempts an epoch advance and a bag rotation before giving up and
   reporting the miss by returning the pool's [dummy] (callers compare
   with [==] and allocate a fresh node — never [Some]/[None], which would
   put an allocation on the [@hot] insert path). *)

module Probe = Vbl_obs.Probe
module C = Vbl_obs.Metrics

type 'a dstate = {
  bags : 'a list array;  (* three limbo bags, indexed by epoch mod 3 *)
  bag_lens : int array;
  mutable bag_epoch : int;  (* epoch whose retirees bags.(bag_epoch mod 3) holds *)
  mutable free : 'a list;
  mutable free_len : int;
  mutable ticks : int;  (* retires since creation, for periodic advances *)
}

type 'a t = {
  dummy : 'a;
      (* sentinel returned by a recycle miss; never stored in any bag *)
  key : 'a dstate Domain.DLS.key;
  states : 'a dstate list Atomic.t;  (* every domain's state, for {!stats} *)
}

(* Attempt a global-epoch advance every 32 retires: frequent enough that
   limbo depth stays within a few advance periods per domain, rare enough
   that the slot scan is amortized noise. *)
let advance_period = 32

let create ~dummy =
  let states = Atomic.make [] in
  let key =
    Domain.DLS.new_key (fun () ->
        let d =
          {
            bags = [| []; []; [] |];
            bag_lens = [| 0; 0; 0 |];
            bag_epoch = Epoch.current ();
            free = [];
            free_len = 0;
            ticks = 0;
          }
        in
        let rec reg () =
          let old = Atomic.get states in
          if not (Atomic.compare_and_set states old (d :: old)) then reg ()
        in
        reg ();
        d)
  in
  { dummy; key; states }

(* Catch [d] up with the current epoch [e], moving every aged-out bag
   onto the free-list.  A bag moves when [bag_epoch] passes it again,
   i.e. 3 epochs after it was filled — one more than the 2-epoch grace
   period requires.  When the free-list is empty the move is a wholesale
   list-head transfer (no allocation, the recycle-miss path); otherwise
   it is a [rev_append] (the retire path, which allocates a cons per
   retired node anyway). *)
let rotate d e =
  if e - d.bag_epoch >= 3 then begin
    (* Idle domain: every bag predates the grace period; flush them all. *)
    for i = 0 to 2 do
      let n = d.bag_lens.(i) in
      if n > 0 then begin
        (match d.free with
        | [] -> d.free <- d.bags.(i)
        | _ :: _ as f -> d.free <- List.rev_append d.bags.(i) f);
        d.bags.(i) <- [];
        d.bag_lens.(i) <- 0;
        d.free_len <- d.free_len + n;
        Probe.add C.Reclaim_freed n
      end
    done;
    d.bag_epoch <- e
  end
  else
    while d.bag_epoch < e do
      d.bag_epoch <- d.bag_epoch + 1;
      let i = d.bag_epoch mod 3 in
      let n = d.bag_lens.(i) in
      if n > 0 then begin
        (match d.free with
        | [] -> d.free <- d.bags.(i)
        | _ :: _ as f -> d.free <- List.rev_append d.bags.(i) f);
        d.bags.(i) <- [];
        d.bag_lens.(i) <- 0;
        d.free_len <- d.free_len + n;
        Probe.add C.Reclaim_freed n
      end
    done

let retire p x =
  let d = Domain.DLS.get p.key in
  let e = Epoch.current () in
  if e <> d.bag_epoch then rotate d e;
  let i = e mod 3 in
  d.bags.(i) <- x :: d.bags.(i);
  d.bag_lens.(i) <- d.bag_lens.(i) + 1;
  Probe.count C.Reclaim_retired;
  d.ticks <- d.ticks + 1;
  if d.ticks mod advance_period = 0 then ignore (Epoch.try_advance () : int)

let[@hot] recycle p =
  let d = Domain.DLS.get p.key in
  match d.free with
  | x :: tl ->
      d.free <- tl;
      d.free_len <- d.free_len - 1;
      Probe.count C.Reclaim_recycled;
      x
  | [] -> (
      (* Miss: help the epoch along and pull any bag that just aged out.
         Still allocation-free — the wholesale branch of [rotate]. *)
      let e = Epoch.try_advance () in
      if e <> d.bag_epoch then rotate d e;
      match d.free with
      | x :: tl ->
          d.free <- tl;
          d.free_len <- d.free_len - 1;
          Probe.count C.Reclaim_recycled;
          x
      | [] -> p.dummy)

type stats = { limbo : int; free : int }

(* Racy cross-domain sums — gauges for reports, exact only at
   quiescence. *)
let stats p =
  List.fold_left
    (fun acc d ->
      {
        limbo = acc.limbo + d.bag_lens.(0) + d.bag_lens.(1) + d.bag_lens.(2);
        free = acc.free + d.free_len;
      })
    { limbo = 0; free = 0 }
    (Atomic.get p.states)
