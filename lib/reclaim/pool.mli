(** Per-domain limbo bags + recycling free-lists over {!Epoch}.

    [retire] stamps a just-unlinked node with the current epoch;
    [recycle] hands back a node whose grace period (two epoch advances)
    has verifiably passed, or the pool's [dummy] sentinel when none is
    available.  Callers compare the result against their dummy with [==]
    — no option allocation on the hot insert path.  All per-node state is
    domain-local ({!Domain.DLS}); only the epoch counter is shared. *)

type 'a t

val create : dummy:'a -> 'a t
(** [dummy] is returned by {!recycle} on a miss and is never stored; use
    a value that can never be retired (list heads are ideal). *)

val retire : 'a t -> 'a -> unit
(** Quarantine [x] until two epoch advances have passed.  Must be called
    at most once per node, after it became unreachable from the shared
    structure, from within an {!Epoch.enter}/{!Epoch.leave} bracket.
    Costs one list cons; every 32nd call also attempts an epoch
    advance. *)

val recycle : 'a t -> 'a
(** Pop a node whose grace period has passed, or the pool's dummy.
    Allocation-free (the miss path attempts an epoch advance and a
    wholesale bag rotation before giving up). *)

type stats = { limbo : int; free : int }

val stats : 'a t -> stats
(** Racy sums across domains; exact only at quiescence. *)
