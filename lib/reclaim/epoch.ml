(* Epoch-based grace-period detection for the real (multi-domain) engine.

   The protocol is Fraser-style three-epoch EBR, the same scheme GCList
   applies to concurrent list-based sets:

   - one process-wide epoch counter, monotonically increasing;
   - one padded announcement slot per domain (0 = quiescent, e = "I am
     inside an operation that began while the epoch was e");
   - the epoch may advance from [e] to [e+1] only when every announced
     slot equals [e], so once the counter reaches [e+2] every operation
     that was in flight when it was [e] has finished.

   A node unlinked and retired while the epoch read [e] can therefore be
   handed back to an allocation free-list as soon as the counter reaches
   [e+2]: no traversal can still hold a reference to it (per-domain limbo
   bags and the free-lists themselves live in {!Pool}).

   Announcing validates: store the observed epoch, then re-read the
   counter and retry if it moved.  Without the re-read a domain could
   observe [e], stall, and publish the stale announcement after the epoch
   had already advanced past [e+1] — too late to stop a concurrent
   reclaimer.  With it, a successful announce guarantees the counter
   cannot reach [e+2] (and so nothing retired at [e] can be recycled)
   until the domain leaves.

   Slot registration is a lock-free push on an atomic list, so
   {!try_advance} never blocks and never allocates.  The push-then-
   announce order makes a scan that misses a just-registered domain
   benign: the missed domain validated its announcement against an epoch
   no older than the scan's, so the *next* advance sees it — exactly the
   one-epoch slip the two-epoch grace period absorbs. *)

module Probe = Vbl_obs.Probe
module C = Vbl_obs.Metrics

(* Epochs start at 1 so that announcement slot value 0 always means
   quiescent. *)
let global = Atomic.make 1

type slot = int Atomic.t

(* Every slot that ever existed, for {!try_advance} scans.  Domains are
   never unregistered: a dead domain's slot reads 0 forever, which never
   blocks an advance. *)
let slots : slot list Atomic.t = Atomic.make []

let rec register (s : slot) =
  let old = Atomic.get slots in
  if not (Atomic.compare_and_set slots old (s :: old)) then register s

let slot_key =
  Domain.DLS.new_key (fun () ->
      let s = Vbl_sync.Padding.copy_as_padded (Atomic.make 0) in
      register s;
      s)

let current () = Atomic.get global

(* A closed top-level loop, not a closure over the slot: [enter] sits on
   every operation's path and must not allocate (test_alloc pins this). *)
let rec announce s =
  let e = Atomic.get global in
  Atomic.set s e;
  (* Validate: if the counter moved between the read and the store, the
     announcement may be too stale to pin anything — redo it. *)
  if Atomic.get global = e then e else announce s

let enter () = announce (Domain.DLS.get slot_key)

let leave () = Atomic.set (Domain.DLS.get slot_key) 0

(* One advance attempt: scan every announcement and bump the counter if
   no domain is still inside an older epoch.  Returns the (possibly just
   advanced) current epoch.  Allocation-free: the scan walks the existing
   slot list. *)
let rec all_current e = function
  | [] -> true
  | s :: rest ->
      let a = Atomic.get s in
      (a = 0 || a = e) && all_current e rest

let try_advance () =
  let e = Atomic.get global in
  if all_current e (Atomic.get slots) then
    if Atomic.compare_and_set global e (e + 1) then Probe.count C.Reclaim_epoch_advances;
  Atomic.get global
