(** Process-wide epoch counter with per-domain announcement slots — the
    grace-period detector behind {!Pool}.

    Protocol: a domain brackets every set operation with {!enter} /
    {!leave}.  The epoch can only advance past [e] once no announcement
    older than [e] remains, so when the counter reads [e + 2] every
    operation in flight at [e] has finished and anything unlinked at [e]
    is unreachable.  See epoch.ml for the validated-announce subtlety. *)

val current : unit -> int
(** The current global epoch (≥ 1; announcement value 0 means quiescent). *)

val enter : unit -> int
(** Announce the calling domain as active and return the epoch it pinned.
    Allocation-free after the domain's first call. *)

val leave : unit -> unit
(** Clear the calling domain's announcement. *)

val try_advance : unit -> int
(** One advance attempt; returns the current epoch afterwards.  Never
    blocks, never allocates. *)
