(** Lock-free external BST after Ellen, Fatourou, Ruppert and van Breugel
    ("Non-blocking Binary Search Trees", PODC 2010): the CAS baseline
    that completes the tree family the way Harris-Michael completes the
    list family.

    Each internal node carries an [update] descriptor cell besides its
    two child pointers.  An update first {e flags} the node whose child
    pointer it will change (CAS [update] from the clean stamp read during
    its search to a descriptor), then performs the child CAS, then unflags — and any operation that
    runs into a flagged node {e helps} the flagged operation to
    completion before retrying, which is what makes every operation
    lock-free:

    - {b insert} flags the parent ([Iflag]), swings the leaf to a fresh
      one-key subtree, unflags.  The same replace-leaf descriptor
      deletes the last element (the leaf is swung to the empty marker).
    - {b delete} flags the grandparent ([Dflag]), marks the parent
      ([Mark] — the parent is being spliced out and its children are
      frozen forever), swings the grandparent's child pointer to the
      sibling, unflags the grandparent.  If the mark CAS loses, the
      delete backtracks (unflags the grandparent) and retries.
    - {b contains} is a wait-free read-only descent.

    Descriptor identity does the work the original's packed state-bit
    words do: helpers match the descriptor record physically before
    clearing a flag, so no helper can clear another operation's flag.

    Structure, sentinels and naming follow {!Seq_bst} (["R<key>"]
    internal nodes; leaves are immutable and unnamed cells-wise).  Range
    operations derive from the shared double-collect and carry its
    family-wide best-effort contract: agreement of two collections is a
    stabilisation heuristic, not a snapshot certificate, and under churn
    the budget may expire and return the last collection. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = "lockfree-bst"

  type node = Leaf of { value : int } | Internal of internal

  and internal = {
    key : int;
    left : node M.cell;
    right : node M.cell;
    update : state M.cell;
  }

  (* The descriptor state of an internal node.  [Iflag]: its child
     pointer is about to swing to [inew].  [Dflag]: its grandchild
     window is being deleted.  [Mark]: the node itself is being spliced
     out and is frozen.  [Clean] carries a stamp allocated fresh by
     every unflag, so two clean states are never physically equal across
     a completed operation — the original's version-carrying update
     word.  Flagging CASes use the state {e read during the search} as
     the expected value; with a shared clean constant instead, a
     flag/swing/unflag by another operation between the search's read
     and the flag CAS would be invisible (ABA) and the child CAS would
     fail silently while the operation reports success. *)
  and state =
    | Clean of Vbl_util.Token.t
    | Iflag of iinfo
    | Dflag of dinfo
    | Mark of dinfo

  and iinfo = { ip : internal; il : node; inew : node }

  and dinfo = {
    dgp : internal;
    dp : internal;
    dp_node : node;  (** [Internal dp] as stored in the tree, for CAS *)
    dl : node;
    dpup : state;  (** [dp.update] as read at search time (a clean stamp) *)
  }

  let clean () = Clean (Vbl_util.Token.fresh ())

  type t = { root : internal; root_node : node; inner : internal }

  let leaf_name v =
    if v = min_int then "Lmin" else if v = max_int then "Lmax" else "L" ^ string_of_int v

  (* Leaves are immutable: no cells, only a creation event under
     instrumented backends. *)
  let make_leaf v =
    if M.named then begin
      let line = M.fresh_line () in
      M.new_node ~name:(leaf_name v) ~line
    end;
    Leaf { value = v }

  let router_name k = "R" ^ if k = max_int then "max" else string_of_int k

  let make_internal key left right =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = router_name key in
      M.new_node ~name:nm ~line;
      {
        key;
        left = M.make ~name:(nm ^ ".left") ~line left;
        right = M.make ~name:(nm ^ ".right") ~line right;
        update = M.make ~name:(nm ^ ".upd") ~line (clean ());
      }
    end
    else
      {
        key;
        left = M.make ~line left;
        right = M.make ~line right;
        update = M.make ~line (clean ());
      }

  let create () =
    let inner =
      make_internal max_int (make_leaf min_int) (make_leaf max_int)
    in
    let root = make_internal max_int (Internal inner) (make_leaf max_int) in
    { root; root_node = Internal root; inner }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "bst: key must be strictly between min_int and max_int"

  let node_key = function Leaf l -> l.value | Internal i -> i.key

  (* Swing the child pointer of [p] that holds [old] to [nw].  The slot
     is recovered from the external-tree routing invariant: a node's key
     routes to its own position. *)
  let cas_child p old nw =
    let c = if node_key old < p.key then p.left else p.right in
    ignore (M.cas c old nw)

  (* Membership: wait-free, allocation-free descent. *)
  let[@hot] rec contains_walk n v =
    match n with
    | Leaf l -> l.value = v
    | Internal i -> contains_walk (M.get (if v < i.key then i.left else i.right)) v

  let contains t v =
    check_key v;
    contains_walk t.root_node v

  (* Helping.  Descriptor records are created once per attempt, so
     matching them physically before clearing a flag is precise: no
     helper can clear a flag on behalf of a different operation. *)
  let rec help = function
    | Clean _ -> ()
    | Iflag i -> help_replace i
    | Mark d -> help_marked d
    | Dflag d -> ignore (help_delete d)

  and help_replace (i : iinfo) =
    cas_child i.ip i.il i.inew;
    match M.get i.ip.update with
    | Iflag i' as cur when i' == i -> ignore (M.cas i.ip.update cur (clean ()))
    | _ -> ()

  and help_marked (d : dinfo) =
    (* The sibling read is safe: [dp] is marked, its children are frozen. *)
    let sibling_cell =
      if node_key d.dl < d.dp.key then d.dp.right else d.dp.left
    in
    cas_child d.dgp d.dp_node (M.get sibling_cell);
    match M.get d.dgp.update with
    | Dflag d' as cur when d' == d -> ignore (M.cas d.dgp.update cur (clean ()))
    | _ -> ()

  and help_delete (d : dinfo) =
    let m = Mark d in
    if M.cas d.dp.update d.dpup m then begin
      help_marked d;
      true
    end
    else
      match M.get d.dp.update with
      | Mark d' when d' == d ->
          (* Another helper installed the mark for this very delete. *)
          help_marked d;
          true
      | cur ->
          help cur;
          (* Backtrack: clear our own grandparent flag and retry. *)
          (match M.get d.dgp.update with
          | Dflag d' as c when d' == d -> ignore (M.cas d.dgp.update c (clean ()))
          | _ -> ());
          false

  (* Descent for updates: grandparent, its update, parent, parent as
     stored node, parent's update, leaf.  Updates are read on the way
     down, before the corresponding child pointer — the order the
     flagging CASes rely on. *)
  let search t v =
    let rec go gp gpup p pn pup n =
      match n with
      | Leaf _ -> (gp, gpup, p, pn, pup, n)
      | Internal i ->
          let up = M.get i.update in
          go p pup i n up (M.get (if v < i.key then i.left else i.right))
    in
    let rootup = M.get t.root.update in
    go t.root rootup t.root t.root_node rootup (M.get t.root.left)

  let insert t v =
    check_key v;
    let rec attempt () =
      let _, _, p, _, pup, l = search t v in
      let lv = node_key l in
      if lv = v then false
      else begin
        match pup with
        | Clean _ ->
            let nl = make_leaf v in
            let small, big, key = if v < lv then (nl, l, lv) else (l, nl, v) in
            let ni = make_internal key small big in
            let i = { ip = p; il = l; inew = Internal ni } in
            if M.cas p.update pup (Iflag i) then begin
              help_replace i;
              true
            end
            else begin
              help (M.get p.update);
              attempt ()
            end
        | st ->
            help st;
            attempt ()
      end
    in
    attempt ()

  let remove t v =
    check_key v;
    let rec attempt () =
      let gp, gpup, p, pn, pup, l = search t v in
      if node_key l <> v then false
      else if p == t.inner then begin
        (* Last element: swing the leaf back to the empty marker with a
           replace-leaf descriptor on the never-removed inner sentinel. *)
        match pup with
        | Clean _ ->
            let i = { ip = p; il = l; inew = make_leaf min_int } in
            if M.cas p.update pup (Iflag i) then begin
              help_replace i;
              true
            end
            else begin
              help (M.get p.update);
              attempt ()
            end
        | st ->
            help st;
            attempt ()
      end
      else begin
        match (gpup, pup) with
        | Clean _, Clean _ ->
            let d = { dgp = gp; dp = p; dp_node = pn; dl = l; dpup = pup } in
            if M.cas gp.update gpup (Dflag d) then begin
              if help_delete d then true else attempt ()
            end
            else begin
              help (M.get gp.update);
              attempt ()
            end
        | Clean _, st | st, _ ->
            help st;
            attempt ()
      end
    in
    attempt ()

  let fold f init t =
    let rec go acc n =
      match n with
      | Leaf l ->
          if l.value = min_int || l.value = max_int then acc else f acc l.value
      | Internal i -> go (go acc (M.get i.left)) (M.get i.right)
    in
    go init t.root_node

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let exception Bad of string in
    let rec go n lo hi depth =
      if depth > 1_000_000 then raise (Bad "descent did not terminate (cycle?)");
      match n with
      | Leaf l ->
          let v = l.value in
          if not (lo <= v && v < hi) && not (v = max_int && hi = max_int) then
            raise (Bad (Printf.sprintf "leaf %d outside range [%d, %d)" v lo hi))
      | Internal i ->
          (match M.get i.update with
          | Clean _ -> ()
          | Iflag _ | Dflag _ | Mark _ ->
              raise
                (Bad (Printf.sprintf "internal %d still flagged at quiescence" i.key)));
          let k = i.key in
          if k <= lo || k > hi then
            raise (Bad (Printf.sprintf "internal key %d outside (%d, %d]" k lo hi));
          go (M.get i.left) lo k (depth + 1);
          go (M.get i.right) k hi (depth + 1)
    in
    if t.root.key <> max_int then Error "root is not the max_int sentinel"
    else
      try
        (match M.get t.root.left with
        | Internal i when i == t.inner -> ()
        | _ -> raise (Bad "inner sentinel detached from the root"));
        go (M.get t.root.left) min_int max_int 0;
        Ok ()
      with Bad msg -> Error msg
end
