(** A lazy (Heller-style) external BST baseline: the same external tree
    shape as {!Seq_bst} made concurrent with lock-then-validate, plus
    logical deletion of spliced routers so a validation can tell a stale
    router from a live one without re-descending.

    The deliberate contrast with {!Vbl_bst} is {e when} locks are taken:
    here every update locks its window {e before} deciding the outcome —
    an insert of a present value and a remove of an absent one both
    acquire (and then release) the parent's lock, exactly like the lazy
    list locks [pred]/[curr] before discovering the operation must fail.
    The directed schedule suite leans on this: the paper's accepted
    "decide without locking" schedules complete on [vbl-bst] and are
    refused here with [Thread_blocked].

    [contains] is wait-free, as in the lazy list.  Structure, naming
    (["R<key>"] routers, ["L<value>"] leaves) and invariants match
    {!Seq_bst}; leaves are immutable so every validation is a single
    physical equality on a child pointer. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = "lazy-bst"

  type node =
    | Leaf of { value : int M.cell }
    | Router of {
        key : int M.cell;
        left : node M.cell;
        right : node M.cell;
        deleted : bool M.cell;
        lock : M.lock;
      }

  type t = { root : node; inner : node }

  let leaf_name v =
    if v = min_int then "Lmin" else if v = max_int then "Lmax" else "L" ^ string_of_int v

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_leaf value =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = leaf_name value in
      M.new_node ~name:nm ~line;
      Leaf { value = M.make ~name:(nm ^ ".val") ~line value }
    end
    else Leaf { value = M.make ~line value }

  let router_name k = "R" ^ if k = max_int then "max" else string_of_int k

  let make_router key left right =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = router_name key in
      M.new_node ~name:nm ~line;
      Router
        {
          key = M.make ~name:(nm ^ ".key") ~line key;
          left = M.make ~name:(nm ^ ".left") ~line left;
          right = M.make ~name:(nm ^ ".right") ~line right;
          deleted = M.make ~name:(nm ^ ".del") ~line false;
          lock = M.make_lock ~name:(nm ^ ".lock") ~line ();
        }
    end
    else
      Router
        {
          key = M.make ~line key;
          left = M.make ~line left;
          right = M.make ~line right;
          deleted = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let create () =
    let inner = make_router max_int (make_leaf min_int) (make_leaf max_int) in
    { root = make_router max_int inner (make_leaf max_int); inner }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "bst: key must be strictly between min_int and max_int"

  let child_cell node v =
    match node with
    | Router r -> if v < M.get r.key then r.left else r.right
    | Leaf _ -> assert false

  let router_lock = function Router r -> r.lock | Leaf _ -> assert false
  let router_deleted = function Router r -> M.get r.deleted | Leaf _ -> assert false
  let leaf_value = function Leaf l -> M.get l.value | Router _ -> assert false

  (* Wait-free descent to the leaf for [v]: (grandparent, parent, leaf). *)
  let locate t v =
    let rec go g p l =
      match l with Leaf _ -> (g, p, l) | Router _ -> go p l (M.get (child_cell l v))
    in
    go t.root t.inner (M.get (child_cell t.inner v))

  (* Lock [node] and check it is live and still the parent of [expected]
     for value [v].  [@acquires]: on success the lock is handed to the
     caller (lint L3 exemption). *)
  let[@acquires] lock_child_at node v expected =
    M.lock (router_lock node);
    if (not (router_deleted node)) && M.get (child_cell node v) == expected then true
    else begin
      M.unlock (router_lock node);
      false
    end

  let insert t v =
    check_key v;
    let rec attempt () =
      let _, p, l = locate t v in
      (* Lazy discipline: lock and validate the window first, decide the
         outcome only under the lock. *)
      if not (lock_child_at p v l) then attempt ()
      else begin
        let lv = leaf_value l in
        if lv = v then begin
          M.unlock (router_lock p);
          false
        end
        else begin
          let nl = make_leaf v in
          let small, big, key = if v < lv then (nl, l, lv) else (l, nl, v) in
          M.set (child_cell p v) (make_router key small big);
          M.unlock (router_lock p);
          true
        end
      end
    in
    attempt ()

  let remove t v =
    check_key v;
    let rec attempt () =
      let g, p, l = locate t v in
      if p == t.inner then begin
        (* Under the never-spliced inner sentinel: replace the leaf with
           the empty-tree marker if it holds [v]. *)
        if not (lock_child_at p v l) then attempt ()
        else if leaf_value l <> v then begin
          M.unlock (router_lock p);
          false
        end
        else begin
          M.set (child_cell p v) (make_leaf min_int);
          M.unlock (router_lock p);
          true
        end
      end
      else if not (lock_child_at g v p) then attempt ()
      else if not (lock_child_at p v l) then begin
        M.unlock (router_lock g);
        attempt ()
      end
      else if leaf_value l <> v then begin
        (* Absent — discovered only after both windows were locked. *)
        M.unlock (router_lock p);
        M.unlock (router_lock g);
        false
      end
      else begin
        (* Both ancestors pinned: p cannot be spliced (needs g's lock) and
           p's children cannot change (needs p's lock). *)
        let sibling =
          match p with
          | Router r -> if v < M.get r.key then M.get r.right else M.get r.left
          | Leaf _ -> assert false
        in
        (match p with Router r -> M.set r.deleted true | Leaf _ -> assert false);
        M.set (child_cell g v) sibling;
        M.unlock (router_lock p);
        M.unlock (router_lock g);
        true
      end
    in
    attempt ()

  let contains t v =
    check_key v;
    let _, _, l = locate t v in
    leaf_value l = v

  let fold f init t =
    let rec go acc node =
      match node with
      | Leaf l ->
          let v = M.get l.value in
          if v = min_int || v = max_int then acc else f acc v
      | Router r ->
          let acc = go acc (M.get r.left) in
          go acc (M.get r.right)
    in
    go init t.root

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let exception Bad of string in
    let rec go node lo hi depth =
      if depth > 1_000_000 then raise (Bad "descent did not terminate (cycle?)");
      match node with
      | Leaf l ->
          let v = M.get l.value in
          if not (lo <= v && v < hi) && not (v = max_int && hi = max_int) then
            raise (Bad (Printf.sprintf "leaf %d outside range [%d, %d)" v lo hi))
      | Router r ->
          if M.get r.deleted then raise (Bad "reachable deleted router");
          if M.lock_held r.lock then raise (Bad "router left locked");
          let k = M.get r.key in
          if k <= lo || k > hi then
            raise (Bad (Printf.sprintf "router key %d outside (%d, %d]" k lo hi));
          go (M.get r.left) lo k (depth + 1);
          go (M.get r.right) k hi (depth + 1)
    in
    match t.root with
    | Router r when M.get r.key = max_int -> (
        try
          go (M.get r.left) min_int max_int 0;
          Ok ()
        with Bad msg -> Error msg)
    | Router _ | Leaf _ -> Error "root is not the max_int sentinel router"
end
