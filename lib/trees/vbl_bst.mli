(** VBL-style external BST (the paper's future-work direction for
    tree-based dictionaries): wait-free descents, value checks before any
    locking, identity validation under one (insert) or two (remove)
    router locks taken in ancestor order, logical deletion of spliced
    routers.  See the implementation header for the one list-side trick
    that does not transfer. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
