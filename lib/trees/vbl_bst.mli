(** The concurrency-optimal partially-external BST (Aksenov et al., "A
    Concurrency-Optimal Binary Search Tree"): wait-free descents, value
    checks before any locking, per-node state/tree lock pairs, versioned
    window re-validation for links, deletion by state flag with
    opportunistic physical unlinking of nodes that have at most one
    child.  Instrumented node names are ["N<key>"] with the root
    sentinel ["rt"]; cells are [.del]/[.ulk]/[.left]/[.right]/[.ver]
    and the two locks [.slock]/[.lock]. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
