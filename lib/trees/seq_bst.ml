(** Sequential external (leaf-oriented) binary search tree — the
    tree-shaped analogue of the paper's sequential list [LL]: routers
    carry keys and route, leaves carry the actual set elements, and every
    operation is a root-to-leaf descent followed by at most one or two
    pointer writes.

    Routing convention: at a router with key [k], values [< k] go left,
    values [>= k] go right.  Two sentinel routers (both keyed [max_int])
    sit above the real tree so every real leaf has a proper parent and
    grandparent; sentinel leaves store [min_int]/[max_int] and are never
    removed.

    Not safe for concurrent use — like {!Vbl_lists.Seq_list} it exists as
    the unsynchronised baseline and as the structure the concurrent
    variants refine. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = "sequential-bst"

  type node =
    | Leaf of { value : int M.cell }
    | Router of {
        key : int M.cell;
        left : node M.cell;
        right : node M.cell;
        deleted : bool M.cell;
        lock : M.lock;
      }

  type t = {
    root : node;  (* sentinel router, key = max_int, never modified *)
    inner : node;  (* second sentinel under root.left, never spliced *)
  }

  let leaf_name v =
    if v = min_int then "Lmin" else if v = max_int then "Lmax" else "L" ^ string_of_int v

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_leaf value =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = leaf_name value in
      M.new_node ~name:nm ~line;
      Leaf { value = M.make ~name:(nm ^ ".val") ~line value }
    end
    else Leaf { value = M.make ~line value }

  let router_name k = "R" ^ if k = max_int then "max" else string_of_int k

  let make_router key left right =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = router_name key in
      M.new_node ~name:nm ~line;
      Router
        {
          key = M.make ~name:(nm ^ ".key") ~line key;
          left = M.make ~name:(nm ^ ".left") ~line left;
          right = M.make ~name:(nm ^ ".right") ~line right;
          deleted = M.make ~name:(nm ^ ".del") ~line false;
          lock = M.make_lock ~name:(nm ^ ".lock") ~line ();
        }
    end
    else
      Router
        {
          key = M.make ~line key;
          left = M.make ~line left;
          right = M.make ~line right;
          deleted = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let create () =
    let inner = make_router max_int (make_leaf min_int) (make_leaf max_int) in
    { root = make_router max_int inner (make_leaf max_int); inner }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "bst: key must be strictly between min_int and max_int"


  (* Which child does value [v] route to? *)
  let child_cell node v =
    match node with
    | Router r -> if v < M.get r.key then r.left else r.right
    | Leaf _ -> assert false

  (* Descend to the leaf for [v], returning (grandparent, parent, leaf).
     The sentinels guarantee a router parent and grandparent: root.left is
     always the inner sentinel, so the degenerate case is p = inner. *)
  let locate t v =
    let rec go g p l =
      match l with Leaf _ -> (g, p, l) | Router _ -> go p l (M.get (child_cell l v))
    in
    go t.root t.inner (M.get (child_cell t.inner v))

  let leaf_value = function Leaf l -> M.get l.value | Router _ -> assert false

  let insert t v =
    check_key v;
    let _, p, l = locate t v in
    let lv = leaf_value l in
    if lv = v then false
    else begin
      (* Replace leaf [l] with a router over {l, new leaf}. *)
      let nl = make_leaf v in
      let small, big, key = if v < lv then (nl, l, lv) else (l, nl, v) in
      M.set (child_cell p v) (make_router key small big);
      true
    end

  let remove t v =
    check_key v;
    let g, p, l = locate t v in
    if leaf_value l <> v then false
    else if p == t.inner then begin
      (* The last real leaf sits directly under the inner sentinel, which
         must never be spliced: put back the empty-tree marker instead. *)
      M.set (child_cell p v) (make_leaf min_int);
      true
    end
    else begin
      (* Splice out parent [p]: its other child replaces it under [g]. *)
      let sibling =
        match p with
        | Router r -> if v < M.get r.key then M.get r.right else M.get r.left
        | Leaf _ -> assert false
      in
      (match p with Router r -> M.set r.deleted true | Leaf _ -> assert false);
      M.set (child_cell g v) sibling;
      true
    end

  let contains t v =
    check_key v;
    let _, _, l = locate t v in
    leaf_value l = v

  let fold f init t =
    let rec go acc node =
      match node with
      | Leaf l ->
          let v = M.get l.value in
          if v = min_int || v = max_int then acc else f acc v
      | Router r ->
          let acc = go acc (M.get r.left) in
          go acc (M.get r.right)
    in
    go init t.root

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  (* Structural invariants: external shape, key ranges respected, no
     reachable deleted router, leaves strictly ordered left-to-right. *)
  let check_invariants t =
    let exception Bad of string in
    let rec go node lo hi depth =
      if depth > 1_000_000 then raise (Bad "descent did not terminate (cycle?)");
      match node with
      | Leaf l ->
          let v = M.get l.value in
          if not (lo <= v && v < hi) && not (v = max_int && hi = max_int) then
            raise (Bad (Printf.sprintf "leaf %d outside range [%d, %d)" v lo hi))
      | Router r ->
          if M.get r.deleted then raise (Bad "reachable deleted router");
          let k = M.get r.key in
          if k <= lo || k > hi then
            raise (Bad (Printf.sprintf "router key %d outside (%d, %d]" k lo hi));
          go (M.get r.left) lo k (depth + 1);
          go (M.get r.right) k hi (depth + 1)
    in
    match t.root with
    | Router r when M.get r.key = max_int -> (
        try
          go (M.get r.left) min_int max_int 0;
          Ok ()
        with Bad msg -> Error msg)
    | Router _ | Leaf _ -> Error "root is not the max_int sentinel router"
end
