(** Tree registry, mirroring {!Vbl_lists.Registry}. *)

module R = Vbl_memops.Real_mem
module I = Vbl_memops.Instr_mem

module Sequential_bst = Seq_bst.Make (R)
module Coarse_bst_impl = Coarse_bst.Make (R)
module Lazy_bst_impl = Lazy_bst.Make (R)
module Lockfree_bst_impl = Lockfree_bst.Make (R)
module Vbl_bst_impl = Vbl_bst.Make (R)
module Seq_bst_i = Seq_bst.Make (I)
module Coarse_bst_i = Coarse_bst.Make (I)
module Lazy_bst_i = Lazy_bst.Make (I)
module Lockfree_bst_i = Lockfree_bst.Make (I)
module Vbl_bst_i = Vbl_bst.Make (I)

type impl = (module Vbl_lists.Set_intf.S)

(* The sequential tree is single-threaded only, like the sequential list. *)
let concurrent : impl list =
  [
    (module Coarse_bst_impl);
    (module Lazy_bst_impl);
    (module Lockfree_bst_impl);
    (module Vbl_bst_impl);
  ]

let all : impl list = (module Sequential_bst : Vbl_lists.Set_intf.S) :: concurrent

let instrumented : impl list =
  [
    (module Seq_bst_i);
    (module Coarse_bst_i);
    (module Lazy_bst_i);
    (module Lockfree_bst_i);
    (module Vbl_bst_i);
  ]

let find_exn nm : impl =
  match
    List.find_opt
      (fun i ->
        let module S = (val i : Vbl_lists.Set_intf.S) in
        S.name = nm)
      all
  with
  | Some i -> i
  | None -> invalid_arg ("Vbl_trees.Registry.find_exn: unknown algorithm " ^ nm)
