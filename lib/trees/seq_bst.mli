(** Sequential external (leaf-oriented) BST: routers route, leaves hold
    the elements; two sentinel routers guarantee every real leaf a parent
    and grandparent.  Single-threaded only — the tree-shaped analogue of
    the sequential list [LL]. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
