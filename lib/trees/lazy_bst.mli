(** Lazy (Heller-style) external BST baseline: wait-free [contains],
    lock-then-validate updates that take their window locks {e before}
    deciding the outcome — the over-synchronising contrast to
    {!Vbl_bst}'s decide-without-locking discipline.  Naming and
    structure follow {!Seq_bst} (["R<key>"] routers, ["L<value>"]
    leaves). *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
