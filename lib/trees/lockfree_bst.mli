(** Lock-free external BST (Ellen, Fatourou, Ruppert, van Breugel, PODC
    2010): flag-help-CAS updates via per-internal-node descriptor cells,
    wait-free [contains].  The tree family's CAS baseline, as
    Harris-Michael is the list family's. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
