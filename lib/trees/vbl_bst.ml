(** The concurrency-optimal partially-external BST of Aksenov, Gramoli,
    Kuznetsov, Malova and Ravi ("A Concurrency-Optimal Binary Search
    Tree"), built from the same ingredients the paper distils from the
    VBL list:

    - {b wait-free descents}: [contains] reads only child pointers and
      one [deleted] flag — no locks, no versions;
    - {b value checks before any locking}: inserting a present value or
      removing an absent one returns with zero synchronisation, and a
      remove of a logically deleted node likewise refuses without locks;
    - {b two locks per node}: a {e state} lock protecting the [deleted]
      flag and a {e tree} lock protecting the child pointers, so an
      insert reviving a routing node and an insert linking a fresh leaf
      under the same node never contend;
    - {b versioned windows}: a descent that falls off the tree at node
      [p] records [p.ver], and the subsequent link validates {e by
      version only} ([not p.unlinked && p.ver = s]) under [p]'s tree
      lock — the window re-validation that makes the schedule in which
      two inserts race for one empty slot rejectable without
      re-descending blindly;
    - {b deletion by state flag}: [remove] linearizes at a single
      [deleted := true] under the state lock.  Nodes are spliced out
      only when they have at most one child (the {e partially-external}
      compromise: a deleted node with two children stays as a routing
      node until a later restructuring finds it with fewer).  Physical
      unlinking is one opportunistic attempt under parent-then-victim
      tree locks in ancestor order; a failed validation just leaves the
      routing node behind.

    Range operations come from {!Vbl_lists.Set_intf.Derive}'s
    double-collect and carry its family-wide best-effort contract:
    presence here flips with a single [deleted]-flag write or a single
    child-pointer link, so each collected value was present at the
    moment its node was read, but two agreeing collections do not
    certify a snapshot — an ABA toggle (remove + re-insert between the
    collections) restores agreement — so [range_query] is not
    linearizable under concurrent updates. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = "vbl-bst"

  type node = {
    key : int;  (** immutable: routing never re-keys a node *)
    deleted : bool M.cell;  (** state flag — guarded by [slock] *)
    unlinked : bool M.cell;  (** spliced out — guarded by [tlock] *)
    left : node option M.cell;
    right : node option M.cell;
    ver : int M.cell;  (** bumped by every child write, under [tlock] *)
    slock : M.lock;
    tlock : M.lock;
  }

  type t = { root : node }
  (** The root is a sentinel with key [max_int]; every real key routes
      left of it, so the empty tree is [root.left = None] and the
      sentinel itself is never deleted or unlinked. *)

  let node_name k = if k = max_int then "rt" else "N" ^ string_of_int k

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node k =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = node_name k in
      M.new_node ~name:nm ~line;
      {
        key = k;
        deleted = M.make ~name:(nm ^ ".del") ~line false;
        unlinked = M.make ~name:(nm ^ ".ulk") ~line false;
        left = M.make ~name:(nm ^ ".left") ~line None;
        right = M.make ~name:(nm ^ ".right") ~line None;
        ver = M.make ~name:(nm ^ ".ver") ~line 0;
        slock = M.make_lock ~name:(nm ^ ".slock") ~line ();
        tlock = M.make_lock ~name:(nm ^ ".lock") ~line ();
      }
    end
    else
      {
        key = k;
        deleted = M.make ~line false;
        unlinked = M.make ~line false;
        left = M.make ~line None;
        right = M.make ~line None;
        ver = M.make ~line 0;
        slock = M.make_lock ~line ();
        tlock = M.make_lock ~line ();
      }

  let create () = { root = make_node max_int }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "bst: key must be strictly between min_int and max_int"

  let child n v = if v < n.key then n.left else n.right

  (* Membership: wait-free, allocation-free descent. *)
  let[@hot] rec contains_walk n v =
    if v = n.key then not (M.get n.deleted)
    else
      match M.get (if v < n.key then n.left else n.right) with
      | Some c -> contains_walk c v
      | None -> false

  let contains t v =
    check_key v;
    contains_walk t.root v

  type where =
    | Found of node * node  (** parent, node with the key *)
    | Missing of node * int  (** node we fell off, its version *)

  (* Update descent.  Falling off at [n] records a seqlock-style window:
     read [n.ver], then re-check the slot is still empty — a later
     [n.ver = s] comparison under [n]'s tree lock then certifies the
     slot stayed empty from the re-check to the lock acquisition. *)
  let locate t v =
    let rec go p n =
      if v = n.key then Found (p, n)
      else
        let c = child n v in
        match M.get c with
        | Some m -> go n m
        | None -> (
            let s = M.get n.ver in
            match M.get c with Some m -> go n m | None -> Missing (n, s))
    in
    go t.root t.root

  let insert t v =
    check_key v;
    let rec attempt () =
      match locate t v with
      | Found (_, n) ->
          if not (M.get n.deleted) then false (* present: no lock ever taken *)
          else begin
            (* Revive the routing node under its state lock — deletion by
               state flag makes this a one-flag write. *)
            M.lock n.slock;
            if M.get n.unlinked then begin
              M.unlock n.slock;
              attempt ()
            end
            else if M.get n.deleted then begin
              M.set n.deleted false;
              M.unlock n.slock;
              true
            end
            else begin
              M.unlock n.slock;
              false
            end
          end
      | Missing (p, s) ->
          let x = make_node v in
          M.lock p.tlock;
          (* Version-only window validation: no pointer identity check is
             needed (or taken) — [ver] unchanged means no link or splice
             touched [p]'s children since the descent's empty re-check. *)
          if (not (M.get p.unlinked)) && M.get p.ver = s then begin
            M.set (child p v) (Some x);
            M.set p.ver (s + 1);
            M.unlock p.tlock;
            true
          end
          else begin
            M.unlock p.tlock;
            attempt ()
          end
    in
    attempt ()

  (* One opportunistic physical-unlink attempt after a logical remove.
     Lock order: victim state lock, then parent tree lock, then victim
     tree lock.  Tree locks are always taken in ancestor order (the
     ancestor relation between two live nodes never flips: splices only
     remove intermediate nodes and links only add leaves), and the one
     state lock is never waited for while a tree lock is held, so the
     order is global and deadlock-free.  The state lock serialises the
     splice against a concurrent revive-insert: without it, an insert
     could resurrect [n] between our deleted-check and the splice, and
     we would unlink a live key. *)
  let cleanup p n =
    M.lock n.slock;
    if M.get n.deleted && not (M.get n.unlinked) then begin
      M.lock p.tlock;
      M.lock n.tlock;
      let pc = child p n.key in
      let still_child =
        match M.get pc with Some m -> m == n | None -> false
      in
      if still_child && not (M.get p.unlinked) then begin
        match (M.get n.left, M.get n.right) with
        | Some _, Some _ -> () (* two children: stays as a routing node *)
        | (Some _ as only), None | None, (Some _ as only) | (None as only), None
          ->
            M.set n.unlinked true;
            M.set pc only;
            M.set p.ver (M.get p.ver + 1)
      end;
      M.unlock n.tlock;
      M.unlock p.tlock
    end;
    M.unlock n.slock

  let remove t v =
    check_key v;
    let rec attempt () =
      match locate t v with
      | Missing _ -> false (* absent: no lock ever taken *)
      | Found (p, n) ->
          if M.get n.deleted then false (* already absent: still lock-free *)
          else begin
            M.lock n.slock;
            if M.get n.unlinked then begin
              M.unlock n.slock;
              attempt ()
            end
            else if M.get n.deleted then begin
              M.unlock n.slock;
              false
            end
            else begin
              M.set n.deleted true;
              (* linearization point *)
              M.unlock n.slock;
              cleanup p n;
              true
            end
          end
    in
    attempt ()

  (* In-order over live keys; deleted routing nodes are skipped, the
     sentinel contributes nothing. *)
  let fold f init t =
    let rec go acc n =
      let acc = match M.get n.left with Some c -> go acc c | None -> acc in
      let acc =
        if n.key <> max_int && not (M.get n.deleted) then f acc n.key else acc
      in
      match M.get n.right with Some c -> go acc c | None -> acc
    in
    go init t.root

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let exception Bad of string in
    let check_node n =
      if M.get n.unlinked then
        raise (Bad (Printf.sprintf "reachable unlinked node %d" n.key));
      if M.lock_held n.slock then
        raise (Bad (Printf.sprintf "node %d state lock left held" n.key));
      if M.lock_held n.tlock then
        raise (Bad (Printf.sprintf "node %d tree lock left held" n.key))
    in
    let rec go n lo hi depth =
      if depth > 1_000_000 then raise (Bad "descent did not terminate (cycle?)");
      if not (lo < n.key && n.key < hi) then
        raise (Bad (Printf.sprintf "node %d outside (%d, %d)" n.key lo hi));
      check_node n;
      (match M.get n.left with Some c -> go c lo n.key (depth + 1) | None -> ());
      match M.get n.right with Some c -> go c n.key hi (depth + 1) | None -> ()
    in
    if t.root.key <> max_int then Error "root is not the max_int sentinel"
    else
      try
        if M.get t.root.deleted then raise (Bad "root sentinel marked deleted");
        check_node t.root;
        (match M.get t.root.right with
        | Some _ -> raise (Bad "root sentinel has a right child")
        | None -> ());
        (match M.get t.root.left with
        | Some c -> go c min_int max_int 0
        | None -> ());
        Ok ()
      with Bad msg -> Error msg
end
