(** The sequential external BST behind one global lock: the
    zero-concurrency anchor of the tree family. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
