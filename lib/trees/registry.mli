(** Tree registry: real-backend instantiations for benchmarks,
    instrumented ones for the schedule machinery. *)

module Sequential_bst : Vbl_lists.Set_intf.S
module Coarse_bst_impl : Vbl_lists.Set_intf.S
module Lazy_bst_impl : Vbl_lists.Set_intf.S
module Lockfree_bst_impl : Vbl_lists.Set_intf.S
module Vbl_bst_impl : Vbl_lists.Set_intf.S
module Seq_bst_i : Vbl_lists.Set_intf.S
module Coarse_bst_i : Vbl_lists.Set_intf.S
module Lazy_bst_i : Vbl_lists.Set_intf.S
module Lockfree_bst_i : Vbl_lists.Set_intf.S
module Vbl_bst_i : Vbl_lists.Set_intf.S

type impl = (module Vbl_lists.Set_intf.S)

val concurrent : impl list
val all : impl list
val instrumented : impl list
val find_exn : string -> impl
