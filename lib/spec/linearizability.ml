(** Linearizability checking of set histories (paper §2.1).

    The checker exploits the compositionality theorem of Herlihy & Wing: a
    history is linearizable iff each per-object subhistory is.  For the set
    type each key is an independent one-bit object ([insert]/[remove]/
    [contains] of [v] only touch [v]'s membership), so the history is split
    by key and each partition is checked with a Wing-Gong-style depth-first
    search over linearization prefixes, memoised on (linearized-set,
    membership-bit).  Candidates at each step are the unlinearized
    operations invoked no later than the earliest unlinearized response, so
    the branching factor is bounded by the number of threads rather than
    the history length.

    Pending (incomplete) operations may either take effect — with an
    unconstrained response — or be dropped, per the completion rule for
    linearizability. *)

type verdict = Linearizable | Not_linearizable of { key : int }

(* One partition: all operations on a single key, as parallel arrays for
   cache-friendly DFS. *)
type partition = {
  p_ops : History.operation array; (* sorted by invocation time *)
  p_complete : int; (* number of non-pending ops *)
}

let partition_by_key history =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (o : History.operation) ->
      let k = Set_model.key o.op in
      let prev = Option.value ~default:[] (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (o :: prev))
    (History.operations history);
  Hashtbl.fold
    (fun key ops acc ->
      let arr = Array.of_list (List.rev ops) in
      Array.sort (fun (a : History.operation) b -> compare a.invoked_at b.invoked_at) arr;
      let complete =
        Array.fold_left
          (fun n (o : History.operation) -> if o.completion = History.Pending then n else n + 1)
          0 arr
      in
      (key, { p_ops = arr; p_complete = complete }) :: acc)
    tbl []

(* The one-bit object semantics of a single key. *)
let apply_bit present (op : Set_model.op) =
  match op with
  | Set_model.Insert _ -> (true, not present)
  | Set_model.Remove _ -> (false, present)
  | Set_model.Contains _ -> (present, present)

exception Found

let check_partition { p_ops; p_complete } =
  let n = Array.length p_ops in
  if n = 0 then true
  else begin
    let nbytes = (n + 7) / 8 in
    let visited = Hashtbl.create 256 in
    let mask = Bytes.make nbytes '\000' in
    let in_mask i = Char.code (Bytes.get mask (i / 8)) land (1 lsl (i mod 8)) <> 0 in
    let set_mask i b =
      let byte = Char.code (Bytes.get mask (i / 8)) in
      let bit = 1 lsl (i mod 8) in
      Bytes.set mask (i / 8) (Char.chr (if b then byte lor bit else byte land lnot bit))
    in
    let rec dfs present remaining_complete =
      if remaining_complete = 0 then raise Found;
      let memo_key = Bytes.to_string mask ^ if present then "1" else "0" in
      if not (Hashtbl.mem visited memo_key) then begin
        Hashtbl.add visited memo_key ();
        (* Earliest response among unlinearized ops bounds the candidates:
           an op invoked after some unlinearized op returned cannot be
           linearized yet. *)
        let min_ret = ref max_int in
        for i = 0 to n - 1 do
          if not (in_mask i) then min_ret := min !min_ret p_ops.(i).returned_at
        done;
        (try
           for i = 0 to n - 1 do
             let o = p_ops.(i) in
             if o.invoked_at > !min_ret then raise Exit (* sorted: no candidates beyond *)
             else if not (in_mask i) then begin
               let present', response = apply_bit present o.op in
               let ok =
                 match o.completion with
                 | History.Returned expected -> response = expected
                 | History.Pending -> true
               in
               if ok then begin
                 set_mask i true;
                 let remaining' =
                   if o.completion = History.Pending then remaining_complete
                   else remaining_complete - 1
                 in
                 dfs present' remaining';
                 set_mask i false
               end
             end
           done
         with Exit -> ())
      end
    in
    try
      dfs false p_complete;
      false
    with Found -> true
  end

let verdict history =
  let rec loop = function
    | [] -> Linearizable
    | (key, part) :: rest ->
        if check_partition part then loop rest else Not_linearizable { key }
  in
  loop (partition_by_key history)

let check history = verdict history = Linearizable

let find_violation history =
  match verdict history with
  | Linearizable -> None
  | Not_linearizable { key } ->
      Some (Printf.sprintf "operations on key %d admit no linearization" key)
