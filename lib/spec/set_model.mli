(** The sequential specification of the integer-set type (paper §2.1).

    Ground truth for every correctness check in this repository: [insert v]
    succeeds iff [v] was absent, [remove v] succeeds iff [v] was present,
    [contains v] reports presence; the initial set is empty. *)

module IntSet : Set.S with type elt = int

type op = Insert of int | Remove of int | Contains of int

type state = IntSet.t

val empty : state

val key : op -> int
(** The key an operation touches ([Insert]/[Remove]/[Contains] argument). *)

val is_update : op -> bool
(** [true] for [Insert] and [Remove]. *)

val apply : state -> op -> state * bool
(** [apply state op] is the post-state and the specified response. *)

val run : op list -> state * bool list
(** [run ops] runs a whole sequence from the empty set. *)

val pp_op : Format.formatter -> op -> unit

val op_to_string : op -> string

val equal_op : op -> op -> bool
