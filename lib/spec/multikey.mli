(** Linearizability checking for histories mixing single-key operations
    with multi-key range reads — the whole-state Wing-Gong search that
    {!Linearizability}'s per-key decomposition cannot express.  Sized
    for the explorer's quiescent verdicts (a handful of operations);
    every event must be complete. *)

type op =
  | Single of Set_model.op
  | Range of { lo : int; hi : int }  (** inclusive window *)

type result = Bool of bool | Values of int list

type event = {
  thread : int;
  op : op;
  result : result;  (** [Values] must be ascending, as the structures return *)
  invoked_at : int;
  returned_at : int;
}

val pp_op : Format.formatter -> op -> unit
val pp_event : Format.formatter -> event -> unit

val check : ?initial:int list -> event list -> bool
(** [check ~initial events] — is there a single sequential order of all
    [events], consistent with their real-time intervals, under which
    every boolean response and every range result matches the sequential
    set semantics starting from [initial]? *)

val find_violation : ?initial:int list -> event list -> string option
(** [None] when linearizable, otherwise a rendering of the history. *)
