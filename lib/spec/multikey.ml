(** Linearizability checking for histories that mix single-key set
    operations with multi-key range reads.

    {!Linearizability} exploits Herlihy & Wing compositionality to split
    a history by key — sound because [insert]/[remove]/[contains] of [v]
    touch only [v]'s one-bit membership object.  A [range_query] breaks
    that decomposition: its result constrains {e every} key in the
    window at one common linearization point.  So this checker runs the
    same Wing-Gong depth-first search, but over the full integer-set
    state instead of a single membership bit, memoised on
    (linearized-mask, state).

    Intended for the explorer's small quiescent verdicts (a handful of
    operations per history): the state-space is tiny there, and the
    memoisation keeps the search polynomial in practice.  All events
    must be complete — the drive helpers record an event only when its
    operation has returned, and quiescence closes every operation. *)

module IntSet = Set.Make (Int)

type op =
  | Single of Set_model.op
  | Range of { lo : int; hi : int }  (** inclusive window *)

type result = Bool of bool | Values of int list

type event = {
  thread : int;
  op : op;
  result : result;
  invoked_at : int;
  returned_at : int;
}

let pp_op ppf = function
  | Single o -> Set_model.pp_op ppf o
  | Range { lo; hi } -> Format.fprintf ppf "range(%d, %d)" lo hi

let pp_result ppf = function
  | Bool b -> Format.fprintf ppf "%b" b
  | Values vs ->
      Format.fprintf ppf "[%a]" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") Format.pp_print_int) vs

let pp_event ppf e =
  Format.fprintf ppf "t%d:%a=%a@@[%d,%d]" e.thread pp_op e.op pp_result
    e.result e.invoked_at e.returned_at

let apply_single st = function
  | Set_model.Insert v -> (IntSet.add v st, not (IntSet.mem v st))
  | Set_model.Remove v -> (IntSet.remove v st, IntSet.mem v st)
  | Set_model.Contains v -> (st, IntSet.mem v st)

let window st lo hi =
  IntSet.elements (IntSet.filter (fun v -> lo <= v && v <= hi) st)

exception Found

let check ?(initial = []) (events : event list) : bool =
  let arr = Array.of_list events in
  Array.sort (fun a b -> compare a.invoked_at b.invoked_at) arr;
  let n = Array.length arr in
  n = 0
  ||
  let visited = Hashtbl.create 256 in
  let mask = Bytes.make n '\000' in
  let linearized i = Bytes.get mask i = '\001' in
  let rec dfs state remaining =
    if remaining = 0 then raise Found;
    let memo_key = (Bytes.to_string mask, IntSet.elements state) in
    if not (Hashtbl.mem visited memo_key) then begin
      Hashtbl.add visited memo_key ();
      (* Wing-Gong candidate bound: an operation invoked after some
         unlinearized operation returned cannot linearize yet. *)
      let min_ret = ref max_int in
      for i = 0 to n - 1 do
        if not (linearized i) then min_ret := min !min_ret arr.(i).returned_at
      done;
      try
        for i = 0 to n - 1 do
          let e = arr.(i) in
          if e.invoked_at > !min_ret then raise Exit (* sorted: none beyond *)
          else if not (linearized i) then begin
            let state', ok =
              match (e.op, e.result) with
              | Single o, Bool b ->
                  let st', r = apply_single state o in
                  (st', r = b)
              | Range { lo; hi }, Values vs -> (state, window state lo hi = vs)
              | Single _, Values _ | Range _, Bool _ -> (state, false)
            in
            if ok then begin
              Bytes.set mask i '\001';
              dfs state' (remaining - 1);
              Bytes.set mask i '\000'
            end
          end
        done
      with Exit -> ()
    end
  in
  try
    dfs (IntSet.of_list initial) n;
    false
  with Found -> true

let find_violation ?initial events =
  if check ?initial events then None
  else
    Some
      (Format.asprintf "@[<h>no linearization of {%a}@]"
         (Format.pp_print_list
            ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
            pp_event)
         events)
