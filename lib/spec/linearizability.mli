(** Linearizability checking of set histories against {!Set_model}.

    Compositional by key (each key is an independent one-bit object), then
    Wing-Gong-style DFS per partition, memoised on (linearized-set,
    membership-bit); candidates at each step are bounded by the earliest
    unlinearized response, so the branching factor tracks the number of
    threads, not the history length.  Pending operations may take effect
    with any response or be dropped. *)

type verdict = Linearizable | Not_linearizable of { key : int }

val verdict : History.t -> verdict

val check : History.t -> bool
(** [check h] — is [h] linearizable with respect to the set type? *)

val find_violation : History.t -> string option
(** [None] if linearizable; otherwise a message naming the offending key. *)
