(** The sequential specification of the integer-set type (paper §2.1).

    This is the ground truth every concurrent execution is judged against:
    [insert v] succeeds iff [v] was absent, [remove v] succeeds iff [v] was
    present, [contains v] reports presence, starting from the empty set. *)

module IntSet = Set.Make (Int)

type op = Insert of int | Remove of int | Contains of int

type state = IntSet.t

let empty : state = IntSet.empty

let key = function Insert v | Remove v | Contains v -> v

let is_update = function Insert _ | Remove _ -> true | Contains _ -> false

(** [apply state op] returns the post-state and the specified boolean
    response of running [op] against [state]. *)
let apply state = function
  | Insert v -> (IntSet.add v state, not (IntSet.mem v state))
  | Remove v -> (IntSet.remove v state, IntSet.mem v state)
  | Contains v -> (state, IntSet.mem v state)

(** [run ops] runs a whole sequence from the empty set, returning the final
    state and the responses in order. *)
let run ops =
  let state, rev_results =
    List.fold_left
      (fun (state, acc) op ->
        let state, r = apply state op in
        (state, r :: acc))
      (empty, []) ops
  in
  (state, List.rev rev_results)

let pp_op ppf = function
  | Insert v -> Format.fprintf ppf "insert(%d)" v
  | Remove v -> Format.fprintf ppf "remove(%d)" v
  | Contains v -> Format.fprintf ppf "contains(%d)" v

let op_to_string op = Format.asprintf "%a" pp_op op

let equal_op (a : op) (b : op) = a = b
