(** Concurrent histories: sequences of invocation and response events
    (paper §2.1, "high-level histories").

    A history is built by a recorder (one per test/exploration run) that
    timestamps events with a global sequence number; real-time order is the
    order of those numbers.  Operations are identified by the pair
    (thread, per-thread index), so a thread's operations are totally
    ordered as required of well-formed histories. *)

type completion = Returned of bool | Pending

type operation = {
  thread : int;
  index : int;  (** per-thread sequence number, from 0 *)
  op : Set_model.op;
  invoked_at : int;  (** global timestamp of the invocation *)
  completion : completion;
  returned_at : int;  (** global timestamp of the response; [max_int] if pending *)
}

type t = { operations : operation list }

let operations t = t.operations

let is_complete t =
  List.for_all (fun o -> o.completion <> Pending) t.operations

(** [precedes a b] — [a]'s response occurs before [b]'s invocation
    (the real-time order ->_H of the paper). *)
let precedes a b = a.returned_at < b.invoked_at

let pp_operation ppf o =
  match o.completion with
  | Returned r ->
      Format.fprintf ppf "T%d: %a -> %b [%d,%d]" o.thread Set_model.pp_op o.op r
        o.invoked_at o.returned_at
  | Pending -> Format.fprintf ppf "T%d: %a -> ? [%d,..]" o.thread Set_model.pp_op o.op o.invoked_at

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]" (Format.pp_print_list pp_operation) t.operations

let to_string t = Format.asprintf "%a" pp t

(** Imperative recorder used by stress tests and the explorer. *)
module Recorder = struct
  type entry = {
    r_thread : int;
    r_index : int;
    r_op : Set_model.op;
    r_invoked : int;
    mutable r_completion : completion;
    mutable r_returned : int;
  }

  type r = {
    clock : int Atomic.t;
    entries : (int * int, entry) Hashtbl.t;
    mutex : Mutex.t;
    next_index : (int, int) Hashtbl.t;
  }

  let create () =
    {
      clock = Atomic.make 0;
      entries = Hashtbl.create 64;
      mutex = Mutex.create ();
      next_index = Hashtbl.create 8;
    }

  let tick r = Atomic.fetch_and_add r.clock 1

  let invoke r ~thread op =
    Mutex.lock r.mutex;
    let index = Option.value ~default:0 (Hashtbl.find_opt r.next_index thread) in
    Hashtbl.replace r.next_index thread (index + 1);
    Mutex.unlock r.mutex;
    let e =
      {
        r_thread = thread;
        r_index = index;
        r_op = op;
        r_invoked = tick r;
        r_completion = Pending;
        r_returned = max_int;
      }
    in
    Mutex.lock r.mutex;
    Hashtbl.replace r.entries (thread, index) e;
    Mutex.unlock r.mutex;
    (thread, index)

  let return r id result =
    Mutex.lock r.mutex;
    let e = Hashtbl.find r.entries id in
    Mutex.unlock r.mutex;
    e.r_returned <- tick r;
    e.r_completion <- Returned result

  (** Run [op] against implementation function [f], recording both ends. *)
  let record r ~thread op f =
    let id = invoke r ~thread op in
    let result = f op in
    return r id result;
    result

  let history r =
    Mutex.lock r.mutex;
    let ops =
      Hashtbl.fold
        (fun _ e acc ->
          {
            thread = e.r_thread;
            index = e.r_index;
            op = e.r_op;
            invoked_at = e.r_invoked;
            completion = e.r_completion;
            returned_at = e.r_returned;
          }
          :: acc)
        r.entries []
    in
    Mutex.unlock r.mutex;
    let ops = List.sort (fun a b -> compare a.invoked_at b.invoked_at) ops in
    { operations = ops }
end

(** Build a history directly from a per-thread script of (op, result) with
    explicit timestamps; used heavily in unit tests of the checker. *)
let of_list entries =
  let ops =
    List.map
      (fun (thread, index, op, invoked_at, completion, returned_at) ->
        { thread; index; op; invoked_at; completion; returned_at })
      entries
  in
  { operations = List.sort (fun a b -> compare a.invoked_at b.invoked_at) ops }

(** A sequential history from an op/result list: operation k occupies the
    time slot [2k, 2k+1]. *)
let sequential ops_with_results =
  of_list
    (List.mapi
       (fun i (op, r) -> (0, i, op, 2 * i, Returned r, (2 * i) + 1))
       ops_with_results)
