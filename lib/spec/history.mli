(** Concurrent histories: invocation/response records of high-level
    operations (paper §2.1), plus a thread-safe recorder for building them
    from live runs.

    Real-time order is carried by integer timestamps: operation [a]
    precedes [b] iff [a.returned_at < b.invoked_at].  Pending operations
    carry [returned_at = max_int]. *)

type completion = Returned of bool | Pending

type operation = {
  thread : int;
  index : int;  (** per-thread sequence number, from 0 *)
  op : Set_model.op;
  invoked_at : int;
  completion : completion;
  returned_at : int;
}

type t

val operations : t -> operation list
(** In invocation order. *)

val is_complete : t -> bool
(** No pending operations. *)

val precedes : operation -> operation -> bool
(** The real-time order ->_H of the paper. *)

val pp_operation : Format.formatter -> operation -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string

(** Imperative, thread-safe recorder used by stress tests and the
    explorer: one global logical clock, events timestamped on invoke and
    return. *)
module Recorder : sig
  type r

  val create : unit -> r

  val invoke : r -> thread:int -> Set_model.op -> int * int
  (** [invoke r ~thread op] records the invocation and returns the
      operation's id (thread, per-thread index) to pass to {!return}. *)

  val return : r -> int * int -> bool -> unit

  val record : r -> thread:int -> Set_model.op -> (Set_model.op -> bool) -> bool
  (** [record r ~thread op f] brackets [f op] with invoke/return and
      passes the result through. *)

  val history : r -> t
end

val of_list : (int * int * Set_model.op * int * completion * int) list -> t
(** [(thread, index, op, invoked_at, completion, returned_at)] tuples, in
    any order; sorted by invocation time. *)

val sequential : (Set_model.op * bool) list -> t
(** A single-thread history where operation k occupies time [2k, 2k+1]. *)
