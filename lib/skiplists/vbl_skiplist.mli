(** A VBL-style skip list (the paper's concluding-remarks direction):
    relaxed, value-aware validation — adjacency-only checks, no unmarked-
    successor requirement, victim selection by bottom-level value.  See
    the implementation header for what provably cannot be relaxed. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
