(** A VBL-style skip list: the paper's concluding-remarks direction
    ("generalizations of linked lists, such as skip-lists ... may allow for
    optimizations similar to the ones proposed in this paper"), made
    concrete.

    Transferring the paper's ideas turns out to be a sharper exercise than
    for lists, because the lazy skip list {e already} validates values
    before locking: its failed inserts and removes return without touching
    a lock.  What still over-synchronises, and what this variant relaxes:

    - {b validation demands an unmarked successor} — the lazy skip list's
      insert revalidates [not succ.marked] under the predecessor lock and
      restarts if a successor is being removed, even though linking in
      front of a marked node is harmless: the remover holds no lock on our
      predecessor, and its own validation ([pred.next == victim]) will
      re-route it through the new node.  This variant validates adjacency
      only, accepting those schedules;
    - {b removal requires finding the victim at its top level}
      ([height - 1 = lfound]) and returns false otherwise, rejecting
      schedules where a concurrent insert of a taller tower shadows the
      victim; this variant removes whatever unmarked, fully linked node
      holds the value at the bottom level, validating under the locks.

    What cannot be relaxed (each attempt provably breaks linearizability):
    a duplicate insert must wait for the found node's [fully_linked] flag
    (returning false earlier has no valid linearization point), and a
    remover must wait for it too (unlinking a partially linked tower lets
    the in-flight insert resurrect upper levels).  Same-key races therefore
    retain bounded waits, unlike the list case — a genuine asymmetry
    between lists and skip lists that EXPERIMENTS.md reports alongside the
    throughput comparison. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = "vbl-skiplist"

  let max_level = Vbl_util.Level_gen.max_level

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell array;
        marked : bool M.cell;
        fully_linked : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell }

  type t = { head : node; levels : Vbl_util.Level_gen.t }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_marked = function Node n -> M.get n.marked | Tail _ -> false
  let node_fully_linked = function Node n -> M.get n.fully_linked | Tail _ -> true
  let node_lock = function Node n -> n.lock | Tail _ -> assert false
  let height = function Node n -> Array.length n.next | Tail _ -> 0

  let next_cell node level =
    match node with Node n -> n.next.(level) | Tail _ -> assert false

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node value next_targets =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Vbl_lists.Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Vbl_lists.Naming.value_cell nm) ~line value;
          next =
            Array.mapi
              (fun lvl succ -> M.make ~name:(Printf.sprintf "%s.next%d" nm lvl) ~line succ)
              next_targets;
          marked = M.make ~name:(Vbl_lists.Naming.deleted_cell nm) ~line false;
          fully_linked = M.make ~name:(nm ^ ".linked") ~line false;
          lock = M.make_lock ~name:(Vbl_lists.Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = Array.map (fun succ -> M.make ~line succ) next_targets;
          marked = M.make ~line false;
          fully_linked = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail
          {
            value =
              M.make ~name:(Vbl_lists.Naming.value_cell Vbl_lists.Naming.tail) ~line:tl max_int;
          }
      else Tail { value = M.make ~line:tl max_int }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value =
              M.make ~name:(Vbl_lists.Naming.value_cell Vbl_lists.Naming.head) ~line:hl min_int;
            next =
              Array.init max_level (fun lvl ->
                  M.make ~name:(Printf.sprintf "h.next%d" lvl) ~line:hl tail);
            marked =
              M.make ~name:(Vbl_lists.Naming.deleted_cell Vbl_lists.Naming.head) ~line:hl false;
            fully_linked = M.make ~name:"h.linked" ~line:hl true;
            lock =
              M.make_lock ~name:(Vbl_lists.Naming.lock_cell Vbl_lists.Naming.head) ~line:hl ();
          }
      else
        Node
          {
            value = M.make ~line:hl min_int;
            next = Array.init max_level (fun _ -> M.make ~line:hl tail);
            marked = M.make ~line:hl false;
            fully_linked = M.make ~line:hl true;
            lock = M.make_lock ~line:hl ();
          }
    in
    { head; levels = Vbl_util.Level_gen.create () }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "skip list: key must be strictly between min_int and max_int"

  let find t v preds succs =
    let lfound = ref (-1) in
    let pred = ref t.head in
    for level = max_level - 1 downto 0 do
      let curr = ref (M.get (next_cell !pred level)) in
      while node_value !curr < v do
        pred := !curr;
        curr := M.get (next_cell !pred level)
      done;
      if !lfound = -1 && node_value !curr = v then lfound := level;
      preds.(level) <- !pred;
      succs.(level) <- !curr
    done;
    !lfound

  let contains t v =
    check_key v;
    let preds = Array.make max_level t.head and succs = Array.make max_level t.head in
    let lfound = find t v preds succs in
    lfound <> -1
    && node_fully_linked succs.(lfound)
    && not (node_marked succs.(lfound))

  let unlock_distinct preds highest =
    let last = ref None in
    for lvl = 0 to highest do
      let p = preds.(lvl) in
      let same = match !last with Some q -> q == p | None -> false in
      if not same then M.unlock (node_lock p);
      last := Some p
    done

  (* Predecessor locks are taken level-by-level in a loop and released
     via [unlock_distinct]; the summary pass sees that helper as a
     releaser and exempts this binding from lint L3 — no [@acquires]
     tag needed. *)
  let insert t v =
    check_key v;
    let top_level = Vbl_util.Level_gen.next_level t.levels in
    let preds = Array.make max_level t.head and succs = Array.make max_level t.head in
    let rec attempt () =
      let lfound = find t v preds succs in
      if lfound <> -1 then begin
        let found = succs.(lfound) in
        if not (node_marked found) then begin
          (* Present (or about to be): wait out the in-flight link so the
             false response has a linearization point — see header. *)
          while not (node_fully_linked found) do
            Domain.cpu_relax ()
          done;
          false
        end
        else attempt () (* being removed; retry until unlinked *)
      end
      else begin
        let highest_locked = ref (-1) in
        let valid = ref true in
        let level = ref 0 in
        let prev_pred = ref None in
        while !valid && !level < top_level do
          let pred = preds.(!level) and succ = succs.(!level) in
          let same = match !prev_pred with Some q -> q == pred | None -> false in
          if not same then begin
            M.lock (node_lock pred);
            prev_pred := Some pred
          end;
          highest_locked := !level;
          (* Relaxed validation: adjacency and a live predecessor only; a
             marked successor is fine (its remover re-routes through us). *)
          valid := (not (node_marked pred)) && M.get (next_cell pred !level) == succ;
          incr level
        done;
        if not !valid then begin
          unlock_distinct preds !highest_locked;
          attempt ()
        end
        else begin
          let x = make_node v (Array.init top_level (fun lvl -> succs.(lvl))) in
          for lvl = 0 to top_level - 1 do
            M.set (next_cell preds.(lvl) lvl) x
          done;
          (match x with Node n -> M.set n.fully_linked true | Tail _ -> ());
          unlock_distinct preds !highest_locked;
          true
        end
      end
    in
    attempt ()

  (* The victim lock spans retries of the unlink loop and the predecessor
     locks release via [unlock_distinct] — a releaser to the summary
     pass, so lint L3 exempts this binding without an [@acquires] tag. *)
  let remove t v =
    check_key v;
    let preds = Array.make max_level t.head and succs = Array.make max_level t.head in
    let marked_by_us = ref false in
    let victim = ref t.head in
    let rec attempt () =
      ignore (find t v preds succs);
      if !marked_by_us then finish ()
      else if node_value succs.(0) <> v then false (* value-aware: no locks taken *)
      else begin
        victim := succs.(0);
        (* The tower must be complete before it can be taken down. *)
        while not (node_fully_linked !victim) do
          Domain.cpu_relax ()
        done;
        M.lock (node_lock !victim);
        if node_marked !victim then begin
          M.unlock (node_lock !victim);
          false
        end
        else begin
          (match !victim with
          | Node n -> M.set n.marked true
          | Tail _ -> assert false);
          marked_by_us := true;
          finish ()
        end
      end
    and finish () =
      let top_level = height !victim in
      let highest_locked = ref (-1) in
      let valid = ref true in
      let level = ref 0 in
      let last = ref None in
      while !valid && !level < top_level do
        let pred = preds.(!level) in
        let same = match !last with Some q -> q == pred | None -> false in
        if not same then begin
          M.lock (node_lock pred);
          last := Some pred
        end;
        highest_locked := !level;
        valid := (not (node_marked pred)) && M.get (next_cell pred !level) == !victim;
        incr level
      done;
      if not !valid then begin
        unlock_distinct preds !highest_locked;
        attempt ()
      end
      else begin
        for lvl = top_level - 1 downto 0 do
          M.set (next_cell preds.(lvl) lvl) (M.get (next_cell !victim lvl))
        done;
        M.unlock (node_lock !victim);
        unlock_distinct preds !highest_locked;
        true
      end
    in
    attempt ()

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && (not (M.get n.marked)) && M.get n.fully_linked in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next.(0))
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    (* Tower consistency: every node reachable at an upper level must also
       be reachable at the bottom level (upper levels are index sublists). *)
    let sublist_check () =
      let bottom = ref [] in
      let rec collect node =
        match node with
        | Tail _ -> ()
        | Node n ->
            bottom := node :: !bottom;
            collect (M.get n.next.(0))
      in
      collect t.head;
      let rec check_upper level node =
        match node with
        | Tail _ -> Ok ()
        | Node n ->
            if not (List.memq node !bottom) then
              Error
                (Printf.sprintf "level %d: node %d not present at bottom level" level
                   (M.get n.value))
            else check_upper level (M.get n.next.(level))
      in
      let rec levels level =
        if level >= max_level then Ok ()
        else
          match check_upper level t.head with
          | Ok () -> levels (level + 1)
          | Error _ as e -> e
      in
      levels 1
    in
    let rec check_level level last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value = max_int then Ok ()
            else Error "tail sentinel does not store max_int"
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "level %d: values not strictly increasing at %d" level v)
            else if steps > 0 && M.get n.marked then
              Error (Printf.sprintf "level %d: marked node %d still reachable" level v)
            else if steps > 0 && not (M.get n.fully_linked) then
              Error (Printf.sprintf "level %d: partially linked node %d at quiescence" level v)
            else if steps > 0 && Array.length n.next <= level then
              Error (Printf.sprintf "level %d: node %d tower too short" level v)
            else check_level level v (M.get n.next.(level)) (steps + 1)
    in
    let rec all_levels level =
      if level >= max_level then Ok ()
      else
        match check_level level min_int t.head 0 with
        | Ok () -> all_levels (level + 1)
        | Error _ as e -> e
    in
    match all_levels 0 with Ok () -> sublist_check () | Error _ as e -> e
end
