(** Skip-list registry, mirroring {!Vbl_lists.Registry}: real-backend
    instantiations for benchmarks/examples, instrumented ones for the
    schedule machinery. *)

module R = Vbl_memops.Real_mem
module I = Vbl_memops.Instr_mem

module Lazy_skip = Lazy_skiplist.Make (R)
module Vbl_skip = Vbl_skiplist.Make (R)
module Lockfree_skip = Lockfree_skiplist.Make (R)
module Lazy_skip_i = Lazy_skiplist.Make (I)
module Vbl_skip_i = Vbl_skiplist.Make (I)
module Lockfree_skip_i = Lockfree_skiplist.Make (I)

type impl = (module Vbl_lists.Set_intf.S)

let all : impl list = [ (module Lazy_skip); (module Vbl_skip); (module Lockfree_skip) ]

let instrumented : impl list =
  [ (module Lazy_skip_i); (module Vbl_skip_i); (module Lockfree_skip_i) ]

let find_exn nm : impl =
  match
    List.find_opt
      (fun i ->
        let module S = (val i : Vbl_lists.Set_intf.S) in
        S.name = nm)
      all
  with
  | Some i -> i
  | None -> invalid_arg ("Vbl_skiplists.Registry.find_exn: unknown algorithm " ^ nm)
