(** Lock-free skip list (Herlihy & Shavit ch. 14.4, after Fraser and
    Harris): every level's successor link carries a Harris-style mark, the
    bottom level is the set's linearization backbone, and upper levels are
    best-effort index shortcuts maintained by CAS.

    - [add] linearizes at the bottom-level link CAS; upper levels are then
      linked one by one, refreshing the window via [find] on failure.
    - [remove] marks from the top level down; the bottom-level mark is the
      linearization point, after which a final [find] physically snips the
      node (or a concurrent traversal does).
    - [find] snips marked nodes at every level as it passes, restarting
      from the head when a snip CAS fails.
    - [contains] is wait-free: it traverses without snipping, skipping
      marked nodes by reading through them.

    Completes the skip-list family the way Harris-Michael completes the
    list family: the lock-free baseline the lazy/VBL variants are compared
    against. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = "lockfree-skiplist"

  let max_level = Vbl_util.Level_gen.max_level

  type node =
    | Node of { value : int M.cell; next : link M.cell array }
    | Tail of { value : int M.cell }

  (* [Marked succ] in [n.next.(lvl)] means n is deleted at that level. *)
  and link = Live of node | Marked of node

  type t = { head : node; levels : Vbl_util.Level_gen.t }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let height = function Node n -> Array.length n.next | Tail _ -> 0

  let link_cell node lvl =
    match node with
    | Node n -> n.next.(lvl)
    | Tail _ -> assert false (* the tail's +inf value stops every loop *)

  (* Names are only built for instrumented backends ([M.named]). *)
  let make_node value next_targets =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Vbl_lists.Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Vbl_lists.Naming.value_cell nm) ~line value;
          next =
            Array.mapi
              (fun lvl succ ->
                M.make ~name:(Printf.sprintf "%s.next%d" nm lvl) ~line (Live succ))
              next_targets;
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = Array.map (fun succ -> M.make ~line (Live succ)) next_targets;
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      if M.named then
        Tail
          {
            value =
              M.make ~name:(Vbl_lists.Naming.value_cell Vbl_lists.Naming.tail) ~line:tl max_int;
          }
      else Tail { value = M.make ~line:tl max_int }
    in
    let hl = M.fresh_line () in
    let head =
      if M.named then
        Node
          {
            value =
              M.make ~name:(Vbl_lists.Naming.value_cell Vbl_lists.Naming.head) ~line:hl min_int;
            next =
              Array.init max_level (fun lvl ->
                  M.make ~name:(Printf.sprintf "h.next%d" lvl) ~line:hl (Live tail));
          }
      else
        Node
          {
            value = M.make ~line:hl min_int;
            next = Array.init max_level (fun _ -> M.make ~line:hl (Live tail));
          }
    in
    { head; levels = Vbl_util.Level_gen.create () }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "skip list: key must be strictly between min_int and max_int"

  exception Retry

  (* Locate the per-level windows for [v], snipping marked nodes on the
     way; fills [preds], [succs] and [pred_links] (the exact link value
     observed in preds.(level) — the CAS witness).  Returns whether an
     unmarked bottom-level node holds [v].  Restarts from the head when a
     snip CAS loses a race. *)
  let find t v preds succs pred_links =
    let rec attempt () =
      match
        let pred = ref t.head in
        for level = max_level - 1 downto 0 do
          let pred_link = ref (M.get (link_cell !pred level)) in
          (* A marked pred was deleted under us: its link must never be
             used as a CAS witness (splicing there would erase the mark),
             so restart from the head.  Advancement below only ever moves
             pred over Live links. *)
          (match !pred_link with Marked _ -> raise Retry | Live _ -> ());
          let rec walk curr =
            match curr with
            | Tail _ -> curr
            | Node cn -> (
                match M.get cn.next.(level) with
                | Marked succ -> (
                    (* curr is deleted at this level: snip it out. *)
                    match !pred_link with
                    | Live s as witness when s == curr ->
                        let replacement = Live succ in
                        if M.cas (link_cell !pred level) witness replacement then begin
                          pred_link := replacement;
                          walk succ
                        end
                        else raise Retry
                    | Live _ | Marked _ -> raise Retry)
                | Live succ as curr_link ->
                    if M.get cn.value < v then begin
                      pred := curr;
                      pred_link := curr_link;
                      walk succ
                    end
                    else curr)
          in
          let curr = walk (match !pred_link with Live s | Marked s -> s) in
          preds.(level) <- !pred;
          succs.(level) <- curr;
          pred_links.(level) <- !pred_link
        done;
        node_value succs.(0) = v
      with
      | found -> found
      | exception Retry -> attempt ()
    in
    attempt ()

  let insert t v =
    check_key v;
    let top_level = Vbl_util.Level_gen.next_level t.levels in
    let preds = Array.make max_level t.head
    and succs = Array.make max_level t.head
    and pred_links = Array.make max_level (Live t.head) in
    let rec attempt () =
      if find t v preds succs pred_links then false
      else begin
        let x = make_node v (Array.init top_level (fun lvl -> succs.(lvl))) in
        (* Linearization point: splice into the bottom level. *)
        if M.cas (link_cell preds.(0) 0) pred_links.(0) (Live x) then begin
          link_upper x 1;
          true
        end
        else attempt ()
      end
    and link_upper x level =
      if level < height x then begin
        (* Refresh x's own forward pointer for this level, then splice.
           A Marked link here means a racing remove already owns x: the
           remover will (or did) unlink whatever is spliced, so stop. *)
        let cell = link_cell x level in
        match M.get cell with
        | Marked _ -> ()
        | Live old as witness ->
            let succ = succs.(level) in
            let forward_ok =
              old == succ || M.cas cell witness (Live succ)
            in
            if not forward_ok then () (* concurrently marked: stop *)
            else if M.cas (link_cell preds.(level) level) pred_links.(level) (Live x)
            then link_upper x (level + 1)
            else begin
              (* The window moved: refresh it and retry this level. *)
              if find t v preds succs pred_links then link_upper x level
              else () (* x already removed: nothing left to index *)
            end
      end
    in
    attempt ()

  let remove t v =
    check_key v;
    let preds = Array.make max_level t.head
    and succs = Array.make max_level t.head
    and pred_links = Array.make max_level (Live t.head) in
    if not (find t v preds succs pred_links) then false
    else begin
      let victim = succs.(0) in
      (* Mark the index levels top-down (best effort, must terminate). *)
      for level = height victim - 1 downto 1 do
        let cell = link_cell victim level in
        let rec mark () =
          match M.get cell with
          | Marked _ -> ()
          | Live succ as witness -> if M.cas cell witness (Marked succ) then () else mark ()
        in
        mark ()
      done;
      (* Bottom level: whoever marks it owns the removal. *)
      let cell = link_cell victim 0 in
      let rec bottom () =
        match M.get cell with
        | Marked _ -> false (* somebody else's removal linearized first *)
        | Live succ as witness ->
            if M.cas cell witness (Marked succ) then begin
              ignore (find t v preds succs pred_links) (* physical snip *);
              true
            end
            else bottom ()
      in
      bottom ()
    end

  (* Wait-free membership: never snips; nodes marked at the traversal
     level are read through (they are logically gone). *)
  let contains t v =
    check_key v;
    let pred = ref t.head in
    let curr = ref t.head in
    for level = max_level - 1 downto 0 do
      curr := (match M.get (link_cell !pred level) with Live s | Marked s -> s);
      let rec walk () =
        match !curr with
        | Tail _ -> ()
        | Node cn -> (
            match M.get cn.next.(level) with
            | Marked succ ->
                curr := succ;
                walk ()
            | Live succ ->
                if M.get cn.value < v then begin
                  pred := !curr;
                  curr := succ;
                  walk ()
                end)
      in
      walk ()
    done;
    node_value !curr = v

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n -> (
          let v = M.get n.value in
          match M.get n.next.(0) with
          | Live succ ->
              let acc = if v <> min_int then f acc v else acc in
              loop acc succ
          | Marked succ -> loop acc succ)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    (* Tower consistency: every node reachable at an upper level must also
       be reachable at the bottom level (upper levels are index sublists). *)
    let sublist_check () =
      let bottom = ref [] in
      let rec collect node =
        match node with
        | Tail _ -> ()
        | Node n ->
            bottom := node :: !bottom;
            collect (match M.get n.next.(0) with Live s | Marked s -> s)
      in
      collect t.head;
      let rec check_upper level node =
        match node with
        | Tail _ -> Ok ()
        | Node n ->
            if not (List.memq node !bottom) then
              Error
                (Printf.sprintf "level %d: node %d not present at bottom level" level
                   (M.get n.value))
            else
              check_upper level (match M.get n.next.(level) with Live s | Marked s -> s)
      in
      let rec levels level =
        if level >= max_level then Ok ()
        else
          match check_upper level t.head with
          | Ok () -> levels (level + 1)
          | Error _ as e -> e
      in
      levels 1
    in
    (* Bottom level: sorted, and at quiescence marked nodes may linger only
       unlinked... a marked node may remain linked at upper levels briefly;
       at quiescence every reachable node must be unmarked at level 0. *)
    let rec check_level level last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value = max_int then Ok ()
            else Error "tail sentinel does not store max_int"
        | Node n ->
            let v = M.get n.value in
            if Array.length n.next <= level then
              Error (Printf.sprintf "level %d: node %d tower too short" level v)
            else begin
              let link = M.get n.next.(level) in
              match link with
              | Marked _ when steps > 0 ->
                  Error (Printf.sprintf "level %d: marked node %d still reachable" level v)
              | Marked succ | Live succ ->
                  if v <= last && steps > 0 then
                    Error
                      (Printf.sprintf "level %d: values not strictly increasing at %d" level v)
                  else check_level level v succ (steps + 1)
            end
    in
    let rec all_levels level =
      if level >= max_level then Ok ()
      else
        match check_level level min_int t.head 0 with
        | Ok () -> all_levels (level + 1)
        | Error _ as e -> e
    in
    match all_levels 0 with Ok () -> sublist_check () | Error _ as e -> e
end
