(** Skip-list registry: real-backend instantiations for benchmarks, and
    instrumented ones for the schedule machinery. *)

module Lazy_skip : Vbl_lists.Set_intf.S
module Vbl_skip : Vbl_lists.Set_intf.S
module Lockfree_skip : Vbl_lists.Set_intf.S
module Lazy_skip_i : Vbl_lists.Set_intf.S
module Vbl_skip_i : Vbl_lists.Set_intf.S
module Lockfree_skip_i : Vbl_lists.Set_intf.S

type impl = (module Vbl_lists.Set_intf.S)

val all : impl list
val instrumented : impl list

val find_exn : string -> impl
