(** Lock-free skip list (Herlihy & Shavit ch. 14.4, after Fraser/Harris):
    Harris-marked links per level, bottom-level linearization, snipping
    finds, wait-free contains.  The lock-free baseline of the skip-list
    family. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
