(** The lazy (lock-based) skip list of Herlihy, Lev, Luchangco & Shavit
    (Herlihy & Shavit ch. 14.3): per-node lock, [marked] and
    [fully_linked] flags, wait-free contains, multi-level lock+validate
    updates.  Baseline for the paper's future-work conjecture. *)

module Make (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
