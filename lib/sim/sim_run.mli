(** Synchrobench-style workload runs on the simulated multicore (paper §4
    methodology: x% updates split evenly, uniform keys, pre-population
    with probability ½).  "Time" is virtual cycles, so thread counts far
    beyond the host's physical cores stay meaningful — see DESIGN.md §4
    for what this substitution does and does not preserve. *)

type params = {
  threads : int;
  update_percent : int;
  key_range : int;
  horizon : float;  (** simulated duration in cycles *)
  seed : int64;
  zipf : float option;  (** [Some s]: zipfian keys with skew [s]; [None]: uniform *)
}

type result = {
  ops_completed : int;
  throughput : float;  (** operations per 1000 simulated cycles *)
  steps : int;  (** conductor steps executed (simulator work, not time) *)
  final_size : int;
}

val default_horizon : float

val run :
  ?costs:Coherence.costs ->
  ?topology:Coherence.topology ->
  (module Vbl_lists.Set_intf.S) ->
  params ->
  result
(** The implementation must be instantiated on the instrumented backend
    (e.g. from {!Vbl_sched.Drive.instrumented}). *)
