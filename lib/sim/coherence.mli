(** MESI-flavoured cache-coherence cost model: a single directory over the
    coherence "lines" the instrumented backend tags accesses with (one per
    list node, one per Harris-Michael AMR pair).

    Deliberately minimal — infinite caches, flat interconnect — because
    the phenomena the paper's results hinge on are first-order coherence
    effects: warm traversals hit shared lines; every lock word and link
    write takes a line exclusive and invalidates sharers; a failed CAS
    pays like a successful one; the AMR pair costs an extra dependent
    load.  Latencies are in arbitrary cycles; only ratios matter. *)

type costs = {
  l1_hit : int;
  remote_clean : int;  (** read miss served from a clean/shared copy *)
  remote_dirty : int;  (** read miss served from another core's M copy *)
  upgrade : int;  (** write hit on a shared line (invalidate sharers) *)
  remote_write : int;  (** write miss (fetch-and-invalidate) *)
  alloc : int;
}

val intel_costs : costs
(** Profile for the paper's 4-socket Xeon Gold 6150 testbed. *)

val amd_costs : costs
(** Profile for the paper's 4-socket Opteron 6276 testbed (tech report):
    relatively costlier remote traffic and invalidations. *)

val default_costs : costs
(** [intel_costs]. *)

val profiles : (string * costs) list

val profile_exn : string -> costs
(** Lookup by name ("intel" | "amd"); [Invalid_argument] otherwise. *)

(** NUMA topology: threads fill sockets in blocks of [cores_per_socket];
    remote traffic within a socket is cheaper (x0.6) than across the
    interconnect (x1.4).  [flat] (the default) is the socket-less model
    used for the published tables. *)
type topology = { sockets : int; cores_per_socket : int }

val flat : topology

val intel_topology : topology
(** 4 x 18 cores, the paper's Xeon. *)

val amd_topology : topology
(** 4 x 16 cores, the paper's Opteron. *)

type t

val create : ?costs:costs -> ?topology:topology -> n_threads:int -> unit -> t

val read : t -> thread:int -> line:int -> int
(** Charge a read and update the directory. *)

val write : t -> thread:int -> line:int -> int
(** Charge a write/CAS/lock-word access: the line becomes exclusive. *)

val alloc : t -> thread:int -> line:int -> int
(** Allocation: the new line starts owned by its creator. *)
