(** The simulated multicore: per-thread virtual clocks over the cooperative
    conductor, advanced by the coherence cost model.

    Scheduling rule: the runnable thread with the smallest clock moves next
    (a standard conservative discrete-event rule — an access cannot be
    reordered before another that finished earlier in virtual time).  Lock
    waiters' clocks are pulled up to the release time when they wake, which
    is exactly lock-handoff latency. *)

module Instr = Vbl_memops.Instr_mem

type t = {
  exec : Vbl_sched.Exec.t;
  coherence : Coherence.t;
  clocks : float array;
  mutable steps : int;
}

let create ~coherence bodies =
  let exec = Vbl_sched.Exec.create bodies in
  {
    exec;
    coherence;
    clocks = Array.make (Vbl_sched.Exec.n_threads exec) 0.;
    steps = 0;
  }

let cost_of t ~thread (a : Instr.access) =
  match a.kind with
  | Instr.Read | Instr.Touch -> Coherence.read t.coherence ~thread ~line:a.line
  | Instr.Write | Instr.Cas | Instr.Lock_try | Instr.Lock_release ->
      Coherence.write t.coherence ~thread ~line:a.line
  | Instr.New_node -> Coherence.alloc t.coherence ~thread ~line:a.line

(** Run until every thread is done or has a clock beyond [horizon].
    Returns the number of conductor steps executed. *)
let run t ~horizon =
  let n = Array.length t.clocks in
  let rec pick i best =
    if i = n then best
    else begin
      let best =
        if t.clocks.(i) <= horizon && Vbl_sched.Exec.runnable t.exec i then
          match best with
          | Some j when t.clocks.(j) <= t.clocks.(i) -> best
          | _ -> Some i
        else best
      in
      pick (i + 1) best
    end
  in
  let rec loop () =
    match pick 0 None with
    | None -> ()
    | Some i ->
        (match Vbl_sched.Exec.pending t.exec i with
        | Vbl_sched.Exec.Access a ->
            let released =
              match a.Instr.kind with Instr.Lock_release -> Some a.Instr.line | _ -> None
            in
            let c = cost_of t ~thread:i a in
            Vbl_sched.Exec.step t.exec i;
            t.clocks.(i) <- t.clocks.(i) +. float_of_int c;
            t.steps <- t.steps + 1;
            (* Lock handoff: waiters cannot have observed the release before
               it happened in virtual time. *)
            (match released with
            | None -> ()
            | Some line ->
                for j = 0 to n - 1 do
                  match Vbl_sched.Exec.pending t.exec j with
                  | Vbl_sched.Exec.Blocked l when l.Instr.l_line = line ->
                      t.clocks.(j) <- Float.max t.clocks.(j) t.clocks.(i)
                  | _ -> ()
                done)
        | Vbl_sched.Exec.Blocked _ ->
            (* Unparking consumes no virtual time; the retry pays. *)
            Vbl_sched.Exec.step t.exec i
        | Vbl_sched.Exec.Done -> assert false);
        loop ()
  in
  loop ();
  t.steps

let clock t i = t.clocks.(i)
