(** Synchrobench-style workload runs on the simulated multicore.

    Methodology mirrors the paper's §4: a workload is x% updates (x/2
    inserts, x/2 removes) and (100-x)% contains, keys uniform over a fixed
    range, list pre-populated with each key present with probability ½.
    Here "time" is virtual cycles from the coherence model, so thread
    counts far beyond the host's physical cores behave as they would on the
    paper's 72-core machine — modulo the model's idealisations, which is
    why EXPERIMENTS.md compares shapes, not absolute numbers. *)

type params = {
  threads : int;
  update_percent : int;  (** 0, 20, 100, ... *)
  key_range : int;  (** keys drawn from [1, key_range] *)
  horizon : float;  (** simulated duration in cycles *)
  seed : int64;
  zipf : float option;  (** [Some s]: zipfian keys with skew [s]; [None]: uniform *)
}

type result = {
  ops_completed : int;
  throughput : float;  (** operations per 1000 simulated cycles *)
  steps : int;  (** conductor steps executed (simulator work) *)
  final_size : int;
}

let default_horizon = 100_000.

(* Per-thread op budget: merely a loop bound for the body — the horizon is
   what actually stops a run.  It must be generous enough that no thread
   can exhaust it before the horizon even when every operation is cheap
   (e.g. zipfian traffic on keys next to the head), or finished threads
   would silently flatten the measurement. *)
let op_budget params = int_of_float (params.horizon /. 2.) + 64

let run ?(costs = Coherence.default_costs) ?(topology = Coherence.flat)
    (module S : Vbl_lists.Set_intf.S) params : result =
  if params.threads < 1 then invalid_arg "Sim_run.run: threads must be >= 1";
  if params.update_percent < 0 || params.update_percent > 100 then
    invalid_arg "Sim_run.run: update_percent must be in [0, 100]";
  let master = Vbl_util.Rng.create ~seed:params.seed () in
  (* Pre-population: each key present with probability 1/2, in shuffled
     order (ascending order would degenerate the unbalanced BST). *)
  let t =
    Vbl_memops.Instr_mem.run_sequential (fun () ->
        let t = S.create () in
        let keys = Array.init params.key_range (fun i -> i + 1) in
        Vbl_util.Rng.shuffle master keys;
        Array.iter (fun v -> if Vbl_util.Rng.bool master then ignore (S.insert t v)) keys;
        t)
  in
  let ops_done = Array.make params.threads 0 in
  let budget = op_budget params in
  let zipf = Option.map (fun s -> Vbl_util.Zipf.create ~s ~n:params.key_range ()) params.zipf in
  let draw rng =
    match zipf with
    | None -> 1 + Vbl_util.Rng.int rng params.key_range
    | Some z -> Vbl_util.Zipf.sample z rng
  in
  let body i =
    let rng = Vbl_util.Rng.split master in
    fun () ->
      for _ = 1 to budget do
        let v = draw rng in
        let roll = Vbl_util.Rng.int rng 100 in
        (if roll < params.update_percent then
           if roll mod 2 = 0 then ignore (S.insert t v) else ignore (S.remove t v)
         else ignore (S.contains t v));
        ops_done.(i) <- ops_done.(i) + 1
      done
  in
  let bodies = List.init params.threads body in
  let coherence = Coherence.create ~costs ~topology ~n_threads:params.threads () in
  let machine = Machine.create ~coherence bodies in
  let steps = Machine.run machine ~horizon:params.horizon in
  let ops_completed = Array.fold_left ( + ) 0 ops_done in
  let final_size =
    Vbl_memops.Instr_mem.run_sequential (fun () -> S.size t)
  in
  {
    ops_completed;
    throughput = float_of_int ops_completed /. params.horizon *. 1000.;
    steps;
    final_size;
  }
