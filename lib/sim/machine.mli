(** The simulated multicore: per-thread virtual clocks over the
    cooperative conductor, advanced by the coherence cost model.

    Scheduling rule: the runnable thread with the smallest clock moves
    next; lock waiters' clocks are pulled up to the release time when they
    wake (lock-handoff latency). *)

type t

val create : coherence:Coherence.t -> (unit -> unit) list -> t

val run : t -> horizon:float -> int
(** Run until every thread is done or past [horizon] virtual cycles;
    returns the number of conductor steps executed. *)

val clock : t -> int -> float
(** Thread [i]'s virtual clock, in cycles. *)
