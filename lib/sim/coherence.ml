(** MESI-flavoured cache-coherence cost model.

    The simulator charges every shared access a latency derived from a
    single-directory protocol over the "lines" the instrumented backend
    tags accesses with (one line per list node, one per Harris-Michael AMR
    pair).  The model is deliberately minimal — infinite caches, a flat
    interconnect — because the phenomena the paper attributes its results
    to are all first-order coherence effects:

    - wait-free traversals of a warm list hit shared lines (cheap);
    - every lock acquisition/release and every link write takes the line
      exclusive, invalidating all sharers (expensive, and it makes the
      {e next} traversal through that node expensive for everyone else);
    - a failed CAS pays for exclusivity like a successful one;
    - Harris-Michael AMR pays an extra dependent load per hop ([Touch] on
      the pair's line).

    Default latencies are in arbitrary "cycles", picked inside the ranges
    measured for Intel Xeon NUMA parts (L1 ~1, remote clean ~15-25, remote
    dirty / invalidation ~40-80): only ratios matter for the shapes. *)

type costs = {
  l1_hit : int;  (** line already valid in this thread's cache *)
  remote_clean : int;  (** read miss served from a clean/shared copy *)
  remote_dirty : int;  (** read miss served from another core's M copy *)
  upgrade : int;  (** write hit on a shared line: invalidate other sharers *)
  remote_write : int;  (** write miss: fetch-and-invalidate *)
  alloc : int;  (** node allocation *)
}

(** The paper's Intel testbed: 4-socket Xeon Gold 6150.  Ring/mesh
    interconnect, moderate cross-socket penalties. *)
let intel_costs =
  { l1_hit = 1; remote_clean = 16; remote_dirty = 40; upgrade = 24; remote_write = 44; alloc = 2 }

(** The paper's AMD testbed: 4-socket Opteron 6276 (Bulldozer).
    HyperTransport hops make remote traffic relatively more expensive and
    write-invalidations costlier — the tech report's AMD curves show the
    same ordering as Intel with earlier saturation, which these ratios
    reproduce. *)
let amd_costs =
  { l1_hit = 1; remote_clean = 28; remote_dirty = 70; upgrade = 42; remote_write = 76; alloc = 2 }

let default_costs = intel_costs

let profiles = [ ("intel", intel_costs); ("amd", amd_costs) ]

let profile_exn name =
  match List.assoc_opt name profiles with
  | Some c -> c
  | None ->
      invalid_arg
        (Printf.sprintf "Coherence.profile_exn: unknown machine %S (known: %s)" name
           (String.concat ", " (List.map fst profiles)))

(* Directory entry for one line.  [owner] holds the single M-state copy
   (-1 = none); [sharers] the S-state copies as a bitset over thread ids. *)
type line_state = { mutable owner : int; mutable sharers : Bytes.t }

(* NUMA topology: threads fill sockets in blocks of [cores_per_socket]
   (how synchrobench pins them).  [sockets = 1] is the flat model. *)
type topology = { sockets : int; cores_per_socket : int }

let flat = { sockets = 1; cores_per_socket = max_int }

(* The paper's testbeds: 4 x 18-core Xeon, 4 x 16-core Opteron. *)
let intel_topology = { sockets = 4; cores_per_socket = 18 }

let amd_topology = { sockets = 4; cores_per_socket = 16 }

type t = {
  costs : costs;
  n_threads : int;
  topology : topology;
  lines : (int, line_state) Hashtbl.t;
}

let create ?(costs = default_costs) ?(topology = flat) ~n_threads () =
  if topology.sockets < 1 || topology.cores_per_socket < 1 then
    invalid_arg "Coherence.create: invalid topology";
  { costs; n_threads; topology; lines = Hashtbl.create 4096 }

let socket_of t thread = thread / t.topology.cores_per_socket mod t.topology.sockets

(* Remote traffic staying on one socket is cheaper than a hop across the
   interconnect; the flat model is the 1.0 midpoint. *)
let scale t ~from_thread ~to_thread cost =
  if t.topology.sockets = 1 then cost
  else if socket_of t from_thread = socket_of t to_thread then
    max 1 (cost * 6 / 10)
  else cost * 14 / 10

let bit_get bs i = Char.code (Bytes.get bs (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set bs i =
  Bytes.set bs (i / 8) (Char.chr (Char.code (Bytes.get bs (i / 8)) lor (1 lsl (i mod 8))))

let fresh_line_state t = { owner = -1; sharers = Bytes.make ((t.n_threads + 7) / 8) '\000' }

let state t line =
  match Hashtbl.find_opt t.lines line with
  | Some s -> s
  | None ->
      let s = fresh_line_state t in
      Hashtbl.add t.lines line s;
      s

let has_other_sharer st ~than =
  let n = Bytes.length st.sharers in
  let rec go i =
    i < n
    &&
    let byte = Char.code (Bytes.get st.sharers i) in
    let masked =
      if than / 8 = i then byte land lnot (1 lsl (than mod 8)) else byte
    in
    masked <> 0 || go (i + 1)
  in
  go 0

(* Nearest provider of a shared copy: prefer a same-socket sharer. *)
let nearest_sharer t st ~thread =
  let best = ref (-1) in
  for j = 0 to t.n_threads - 1 do
    if bit_get st.sharers j then
      if !best < 0 then best := j
      else if socket_of t j = socket_of t thread && socket_of t !best <> socket_of t thread
      then best := j
  done;
  !best

(** Charge a read by [thread] on [line]; updates the directory. *)
let read t ~thread ~line =
  let st = state t line in
  let cost =
    if st.owner = thread || bit_get st.sharers thread then t.costs.l1_hit
    else if st.owner >= 0 then scale t ~from_thread:st.owner ~to_thread:thread t.costs.remote_dirty
    else begin
      let provider = nearest_sharer t st ~thread in
      if provider < 0 then t.costs.remote_clean
      else scale t ~from_thread:provider ~to_thread:thread t.costs.remote_clean
    end
  in
  (* The owner's M copy degrades to shared; the reader becomes a sharer. *)
  if st.owner >= 0 && st.owner <> thread then begin
    bit_set st.sharers st.owner;
    st.owner <- -1
  end;
  if st.owner <> thread then bit_set st.sharers thread;
  cost

(** Charge a write/CAS/lock-word access by [thread] on [line]: the line
    must become exclusively owned. *)
let write t ~thread ~line =
  let st = state t line in
  let cost =
    if st.owner = thread then t.costs.l1_hit
    else if bit_get st.sharers thread && not (has_other_sharer st ~than:thread) && st.owner < 0
    then t.costs.l1_hit (* sole sharer: silent upgrade *)
    else if bit_get st.sharers thread then t.costs.upgrade
    else if st.owner >= 0 then
      scale t ~from_thread:st.owner ~to_thread:thread t.costs.remote_write
    else if has_other_sharer st ~than:thread then t.costs.upgrade
    else t.costs.remote_clean
  in
  st.owner <- thread;
  st.sharers <- Bytes.make (Bytes.length st.sharers) '\000';
  cost

(** Allocation: the new node's line starts owned by its creator. *)
let alloc t ~thread ~line =
  let st = state t line in
  st.owner <- thread;
  t.costs.alloc
