(** Deterministic pseudo-random number generation.

    The benchmark harness needs one independent stream per thread so that
    key choice never becomes a synchronisation point, and the whole
    reproduction must be replayable from a single seed.  We implement
    splitmix64 (used to seed streams) and xoshiro256** (the per-stream
    generator), both from Blackman & Vigna's reference designs. *)

module Splitmix : sig
  type t

  val create : int64 -> t
  (** [create seed] makes a splitmix64 generator. *)

  val next : t -> int64
  (** [next t] returns the next 64-bit value and advances [t]. *)
end

type t
(** A xoshiro256** stream.  Not thread-safe; use one stream per thread. *)

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] builds a stream from [seed] (default [0x9E3779B97F4A7C15L])
    via splitmix64 state expansion. *)

val split : t -> t
(** [split t] derives an independent stream; [t] advances.  Used to hand a
    private stream to each worker thread. *)

val stream : seed:int64 -> index:int -> t
(** [stream ~seed ~index] is the [index]-th worker stream for [seed]: a
    pure function of its two arguments (unlike {!split}, which advances a
    shared parent).  Distinct indexes give distinct, independent streams;
    the benchmark runner uses [index = domain rank].  [index] must be
    non-negative. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive.
    Uses rejection sampling, so the distribution is exactly uniform. *)

val bool : t -> bool
(** Uniform coin flip. *)

val float : t -> float
(** Uniform in [\[0, 1)] with 53 bits of precision. *)

val in_range : t -> lo:int -> hi:int -> int
(** [in_range t ~lo ~hi] is uniform in [\[lo, hi)].  Requires [lo < hi]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
