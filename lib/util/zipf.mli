(** Zipfian sampling over [\[1, n\]]: P(k) proportional to 1/k^s.

    Synchrobench-style suites use skewed key distributions to model
    hot-key workloads; the paper itself measures uniform keys only, so
    this is harness generality, not reproduction.  Sampling is by binary
    search over a precomputed CDF — O(n) setup, O(log n) per draw,
    deterministic given the RNG stream. *)

type t

val create : ?s:float -> n:int -> unit -> t
(** [create ?s ~n ()] with skew exponent [s] (default 1.0, the classic
    Zipf).  Raises [Invalid_argument] if [n < 1] or [s < 0]. *)

val sample : t -> Rng.t -> int
(** A draw in [\[1, n\]]. *)

val n : t -> int

val skew : t -> float
