(* See token.mli. *)

type t = unit ref

let fresh () = ref ()
