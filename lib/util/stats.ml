type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean samples =
  if Array.length samples = 0 then invalid_arg "Stats.mean: empty";
  Array.fold_left ( +. ) 0. samples /. float_of_int (Array.length samples)

let stddev samples =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.stddev: empty";
  if n < 2 then 0.
  else begin
    let m = mean samples in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. samples in
    sqrt (ss /. float_of_int (n - 1))
  end

let percentile samples p =
  let n = Array.length samples in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. w)) +. (sorted.(hi) *. w)
  end

let summarize samples =
  if Array.length samples = 0 then invalid_arg "Stats.summarize: empty";
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  {
    n = Array.length samples;
    mean = mean samples;
    stddev = stddev samples;
    min = sorted.(0);
    max = sorted.(Array.length sorted - 1);
    median = percentile samples 50.;
  }

type summary_ext = { base : summary; p50 : float; p90 : float; p99 : float }

let summary_with_percentiles samples =
  if Array.length samples = 0 then invalid_arg "Stats.summary_with_percentiles: empty";
  {
    base = summarize samples;
    p50 = percentile samples 50.;
    p90 = percentile samples 90.;
    p99 = percentile samples 99.;
  }

let speedup ~baseline x =
  if baseline = 0. then invalid_arg "Stats.speedup: zero baseline";
  x /. baseline
