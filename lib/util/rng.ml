module Splitmix = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  (* splitmix64: one 64-bit add per step, output mixed by two xor-shifts.
     Constants are from the reference implementation. *)
  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)
end

type t = { mutable s0 : int64; mutable s1 : int64; mutable s2 : int64; mutable s3 : int64 }

let default_seed = 0x9E3779B97F4A7C15L

let of_splitmix sm =
  (* xoshiro256** must not start from the all-zero state; splitmix64 never
     yields four zero outputs in a row, so this is safe. *)
  let s0 = Splitmix.next sm in
  let s1 = Splitmix.next sm in
  let s2 = Splitmix.next sm in
  let s3 = Splitmix.next sm in
  { s0; s1; s2; s3 }

let create ?(seed = default_seed) () = of_splitmix (Splitmix.create seed)

let rotl x k =
  Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

let next_int64 t =
  let result = Int64.mul (rotl (Int64.mul t.s1 5L) 7) 9L in
  let tmp = Int64.shift_left t.s1 17 in
  t.s2 <- Int64.logxor t.s2 t.s0;
  t.s3 <- Int64.logxor t.s3 t.s1;
  t.s1 <- Int64.logxor t.s1 t.s2;
  t.s0 <- Int64.logxor t.s0 t.s3;
  t.s2 <- Int64.logxor t.s2 tmp;
  t.s3 <- rotl t.s3 45;
  result

let split t = of_splitmix (Splitmix.create (next_int64 t))

(* Weyl-style stream derivation: each index perturbs the seed by a distinct
   multiple of an odd constant (from splitmix64's gamma family), so streams
   are a pure function of (seed, index) — no shared state between the
   derivations, unlike [split]. *)
let stream ~seed ~index =
  if index < 0 then invalid_arg "Rng.stream: index must be >= 0";
  of_splitmix
    (Splitmix.create
       (Int64.logxor seed (Int64.mul (Int64.of_int (index + 1)) 0xD1B54A32D192ED03L)))

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling on the top bits keeps the draw exactly uniform. *)
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    let v = r mod bound in
    if r - v > max_int - bound + 1 then draw () else v
  in
  draw ()

let bool t = Int64.compare (Int64.logand (next_int64 t) 1L) 0L <> 0

let float t =
  let bits = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  bits *. 0x1.0p-53

let in_range t ~lo ~hi =
  if lo >= hi then invalid_arg "Rng.in_range: need lo < hi";
  lo + int t (hi - lo)

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
