(** Geometric tower heights (p = 1/2, capped) for skip lists, from
    splitmix64 over a private counter: deterministic under the
    instrumented backend, contention-cheap under the real one. *)

val max_level : int

type t

val create : unit -> t

val next_level : t -> int
(** In [1, max_level]. *)
