(** Fresh physical-identity tokens.  Every [fresh ()] allocates a new
    box, so two tokens from different calls are never physically equal —
    an ABA-proof "version" for CAS-expected values without maintaining a
    counter.  Tokens carry no data and are only ever compared by the
    runtime's pointer equality inside [compare_and_set]. *)

type t

val fresh : unit -> t
