(** Plain-text and CSV rendering of result tables.

    Benchmark output must be diffable and greppable, so rendering is pure
    string production: no terminal control, fixed column layout. *)

type t
(** A table under construction: a header row plus data rows. *)

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** [add_row t cells] appends a row.  Rows shorter than the header are
    right-padded with empty cells; longer rows raise [Invalid_argument]. *)

val render : t -> string
(** Aligned plain-text rendering with a header separator line. *)

val render_csv : t -> string
(** RFC-4180-ish CSV (quotes cells containing commas, quotes or newlines). *)

val float_cell : ?decimals:int -> float -> string
(** Format a float for a cell, default 2 decimals. *)

val si_cell : float -> string
(** Format with an SI suffix: [12.3M], [456.7k], [89.0].  Used for
    throughput (operations per second) columns. *)
