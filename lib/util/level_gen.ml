(** Geometric tower-height generation for skip lists.

    Heights follow the classic p = 1/2 geometric distribution, capped at
    {!max_level}.  Randomness comes from splitmix64 applied to a private
    monotonic counter, which keeps runs deterministic under the
    instrumented backend (heights depend only on the order in which
    inserts draw them) and contention-cheap under the real one (a single
    fetch-and-add, no shared RNG state beyond it). *)

let max_level = 16

type t = { counter : int Atomic.t }

let create () = { counter = Atomic.make 1 }

let next_level t =
  let n = Atomic.fetch_and_add t.counter 1 in
  let z = Rng.Splitmix.next (Rng.Splitmix.create (Int64.of_int n)) in
  (* Count trailing ones of the mixed word: P(level > k) = 2^-k. *)
  let rec count k z =
    if k + 1 >= max_level then k
    else if Int64.logand z 1L = 1L then count (k + 1) (Int64.shift_right_logical z 1)
    else k
  in
  1 + count 0 z
