type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t cells =
  let ncols = List.length t.headers in
  let n = List.length cells in
  if n > ncols then invalid_arg "Table.add_row: more cells than headers";
  let padded =
    if n = ncols then cells else cells @ List.init (ncols - n) (fun _ -> "")
  in
  t.rows <- t.rows @ [ padded ]

let widths t =
  let update acc row =
    List.map2 (fun w cell -> max w (String.length cell)) acc row
  in
  List.fold_left update (List.map String.length t.headers) t.rows

let render t =
  let ws = widths t in
  let pad w s = s ^ String.make (w - String.length s) ' ' in
  let line row = String.concat "  " (List.map2 pad ws row) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') ws) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (line t.headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf sep;
  List.iter
    (fun row ->
      Buffer.add_char buf '\n';
      Buffer.add_string buf (line row))
    t.rows;
  Buffer.contents buf

let csv_escape cell =
  let needs_quote =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') cell
  in
  if not needs_quote then cell
  else begin
    let buf = Buffer.create (String.length cell + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      cell;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let render_csv t =
  let line row = String.concat "," (List.map csv_escape row) in
  String.concat "\n" (line t.headers :: List.map line t.rows)

let float_cell ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let si_cell x =
  let abs = Float.abs x in
  if abs >= 1e9 then Printf.sprintf "%.2fG" (x /. 1e9)
  else if abs >= 1e6 then Printf.sprintf "%.2fM" (x /. 1e6)
  else if abs >= 1e3 then Printf.sprintf "%.2fk" (x /. 1e3)
  else Printf.sprintf "%.2f" x
