type t = { n : int; s : float; cdf : float array }

let create ?(s = 1.0) ~n () =
  if n < 1 then invalid_arg "Zipf.create: n must be >= 1";
  if s < 0. then invalid_arg "Zipf.create: s must be >= 0";
  let cdf = Array.make n 0. in
  let acc = ref 0. in
  for k = 1 to n do
    acc := !acc +. (1. /. Float.pow (float_of_int k) s);
    cdf.(k - 1) <- !acc
  done;
  let total = !acc in
  for i = 0 to n - 1 do
    cdf.(i) <- cdf.(i) /. total
  done;
  { n; s; cdf }

let sample t rng =
  let u = Rng.float rng in
  (* First index with cdf >= u. *)
  let rec search lo hi =
    if lo >= hi then lo + 1
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    end
  in
  search 0 (t.n - 1)

let n t = t.n

let skew t = t.s
