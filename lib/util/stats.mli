(** Summary statistics over benchmark samples.

    The paper reports throughput averaged over 5 runs; we additionally keep
    the spread so EXPERIMENTS.md can report run-to-run noise. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation (n-1 denominator); 0 if n < 2 *)
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** [summarize samples] computes the summary.  Raises [Invalid_argument] on
    an empty array. *)

val mean : float array -> float
val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile samples p] for [p] in [\[0, 100\]], linear interpolation
    between closest ranks.  Raises [Invalid_argument] on an empty array or
    out-of-range [p]. *)

type summary_ext = { base : summary; p50 : float; p90 : float; p99 : float }
(** A {!summary} extended with the tail percentiles the observability
    layer reports. *)

val summary_with_percentiles : float array -> summary_ext
(** [summary_with_percentiles samples] is {!summarize} plus p50/p90/p99
    (linear interpolation, like {!percentile}).  Raises
    [Invalid_argument] on an empty array. *)

val speedup : baseline:float -> float -> float
(** [speedup ~baseline x] is [x /. baseline]; how many times faster [x] is. *)
