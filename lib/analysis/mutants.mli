(** Seeded-bug variants of the VBL and lazy lists — the ground truth the
    analysis layer is validated against.  Each mutant is the clean
    algorithm with exactly one discipline edit, selected by a knob module
    so the diff against the clean code is a single conditional; the
    implementation's header documents which analysis catches which seed.

    To add a mutation: add a knob defaulting to the clean behaviour,
    guard the single deviating statement on it, instantiate over
    [Instr_mem], and register the instance in {!all} plus a catching
    scenario in [Check.mutation_cases]. *)

module type VBL_KNOBS = sig
  val name : string

  val deleted_check : bool
  (** lock validations test the logical-delete flag (clean: [true]) *)

  val locked_unlink : bool
  (** remove holds [prev]'s lock across the unlink (clean: [true]) *)

  val logical_delete : bool
  (** remove marks the victim before unlinking (clean: [true]) *)

  val release_after_insert : bool
  (** insert releases [prev]'s lock on the success path (clean: [true]) *)
end

module type LAZY_KNOBS = sig
  val name : string

  val validation : bool
  (** updates validate adjacency and marks after locking (clean: [true]) *)
end

module Make_vbl (_ : VBL_KNOBS) (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
(** The VBL algorithm (verbatim from [Vbl_lists.Vbl_list]) with the
    discipline edits of the knobs applied. *)

module Make_lazy (_ : LAZY_KNOBS) (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
(** The lazy list (verbatim from [Vbl_lists.Lazy_list]) with the
    discipline edits of the knobs applied. *)

module type BST_KNOBS = sig
  val name : string

  val version_recheck : bool
  (** insert validates the window version under the tree lock (clean: [true]) *)

  val locked_window : bool
  (** the splice holds the victim's tree lock across the window (clean: [true]) *)
end

module Make_bst (_ : BST_KNOBS) (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S
(** The partially-external versioned-lock BST (verbatim from
    [Vbl_trees.Vbl_bst]) with the discipline edits of the knobs applied. *)

module Vbl_no_deleted_check : Vbl_lists.Set_intf.S
module Vbl_unlocked_unlink : Vbl_lists.Set_intf.S
module Vbl_no_logical_delete : Vbl_lists.Set_intf.S
module Vbl_leaky_lock : Vbl_lists.Set_intf.S
module Lazy_no_validation : Vbl_lists.Set_intf.S
module Bst_no_version_recheck : Vbl_lists.Set_intf.S
module Bst_unlocked_rotation_window : Vbl_lists.Set_intf.S

module Vbl_reclaim_eager : Vbl_lists.Set_intf.S
(** The clean VBL list over {!Vbl_memops.Instr_reclaim.Eager}: a backend
    mutant whose reclamation skips the grace period, so recycled nodes
    are reinitialized under parked traversals (use-after-reclaim). *)

val all : (module Vbl_lists.Set_intf.S) list
(** Every registered mutant instance (over the instrumented backend). *)

val find : string -> (module Vbl_lists.Set_intf.S)
(** Look a mutant up by its [name]; raises [Invalid_argument] on an
    unknown name. *)
