(** Seeded-bug variants of the VBL and lazy lists — the ground truth the
    analysis layer is validated against.

    Each mutant is the clean algorithm with exactly one discipline edit,
    selected by a knob module so the diff against the clean code is a
    single conditional.  The knobs, and what catches each mutant:

    - {!Vbl_no_deleted_check}: the value-aware try-lock skips the
      logical-delete flag test (§3.1's "not deleted" premise), so an update
      can link into an already-unlinked node — a lost update the σ̄-extended
      linearizability check exposes.
    - {!Vbl_unlocked_unlink}: remove unlinks without holding [prev]'s lock;
      the unlink store races with a concurrent locked insert into the same
      [next] cell — the happens-before detector flags the unordered plain
      writes (and the lockset lint, in orders where the unlocked store comes
      second).
    - {!Vbl_no_logical_delete}: remove unlinks without first marking the
      victim, so a concurrent insert that validated against the victim
      succeeds into dead memory — lost update, again caught by σ̄.
    - {!Vbl_leaky_lock}: insert returns without releasing [prev]'s lock —
      the lock-discipline linter reports lock-held-at-return (and other
      interleavings deadlock outright).
    - {!Lazy_no_validation}: the lazy list's post-lock validation is
      short-circuited, resurrecting the Heller et al. algorithm's whole
      reason for validating — unlinked predecessors and double removes;
      caught as a non-linearizable history.
    - {!Bst_no_version_recheck}: the versioned-lock BST's insert links
      into its descent window without re-checking the window version, so
      two inserts racing for one empty slot both link and the second
      overwrites the first — a lost update caught by σ̄.
    - {!Bst_unlocked_rotation_window}: the BST's physical splice decides
      its restructuring window from the victim's children read {e before}
      the victim's tree lock is taken, letting a concurrent insert link a
      fresh leaf under the victim inside the window — the stale splice
      drops the new key with the victim, again caught by σ̄.

    To add a mutation: add a knob defaulting to the clean behaviour, guard
    the single deviating statement on it, instantiate, and register the
    instance in {!all} plus a catching scenario in {!Check.mutation_cases}. *)

module Instr = Vbl_memops.Instr_mem
module Naming = Vbl_lists.Naming

module type VBL_KNOBS = sig
  val name : string

  val deleted_check : bool
  (** lock validations test the logical-delete flag (clean: [true]) *)

  val locked_unlink : bool
  (** remove holds [prev]'s lock across the unlink (clean: [true]) *)

  val logical_delete : bool
  (** remove marks the victim before unlinking (clean: [true]) *)

  val release_after_insert : bool
  (** insert releases [prev]'s lock on the success path (clean: [true]) *)
end

(** The VBL algorithm (verbatim from [Vbl_lists.Vbl_list]) with the
    discipline edits of [K] applied. *)
module Make_vbl (K : VBL_KNOBS) (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = K.name

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell;
        deleted : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell; deleted : bool M.cell; lock : M.lock }

  type t = { head : node }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_deleted = function Node n -> M.get n.deleted | Tail n -> M.get n.deleted
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false

  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          deleted = M.make ~name:(Naming.deleted_cell nm) ~line false;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = M.make ~line next;
          deleted = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let create () =
    let tl = M.fresh_line () in
    let tail =
      Tail
        {
          value = M.make ~name:(Naming.value_cell Naming.tail) ~line:tl max_int;
          deleted = M.make ~name:(Naming.deleted_cell Naming.tail) ~line:tl false;
          lock = M.make_lock ~name:(Naming.lock_cell Naming.tail) ~line:tl ();
        }
    in
    let hl = M.fresh_line () in
    let head =
      Node
        {
          value = M.make ~name:(Naming.value_cell Naming.head) ~line:hl min_int;
          next = M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail;
          deleted = M.make ~name:(Naming.deleted_cell Naming.head) ~line:hl false;
          lock = M.make_lock ~name:(Naming.lock_cell Naming.head) ~line:hl ();
        }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  let lock_next_at node at =
    M.lock (node_lock node);
    if ((not K.deleted_check) || not (node_deleted node)) && M.get (next_cell_exn node) == at
    then true
    else begin
      M.unlock (node_lock node);
      false
    end

  let lock_next_at_value node v =
    M.lock (node_lock node);
    if
      ((not K.deleted_check) || not (node_deleted node))
      && node_value (M.get (next_cell_exn node)) = v
    then true
    else begin
      M.unlock (node_lock node);
      false
    end

  let rec insert_attempt t v prev =
    let prev = if node_deleted prev then t.head else prev in
    insert_walk t v prev (M.get (next_cell_exn prev))

  and insert_walk t v prev curr =
    if node_value curr < v then insert_walk t v curr (M.get (next_cell_exn curr))
    else if node_value curr = v then false
    else begin
      let x = make_node v curr in
      if lock_next_at prev curr then begin
        M.set (next_cell_exn prev) x;
        if K.release_after_insert then M.unlock (node_lock prev);
        true
      end
      else insert_attempt t v prev
    end

  let insert t v =
    check_key v;
    insert_attempt t v t.head

  let rec remove_attempt t v prev =
    let prev = if node_deleted prev then t.head else prev in
    remove_walk t v prev (M.get (next_cell_exn prev))

  and remove_walk t v prev curr =
    if node_value curr < v then remove_walk t v curr (M.get (next_cell_exn curr))
    else if node_value curr <> v then false
    else begin
      let next = M.get (next_cell_exn curr) in
      if K.locked_unlink then begin
        if not (lock_next_at_value prev v) then remove_attempt t v prev
        else begin
          let curr = M.get (next_cell_exn prev) in
          if not (lock_next_at curr next) then begin
            M.unlock (node_lock prev);
            remove_attempt t v prev
          end
          else begin
            (match curr with
            | Node n -> if K.logical_delete then M.set n.deleted true
            | Tail _ -> assert false);
            M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
            M.unlock (node_lock curr);
            M.unlock (node_lock prev);
            true
          end
        end
      end
      else if
        (* seeded mutant: unlink without holding [prev]'s lock — the
           store below is unprotected against a concurrent insert. *)
        not (lock_next_at curr next)
      then remove_attempt t v prev
      else begin
        (match curr with
        | Node n -> if K.logical_delete then M.set n.deleted true
        | Tail _ -> assert false);
        M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
        M.unlock (node_lock curr);
        true
      end
    end

  let remove t v =
    check_key v;
    remove_attempt t v t.head

  let rec contains_walk v curr =
    if node_value curr < v then contains_walk v (M.get (next_cell_exn curr))
    else node_value curr = v

  let contains t v =
    check_key v;
    contains_walk v t.head

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && not (M.get n.deleted) in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value <> max_int then Error "tail sentinel does not store max_int"
            else if M.get n.deleted then Error "tail sentinel is marked deleted"
            else Ok ()
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else if steps > 0 && M.get n.deleted then
              Error (Printf.sprintf "deleted node %d still reachable" v)
            else if M.lock_held (node_lock node) then
              Error (Printf.sprintf "node %d left locked" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end

module type LAZY_KNOBS = sig
  val name : string

  val validation : bool
  (** updates validate adjacency and marks after locking (clean: [true]) *)
end

(** The lazy list (verbatim from [Vbl_lists.Lazy_list]) with the
    discipline edits of [K] applied. *)
module Make_lazy (K : LAZY_KNOBS) (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = K.name

  type node =
    | Node of {
        value : int M.cell;
        next : node M.cell;
        marked : bool M.cell;
        lock : M.lock;
      }
    | Tail of { value : int M.cell; marked : bool M.cell; lock : M.lock }

  type t = { head : node }

  let node_value = function Node n -> M.get n.value | Tail n -> M.get n.value
  let node_marked = function Node n -> M.get n.marked | Tail n -> M.get n.marked
  let node_lock = function Node n -> n.lock | Tail n -> n.lock
  let next_cell_exn = function Node n -> n.next | Tail _ -> assert false

  let make_node value next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node value in
      M.new_node ~name:nm ~line;
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line value;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          marked = M.make ~name:(Naming.deleted_cell nm) ~line false;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else
      Node
        {
          value = M.make ~line value;
          next = M.make ~line next;
          marked = M.make ~line false;
          lock = M.make_lock ~line ();
        }

  let make_sentinel value =
    let nm = Naming.node value in
    let line = M.fresh_line () in
    ( line,
      M.make ~name:(Naming.value_cell nm) ~line value,
      M.make ~name:(Naming.deleted_cell nm) ~line false,
      M.make_lock ~name:(Naming.lock_cell nm) ~line () )

  let create () =
    let _, tv, tm, tlk = make_sentinel max_int in
    let tail = Tail { value = tv; marked = tm; lock = tlk } in
    let hl, hv, hm, hlk = make_sentinel min_int in
    let head =
      Node
        {
          value = hv;
          next = M.make ~name:(Naming.next_cell Naming.head) ~line:hl tail;
          marked = hm;
          lock = hlk;
        }
    in
    { head }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "list-based set: key must be strictly between min_int and max_int"

  let validate prev curr =
    (not K.validation)
    (* seeded mutant: trust the unlocked traversal blindly *)
    || (not (node_marked prev))
       && (not (node_marked curr))
       && M.get (next_cell_exn prev) == curr

  let rec insert_walk t v prev curr =
    if node_value curr < v then insert_walk t v curr (M.get (next_cell_exn curr))
    else begin
      M.lock (node_lock prev);
      M.lock (node_lock curr);
      if validate prev curr then begin
        let tval = node_value curr in
        let result =
          if tval = v then false
          else begin
            M.set (next_cell_exn prev) (make_node v curr);
            true
          end
        in
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        result
      end
      else begin
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        insert_walk t v t.head (M.get (next_cell_exn t.head))
      end
    end

  let insert t v =
    check_key v;
    insert_walk t v t.head (M.get (next_cell_exn t.head))

  let rec remove_walk t v prev curr =
    if node_value curr < v then remove_walk t v curr (M.get (next_cell_exn curr))
    else begin
      M.lock (node_lock prev);
      M.lock (node_lock curr);
      if validate prev curr then begin
        let tval = node_value curr in
        let result =
          if tval <> v then false
          else begin
            (match curr with Node n -> M.set n.marked true | Tail _ -> assert false);
            M.set (next_cell_exn prev) (M.get (next_cell_exn curr));
            true
          end
        in
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        result
      end
      else begin
        M.unlock (node_lock curr);
        M.unlock (node_lock prev);
        remove_walk t v t.head (M.get (next_cell_exn t.head))
      end
    end

  let remove t v =
    check_key v;
    remove_walk t v t.head (M.get (next_cell_exn t.head))

  let rec contains_walk v curr =
    if node_value curr < v then contains_walk v (M.get (next_cell_exn curr))
    else node_value curr = v && not (node_marked curr)

  let contains t v =
    check_key v;
    contains_walk v (M.get (next_cell_exn t.head))

  let fold f init t =
    let rec loop acc node =
      match node with
      | Tail _ -> acc
      | Node n ->
          let v = M.get n.value in
          let keep = v <> min_int && not (M.get n.marked) in
          let acc = if keep then f acc v else acc in
          loop acc (M.get n.next)
    in
    loop init t.head

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let rec loop last node steps =
      if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
      else
        match node with
        | Tail n ->
            if M.get n.value <> max_int then Error "tail sentinel does not store max_int"
            else if M.get n.marked then Error "tail sentinel is marked"
            else Ok ()
        | Node n ->
            let v = M.get n.value in
            if v <= last && steps > 0 then
              Error (Printf.sprintf "values not strictly increasing at %d" v)
            else if steps > 0 && M.get n.marked then
              Error (Printf.sprintf "marked node %d still reachable" v)
            else loop v (M.get n.next) (steps + 1)
    in
    match t.head with
    | Node n when M.get n.value = min_int -> loop min_int t.head 0
    | _ -> Error "head sentinel does not store min_int"
end

module type BST_KNOBS = sig
  val name : string

  val version_recheck : bool
  (** insert validates the window version under the tree lock (clean: [true]) *)

  val locked_window : bool
  (** the splice holds the victim's tree lock across the window (clean: [true]) *)
end

(** The partially-external versioned-lock BST (verbatim from
    [Vbl_trees.Vbl_bst]) with the discipline edits of [K] applied:

    - [version_recheck = false]: the link after a failed descent skips
      the [p.ver = s] comparison, so two inserts racing for one empty
      slot both link and the second overwrites the first — a lost update
      the σ̄-extended check exposes;
    - [locked_window = false]: the physical splice decides its
      restructuring window from the victim's children read before the
      victim's tree lock is taken, so a concurrent insert can link a
      fresh leaf under the victim inside the window and the stale
      splice drops the new key with it — lost update again. *)
module Make_bst (K : BST_KNOBS) (M : Vbl_memops.Mem_intf.S) : Vbl_lists.Set_intf.S = struct
  let name = K.name

  type node = {
    key : int;
    deleted : bool M.cell;
    unlinked : bool M.cell;
    left : node option M.cell;
    right : node option M.cell;
    ver : int M.cell;
    slock : M.lock;
    tlock : M.lock;
  }

  type t = { root : node }

  let node_name k = if k = max_int then "rt" else "N" ^ string_of_int k

  let make_node k =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = node_name k in
      M.new_node ~name:nm ~line;
      {
        key = k;
        deleted = M.make ~name:(nm ^ ".del") ~line false;
        unlinked = M.make ~name:(nm ^ ".ulk") ~line false;
        left = M.make ~name:(nm ^ ".left") ~line None;
        right = M.make ~name:(nm ^ ".right") ~line None;
        ver = M.make ~name:(nm ^ ".ver") ~line 0;
        slock = M.make_lock ~name:(nm ^ ".slock") ~line ();
        tlock = M.make_lock ~name:(nm ^ ".lock") ~line ();
      }
    end
    else
      {
        key = k;
        deleted = M.make ~line false;
        unlinked = M.make ~line false;
        left = M.make ~line None;
        right = M.make ~line None;
        ver = M.make ~line 0;
        slock = M.make_lock ~line ();
        tlock = M.make_lock ~line ();
      }

  let create () = { root = make_node max_int }

  let check_key v =
    if v = min_int || v = max_int then
      invalid_arg "bst: key must be strictly between min_int and max_int"

  let child n v = if v < n.key then n.left else n.right

  let rec contains_walk n v =
    if v = n.key then not (M.get n.deleted)
    else
      match M.get (if v < n.key then n.left else n.right) with
      | Some c -> contains_walk c v
      | None -> false

  let contains t v =
    check_key v;
    contains_walk t.root v

  type where = Found of node * node | Missing of node * int

  let locate t v =
    let rec go p n =
      if v = n.key then Found (p, n)
      else
        let c = child n v in
        match M.get c with
        | Some m -> go n m
        | None -> (
            let s = M.get n.ver in
            match M.get c with Some m -> go n m | None -> Missing (n, s))
    in
    go t.root t.root

  let insert t v =
    check_key v;
    let rec attempt () =
      match locate t v with
      | Found (_, n) ->
          if not (M.get n.deleted) then false
          else begin
            M.lock n.slock;
            if M.get n.unlinked then begin
              M.unlock n.slock;
              attempt ()
            end
            else if M.get n.deleted then begin
              M.set n.deleted false;
              M.unlock n.slock;
              true
            end
            else begin
              M.unlock n.slock;
              false
            end
          end
      | Missing (p, s) ->
          let x = make_node v in
          M.lock p.tlock;
          if
            (not (M.get p.unlinked))
            && ((not K.version_recheck)
                (* seeded mutant: link into a window whose version moved *)
               || M.get p.ver = s)
          then begin
            M.set (child p v) (Some x);
            M.set p.ver (s + 1);
            M.unlock p.tlock;
            true
          end
          else begin
            M.unlock p.tlock;
            attempt ()
          end
    in
    attempt ()

  let cleanup p n =
    M.lock n.slock;
    if M.get n.deleted && not (M.get n.unlinked) then begin
      (* seeded mutant: the splice window is read before the victim's
         tree lock is taken, so a concurrent insert can still link a
         fresh leaf under [n] and the stale window splices it away *)
      let stale_window =
        if K.locked_window then None else Some (M.get n.left, M.get n.right)
      in
      M.lock p.tlock;
      M.lock n.tlock;
      let pc = child p n.key in
      let still_child =
        match M.get pc with Some m -> m == n | None -> false
      in
      if still_child && not (M.get p.unlinked) then begin
        let window =
          match stale_window with
          | Some w -> w
          | None -> (M.get n.left, M.get n.right)
        in
        match window with
        | Some _, Some _ -> ()
        | (Some _ as only), None | None, (Some _ as only) | (None as only), None
          ->
            M.set n.unlinked true;
            M.set pc only;
            M.set p.ver (M.get p.ver + 1)
      end;
      M.unlock n.tlock;
      M.unlock p.tlock
    end;
    M.unlock n.slock

  let remove t v =
    check_key v;
    let rec attempt () =
      match locate t v with
      | Missing _ -> false
      | Found (p, n) ->
          if M.get n.deleted then false
          else begin
            M.lock n.slock;
            if M.get n.unlinked then begin
              M.unlock n.slock;
              attempt ()
            end
            else if M.get n.deleted then begin
              M.unlock n.slock;
              false
            end
            else begin
              M.set n.deleted true;
              M.unlock n.slock;
              cleanup p n;
              true
            end
          end
    in
    attempt ()

  let fold f init t =
    let rec go acc n =
      let acc = match M.get n.left with Some c -> go acc c | None -> acc in
      let acc =
        if n.key <> max_int && not (M.get n.deleted) then f acc n.key else acc
      in
      match M.get n.right with Some c -> go acc c | None -> acc
    in
    go init t.root

  let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
  let size t = fold (fun acc _ -> acc + 1) 0 t

  include Vbl_lists.Set_intf.Derive (struct
    type nonrec t = t

    let fold = fold
  end)

  let check_invariants t =
    let exception Bad of string in
    let check_node n =
      if M.get n.unlinked then
        raise (Bad (Printf.sprintf "reachable unlinked node %d" n.key));
      if M.lock_held n.slock then
        raise (Bad (Printf.sprintf "node %d state lock left held" n.key));
      if M.lock_held n.tlock then
        raise (Bad (Printf.sprintf "node %d tree lock left held" n.key))
    in
    let rec go n lo hi depth =
      if depth > 1_000_000 then raise (Bad "descent did not terminate (cycle?)");
      if not (lo < n.key && n.key < hi) then
        raise (Bad (Printf.sprintf "node %d outside (%d, %d)" n.key lo hi));
      check_node n;
      (match M.get n.left with Some c -> go c lo n.key (depth + 1) | None -> ());
      match M.get n.right with Some c -> go c n.key hi (depth + 1) | None -> ()
    in
    if t.root.key <> max_int then Error "root is not the max_int sentinel"
    else
      try
        if M.get t.root.deleted then raise (Bad "root sentinel marked deleted");
        check_node t.root;
        (match M.get t.root.right with
        | Some _ -> raise (Bad "root sentinel has a right child")
        | None -> ());
        (match M.get t.root.left with
        | Some c -> go c min_int max_int 0
        | None -> ());
        Ok ()
      with Bad msg -> Error msg
end

(* Clean knob settings, overridden one at a time below. *)
module Vbl_clean_knobs = struct
  let deleted_check = true
  let locked_unlink = true
  let logical_delete = true
  let release_after_insert = true
end

module Vbl_no_deleted_check =
  Make_vbl
    (struct
      include Vbl_clean_knobs

      let name = "vbl-no-deleted-check"
      let deleted_check = false
    end)
    (Instr)

module Vbl_unlocked_unlink =
  Make_vbl
    (struct
      include Vbl_clean_knobs

      let name = "vbl-unlocked-unlink"
      let locked_unlink = false
    end)
    (Instr)

module Vbl_no_logical_delete =
  Make_vbl
    (struct
      include Vbl_clean_knobs

      let name = "vbl-no-logical-delete"
      let logical_delete = false
    end)
    (Instr)

module Vbl_leaky_lock =
  Make_vbl
    (struct
      include Vbl_clean_knobs

      let name = "vbl-leaky-lock"
      let release_after_insert = false
    end)
    (Instr)

module Lazy_no_validation =
  Make_lazy
    (struct
      let name = "lazy-no-validation"
      let validation = false
    end)
    (Instr)

module Bst_clean_knobs = struct
  let version_recheck = true
  let locked_window = true
end

module Bst_no_version_recheck =
  Make_bst
    (struct
      include Bst_clean_knobs

      let name = "bst-no-version-recheck"
      let version_recheck = false
    end)
    (Instr)

module Bst_unlocked_rotation_window =
  Make_bst
    (struct
      include Bst_clean_knobs

      let name = "bst-unlocked-rotation-window"
      let locked_window = false
    end)
    (Instr)

(* Unlike the knob mutants above, this one leaves the algorithm alone and
   mutates the *backend*: the clean VBL list over the reclaiming
   instrumented memory with the grace period disabled, so a recycled node
   can be reinitialized under a parked traversal (use-after-reclaim). *)
module Vbl_reclaim_eager = struct
  include Vbl_lists.Vbl_list.Make (Vbl_memops.Instr_reclaim.Eager)

  let name = "vbl-reclaim-eager"
end

let all : (module Vbl_lists.Set_intf.S) list =
  [
    (module Vbl_no_deleted_check);
    (module Vbl_unlocked_unlink);
    (module Vbl_no_logical_delete);
    (module Vbl_leaky_lock);
    (module Lazy_no_validation);
    (module Bst_no_version_recheck);
    (module Bst_unlocked_rotation_window);
    (module Vbl_reclaim_eager);
  ]

let find nm : (module Vbl_lists.Set_intf.S) =
  match
    List.find_opt
      (fun i ->
        let module S = (val i : Vbl_lists.Set_intf.S) in
        S.name = nm)
      all
  with
  | Some i -> i
  | None -> invalid_arg ("Mutants.find: unknown mutant " ^ nm)
