(** Convenience runners tying the explorer, the analysis monitor and the
    mutant zoo together: one call analyzes an implementation on a scenario,
    and the two suites below are the layer's acceptance harness —
    {!mutation_suite} must catch every seeded bug, {!clean_suite} must
    come back empty-handed on the clean algorithms. *)

module Explore = Vbl_sched.Explore
module Drive = Vbl_sched.Drive
module Ll = Vbl_sched.Ll_abstract

let default_config =
  { Explore.max_executions = 200_000; preemption_bound = Some 3; max_steps = 5_000 }

(** Explore [impl] on [initial]/[ops] with the race detector and
    lock-discipline linter attached. *)
let analyze ?(config = default_config) impl ~initial ~ops =
  let threads = max 2 (List.length ops) in
  Explore.run ~config
    ~monitor:(Monitor.make ~threads ())
    (Drive.explore_scenario impl ~initial ~ops)

(** Same scenario through the naive DFS — for DPOR parity and reduction
    measurements. *)
let analyze_naive ?(config = default_config) impl ~initial ~ops =
  let threads = max 2 (List.length ops) in
  Explore.run_naive ~config
    ~monitor:(Monitor.make ~threads ())
    (Drive.explore_scenario impl ~initial ~ops)

type case = { mutant : string; initial : int list; ops : Ll.opspec list }
(** A mutant plus a scenario small enough to explore exhaustively yet
    sufficient to expose the seeded bug. *)

(* Each scenario targets its mutant's seeded discipline violation; see the
   header of {!Mutants} for what failure each one is expected to produce. *)
let mutation_cases : case list =
  [
    { mutant = "vbl-no-deleted-check"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.insert 7 ] };
    { mutant = "vbl-unlocked-unlink"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.insert 3 ] };
    { mutant = "vbl-no-logical-delete"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.insert 7 ] };
    { mutant = "vbl-leaky-lock"; initial = []; ops = [ Ll.insert 1; Ll.insert 2 ] };
    { mutant = "lazy-no-validation"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.remove 5 ] };
  ]

type mutation_result = { case : case; report : Explore.report }

let caught (r : mutation_result) = r.report.Explore.failure <> None

(** Run every seeded mutant under the full analysis; a mutant counts as
    caught if {e any} failure (race, lint, non-linearizable history, broken
    invariant, deadlock) is reported with its schedule. *)
let mutation_suite ?config () : mutation_result list =
  List.map
    (fun case ->
      let impl = Mutants.find case.mutant in
      { case; report = analyze ?config impl ~initial:case.initial ~ops:case.ops })
    mutation_cases

(* Conflict-heavy scenarios over the clean implementations that must pass
   the full analysis with no failure of any kind. *)
let clean_cases : (string * int list * Ll.opspec list) list =
  [
    ("vbl", [ 2 ], [ Ll.insert 1; Ll.remove 2 ]);
    ("vbl", [ 5 ], [ Ll.remove 5; Ll.insert 7 ]);
    ("vbl", [ 5 ], [ Ll.remove 5; Ll.insert 3 ]);
    ("lazy", [ 2 ], [ Ll.insert 1; Ll.remove 2 ]);
    ("lazy", [ 5 ], [ Ll.remove 5; Ll.remove 5 ]);
    ("harris-michael", [ 2 ], [ Ll.insert 1; Ll.remove 2 ]);
    ("harris-michael", [ 5 ], [ Ll.remove 5; Ll.insert 7 ]);
  ]

let clean_suite ?config () : (string * Explore.report) list =
  List.map
    (fun (nm, initial, ops) ->
      (nm, analyze ?config (Drive.find_instrumented nm) ~initial ~ops))
    clean_cases
