(** Convenience runners tying the explorer, the analysis monitor and the
    mutant zoo together: one call analyzes an implementation on a scenario,
    and the two suites below are the layer's acceptance harness —
    {!mutation_suite} must catch every seeded bug, {!clean_suite} must
    come back empty-handed on the clean algorithms. *)

module Explore = Vbl_sched.Explore
module Shrink = Vbl_sched.Shrink
module Drive = Vbl_sched.Drive
module Ll = Vbl_sched.Ll_abstract

let default_config =
  { Explore.max_executions = 200_000; preemption_bound = Some 3; max_steps = 5_000 }

let monitored_scenario impl ~ops ~initial =
  let threads = max 2 (List.length ops) in
  (Drive.explore_scenario impl ~initial ~ops, Monitor.make ~threads ())

(** Explore [impl] on [initial]/[ops] with the race detector and
    lock-discipline linter attached.  [strategy] defaults to DPOR under
    the bound [config] encodes, exactly as {!Explore.run}. *)
let analyze ?(config = default_config) ?strategy impl ~initial ~ops =
  let scenario, monitor = monitored_scenario impl ~ops ~initial in
  Explore.run ~config ~monitor ?strategy scenario

(** Same scenario through the naive DFS — for DPOR parity and reduction
    measurements. *)
let analyze_naive ?(config = default_config) impl ~initial ~ops =
  let scenario, monitor = monitored_scenario impl ~ops ~initial in
  Explore.run_naive ~config ~monitor scenario

(** {!analyze}, plus a shrunk counterexample when a failure is found: the
    failing schedule is delta-debugged under the same monitor to a
    locally minimal reproduction. *)
let analyze_shrunk ?(config = default_config) ?strategy impl ~initial ~ops =
  let scenario, monitor = monitored_scenario impl ~ops ~initial in
  let report = Explore.run ~config ~monitor ?strategy scenario in
  let shrunk =
    Option.map
      (fun f -> Shrink.shrink ~monitor ~max_steps:config.Explore.max_steps scenario f)
      report.Explore.failure
  in
  (report, shrunk)

type case = { mutant : string; initial : int list; ops : Ll.opspec list }
(** A mutant plus a scenario small enough to explore exhaustively yet
    sufficient to expose the seeded bug. *)

(* Each scenario targets its mutant's seeded discipline violation; see the
   header of {!Mutants} for what failure each one is expected to produce. *)
let mutation_cases : case list =
  [
    { mutant = "vbl-no-deleted-check"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.insert 7 ] };
    { mutant = "vbl-unlocked-unlink"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.insert 3 ] };
    { mutant = "vbl-no-logical-delete"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.insert 7 ] };
    { mutant = "vbl-leaky-lock"; initial = []; ops = [ Ll.insert 1; Ll.insert 2 ] };
    { mutant = "lazy-no-validation"; initial = [ 5 ]; ops = [ Ll.remove 5; Ll.remove 5 ] };
    (* both inserts fall off the empty root slot; without the version
       recheck the second link overwrites the first (lost update) *)
    { mutant = "bst-no-version-recheck"; initial = []; ops = [ Ll.insert 1; Ll.insert 2 ] };
    (* the splice reads the victim's children unlocked, so the insert can
       link key 2 under node 1 inside the splice window and lose it *)
    { mutant = "bst-unlocked-rotation-window";
      initial = [ 1 ];
      ops = [ Ll.remove 1; Ll.insert 2 ] };
    (* use-after-reclaim: remove retires a node, insert recycles it under
       a contains parked on it (see test_reclaim.ml for the full shape) *)
    { mutant = "vbl-reclaim-eager";
      initial = [ 1; 2 ];
      ops = [ Ll.remove 1; Ll.insert 3; Ll.contains 2 ] };
  ]

type mutation_result = {
  case : case;
  report : Explore.report;
  shrunk : Shrink.result option;  (** minimal counterexample, when caught *)
}

let caught (r : mutation_result) = r.report.Explore.failure <> None

(** Run every seeded mutant under the full analysis; a mutant counts as
    caught if {e any} failure (race, lint, non-linearizable history, broken
    invariant, deadlock) is reported — with its schedule, shrunk to a
    locally minimal reproduction. *)
let mutation_suite ?config ?strategy () : mutation_result list =
  List.map
    (fun case ->
      let impl = Mutants.find case.mutant in
      let report, shrunk =
        analyze_shrunk ?config ?strategy impl ~initial:case.initial ~ops:case.ops
      in
      { case; report; shrunk })
    mutation_cases

(* Conflict-heavy scenarios over the clean implementations that must pass
   the full analysis with no failure of any kind.  The BST entries mirror
   the two BST mutant scenarios: the clean versioned-lock tree must
   survive exactly the schedules its mutants lose updates on. *)
let clean_cases : (string * int list * Ll.opspec list) list =
  [
    ("vbl", [ 2 ], [ Ll.insert 1; Ll.remove 2 ]);
    ("vbl", [ 5 ], [ Ll.remove 5; Ll.insert 7 ]);
    ("vbl", [ 5 ], [ Ll.remove 5; Ll.insert 3 ]);
    ("lazy", [ 2 ], [ Ll.insert 1; Ll.remove 2 ]);
    ("lazy", [ 5 ], [ Ll.remove 5; Ll.remove 5 ]);
    ("harris-michael", [ 2 ], [ Ll.insert 1; Ll.remove 2 ]);
    ("harris-michael", [ 5 ], [ Ll.remove 5; Ll.insert 7 ]);
    ("vbl-bst", [], [ Ll.insert 1; Ll.insert 2 ]);
    ("vbl-bst", [ 1 ], [ Ll.remove 1; Ll.insert 2 ]);
  ]

(* Clean-case lookup across the list and tree instrumented registries. *)
let find_clean nm : (module Vbl_lists.Set_intf.S) =
  match
    List.find_opt
      (fun i ->
        let module S = (val i : Vbl_lists.Set_intf.S) in
        S.name = nm)
      Vbl_trees.Registry.instrumented
  with
  | Some i -> i
  | None -> Drive.find_instrumented nm

let clean_suite ?config ?strategy () : (string * Explore.report) list =
  List.map
    (fun (nm, initial, ops) ->
      (nm, analyze ?config ?strategy (find_clean nm) ~initial ~ops))
    clean_cases
