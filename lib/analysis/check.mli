(** Convenience runners tying the explorer, the analysis monitor and the
    mutant zoo together: one call analyzes an implementation on a
    scenario, and the two suites below are the layer's acceptance
    harness — {!mutation_suite} must catch every seeded bug,
    {!clean_suite} must come back empty-handed on the clean
    algorithms. *)

module Explore = Vbl_sched.Explore
module Shrink = Vbl_sched.Shrink
module Drive = Vbl_sched.Drive
module Ll = Vbl_sched.Ll_abstract

val default_config : Explore.config
(** Exhaustive-up-to-bounds exploration: 200k executions, preemption
    bound 3, 5k steps per execution. *)

val analyze :
  ?config:Explore.config ->
  ?strategy:Explore.strategy ->
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  ops:Ll.opspec list ->
  Explore.report
(** Explore [impl] on [initial]/[ops] with the race detector and
    lock-discipline linter attached.  [strategy] defaults to DPOR under
    the bound [config] encodes, exactly as {!Explore.run}. *)

val analyze_naive :
  ?config:Explore.config ->
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  ops:Ll.opspec list ->
  Explore.report
(** Same scenario through the naive DFS — for DPOR parity and reduction
    measurements. *)

val analyze_shrunk :
  ?config:Explore.config ->
  ?strategy:Explore.strategy ->
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  ops:Ll.opspec list ->
  Explore.report * Shrink.result option
(** {!analyze}, plus a shrunk counterexample when a failure is found:
    the failing schedule is delta-debugged under the same monitor to a
    locally minimal reproduction ([None] when the report passes). *)

type case = { mutant : string; initial : int list; ops : Ll.opspec list }
(** A mutant plus a scenario small enough to explore exhaustively yet
    sufficient to expose the seeded bug. *)

val mutation_cases : case list
(** One catching scenario per registered mutant. *)

type mutation_result = {
  case : case;
  report : Explore.report;
  shrunk : Shrink.result option;  (** minimal counterexample, when caught *)
}

val caught : mutation_result -> bool
(** A mutant counts as caught if {e any} failure (race, lint,
    non-linearizable history, broken invariant, deadlock) was reported. *)

val mutation_suite :
  ?config:Explore.config -> ?strategy:Explore.strategy -> unit -> mutation_result list
(** Run every seeded mutant under the full analysis, shrinking each
    counterexample. *)

val clean_cases : (string * int list * Ll.opspec list) list
(** Conflict-heavy scenarios over the clean implementations that must
    pass the full analysis with no failure of any kind. *)

val clean_suite :
  ?config:Explore.config ->
  ?strategy:Explore.strategy ->
  unit ->
  (string * Explore.report) list
