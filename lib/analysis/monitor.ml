(** Happens-before race detection and lock-discipline linting over one
    explored execution.

    The monitor plugs into {!Vbl_sched.Explore} as a {!Explore.step_monitor}:
    it observes every executed shared access together with the access's
    per-location {!Instr_mem.shadow} record, maintains FastTrack-style
    epochs and vector clocks, and reports the first violation at
    quiescence.

    {b Race model.}  Under the instrumented backend every cell is logically
    atomic (the real engine backs them with [Atomic.t]), so a plain
    happens-before detector over {e all} accesses would be vacuous — and
    the lists under test race {e by design} on their wait-free traversals.
    What the paper's lock-based algorithms do promise is a write
    discipline: plain [set] stores to a location are totally ordered by
    synchronization.  The detector therefore checks exactly that:

    - each thread [t] carries a vector clock [C_t];
    - an {e effective} lock acquisition joins the lock's release clock into
      [C_t]; a release stores [C_t] into the lock's shadow and advances
      [t]'s epoch;
    - a CAS joins the cell's [s_sync] clock (it read the value) and, when
      effective, releases [C_t] into [s_sync] — CAS is the lock-free
      algorithms' synchronization primitive, acquire-release by
      construction;
    - a read joins [s_sync] — so values published by a releasing write are
      ordered, but reads themselves are never race-checked (benign
      traversal races stay silent);
    - a plain write to location [x] first {e checks} the last plain write's
      epoch [(s_wr_tid, s_wr_clock)] against [C_t] — unordered means two
      plain writes race — and only then installs its own epoch and
      releases [C_t] into [s_sync].  Crucially a write does {e not} join
      [s_sync]: a racing writer is not excused by the victim's release;
      ordering must arrive through a read, lock or CAS that precedes the
      write in program order.

    {b Lockset lint (Eraser-lite).}  Independently of happens-before, each
    location accumulates the intersection of the lock sets its plain
    writers held ([s_lockset]) once a second writing thread appears
    ([s_writers] bitmask; the first writer's exclusive phase is exempt, so
    node initialization does not poison the set).  An empty intersection
    with two or more writers means no single lock protects the location.
    CAS writes are exempt: lock-free updates follow a different discipline.

    {b Lock discipline.}  Per-thread held-lock multisets catch acquiring a
    lock already held by the same thread (self-deadlock under blocking
    acquire), releasing a lock the thread does not hold, and finishing an
    operation while still holding a lock. *)

module Instr = Vbl_memops.Instr_mem
module Explore = Vbl_sched.Explore

type violation = { v_kind : string; v_msg : string }

type t = {
  n : int;  (** thread-count capacity of the vector clocks *)
  clocks : int array array;
  held : (int * string) list array;  (** per-thread held locks: (loc, name) *)
  mutable violations : violation list;  (** reversed *)
}

(* Each thread's own component starts at 1, so the very first write of a
   thread already carries a positive epoch that unsynchronized threads
   (whose view of it is 0) fail to dominate. *)
let create ?(threads = 16) () =
  let clocks =
    Array.init threads (fun i ->
        let c = Array.make threads 0 in
        c.(i) <- 1;
        c)
  in
  { n = threads; clocks; held = Array.make threads []; violations = [] }

let report t kind msg =
  (match kind with
  | "race" -> Vbl_obs.Probe.count Vbl_obs.Metrics.Analysis_races
  | _ -> Vbl_obs.Probe.count Vbl_obs.Metrics.Analysis_lint_hits);
  t.violations <- { v_kind = kind; v_msg = msg } :: t.violations

(* s_sync uses [||] as bottom. *)
let join_into t tid sync =
  let c = t.clocks.(tid) in
  let m = Array.length sync in
  for i = 0 to m - 1 do
    if sync.(i) > c.(i) then c.(i) <- sync.(i)
  done

let release_into t tid (s : Instr.shadow) =
  let c = t.clocks.(tid) in
  if Array.length s.Instr.s_sync = 0 then s.Instr.s_sync <- Array.copy c
  else
    for i = 0 to t.n - 1 do
      if c.(i) > s.Instr.s_sync.(i) then s.Instr.s_sync.(i) <- c.(i)
    done;
  c.(tid) <- c.(tid) + 1

let locs_held t tid = List.map fst t.held.(tid)

let inter a b = List.filter (fun x -> List.mem x b) a

let on_write t tid (a : Instr.access) =
  let s = a.Instr.shadow in
  (* Plain-write epoch check: the last plain write must happen-before this
     one through synchronization (program order, lock release/acquire, CAS
     or publication edges) — never through the racing write itself. *)
  let p = s.Instr.s_wr_tid in
  if p >= 0 && p <> tid && p < t.n && s.Instr.s_wr_clock > t.clocks.(tid).(p) then
    report t "race"
      (Printf.sprintf
         "unordered plain writes to %s: thread %d's store is not ordered after thread %d's"
         a.Instr.name tid p);
  (* Eraser-lite lockset, with a first-writer exclusivity exemption. *)
  let bit = 1 lsl tid in
  if s.Instr.s_writers land lnot bit <> 0 then begin
    let cur = locs_held t tid in
    let ls =
      match s.Instr.s_lockset with
      | None -> cur
      | Some prev -> inter (Array.to_list prev) cur
    in
    s.Instr.s_lockset <- Some (Array.of_list ls);
    if ls = [] then
      report t "lockset"
        (Printf.sprintf "no common lock protects plain writes to %s (writers 0x%x + thread %d)"
           a.Instr.name s.Instr.s_writers tid)
  end;
  s.Instr.s_writers <- s.Instr.s_writers lor bit;
  s.Instr.s_wr_tid <- tid;
  s.Instr.s_wr_clock <- t.clocks.(tid).(tid);
  release_into t tid s

let on_step t (ev : Explore.event) =
  let a = ev.Explore.ev_access in
  let tid = ev.Explore.ev_thread in
  if tid < t.n then begin
    let s = a.Instr.shadow in
    (match a.Instr.kind with
    | Instr.Read -> if s.Instr.s_loc >= 0 then join_into t tid s.Instr.s_sync
    | Instr.Write -> on_write t tid a
    | Instr.Cas ->
        join_into t tid s.Instr.s_sync;
        if ev.Explore.ev_effective then release_into t tid s
    | Instr.Lock_try ->
        if List.mem_assoc s.Instr.s_loc t.held.(tid) then
          report t "double-acquire"
            (Printf.sprintf "thread %d re-acquires %s which it already holds" tid a.Instr.name)
        else if ev.Explore.ev_effective then begin
          join_into t tid s.Instr.s_sync;
          t.held.(tid) <- (s.Instr.s_loc, a.Instr.name) :: t.held.(tid)
        end
    | Instr.Lock_release ->
        if not (List.mem_assoc s.Instr.s_loc t.held.(tid)) then
          report t "release-without-acquire"
            (Printf.sprintf "thread %d releases %s without holding it" tid a.Instr.name)
        else begin
          t.held.(tid) <- List.remove_assoc s.Instr.s_loc t.held.(tid);
          release_into t tid s
        end
    | Instr.Touch | Instr.New_node -> ());
    if ev.Explore.ev_completed && t.held.(tid) <> [] then
      report t "lock-held-at-return"
        (Printf.sprintf "thread %d finished still holding %s" tid
           (String.concat ", " (List.map snd t.held.(tid))))
  end

let at_end t () =
  match List.rev t.violations with
  | [] -> None
  | { v_kind; v_msg } :: _ -> Some (v_kind, v_msg)

let violations t = List.rev t.violations

(** A fresh {!Explore.step_monitor}; pass as
    [Explore.run ~monitor:(Monitor.make ())]. *)
let make ?threads () : unit -> Explore.step_monitor =
 fun () ->
  let t = create ?threads () in
  { Explore.on_step = on_step t; at_end = at_end t }
