(** Happens-before race detection and lock-discipline linting over one
    explored execution (see the implementation header for the race model).

    Create one monitor per execution: {!make} is the factory shape
    {!Vbl_sched.Explore.run} expects for its [?monitor] argument. *)

type t

type violation = { v_kind : string; v_msg : string }

val create : ?threads:int -> unit -> t
(** Fresh per-execution analysis state; [threads] bounds the vector-clock
    width (default 16). *)

val on_step : t -> Vbl_sched.Explore.event -> unit

val at_end : t -> unit -> (string * string) option
(** First violation as [(kind, msg)], if any. *)

val violations : t -> violation list
(** All violations recorded so far, in program order. *)

val make : ?threads:int -> unit -> unit -> Vbl_sched.Explore.step_monitor
(** [Explore.run ~monitor:(Monitor.make ()) scenario] runs the explorer
    with a fresh detector per execution. *)
