(** Real-thread benchmark runner: OCaml domains hammering one list instance
    for a fixed wall-clock duration, synchrobench style.

    The paper runs 5-second trials after a 5-second warm-up, five times.
    Those defaults are kept but configurable — CI and the bundled bench use
    shorter runs.  NOTE: this host may expose far fewer cores than the
    paper's 72; real-thread scaling curves are then flat by construction,
    which is why the bench harness pairs this runner with the simulated
    engine (see {!Sweep}).

    With [~metrics:true] the runner additionally installs the {!Vbl_obs}
    probe around the measured trials (warm-up excluded) and times every
    operation into per-domain, per-operation-type latency histograms, so a
    result can explain its throughput: restarts, lock failures, traversal
    length, and p50/p99 latency per operation kind. *)

module Obs = Vbl_obs

type params = {
  threads : int;
  spec : Workload.spec;
  duration_s : float;  (** measured run length per trial *)
  warmup_s : float;  (** one warm-up before the trials *)
  trials : int;
  seed : int64;
}

let default_params =
  {
    threads = 2;
    spec = Workload.uniform ~update_percent:20 ~key_range:200;
    duration_s = 1.0;
    warmup_s = 0.5;
    trials = 5;
    seed = 42L;
  }

type trial = { ops : int; elapsed_s : float; throughput : float }

type result = {
  params : params;
  trials_run : trial list;
  throughput : Vbl_util.Stats.summary;  (** ops per second across trials *)
  final_size : int;
  invariants : (unit, string) Stdlib.result;
  metrics : Obs.Metrics.snapshot option;
      (** counter totals over all measured trials; [None] without
          [~metrics:true] *)
  latency : (string * Obs.Histogram.summary) list;
      (** per-operation-type latency over all measured trials, labelled
          ["insert"] / ["remove"] / ["contains"]; [[]] without
          [~metrics:true] *)
}

(* Per-domain histogram triple: insert, remove, contains. *)
type histos = Obs.Histogram.t * Obs.Histogram.t * Obs.Histogram.t

let now_ns () = Monotonic_clock.now ()

(* One timed phase: [threads] domains run ops until the stop flag flips.
   When [latency] is given, every operation is timed individually into the
   calling domain's private histograms (one clock read before and after;
   only paid in metrics mode). *)
let timed_phase (type s) (module S : Vbl_lists.Set_intf.S with type t = s) (t : s) ~threads
    ~spec ~duration_s ~rngs ~(latency : histos array option) ~reporter =
  let stop = Atomic.make false in
  let counts = Array.make threads 0 in
  let worker i () =
    let rng = rngs.(i) in
    let n = ref 0 in
    (match latency with
    | None ->
        while not (Atomic.get stop) do
          ignore (Workload.apply (module S) t (Workload.next rng spec));
          Obs.Probe.count Obs.Metrics.Ops_completed;
          incr n
        done
    | Some histos ->
        let h_ins, h_rem, h_con = histos.(i) in
        while not (Atomic.get stop) do
          let op = Workload.next rng spec in
          (* Per-op restart delta from this domain's private counter:
             what the flight recorder attributes to the single op. *)
          let r0 =
            if !Obs.Recorder.enabled then Obs.Metrics.local_get Obs.Metrics.Restarts
            else 0
          in
          let t0 = now_ns () in
          let ok = Workload.apply (module S) t op in
          let t1 = now_ns () in
          let dt = Int64.to_int (Int64.sub t1 t0) in
          (match op with
          | Workload.Insert _ -> Obs.Histogram.record h_ins dt
          | Workload.Remove _ -> Obs.Histogram.record h_rem dt
          | Workload.Contains _ -> Obs.Histogram.record h_con dt);
          Obs.Probe.count Obs.Metrics.Ops_completed;
          if !Obs.Recorder.enabled then begin
            let restarts = Obs.Metrics.local_get Obs.Metrics.Restarts - r0 in
            let kind, key =
              match op with
              | Workload.Insert k -> (Obs.Recorder.Insert, k)
              | Workload.Remove k -> (Obs.Recorder.Remove, k)
              | Workload.Contains k -> (Obs.Recorder.Contains, k)
            in
            Obs.Recorder.record ~thread:i ~kind ~key ~shard:(-1) ~ok ~restarts
              ~t0_ns:(Int64.to_int t0) ~t1_ns:(Int64.to_int t1)
          end;
          incr n
        done);
    counts.(i) <- !n
  in
  let started = Unix.gettimeofday () in
  let domains = List.init threads (fun i -> Domain.spawn (worker i)) in
  (* The main thread otherwise just sleeps through the phase; with a
     reporter it wakes every interval to print a snapshot-delta line. *)
  (match reporter with
  | None -> Unix.sleepf duration_s
  | Some (interval_s, r) ->
      let deadline = started +. duration_s in
      let rec pace () =
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining > 0. then begin
          Unix.sleepf (Float.min interval_s remaining);
          if Unix.gettimeofday () < deadline then begin
            print_endline (Obs.Interval.tick r);
            flush stdout;
            pace ()
          end
        end
      in
      pace ());
  Atomic.set stop true;
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. started in
  (Array.fold_left ( + ) 0 counts, elapsed)

let summarize_latency (histos : histos array) =
  let merged_ins = Obs.Histogram.create ()
  and merged_rem = Obs.Histogram.create ()
  and merged_con = Obs.Histogram.create () in
  Array.iter
    (fun (h_ins, h_rem, h_con) ->
      Obs.Histogram.merge ~into:merged_ins h_ins;
      Obs.Histogram.merge ~into:merged_rem h_rem;
      Obs.Histogram.merge ~into:merged_con h_con)
    histos;
  List.filter_map
    (fun (label, h) ->
      Option.map (fun s -> (label, s)) (Obs.Histogram.summarize h))
    [ ("insert", merged_ins); ("remove", merged_rem); ("contains", merged_con) ]

let run ?(metrics = false) ?(profile = false) ?interval_s
    (module S : Vbl_lists.Set_intf.S) params : result =
  let metrics = metrics || profile in
  Workload.validate params.spec;
  if params.threads < 1 then invalid_arg "Runner.run: threads must be >= 1";
  if params.trials < 1 then invalid_arg "Runner.run: trials must be >= 1";
  (match interval_s with
  | Some iv when iv <= 0. -> invalid_arg "Runner.run: interval_s must be > 0"
  | _ -> ());
  let master = Vbl_util.Rng.create ~seed:params.seed () in
  let t = S.create () in
  Workload.prepopulate (module S) t master params.spec;
  (* Each domain's key stream is a pure function of (seed, domain index):
     reproducible regardless of how many trials ran before, and no stream
     is derived from another's state. *)
  let rngs =
    Array.init params.threads (fun i -> Vbl_util.Rng.stream ~seed:params.seed ~index:i)
  in
  if params.warmup_s > 0. then
    ignore
      (timed_phase (module S) t ~threads:params.threads ~spec:params.spec
         ~duration_s:params.warmup_s ~rngs ~latency:None ~reporter:None);
  let latency_histos =
    if metrics then
      Some
        (Array.init params.threads (fun _ ->
             (Obs.Histogram.create (), Obs.Histogram.create (), Obs.Histogram.create ())))
    else None
  in
  (* Counters start after the warm-up so the snapshot covers exactly the
     measured trials. *)
  if metrics then begin
    Obs.Metrics.reset ();
    Obs.Gcstats.rebase ();
    Obs.Probe.install (Obs.Probe.metrics ())
  end;
  (* Profiling state is global (like the metrics shards): reset and enable
     around exactly the measured trials, so after [run] returns the
     {!Vbl_obs.Contention} report and {!Vbl_obs.Recorder} timeline
     describe this run alone. *)
  if profile then begin
    Obs.Contention.reset ();
    Obs.Recorder.reset ();
    Obs.Contention.enable ();
    Obs.Recorder.set_enabled true
  end;
  let reporter = Option.map (fun iv -> (iv, Obs.Interval.start ())) interval_s in
  let trials_run =
    List.init params.trials (fun _ ->
        let ops, elapsed_s =
          timed_phase (module S) t ~threads:params.threads ~spec:params.spec
            ~duration_s:params.duration_s ~rngs ~latency:latency_histos ~reporter
        in
        { ops; elapsed_s; throughput = float_of_int ops /. elapsed_s })
  in
  if profile then begin
    Obs.Contention.disable ();
    Obs.Recorder.set_enabled false
  end;
  let snapshot =
    if metrics then begin
      let s = Obs.Metrics.snapshot () in
      Obs.Probe.uninstall ();
      Some s
    end
    else None
  in
  {
    params;
    trials_run;
    throughput =
      Vbl_util.Stats.summarize
        (Array.of_list (List.map (fun (tr : trial) -> tr.throughput) trials_run));
    final_size = S.size t;
    invariants = S.check_invariants t;
    metrics = snapshot;
    latency = (match latency_histos with None -> [] | Some hs -> summarize_latency hs);
  }
