(** Real-thread benchmark runner: OCaml domains hammering one list instance
    for a fixed wall-clock duration, synchrobench style.

    The paper runs 5-second trials after a 5-second warm-up, five times.
    Those defaults are kept but configurable — CI and the bundled bench use
    shorter runs.  NOTE: this host may expose far fewer cores than the
    paper's 72; real-thread scaling curves are then flat by construction,
    which is why the bench harness pairs this runner with the simulated
    engine (see {!Sweep}). *)

type params = {
  threads : int;
  spec : Workload.spec;
  duration_s : float;  (** measured run length per trial *)
  warmup_s : float;  (** one warm-up before the trials *)
  trials : int;
  seed : int64;
}

let default_params =
  {
    threads = 2;
    spec = Workload.uniform ~update_percent:20 ~key_range:200;
    duration_s = 1.0;
    warmup_s = 0.5;
    trials = 5;
    seed = 42L;
  }

type trial = { ops : int; elapsed_s : float; throughput : float }

type result = {
  params : params;
  trials_run : trial list;
  throughput : Vbl_util.Stats.summary;  (** ops per second across trials *)
  final_size : int;
  invariants : (unit, string) Stdlib.result;
}

(* One timed phase: [threads] domains run ops until the stop flag flips. *)
let timed_phase (type s) (module S : Vbl_lists.Set_intf.S with type t = s) (t : s) ~threads
    ~spec ~duration_s ~rngs =
  let stop = Atomic.make false in
  let counts = Array.make threads 0 in
  let worker i () =
    let rng = rngs.(i) in
    let n = ref 0 in
    while not (Atomic.get stop) do
      ignore (Workload.apply (module S) t (Workload.next rng spec));
      incr n
    done;
    counts.(i) <- !n
  in
  let started = Unix.gettimeofday () in
  let domains = List.init threads (fun i -> Domain.spawn (worker i)) in
  Unix.sleepf duration_s;
  Atomic.set stop true;
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. started in
  (Array.fold_left ( + ) 0 counts, elapsed)

let run (module S : Vbl_lists.Set_intf.S) params : result =
  Workload.validate params.spec;
  if params.threads < 1 then invalid_arg "Runner.run: threads must be >= 1";
  if params.trials < 1 then invalid_arg "Runner.run: trials must be >= 1";
  let master = Vbl_util.Rng.create ~seed:params.seed () in
  let t = S.create () in
  Workload.prepopulate (module S) t master params.spec;
  let rngs = Array.init params.threads (fun _ -> Vbl_util.Rng.split master) in
  if params.warmup_s > 0. then
    ignore
      (timed_phase (module S) t ~threads:params.threads ~spec:params.spec
         ~duration_s:params.warmup_s ~rngs);
  let trials_run =
    List.init params.trials (fun _ ->
        let ops, elapsed_s =
          timed_phase (module S) t ~threads:params.threads ~spec:params.spec
            ~duration_s:params.duration_s ~rngs
        in
        { ops; elapsed_s; throughput = float_of_int ops /. elapsed_s })
  in
  {
    params;
    trials_run;
    throughput =
      Vbl_util.Stats.summarize
        (Array.of_list (List.map (fun (tr : trial) -> tr.throughput) trials_run));
    final_size = S.size t;
    invariants = S.check_invariants t;
  }
