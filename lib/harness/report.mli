(** Rendering sweep results as the tables the paper's figures plot: one
    table per panel, rows = thread counts, one throughput (± stddev)
    column pair per algorithm; plus CSV export for external plotting. *)

val engine_unit : Sweep.engine -> string
(** ["ops/s"] or ["ops/kcycle"]. *)

val engine_name : Sweep.engine -> string

val panel_table : unit:string -> Sweep.point list -> Vbl_util.Table.t

val render_panel : engine:Sweep.engine -> title:string -> Sweep.point list -> string

val render_figure1 : Sweep.engine -> Sweep.point list -> string

val render_figure4 : Sweep.engine -> ((int * int) * Sweep.point list) list -> string

val render_headlines : Sweep.headlines -> string

val points_csv : Sweep.point list -> string
