(** Rendering sweep results as the tables the paper's figures plot: one
    table per panel, rows = thread counts, one throughput (± stddev)
    column pair per algorithm; plus CSV export for external plotting. *)

val engine_unit : Sweep.engine -> string
(** ["ops/s"] or ["ops/kcycle"]. *)

val engine_name : Sweep.engine -> string

val panel_table : unit:string -> Sweep.point list -> Vbl_util.Table.t

val render_panel : engine:Sweep.engine -> title:string -> Sweep.point list -> string

val render_figure1 : Sweep.engine -> Sweep.point list -> string

val render_figure4 : Sweep.engine -> ((int * int) * Sweep.point list) list -> string

val render_headlines : Sweep.headlines -> string

val points_csv : Sweep.point list -> string

val metrics_table : Sweep.point list -> Vbl_util.Table.t
(** One row per {!Vbl_obs.Metrics} counter, one column per algorithm
    (points without a snapshot are skipped), plus derived
    [traversal_steps/op] and [ops] rows. *)

val render_metrics : title:string -> Sweep.point list -> string

val metrics_csv : Sweep.point list -> string

val latency_table : Sweep.point list -> Vbl_util.Table.t
(** One row per (algorithm, op type) with n / mean / p50 / p90 / p99 /
    max in nanoseconds.  Only real-engine points carry latency. *)

val render_latency : title:string -> Sweep.point list -> string

val points_json : ?engine:Sweep.engine -> Sweep.point list -> string
(** Machine-readable export: one object per point with workload
    parameters, throughput summary, counter snapshot ([null] when not
    collected) and latency summaries ([null] when absent). *)
