(** Parameter sweeps that regenerate the paper's figures.

    Two engines produce the same series shape:
    - [Real]: OCaml domains on this host (honest numbers, but scaling is
      bounded by the physical core count);
    - [Simulated]: the coherence-model multicore of [lib/sim], which is how
      the 72-thread curves of Figures 1 and 4 are reproduced on small
      hosts.  Simulated trials vary the seed. *)

type engine =
  | Real of { duration_s : float; warmup_s : float; trials : int }
  | Simulated of { horizon : float; trials : int; costs : Vbl_sim.Coherence.costs }

let simulated ?(costs = Vbl_sim.Coherence.default_costs) ~horizon ~trials () =
  Simulated { horizon; trials; costs }

type point = {
  algorithm : string;
  threads : int;
  update_percent : int;
  key_range : int;
  throughput : Vbl_util.Stats.summary;
      (** ops/second for [Real]; ops per 1000 simulated cycles for
          [Simulated].  Units differ; only within-engine comparisons are
          meaningful. *)
  ops : int;  (** total operations across trials *)
  metrics : Vbl_obs.Metrics.snapshot option;
      (** counter totals across trials when measured with [~metrics:true] *)
  latency : (string * Vbl_obs.Histogram.summary) list;
      (** per-op-type latency; only the [Real] engine produces it *)
}

let point_mean p = p.throughput.Vbl_util.Stats.mean

(* Algorithms may come from the list family, the skip-list/tree
   extensions, or the sharded frontends. *)
let lookup registries algorithm =
  List.find_opt
    (fun i ->
      let module S = (val i : Vbl_lists.Set_intf.S) in
      S.name = algorithm)
    (List.concat registries)

let find_real algorithm =
  match Vbl_lists.Registry.find algorithm with
  | Some impl -> impl
  | None -> (
      match
        lookup
          [ Vbl_skiplists.Registry.all; Vbl_trees.Registry.all; Vbl_shard.Registry.all ]
          algorithm
      with
      | Some impl -> impl
      | None -> invalid_arg ("Sweep.find_real: unknown algorithm " ^ algorithm))

let find_instrumented algorithm =
  match
    lookup
      [
        Vbl_skiplists.Registry.instrumented;
        Vbl_trees.Registry.instrumented;
        Vbl_shard.Registry.instrumented;
      ]
      algorithm
  with
  | Some impl -> impl
  | None -> Vbl_sched.Drive.find_instrumented algorithm

(** Like {!measure} on the [Real] engine, but drives an explicitly given
    implementation instead of a registry lookup — for ablation baselines
    that live outside the registries, e.g. the hand-specialised
    [vbl-direct] in bench/.  The [Simulated] engine needs an instrumented
    functor and so cannot accept an arbitrary module. *)
let measure_impl ?(metrics = false) ?(profile = false) ?interval_s engine impl ~algorithm
    ~threads ~update_percent ~key_range ~seed =
  let spec = Workload.uniform ~update_percent ~key_range in
  match engine with
  | Real { duration_s; warmup_s; trials } ->
      let r =
        Runner.run ~metrics ~profile ?interval_s impl
          { Runner.threads; spec; duration_s; warmup_s; trials; seed }
      in
      {
        algorithm;
        threads;
        update_percent;
        key_range;
        throughput = r.Runner.throughput;
        ops = List.fold_left (fun acc (tr : Runner.trial) -> acc + tr.Runner.ops) 0 r.Runner.trials_run;
        metrics = r.Runner.metrics;
        latency = r.Runner.latency;
      }
  | Simulated _ -> invalid_arg "Sweep.measure_impl: Real engine only"

let measure ?(metrics = false) ?(profile = false) ?interval_s engine ~algorithm ~threads
    ~update_percent ~key_range ~seed =
  match engine with
  | Real _ ->
      measure_impl ~metrics ~profile ?interval_s engine (find_real algorithm) ~algorithm
        ~threads ~update_percent ~key_range ~seed
  | Simulated { horizon; trials; costs } ->
      let impl = find_instrumented algorithm in
      (* A traversal costs O(key_range) cycles, so a fixed horizon would
         leave large-range runs with a handful of operations; stretch it
         with the range (capped to keep simulation time sane).  Only
         within-panel comparisons are meaningful anyway. *)
      let horizon =
        horizon *. Float.min 8. (Float.max 1. (float_of_int key_range /. 250.))
      in
      (* The instrumented lists call the same probes as the real ones, so
         counters work under the simulator too (latency does not: the sim
         has no wall clock). *)
      if metrics then begin
        Vbl_obs.Metrics.reset ();
        Vbl_obs.Gcstats.rebase ();
        Vbl_obs.Probe.install (Vbl_obs.Probe.metrics ())
      end;
      let ops = ref 0 in
      let samples =
        Array.init trials (fun k ->
            let r =
              Vbl_sim.Sim_run.run ~costs impl
                {
                  Vbl_sim.Sim_run.threads;
                  update_percent;
                  key_range;
                  horizon;
                  seed = Int64.add seed (Int64.of_int (k * 1009));
                  zipf = None;
                }
            in
            ops := !ops + r.Vbl_sim.Sim_run.ops_completed;
            r.Vbl_sim.Sim_run.throughput)
      in
      let snapshot =
        if metrics then begin
          let s = Vbl_obs.Metrics.snapshot () in
          Vbl_obs.Probe.uninstall ();
          Some s
        end
        else None
      in
      {
        algorithm;
        threads;
        update_percent;
        key_range;
        throughput = Vbl_util.Stats.summarize samples;
        ops = !ops;
        metrics = snapshot;
        latency = [];
      }

(** One figure panel: every algorithm at every thread count, fixed
    workload. *)
let series ?(metrics = false) engine ~algorithms ~thread_counts ~update_percent ~key_range ~seed =
  List.concat_map
    (fun algorithm ->
      List.map
        (fun threads ->
          measure ~metrics engine ~algorithm ~threads ~update_percent ~key_range ~seed)
        thread_counts)
    algorithms

(* The algorithms the paper's figures plot. *)
let paper_algorithms = [ "lazy"; "harris-michael-tagged"; "vbl" ]

(** Figure 1: 20% updates, key range 50, Lazy vs VBL across the thread
    sweep.  [thread_counts] defaults to the paper's x-axis up to 72. *)
let figure1 ?(thread_counts = [ 1; 4; 8; 16; 24; 32; 40; 48; 56; 64; 72 ]) engine ~seed =
  series engine
    ~algorithms:[ "lazy"; "vbl" ]
    ~thread_counts ~update_percent:20 ~key_range:50 ~seed

(** Figure 4: the full 3-ratio x 4-range grid over the three measured
    algorithms.  Returns one series per (update, range) panel. *)
let figure4 ?(thread_counts = [ 1; 8; 24; 48; 72 ]) ?(update_ratios = Workload.paper_update_ratios)
    ?(key_ranges = Workload.paper_key_ranges) engine ~seed =
  List.concat_map
    (fun update_percent ->
      List.map
        (fun key_range ->
          ( (update_percent, key_range),
            series engine ~algorithms:paper_algorithms ~thread_counts ~update_percent
              ~key_range ~seed ))
        key_ranges)
    update_ratios

(** Headline numbers the paper quotes: the VBL/Lazy ratio at the largest
    thread count of Figure 1 (paper: 1.6x at 72 threads), and the
    VBL/Harris-Michael-AMR ratio on the read-only workload (paper: up to
    1.6x). *)
type headlines = {
  vbl_over_lazy_fig1 : float;
  vbl_over_hm_amr_readonly : float;
  threads_used : int;
}

let headlines ?(threads = 72) engine ~seed =
  let at alg ~update ~range =
    point_mean (measure engine ~algorithm:alg ~threads ~update_percent:update ~key_range:range ~seed)
  in
  let vbl_fig1 = at "vbl" ~update:20 ~range:50
  and lazy_fig1 = at "lazy" ~update:20 ~range:50
  and vbl_ro = at "vbl" ~update:0 ~range:200
  and hm_ro = at "harris-michael" ~update:0 ~range:200 in
  {
    vbl_over_lazy_fig1 = vbl_fig1 /. lazy_fig1;
    vbl_over_hm_amr_readonly = vbl_ro /. hm_ro;
    threads_used = threads;
  }
