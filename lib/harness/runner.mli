(** Real-thread benchmark runner: OCaml domains hammering one shared
    instance for fixed wall-clock durations (the paper's 5 s × 5 trials
    after a 5 s warm-up, durations configurable).  Scaling is bounded by
    this host's physical cores — pair with the simulated engine for
    thread sweeps (see {!Sweep}). *)

type params = {
  threads : int;
  spec : Workload.spec;
  duration_s : float;
  warmup_s : float;
  trials : int;
  seed : int64;
}

val default_params : params

type trial = { ops : int; elapsed_s : float; throughput : float }

type result = {
  params : params;
  trials_run : trial list;
  throughput : Vbl_util.Stats.summary;  (** ops/second across trials *)
  final_size : int;
  invariants : (unit, string) Stdlib.result;
}

val run : (module Vbl_lists.Set_intf.S) -> params -> result
