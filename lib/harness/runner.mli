(** Real-thread benchmark runner: OCaml domains hammering one shared
    instance for fixed wall-clock durations (the paper's 5 s × 5 trials
    after a 5 s warm-up, durations configurable).  Scaling is bounded by
    this host's physical cores — pair with the simulated engine for
    thread sweeps (see {!Sweep}).

    [run ~metrics:true] additionally installs the {!Vbl_obs} probe around
    the measured trials and times every operation into per-domain latency
    histograms. *)

type params = {
  threads : int;
  spec : Workload.spec;
  duration_s : float;
  warmup_s : float;
  trials : int;
  seed : int64;
}

val default_params : params

type trial = { ops : int; elapsed_s : float; throughput : float }

type result = {
  params : params;
  trials_run : trial list;
  throughput : Vbl_util.Stats.summary;  (** ops/second across trials *)
  final_size : int;
  invariants : (unit, string) Stdlib.result;
  metrics : Vbl_obs.Metrics.snapshot option;
      (** counter totals over the measured trials (warm-up excluded);
          [None] unless run with [~metrics:true] *)
  latency : (string * Vbl_obs.Histogram.summary) list;
      (** per-operation-type latency (ns), labelled ["insert"] /
          ["remove"] / ["contains"]; empty unless run with
          [~metrics:true] *)
}

val run :
  ?metrics:bool ->
  ?profile:bool ->
  ?interval_s:float ->
  (module Vbl_lists.Set_intf.S) ->
  params ->
  result
(** [metrics] defaults to [false], leaving the probe untouched and the
    per-op clock reads off the hot path.

    [profile] (default [false], implies [metrics]) resets and enables the
    {!Vbl_obs.Contention} profiler and the {!Vbl_obs.Recorder} flight
    recorder around exactly the measured trials; read
    [Vbl_obs.Contention.report ()] / [Vbl_obs.Recorder.dump ()] after
    [run] returns for this run's attribution.

    [interval_s] prints a snapshot-delta progress line (throughput,
    restart rate, contention rate, shard skew) from the main thread every
    given number of seconds during the measured trials; requires metrics
    to be meaningful and raises [Invalid_argument] when not positive. *)
