(** Parameter sweeps regenerating the paper's figures, over two engines:
    real domains on this host, or the coherence-model multicore (how the
    72-thread curves are reproduced on small hosts).  Units differ between
    engines; only within-engine comparisons are meaningful. *)

type engine =
  | Real of { duration_s : float; warmup_s : float; trials : int }
  | Simulated of { horizon : float; trials : int; costs : Vbl_sim.Coherence.costs }

val simulated :
  ?costs:Vbl_sim.Coherence.costs -> horizon:float -> trials:int -> unit -> engine

type point = {
  algorithm : string;
  threads : int;
  update_percent : int;
  key_range : int;
  throughput : Vbl_util.Stats.summary;
      (** ops/s for [Real]; ops per 1000 simulated cycles for [Simulated] *)
  ops : int;  (** total operations across trials *)
  metrics : Vbl_obs.Metrics.snapshot option;
      (** counter totals across trials when measured with [~metrics:true];
          both engines produce them (the instrumented lists share the
          probes) *)
  latency : (string * Vbl_obs.Histogram.summary) list;
      (** per-op-type latency (ns); only the [Real] engine produces it *)
}

val point_mean : point -> float

val find_real : string -> (module Vbl_lists.Set_intf.S)
(** Algorithm lookup across the list family, the skip-list/tree
    extensions and the sharded frontends (real backend). *)

val find_instrumented : string -> (module Vbl_lists.Set_intf.S)

val measure :
  ?metrics:bool ->
  ?profile:bool ->
  ?interval_s:float ->
  engine ->
  algorithm:string ->
  threads:int ->
  update_percent:int ->
  key_range:int ->
  seed:int64 ->
  point
(** One data point.  Simulated horizons are stretched with the key range
    (capped at 8x) so large-range points retain enough operations.
    [profile] and [interval_s] forward to {!Runner.run} on the [Real]
    engine (contention profiler + flight recorder around the measured
    trials; periodic progress lines); both are ignored by the
    [Simulated] engine, which has no wall clock. *)

val measure_impl :
  ?metrics:bool ->
  ?profile:bool ->
  ?interval_s:float ->
  engine ->
  (module Vbl_lists.Set_intf.S) ->
  algorithm:string ->
  threads:int ->
  update_percent:int ->
  key_range:int ->
  seed:int64 ->
  point
(** Like {!measure} on the [Real] engine but driving an explicitly given
    implementation instead of a registry lookup — for ablation baselines
    living outside the registries (the hand-specialised [vbl-direct] in
    bench/).  Raises [Invalid_argument] on a [Simulated] engine, which
    needs an instrumented functor. *)

val series :
  ?metrics:bool ->
  engine ->
  algorithms:string list ->
  thread_counts:int list ->
  update_percent:int ->
  key_range:int ->
  seed:int64 ->
  point list
(** One figure panel. *)

val paper_algorithms : string list
(** The three algorithms the paper's figures plot. *)

val figure1 : ?thread_counts:int list -> engine -> seed:int64 -> point list
(** Figure 1: lazy vs vbl, 20% updates, key range 50. *)

val figure4 :
  ?thread_counts:int list ->
  ?update_ratios:int list ->
  ?key_ranges:int list ->
  engine ->
  seed:int64 ->
  ((int * int) * point list) list
(** Figure 4: one series per (update ratio, key range) panel. *)

type headlines = {
  vbl_over_lazy_fig1 : float;  (** paper: 1.6x at 72 threads *)
  vbl_over_hm_amr_readonly : float;  (** paper: up to 1.6x *)
  threads_used : int;
}

val headlines : ?threads:int -> engine -> seed:int64 -> headlines
