(** Synchrobench workload specification (paper §4, "Experimental
    methodology").

    A workload of x% updates issues x/2% inserts, x/2% removes and
    (100-x)% contains, with keys drawn uniformly from [1, key_range].
    Under this mix the list's steady-state size is about half the range,
    matching a pre-population that includes each key with probability ½. *)

type distribution = Uniform | Zipfian of Vbl_util.Zipf.t

type spec = { update_percent : int; key_range : int; distribution : distribution }

(** The paper's workloads: uniform keys. *)
let uniform ~update_percent ~key_range = { update_percent; key_range; distribution = Uniform }

(** Synchrobench-style skewed keys: P(k) proportional to 1/k^s. *)
let zipfian ?s ~update_percent ~key_range () =
  {
    update_percent;
    key_range;
    distribution = Zipfian (Vbl_util.Zipf.create ?s ~n:key_range ());
  }

let validate { update_percent; key_range; _ } =
  if update_percent < 0 || update_percent > 100 then
    invalid_arg "Workload: update_percent must be in [0, 100]";
  if key_range < 1 then invalid_arg "Workload: key_range must be >= 1"

type op = Insert of int | Remove of int | Contains of int

let draw_key rng spec =
  match spec.distribution with
  | Uniform -> 1 + Vbl_util.Rng.int rng spec.key_range
  | Zipfian z -> Vbl_util.Zipf.sample z rng

(** Draw the next operation.  The update split uses the parity of the same
    roll, so insert/remove stay balanced at every update ratio. *)
let next rng spec =
  let v = draw_key rng spec in
  let roll = Vbl_util.Rng.int rng 100 in
  if roll < spec.update_percent then if roll mod 2 = 0 then Insert v else Remove v
  else Contains v

(** Pre-populate [t]: each key present with probability ½, inserted in a
    shuffled order — ascending insertion would hand the unbalanced
    external BST a degenerate spine and bias the comparison. *)
let prepopulate (type s) (module S : Vbl_lists.Set_intf.S with type t = s) (t : s) rng spec =
  let keys = Array.init spec.key_range (fun i -> i + 1) in
  Vbl_util.Rng.shuffle rng keys;
  Array.iter (fun v -> if Vbl_util.Rng.bool rng then ignore (S.insert t v)) keys

let apply (type s) (module S : Vbl_lists.Set_intf.S with type t = s) (t : s) = function
  | Insert v -> S.insert t v
  | Remove v -> S.remove t v
  | Contains v -> S.contains t v

(** The paper's grid: update ratios 0/20/100, key ranges 50/200/2e3/2e4. *)
let paper_update_ratios = [ 0; 20; 100 ]

let paper_key_ranges = [ 50; 200; 2_000; 20_000 ]
