(** Rendering sweep results as the tables the paper's figures plot.

    Each figure panel becomes one table: rows are thread counts, one
    throughput column per algorithm, plus the VBL-over-baseline ratios that
    the paper's prose quotes. *)

let engine_unit = function
  | Sweep.Real _ -> "ops/s"
  | Sweep.Simulated _ -> "ops/kcycle"

let engine_name = function
  | Sweep.Real _ -> "real-domains"
  | Sweep.Simulated _ -> "simulated-multicore"

(** Pivot a series into a table: one row per thread count. *)
let panel_table ~unit (points : Sweep.point list) =
  let algorithms =
    List.sort_uniq compare (List.map (fun p -> p.Sweep.algorithm) points)
  in
  let thread_counts = List.sort_uniq compare (List.map (fun p -> p.Sweep.threads) points) in
  let headers =
    "threads"
    :: List.concat_map (fun a -> [ a ^ " (" ^ unit ^ ")"; a ^ " ±" ]) algorithms
  in
  let table = Vbl_util.Table.create headers in
  List.iter
    (fun threads ->
      let cells =
        List.concat_map
          (fun a ->
            match
              List.find_opt
                (fun p -> p.Sweep.algorithm = a && p.Sweep.threads = threads)
                points
            with
            | Some p ->
                [
                  Vbl_util.Table.si_cell p.Sweep.throughput.Vbl_util.Stats.mean;
                  Vbl_util.Table.si_cell p.Sweep.throughput.Vbl_util.Stats.stddev;
                ]
            | None -> [ "-"; "-" ])
          algorithms
      in
      Vbl_util.Table.add_row table (string_of_int threads :: cells))
    thread_counts;
  table

let render_panel ~engine ~title points =
  let table = panel_table ~unit:(engine_unit engine) points in
  Printf.sprintf "%s [%s]\n%s" title (engine_name engine) (Vbl_util.Table.render table)

let render_figure1 engine points = render_panel ~engine ~title:"Figure 1: 20% updates, key range 50" points

let render_figure4 engine panels =
  String.concat "\n\n"
    (List.map
       (fun ((update, range), points) ->
         render_panel ~engine
           ~title:(Printf.sprintf "Figure 4 panel: %d%% updates, key range %d" update range)
           points)
       panels)

let render_headlines (h : Sweep.headlines) =
  String.concat "\n"
    [
      Printf.sprintf "Headline ratios at %d threads:" h.Sweep.threads_used;
      Printf.sprintf
        "  VBL / Lazy            (20%% updates, range 50): %.2fx   (paper: 1.6x)"
        h.Sweep.vbl_over_lazy_fig1;
      Printf.sprintf
        "  VBL / Harris-M. (AMR) (read-only,   range 200): %.2fx   (paper: up to 1.6x)"
        h.Sweep.vbl_over_hm_amr_readonly;
    ]

(* ------------------------------------------------------------------ *)
(* Observability: per-algorithm counter and latency reporting          *)
(* ------------------------------------------------------------------ *)

module Obs = Vbl_obs

(* Points that actually carry a metrics snapshot, keyed by algorithm. *)
let with_metrics (points : Sweep.point list) =
  List.filter_map
    (fun (p : Sweep.point) ->
      Option.map (fun m -> (p.Sweep.algorithm, p.Sweep.ops, m)) p.Sweep.metrics)
    points

(** One row per counter, one column per algorithm, plus a derived
    traversal-length row (steps per operation) — the quantities the
    paper's rejected-schedule argument is made of. *)
let metrics_table (points : Sweep.point list) =
  let rows = with_metrics points in
  let headers = "counter" :: List.map (fun (a, _, _) -> a) rows in
  let table = Vbl_util.Table.create headers in
  List.iter
    (fun c ->
      Vbl_util.Table.add_row table
        (Obs.Metrics.label c
        :: List.map (fun (_, _, m) -> string_of_int (Obs.Metrics.get m c)) rows))
    Obs.Metrics.all;
  Vbl_util.Table.add_row table
    ("traversal_steps/op"
    :: List.map
         (fun (_, ops, m) ->
           if ops = 0 then "-"
           else
             Printf.sprintf "%.2f"
               (float_of_int (Obs.Metrics.get m Obs.Metrics.Traversal_steps)
               /. float_of_int ops))
         rows);
  Vbl_util.Table.add_row table
    ("ops" :: List.map (fun (_, ops, _) -> string_of_int ops) rows);
  table

let render_metrics ~title (points : Sweep.point list) =
  Printf.sprintf "%s\n%s" title (Vbl_util.Table.render (metrics_table points))

let metrics_csv points = Vbl_util.Table.render_csv (metrics_table points)

(** One row per (algorithm, operation type): count, mean and tail
    latencies in nanoseconds.  Only points measured on the real engine
    carry latency. *)
let latency_table (points : Sweep.point list) =
  let table =
    Vbl_util.Table.create
      [
        "algorithm"; "op"; "n"; "mean_ns"; "p50_ns"; "p90_ns"; "p99_ns"; "p999_ns";
        "max_ns";
      ]
  in
  List.iter
    (fun (p : Sweep.point) ->
      List.iter
        (fun (op, (s : Obs.Histogram.summary)) ->
          Vbl_util.Table.add_row table
            [
              p.Sweep.algorithm;
              op;
              string_of_int s.Obs.Histogram.n;
              Printf.sprintf "%.0f" s.Obs.Histogram.mean;
              Printf.sprintf "%.0f" s.Obs.Histogram.p50;
              Printf.sprintf "%.0f" s.Obs.Histogram.p90;
              Printf.sprintf "%.0f" s.Obs.Histogram.p99;
              Printf.sprintf "%.0f" s.Obs.Histogram.p999;
              Printf.sprintf "%.0f" s.Obs.Histogram.max;
            ])
        p.Sweep.latency)
    points;
  table

let render_latency ~title points =
  Printf.sprintf "%s\n%s" title (Vbl_util.Table.render (latency_table points))

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let summary_json (s : Vbl_util.Stats.summary) =
  Printf.sprintf
    "{\"n\": %d, \"mean\": %.4f, \"stddev\": %.4f, \"min\": %.4f, \"max\": %.4f, \"median\": %.4f}"
    s.Vbl_util.Stats.n s.Vbl_util.Stats.mean s.Vbl_util.Stats.stddev s.Vbl_util.Stats.min
    s.Vbl_util.Stats.max s.Vbl_util.Stats.median

let point_json (p : Sweep.point) =
  let counters =
    match p.Sweep.metrics with
    | Some m -> Obs.Metrics.to_json m
    | None -> "null"
  in
  let latency =
    match p.Sweep.latency with
    | [] -> "null"
    | l ->
        "{"
        ^ String.concat ", "
            (List.map
               (fun (op, s) -> Printf.sprintf "%S: %s" op (Obs.Histogram.summary_to_json s))
               l)
        ^ "}"
  in
  Printf.sprintf
    "{\"algorithm\": %S, \"threads\": %d, \"update_percent\": %d, \"key_range\": %d, \
     \"ops\": %d, \"throughput\": %s, \"counters\": %s, \"latency\": %s}"
    p.Sweep.algorithm p.Sweep.threads p.Sweep.update_percent p.Sweep.key_range p.Sweep.ops
    (summary_json p.Sweep.throughput)
    counters latency

(** JSON export of points, including counter snapshots and latency
    summaries when present — the machine-readable side of
    {!render_metrics} / {!render_latency}. *)
let points_json ?(engine : Sweep.engine option) points =
  let engine_field =
    match engine with
    | Some e -> Printf.sprintf "\"engine\": %S, \"unit\": %S, " (engine_name e) (engine_unit e)
    | None -> ""
  in
  Printf.sprintf "{%s\"points\": [\n  %s\n]}" engine_field
    (String.concat ",\n  " (List.map point_json points))

(** CSV export of raw points for external plotting. *)
let points_csv points =
  let table =
    Vbl_util.Table.create
      [ "algorithm"; "threads"; "update_percent"; "key_range"; "mean"; "stddev"; "n" ]
  in
  List.iter
    (fun (p : Sweep.point) ->
      Vbl_util.Table.add_row table
        [
          p.Sweep.algorithm;
          string_of_int p.Sweep.threads;
          string_of_int p.Sweep.update_percent;
          string_of_int p.Sweep.key_range;
          Printf.sprintf "%.4f" p.Sweep.throughput.Vbl_util.Stats.mean;
          Printf.sprintf "%.4f" p.Sweep.throughput.Vbl_util.Stats.stddev;
          string_of_int p.Sweep.throughput.Vbl_util.Stats.n;
        ])
    points;
  Vbl_util.Table.render_csv table
