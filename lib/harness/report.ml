(** Rendering sweep results as the tables the paper's figures plot.

    Each figure panel becomes one table: rows are thread counts, one
    throughput column per algorithm, plus the VBL-over-baseline ratios that
    the paper's prose quotes. *)

let engine_unit = function
  | Sweep.Real _ -> "ops/s"
  | Sweep.Simulated _ -> "ops/kcycle"

let engine_name = function
  | Sweep.Real _ -> "real-domains"
  | Sweep.Simulated _ -> "simulated-multicore"

(** Pivot a series into a table: one row per thread count. *)
let panel_table ~unit (points : Sweep.point list) =
  let algorithms =
    List.sort_uniq compare (List.map (fun p -> p.Sweep.algorithm) points)
  in
  let thread_counts = List.sort_uniq compare (List.map (fun p -> p.Sweep.threads) points) in
  let headers =
    "threads"
    :: List.concat_map (fun a -> [ a ^ " (" ^ unit ^ ")"; a ^ " ±" ]) algorithms
  in
  let table = Vbl_util.Table.create headers in
  List.iter
    (fun threads ->
      let cells =
        List.concat_map
          (fun a ->
            match
              List.find_opt
                (fun p -> p.Sweep.algorithm = a && p.Sweep.threads = threads)
                points
            with
            | Some p ->
                [
                  Vbl_util.Table.si_cell p.Sweep.throughput.Vbl_util.Stats.mean;
                  Vbl_util.Table.si_cell p.Sweep.throughput.Vbl_util.Stats.stddev;
                ]
            | None -> [ "-"; "-" ])
          algorithms
      in
      Vbl_util.Table.add_row table (string_of_int threads :: cells))
    thread_counts;
  table

let render_panel ~engine ~title points =
  let table = panel_table ~unit:(engine_unit engine) points in
  Printf.sprintf "%s [%s]\n%s" title (engine_name engine) (Vbl_util.Table.render table)

let render_figure1 engine points = render_panel ~engine ~title:"Figure 1: 20% updates, key range 50" points

let render_figure4 engine panels =
  String.concat "\n\n"
    (List.map
       (fun ((update, range), points) ->
         render_panel ~engine
           ~title:(Printf.sprintf "Figure 4 panel: %d%% updates, key range %d" update range)
           points)
       panels)

let render_headlines (h : Sweep.headlines) =
  String.concat "\n"
    [
      Printf.sprintf "Headline ratios at %d threads:" h.Sweep.threads_used;
      Printf.sprintf
        "  VBL / Lazy            (20%% updates, range 50): %.2fx   (paper: 1.6x)"
        h.Sweep.vbl_over_lazy_fig1;
      Printf.sprintf
        "  VBL / Harris-M. (AMR) (read-only,   range 200): %.2fx   (paper: up to 1.6x)"
        h.Sweep.vbl_over_hm_amr_readonly;
    ]

(** CSV export of raw points for external plotting. *)
let points_csv points =
  let table =
    Vbl_util.Table.create
      [ "algorithm"; "threads"; "update_percent"; "key_range"; "mean"; "stddev"; "n" ]
  in
  List.iter
    (fun (p : Sweep.point) ->
      Vbl_util.Table.add_row table
        [
          p.Sweep.algorithm;
          string_of_int p.Sweep.threads;
          string_of_int p.Sweep.update_percent;
          string_of_int p.Sweep.key_range;
          Printf.sprintf "%.4f" p.Sweep.throughput.Vbl_util.Stats.mean;
          Printf.sprintf "%.4f" p.Sweep.throughput.Vbl_util.Stats.stddev;
          string_of_int p.Sweep.throughput.Vbl_util.Stats.n;
        ])
    points;
  Vbl_util.Table.render_csv table
