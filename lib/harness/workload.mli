(** Synchrobench workload specification (paper §4): x% updates split into
    x/2 inserts and x/2 removes, the rest contains; uniform keys. *)

type distribution = Uniform | Zipfian of Vbl_util.Zipf.t

type spec = { update_percent : int; key_range : int; distribution : distribution }

val uniform : update_percent:int -> key_range:int -> spec
(** The paper's workloads: keys uniform over [1, key_range]. *)

val zipfian : ?s:float -> update_percent:int -> key_range:int -> unit -> spec
(** Synchrobench-style skewed keys, P(k) proportional to 1/k^s
    (default s = 1). *)

val validate : spec -> unit
(** [Invalid_argument] on percentages outside [0,100] or ranges < 1. *)

type op = Insert of int | Remove of int | Contains of int

val draw_key : Vbl_util.Rng.t -> spec -> int

val next : Vbl_util.Rng.t -> spec -> op
(** Draw the next operation; insert/remove stay balanced at every ratio. *)

val prepopulate :
  (module Vbl_lists.Set_intf.S with type t = 's) -> 's -> Vbl_util.Rng.t -> spec -> unit
(** Insert each key of the range with probability ½. *)

val apply : (module Vbl_lists.Set_intf.S with type t = 's) -> 's -> op -> bool

val paper_update_ratios : int list
(** [0; 20; 100]. *)

val paper_key_ranges : int list
(** [50; 200; 2000; 20000]. *)
