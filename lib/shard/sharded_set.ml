(** Hash-sharded set frontend.

    The paper's VBL list is concurrency-optimal {e within one list}
    (§3-4), but a single chain of nodes is still one traversal path and
    one contention domain.  The standard scale-out move — the one
    synchrobench-style evaluations use to separate contention cost from
    traversal cost — is to hash-partition the key space across [2^bits]
    independent instances and route every operation to its shard.

    Design points:

    - {b routing} is a splitmix64 finalizer over the key, reduced to the
      shard index by masking.  The finalizer runs on native ints (63-bit
      truncated constants), so the route computation is straight integer
      arithmetic: no [Int64] boxing, nothing allocated — the
      [contains]-only fast path is [[@hot]] and lint-clean under L1-L4;
    - {b striped sizes}: each shard owns a cache-line-padded counter cell
      ({!Vbl_memops.Mem_intf.S.make_padded}) bumped by a CAS loop on every
      successful update, so [size] is O(shards) instead of O(n) and two
      domains updating different shards never false-share a counter line;
    - {b batching}: {!S.apply_batch} stably groups an operation array by
      shard (a counting sort over the shard index — two O(n) integer
      passes) and drains each shard's group in one pass, so consecutive
      operations revisit a traversal path that is already cache-hot;
    - the frontend is itself a functor over the memory backend [M], so a
      sharded set runs on real atomics or under the instrumented
      schedule machinery exactly like the underlying algorithm does.

    Linearizability is inherited: keys are partitioned, every operation
    on a key touches exactly one shard, and each shard is a linearizable
    set, so the composition is a linearizable set (the shard's
    linearization point serves for the whole structure). *)

module Probe = Vbl_obs.Probe
module C = Vbl_obs.Metrics
module Prof = Vbl_obs.Contention

type op = Insert of int | Remove of int | Contains of int

module type CONFIG = sig
  val shard_bits : int
  (** log2 of the shard count; the functor rejects values outside
      [\[0, 16\]]. *)
end

module type S = sig
  include Vbl_lists.Set_intf.S

  val shard_count : int

  val shard_of : int -> int
  (** The shard index an operation on this key routes to. *)

  val apply_batch : t -> op array -> bool array
  (** Apply a batch, grouped by shard, one shard at a time.  Results line
      up with the input positions.  Operations on the same key keep their
      array order; operations on different keys in different shards are
      applied shard-by-shard, which is indistinguishable from some
      sequential order because shards are disjoint.  Quiescent batches
      (no concurrent callers mutating the same keys) therefore see the
      same results as applying the array left to right. *)

  val shard_sizes : t -> int array
  (** Per-shard striped-counter readings, index = shard.  Quiescent use:
      counters are bumped after the shard operation commits, so a
      concurrent reading may transiently miss an update. *)
end

module Make (C_ : CONFIG) (B : Vbl_lists.Set_intf.MAKER) (M : Vbl_memops.Mem_intf.S) :
  S = struct
  module Backend = B (M)

  let () =
    if C_.shard_bits < 0 || C_.shard_bits > 16 then
      invalid_arg "Sharded_set.Make: shard_bits must be in [0, 16]"

  let shard_count = 1 lsl C_.shard_bits
  let mask = shard_count - 1
  let name = Backend.name ^ "-sharded-" ^ string_of_int shard_count

  (* splitmix64's finalizer on the native int (the two multiplicative
     constants lose their top bit to the 63-bit representation, which
     perturbs the avalanche but keeps it far better than enough for a
     16-way split).  Literals above [max_int] do not parse, so the
     constants are assembled with [lsl]/[lor]; everything here is
     unboxed integer arithmetic. *)
  let[@hot] mix v =
    let v = v lxor (v lsr 30) in
    let v = v * ((0xBF58476D lsl 32) lor 0x1CE4E5B9) in
    let v = v lxor (v lsr 27) in
    let v = v * ((0x94D049BB lsl 32) lor 0x133111EB) in
    v lxor (v lsr 31)

  let[@hot] shard_of v = mix v land mask

  type t = { shards : Backend.t array; sizes : int M.cell array }

  let create () =
    let shards = Array.init shard_count (fun _ -> Backend.create ()) in
    let sizes =
      Array.init shard_count (fun _ -> M.make_padded ~line:(M.fresh_line ()) 0)
    in
    { shards; sizes }

  (* Striped-counter bump: CAS loop through the backend-abstract cell, so
     it is correct under real domains and schedulable under the
     instrumented backend. *)
  let rec bump cell d =
    let old = M.get cell in
    if not (M.cas cell old (old + d)) then bump cell d

  (* Profiled stripe bump: the CAS loop's total latency is the stripe's
     contention signal (retries inflate it), attributed to the
     [Shard_stripe] site. *)
  let bump_profiled cell d =
    let t0 = Prof.now_ns () in
    bump cell d;
    Prof.record_wait Prof.Shard_stripe (Prof.now_ns () - t0)

  let insert t v =
    let s = shard_of v in
    if !Prof.profiling then Prof.shard_op s;
    let ok = Backend.insert (Array.unsafe_get t.shards s) v in
    if ok then
      if !Prof.profiling then bump_profiled (Array.unsafe_get t.sizes s) 1
      else bump (Array.unsafe_get t.sizes s) 1;
    ok

  let remove t v =
    let s = shard_of v in
    if !Prof.profiling then Prof.shard_op s;
    let ok = Backend.remove (Array.unsafe_get t.shards s) v in
    if ok then
      if !Prof.profiling then bump_profiled (Array.unsafe_get t.sizes s) (-1)
      else bump (Array.unsafe_get t.sizes s) (-1);
    ok

  (* The membership fast path: route and delegate, nothing allocated on
     top of the backend's own wait-free traversal; the profiler hook is
     one load-and-branch when disabled. *)
  let[@hot] contains t v =
    let s = shard_of v in
    if !Prof.profiling then Prof.shard_op s;
    Backend.contains (Array.unsafe_get t.shards s) v

  let size t =
    let total = ref 0 in
    for s = 0 to shard_count - 1 do
      total := !total + M.get t.sizes.(s)
    done;
    !total

  let shard_sizes t = Array.init shard_count (fun s -> M.get t.sizes.(s))

  (* Shards partition by hash, not by range, so the per-shard sorted
     lists must be re-sorted after concatenation. *)
  let to_list t =
    List.sort compare
      (List.concat_map Backend.to_list (Array.to_list t.shards))

  (* Ordered traversal = gather-and-sort: shards partition by hash, so no
     single shard walk yields ascending order. *)
  let fold f init t = List.fold_left f init (to_list t)
  let iter f t = List.iter f (to_list t)

  (* Per-shard windows are each snapshot/best-effort per the backend's
     contract; the composition is only per-shard atomic (two shards are
     collected at different moments), which is the documented best-effort
     semantics of the sharded frontend. *)
  let range_query t lo hi =
    if lo > hi then []
    else
      List.sort compare
        (List.concat_map
           (fun sh -> Backend.range_query sh lo hi)
           (Array.to_list t.shards))

  (* O(shards): the striped counters already are an approximate size. *)
  let approx_size = size

  let key_of = function Insert v | Remove v | Contains v -> v

  let apply_batch t (ops : op array) : bool array =
    let n = Array.length ops in
    let results = Array.make n false in
    if n > 0 then begin
      Probe.count C.Shard_batches;
      if !Probe.enabled then Probe.add C.Shard_batch_ops n;
      (* Stable counting sort of the operation indices by shard. *)
      let counts = Array.make shard_count 0 in
      for i = 0 to n - 1 do
        let s = shard_of (key_of ops.(i)) in
        counts.(s) <- counts.(s) + 1
      done;
      let cursor = Array.make shard_count 0 in
      let acc = ref 0 in
      for s = 0 to shard_count - 1 do
        cursor.(s) <- !acc;
        acc := !acc + counts.(s)
      done;
      let order = Array.make n 0 in
      for i = 0 to n - 1 do
        let s = shard_of (key_of ops.(i)) in
        order.(cursor.(s)) <- i;
        cursor.(s) <- cursor.(s) + 1
      done;
      (* Drain shard by shard: consecutive operations revisit the same
         (cache-hot) chain. *)
      for k = 0 to n - 1 do
        let i = order.(k) in
        results.(i) <-
          (match ops.(i) with
          | Insert v -> insert t v
          | Remove v -> remove t v
          | Contains v -> contains t v)
      done
    end;
    results

  let check_invariants t =
    let rec shards_ok s =
      if s = shard_count then Ok ()
      else
        match Backend.check_invariants t.shards.(s) with
        | Error e -> Error (Printf.sprintf "shard %d: %s" s e)
        | Ok () ->
            (* Partition: every key a shard holds must route to it. *)
            let stray =
              List.find_opt (fun v -> shard_of v <> s) (Backend.to_list t.shards.(s))
            in
            (match stray with
            | Some v -> Error (Printf.sprintf "shard %d holds stray key %d (routes to %d)" s v (shard_of v))
            | None ->
                let actual = Backend.size t.shards.(s) in
                let counted = M.get t.sizes.(s) in
                if actual <> counted then
                  Error
                    (Printf.sprintf "shard %d striped count %d <> actual size %d" s
                       counted actual)
                else shards_ok (s + 1))
    in
    shards_ok 0
end
