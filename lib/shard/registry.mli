(** Sharded-set registry: VBL-backed frontends at shard counts 2/4/8/16,
    real-backend instances for benchmarks plus instrumented ones for the
    schedule machinery. *)

module Vbl_sharded_2 : Sharded_set.S
module Vbl_sharded_4 : Sharded_set.S
module Vbl_sharded_8 : Sharded_set.S
module Vbl_sharded_16 : Sharded_set.S

(** The 8-shard frontend on the reclaiming backend: per-shard pools over
    one global epoch. *)
module Vbl_sharded_8_reclaim : Sharded_set.S
module Vbl_sharded_2_i : Sharded_set.S
module Vbl_sharded_4_i : Sharded_set.S
module Vbl_sharded_8_i : Sharded_set.S
module Vbl_sharded_16_i : Sharded_set.S

type impl = (module Vbl_lists.Set_intf.S)

val all : impl list
(** Real-backend instances, ascending shard count. *)

val instrumented : impl list

val batched : (module Sharded_set.S) list
(** The same real-backend instances at their full signature (batch API,
    per-shard sizes). *)

val find_exn : string -> impl
