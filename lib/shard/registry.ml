(** Sharded-set registry, mirroring {!Vbl_lists.Registry}: VBL-backed
    sharded frontends at the shard counts the benchmarks sweep, on both
    backends.  The full {!Sharded_set.S} (batch API, per-shard sizes) is
    reachable through {!batched}; the plain registry views erase to
    {!Vbl_lists.Set_intf.S} like every other implementation. *)

module R = Vbl_memops.Real_mem
module RR = Vbl_memops.Reclaim_mem
module I = Vbl_memops.Instr_mem

module Vbl_sharded_2 =
  Sharded_set.Make (struct let shard_bits = 1 end) (Vbl_lists.Vbl_list.Make) (R)

module Vbl_sharded_4 =
  Sharded_set.Make (struct let shard_bits = 2 end) (Vbl_lists.Vbl_list.Make) (R)

module Vbl_sharded_8 =
  Sharded_set.Make (struct let shard_bits = 3 end) (Vbl_lists.Vbl_list.Make) (R)

module Vbl_sharded_16 =
  Sharded_set.Make (struct let shard_bits = 4 end) (Vbl_lists.Vbl_list.Make) (R)

(* Reclaiming frontend at the headline shard count: each shard gets its
   own pool, all sharing the global epoch. *)
module Vbl_sharded_8_reclaim = struct
  include Sharded_set.Make (struct let shard_bits = 3 end) (Vbl_lists.Vbl_list.Make) (RR)

  let name = "vbl-sharded-8-reclaim"
end

module Vbl_sharded_2_i =
  Sharded_set.Make (struct let shard_bits = 1 end) (Vbl_lists.Vbl_list.Make) (I)

module Vbl_sharded_4_i =
  Sharded_set.Make (struct let shard_bits = 2 end) (Vbl_lists.Vbl_list.Make) (I)

module Vbl_sharded_8_i =
  Sharded_set.Make (struct let shard_bits = 3 end) (Vbl_lists.Vbl_list.Make) (I)

module Vbl_sharded_16_i =
  Sharded_set.Make (struct let shard_bits = 4 end) (Vbl_lists.Vbl_list.Make) (I)

type impl = (module Vbl_lists.Set_intf.S)

let all : impl list =
  [
    (module Vbl_sharded_2);
    (module Vbl_sharded_4);
    (module Vbl_sharded_8);
    (module Vbl_sharded_16);
    (module Vbl_sharded_8_reclaim);
  ]

let instrumented : impl list =
  [
    (module Vbl_sharded_2_i);
    (module Vbl_sharded_4_i);
    (module Vbl_sharded_8_i);
    (module Vbl_sharded_16_i);
  ]

let batched : (module Sharded_set.S) list =
  [
    (module Vbl_sharded_2);
    (module Vbl_sharded_4);
    (module Vbl_sharded_8);
    (module Vbl_sharded_16);
    (module Vbl_sharded_8_reclaim);
  ]

let find_exn nm : impl =
  match
    List.find_opt
      (fun i ->
        let module S = (val i : Vbl_lists.Set_intf.S) in
        S.name = nm)
      all
  with
  | Some i -> i
  | None -> invalid_arg ("Vbl_shard.Registry.find_exn: unknown algorithm " ^ nm)
