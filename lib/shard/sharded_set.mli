(** Hash-sharded set frontend: partition the key space across [2^bits]
    independent instances of any {!Vbl_lists.Set_intf.S} backend.

    Routing is a splitmix64 finalizer over the key reduced by masking —
    straight native-int arithmetic, so the [contains] fast path allocates
    nothing on top of the backend's own traversal.  Each shard carries a
    cache-line-padded striped size counter ([size] is O(shards)), and
    {!S.apply_batch} drains a batch shard-by-shard to keep consecutive
    traversals cache-hot.  Linearizability is inherited from the backend:
    shards are disjoint and each operation touches exactly one. *)

type op = Insert of int | Remove of int | Contains of int

module type CONFIG = sig
  val shard_bits : int
  (** log2 of the shard count; the functor rejects values outside
      [\[0, 16\]]. *)
end

module type S = sig
  include Vbl_lists.Set_intf.S

  val shard_count : int

  val shard_of : int -> int
  (** The shard index an operation on this key routes to. *)

  val apply_batch : t -> op array -> bool array
  (** Apply a batch grouped by shard, one shard at a time; results line
      up with input positions.  Same-key operations keep their array
      order (shards are disjoint, so the shard-by-shard order is
      equivalent to some sequential order of the array). *)

  val shard_sizes : t -> int array
  (** Per-shard striped-counter readings, index = shard; exact at
      quiescence. *)
end

module Make (_ : CONFIG) (_ : Vbl_lists.Set_intf.MAKER) (M : Vbl_memops.Mem_intf.S) : S
(** [Make (Bits) (Backend) (M)]: a sharded frontend over [2^Bits.shard_bits]
    instances of [Backend (M)].  The instance's [name] is
    ["<backend>-sharded-<count>"]. *)
