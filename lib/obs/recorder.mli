(** Flight recorder: per-domain ring buffers of recent operations, so
    every stress failure ships a timeline, not just a seed.

    {!record} is O(1), unsynchronized and allocation-free (a flat
    [int array] ring per domain).  Guard call sites with [if !enabled]
    so a disabled recorder costs one branch.  Merged views ({!entries},
    {!dump}) are exact at quiescence only.  Ring overwrites bump
    {!Metrics.Recorder_dropped}. *)

type kind = Insert | Remove | Contains

val kind_label : kind -> string

type entry = {
  thread : int;  (** logical worker id supplied by the recorder *)
  kind : kind;
  key : int;
  shard : int;  (** -1 when the set is not sharded *)
  ok : bool;
  restarts : int;
  t0_ns : int;
  t1_ns : int;
}

val enabled : bool ref
(** Guard for call sites; off by default. *)

val set_enabled : bool -> unit

val set_capacity : int -> unit
(** Per-domain ring capacity in entries (default 4096).  Applies to rings
    created after the call; raises [Invalid_argument] when < 1. *)

val record :
  thread:int ->
  kind:kind ->
  key:int ->
  shard:int ->
  ok:bool ->
  restarts:int ->
  t0_ns:int ->
  t1_ns:int ->
  unit
(** Record one completed operation into the calling domain's ring. *)

val emitted : unit -> int
(** Total operations recorded (including overwritten ones). *)

val dropped : unit -> int
(** Entries overwritten before any dump. *)

val reset : unit -> unit
(** Empty every ring.  Call at quiescence. *)

val entries : unit -> entry list
(** Retained entries over every ring, merged, sorted by start time. *)

val dump : ?last:int -> unit -> string
(** Human-readable timeline of the most recent [last] entries (default
    40), timestamps relative to the earliest retained entry. *)
