(** Instrumentation probe: record-of-closures, no-op by default.

    The synchronization primitives, list algorithms and the schedule
    conductor call {!count} / {!emit} at their interesting events; with no
    probe installed each call is a single flag test.  Install a probe
    around a measured phase, snapshot {!Metrics} afterwards.

    Not synchronized: install and uninstall only at quiescence. *)

type t = {
  count : Metrics.counter -> unit;  (** counter hook *)
  add : Metrics.counter -> int -> unit;
      (** batched counter hook: traversal loops accumulate hops in a
          register and flush once per traversal *)
  trace : (Trace.event -> unit) option;  (** optional event sink *)
}

val noop : t

val metrics : unit -> t
(** Probe that bumps the sharded {!Metrics} registry and drops events. *)

val tracer : Trace.t -> t
(** Probe that records events into a ring and ignores counters. *)

val with_trace : Trace.t -> t -> t
(** Add an event sink to an existing probe. *)

val install : t -> unit

val uninstall : unit -> unit

val installed : unit -> bool

val enabled : bool ref
(** Whether a probe is installed.  Read-only for callers: per-hop hot
    loops guard on [!enabled] inline (one load and one branch, no
    function call) before calling {!count}.  Mutated only by
    {!install} / {!uninstall}. *)

val count : Metrics.counter -> unit
(** Forward to the installed probe; one branch when none is installed. *)

val add : Metrics.counter -> int -> unit

val trace_enabled : unit -> bool
(** Whether the installed probe has an event sink; lets callers skip
    building the event record entirely. *)

val emit : Trace.event -> unit
