(** Sharded event counters for the benchmark harness.

    Each domain owns a private, padded shard (an [int array] reached through
    {!Domain.DLS}), so the hot path is one unsynchronized load/store pair —
    no CAS, no contention, no cache-line ping-pong between workers.  Shards
    are only summed at trial end ({!snapshot}), which is the measurement
    discipline the paper's evaluation methodology calls for: observing the
    rejected schedules must not perturb the schedules themselves.

    The counter vocabulary is the paper's own cost model (§4): how far a
    traversal walked, how often an operation restarted, how often the
    value-aware try-lock failed each of its two validation modes, how many
    CAS attempts a lock-free update burned, and how deletions split into
    their logical and physical halves. *)

type counter =
  | Traversal_steps  (** node hops performed by traversals *)
  | Restarts  (** operation attempts beyond the first *)
  | Lock_acquisitions  (** successful validated lock acquisitions *)
  | Lock_next_at_failures  (** [lock_next_at] validation failures (§3.1(1)) *)
  | Lock_next_at_value_failures
      (** [lock_next_at_value] validation failures (§3.1(2)) *)
  | Validation_failures  (** generic post-lock validation failures *)
  | Lock_contended  (** blocking-acquire rounds that found the lock held *)
  | Cas_attempts
  | Cas_failures
  | Logical_deletes  (** nodes marked deleted *)
  | Physical_unlinks  (** nodes actually unlinked from the list *)
  | Dpor_executions  (** complete executions checked by the DPOR explorer *)
  | Dpor_sleep_blocked  (** executions abandoned because every enabled thread slept *)
  | Analysis_races  (** unordered conflicting plain-write pairs reported *)
  | Analysis_lint_hits  (** lock-discipline lint reports *)
  | Sct_runs  (** executions driven by the randomized (swarm) scheduler *)
  | Sct_distinct_schedules  (** distinct schedules seen across randomized runs *)
  | Shrink_attempts  (** candidate replays tried by the schedule shrinker *)
  | Shrink_removed_steps  (** schedule steps deleted by accepted shrinks *)
  | Bound_prunes  (** scheduling choices rejected by the active bound's budget *)
  | Shard_batches  (** [apply_batch] calls on a sharded set *)
  | Shard_batch_ops  (** operations applied through [apply_batch] *)
  | Ops_completed  (** set operations completed by harness workers *)
  | Trace_dropped  (** trace-ring events overwritten before being read *)
  | Recorder_dropped  (** flight-recorder entries overwritten before a dump *)
  | Reclaim_retired  (** unlinked nodes handed to the reclamation limbo bags *)
  | Reclaim_recycled  (** inserts served from a reclamation free-list *)
  | Reclaim_freed  (** limbo nodes whose grace period passed (now recyclable) *)
  | Reclaim_epoch_advances  (** successful global reclamation-epoch advances *)

let all =
  [
    Traversal_steps;
    Restarts;
    Lock_acquisitions;
    Lock_next_at_failures;
    Lock_next_at_value_failures;
    Validation_failures;
    Lock_contended;
    Cas_attempts;
    Cas_failures;
    Logical_deletes;
    Physical_unlinks;
    Dpor_executions;
    Dpor_sleep_blocked;
    Analysis_races;
    Analysis_lint_hits;
    Sct_runs;
    Sct_distinct_schedules;
    Shrink_attempts;
    Shrink_removed_steps;
    Bound_prunes;
    Shard_batches;
    Shard_batch_ops;
    Ops_completed;
    Trace_dropped;
    Recorder_dropped;
    Reclaim_retired;
    Reclaim_recycled;
    Reclaim_freed;
    Reclaim_epoch_advances;
  ]

let num_counters = List.length all

let index = function
  | Traversal_steps -> 0
  | Restarts -> 1
  | Lock_acquisitions -> 2
  | Lock_next_at_failures -> 3
  | Lock_next_at_value_failures -> 4
  | Validation_failures -> 5
  | Lock_contended -> 6
  | Cas_attempts -> 7
  | Cas_failures -> 8
  | Logical_deletes -> 9
  | Physical_unlinks -> 10
  | Dpor_executions -> 11
  | Dpor_sleep_blocked -> 12
  | Analysis_races -> 13
  | Analysis_lint_hits -> 14
  | Shard_batches -> 15
  | Shard_batch_ops -> 16
  | Ops_completed -> 17
  | Trace_dropped -> 18
  | Recorder_dropped -> 19
  | Reclaim_retired -> 20
  | Reclaim_recycled -> 21
  | Reclaim_freed -> 22
  | Reclaim_epoch_advances -> 23
  | Sct_runs -> 24
  | Sct_distinct_schedules -> 25
  | Shrink_attempts -> 26
  | Shrink_removed_steps -> 27
  | Bound_prunes -> 28

let label = function
  | Traversal_steps -> "traversal_steps"
  | Restarts -> "restarts"
  | Lock_acquisitions -> "lock_acquisitions"
  | Lock_next_at_failures -> "lock_next_at_failures"
  | Lock_next_at_value_failures -> "lock_next_at_value_failures"
  | Validation_failures -> "validation_failures"
  | Lock_contended -> "lock_contended"
  | Cas_attempts -> "cas_attempts"
  | Cas_failures -> "cas_failures"
  | Logical_deletes -> "logical_deletes"
  | Physical_unlinks -> "physical_unlinks"
  | Dpor_executions -> "dpor_executions"
  | Dpor_sleep_blocked -> "dpor_sleep_blocked"
  | Analysis_races -> "analysis_races"
  | Analysis_lint_hits -> "analysis_lint_hits"
  | Shard_batches -> "shard_batches"
  | Shard_batch_ops -> "shard_batch_ops"
  | Ops_completed -> "ops_completed"
  | Trace_dropped -> "trace_dropped"
  | Recorder_dropped -> "recorder_dropped"
  | Reclaim_retired -> "reclaim_retired"
  | Reclaim_recycled -> "reclaim_recycled"
  | Reclaim_freed -> "reclaim_freed"
  | Reclaim_epoch_advances -> "reclaim_epoch_advances"
  | Sct_runs -> "sct_runs"
  | Sct_distinct_schedules -> "sct_distinct_schedules"
  | Shrink_attempts -> "shrink_attempts"
  | Shrink_removed_steps -> "shrink_removed_steps"
  | Bound_prunes -> "bound_prunes"

let describe = function
  | Traversal_steps -> "node hops performed while searching"
  | Restarts -> "operation attempts beyond the first"
  | Lock_acquisitions -> "validated lock acquisitions"
  | Lock_next_at_failures -> "lock_next_at rejected: successor identity changed"
  | Lock_next_at_value_failures -> "lock_next_at_value rejected: successor value changed"
  | Validation_failures -> "generic post-lock validation failures"
  | Lock_contended -> "blocking-acquire rounds finding the lock held"
  | Cas_attempts -> "compare-and-set attempts"
  | Cas_failures -> "compare-and-set failures"
  | Logical_deletes -> "nodes marked logically deleted"
  | Physical_unlinks -> "nodes physically unlinked"
  | Dpor_executions -> "complete executions checked by the DPOR explorer"
  | Dpor_sleep_blocked -> "executions pruned by the sleep set"
  | Analysis_races -> "unordered conflicting plain-write pairs reported"
  | Analysis_lint_hits -> "lock-discipline lint reports"
  | Shard_batches -> "apply_batch calls on sharded sets"
  | Shard_batch_ops -> "operations applied through apply_batch"
  | Ops_completed -> "set operations completed by harness workers"
  | Trace_dropped -> "trace-ring events overwritten before being read"
  | Recorder_dropped -> "flight-recorder entries overwritten before a dump"
  | Reclaim_retired -> "unlinked nodes handed to the reclamation limbo bags"
  | Reclaim_recycled -> "inserts served from a reclamation free-list"
  | Reclaim_freed -> "limbo nodes whose grace period passed"
  | Reclaim_epoch_advances -> "successful global reclamation-epoch advances"
  | Sct_runs -> "executions driven by the randomized (swarm) scheduler"
  | Sct_distinct_schedules -> "distinct schedules seen across randomized runs"
  | Shrink_attempts -> "candidate replays tried by the schedule shrinker"
  | Shrink_removed_steps -> "schedule steps deleted by accepted shrinks"
  | Bound_prunes -> "scheduling choices rejected by the active bound's budget"

(* Per-shard series labels ("shard0", "shard1", ...) for reports that break
   a sharded set's load out by shard.  Memoized so labelling a snapshot
   allocates nothing after the first use of an index. *)
let shard_labels : string array ref = ref [||]

let shard_label i =
  if i < 0 then invalid_arg "Metrics.shard_label: negative index";
  let n = Array.length !shard_labels in
  if i >= n then begin
    let grown = Array.init (i + 1) (fun k ->
        if k < n then !shard_labels.(k) else "shard" ^ string_of_int k)
    in
    shard_labels := grown
  end;
  !shard_labels.(i)

(* One cache line of padding (8 words) on both sides of each shard's live
   slots, so two domains' shards never share a line even when the allocator
   places them back to back. *)
let pad = 8
let shard_len = pad + num_counters + pad

let shards : int array list ref = ref []
let shards_mu = Mutex.create ()

let shard_key =
  Domain.DLS.new_key (fun () ->
      let a = Array.make shard_len 0 in
      Mutex.protect shards_mu (fun () -> shards := a :: !shards);
      a)

let incr c =
  let a = Domain.DLS.get shard_key in
  let i = pad + index c in
  a.(i) <- a.(i) + 1

let add c n =
  let a = Domain.DLS.get shard_key in
  let i = pad + index c in
  a.(i) <- a.(i) + n

(* The calling domain's private count, without summing other shards: a
   worker can difference this around one operation to learn how many
   restarts (say) that single operation cost, with no synchronization. *)
let local_get c =
  let a = Domain.DLS.get shard_key in
  a.(pad + index c)

type snapshot = int array (* length num_counters, indexed by [index] *)

let snapshot () =
  let out = Array.make num_counters 0 in
  Mutex.protect shards_mu (fun () ->
      List.iter
        (fun a ->
          for i = 0 to num_counters - 1 do
            out.(i) <- out.(i) + a.(pad + i)
          done)
        !shards);
  out

let reset () =
  Mutex.protect shards_mu (fun () ->
      List.iter (fun a -> Array.fill a pad num_counters 0) !shards)

let get (s : snapshot) c = s.(index c)

let diff (a : snapshot) (b : snapshot) : snapshot =
  Array.init num_counters (fun i -> a.(i) - b.(i))

let sum (ss : snapshot list) : snapshot =
  let out = Array.make num_counters 0 in
  List.iter (fun (s : snapshot) -> Array.iteri (fun i v -> out.(i) <- out.(i) + v) s) ss;
  out

let to_assoc (s : snapshot) = List.map (fun c -> (label c, get s c)) all

let to_json (s : snapshot) =
  "{"
  ^ String.concat ", "
      (List.map (fun (k, v) -> Printf.sprintf "%S: %d" k v) (to_assoc s))
  ^ "}"
