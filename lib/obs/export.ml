(** Exporters: Chrome trace-event (catapult) JSON and OpenMetrics text.

    Two write-side formats and one read side:

    - {!chrome_trace_of_entries} renders a flight-recorder timeline as a
      Chrome trace-event JSON document ([about:tracing] / Perfetto), one
      complete event ([ph:"X"]) per operation, microsecond timestamps
      relative to the earliest entry.
    - {!chrome_trace_of_trace} renders an instrumented-schedule event
      ring the same way, with the step index as the timestamp, so a
      deterministic schedule can be eyeballed as a timeline.
    - {!render} produces OpenMetrics/Prometheus text exposition from
      metric families (counters, gauges, histograms), terminated by
      [# EOF] — the exact payload a future TCP tier can serve from
      [/metrics].
    - {!parse} / {!validate} read the exposition back.  They exist so
      exporter output can be checked in-tree (round-trip tests,
      [vbl-omcheck], the CI bench smoke) instead of trusting the writer.

    Everything here is cold-path code: strings and lists are fine. *)

(* ---------------- Chrome trace-event JSON ---------------- *)

(* Times are printed in microseconds with fixed precision so golden tests
   are byte-stable across platforms. *)
let us f = Printf.sprintf "%.3f" (f /. 1e3)

let chrome_trace_of_entries (entries : Recorder.entry list) =
  let origin =
    List.fold_left (fun m (e : Recorder.entry) -> min m e.t0_ns) max_int entries
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (e : Recorder.entry) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n\
            {\"name\":\"%s\",\"cat\":\"op\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"args\":{\"key\":%d,\"shard\":%d,\"ok\":%d,\"restarts\":%d}}"
           (Recorder.kind_label e.kind)
           e.thread
           (us (float_of_int (e.t0_ns - origin)))
           (us (float_of_int (max 1 (e.t1_ns - e.t0_ns))))
           e.key e.shard
           (if e.ok then 1 else 0)
           e.restarts))
    entries;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* An instrumented schedule has no wall clock; the step index is the
   timestamp (1 "microsecond" per step), which preserves ordering and
   makes concurrent regions visually obvious. *)
let chrome_trace_of_trace (t : Trace.t) =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i (ev : Trace.event) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n\
            {\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%d,\"dur\":1}"
           (json_escape ev.step)
           (json_escape (Trace.kind_to_string ev.kind))
           ev.thread i))
    (Trace.events t);
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(* ---------------- OpenMetrics text exposition ---------------- *)

type labels = (string * string) list

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Histogram_family of {
      name : string;
      help : string;
      series : (labels * Histogram.t) list;
    }

let escape_label_value s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let render_labels = function
  | [] -> ""
  | ls ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v)) ls)
      ^ "}"

(* Deterministic number formatting: integers print without an exponent or
   decimal point whenever they fit exactly, so counter samples round-trip
   bit-for-bit through the parser. *)
let render_value v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let render_le v = if v = Float.infinity then "+Inf" else render_value v

let render families =
  let b = Buffer.create 4096 in
  let header name typ help =
    Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" name help);
    Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" name typ)
  in
  let sample name labels v =
    Buffer.add_string b
      (Printf.sprintf "%s%s %s\n" name (render_labels labels) (render_value v))
  in
  List.iter
    (fun f ->
      match f with
      | Counter { name; help; samples } ->
          header name "counter" help;
          List.iter (fun (ls, v) -> sample (name ^ "_total") ls v) samples
      | Gauge { name; help; samples } ->
          header name "gauge" help;
          List.iter (fun (ls, v) -> sample name ls v) samples
      | Histogram_family { name; help; series } ->
          header name "histogram" help;
          List.iter
            (fun (ls, h) ->
              let n = Histogram.count h in
              List.iter
                (fun (le, cum) ->
                  sample (name ^ "_bucket") (ls @ [ ("le", render_le le) ]) (float_of_int cum))
                (Histogram.cumulative_buckets h);
              sample (name ^ "_bucket") (ls @ [ ("le", "+Inf") ]) (float_of_int n);
              sample (name ^ "_sum") ls (Histogram.sum h);
              sample (name ^ "_count") ls (float_of_int n))
            series)
    families;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

(* Convenience builders used by the bench / synchrobench export paths. *)

let counter_families (s : Metrics.snapshot) =
  List.map
    (fun c ->
      Counter
        {
          name = "vbl_" ^ Metrics.label c;
          help = Metrics.describe c;
          samples = [ ([], float_of_int (Metrics.get s c)) ];
        })
    Metrics.all

let contention_families (stats : Contention.site_stats list) =
  let series field =
    List.filter_map
      (fun (st : Contention.site_stats) ->
        let h = field st in
        if Histogram.count h = 0 then None
        else Some ([ ("site", Contention.site_label st.site) ], h))
      stats
  in
  let wait = series (fun (st : Contention.site_stats) -> st.wait)
  and hold = series (fun (st : Contention.site_stats) -> st.hold) in
  List.concat
    [
      (if wait = [] then []
       else
         [
           Histogram_family
             {
               name = "vbl_lock_wait_ns";
               help = "lock wait time by acquisition site";
               series = wait;
             };
         ]);
      (if hold = [] then []
       else
         [
           Histogram_family
             {
               name = "vbl_lock_hold_ns";
               help = "lock hold time by acquisition site";
               series = hold;
             };
         ]);
    ]

let shard_families (totals : int array) =
  if Array.fold_left ( + ) 0 totals = 0 then []
  else
    [
      Counter
        {
          name = "vbl_shard_ops";
          help = "operations routed to each shard";
          samples =
            List.filter_map
              (fun i ->
                if totals.(i) = 0 then None
                else
                  Some ([ ("shard", string_of_int i) ], float_of_int totals.(i)))
              (List.init (Array.length totals) Fun.id);
        };
    ]

(* Gauges, not counters: a delta can shrink when the baseline is rebased
   between expositions. *)
let gc_families (d : Gcstats.delta) =
  [
    Gauge
      {
        name = "vbl_gc_words";
        help = "GC words allocated since the harness rebased the baseline";
        samples =
          [
            ([ ("kind", "minor") ], d.minor_words);
            ([ ("kind", "promoted") ], d.promoted_words);
            ([ ("kind", "major") ], d.major_words);
          ];
      };
    Gauge
      {
        name = "vbl_gc_collections";
        help = "GC cycles since the harness rebased the baseline";
        samples =
          [
            ([ ("kind", "minor") ], float_of_int d.minor_collections);
            ([ ("kind", "major") ], float_of_int d.major_collections);
            ([ ("kind", "compaction") ], float_of_int d.compactions);
          ];
      };
  ]

(* The full exposition for a profiled run: every counter, the GC
   footprint, the contention histograms, and the per-shard traffic. *)
let openmetrics_of_run () =
  render
    (List.concat
       [
         counter_families (Metrics.snapshot ());
         gc_families (Gcstats.delta ());
         contention_families (Contention.report ());
         shard_families (Contention.shard_ops_totals ());
       ])

(* ---------------- OpenMetrics parser ---------------- *)

type sample = { name : string; labels : labels; value : float }

let is_name_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let parse_value tok =
  match tok with
  | "+Inf" | "Inf" -> Ok Float.infinity
  | "-Inf" -> Ok Float.neg_infinity
  | "NaN" -> Ok Float.nan
  | _ -> ( match float_of_string_opt tok with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "invalid value %S" tok))

exception Parse_error of string

(* One sample line: [name{k="v",...} value] or [name value].  A trailing
   timestamp token is tolerated and ignored. *)
let parse_sample_line line =
  let len = String.length line in
  let fail msg = raise (Parse_error (Printf.sprintf "%s in %S" msg line)) in
  if len = 0 || not (is_name_start line.[0]) then fail "invalid metric name";
  let i = ref 0 in
  while !i < len && is_name_char line.[!i] do
    incr i
  done;
  let name = String.sub line 0 !i in
  let labels = ref [] in
  if !i < len && line.[!i] = '{' then begin
    incr i;
    let stop = ref false in
    if !i < len && line.[!i] = '}' then begin
      incr i;
      stop := true
    end;
    while not !stop do
      if !i >= len || not (is_name_start line.[!i]) then fail "invalid label name";
      let k0 = !i in
      while !i < len && is_name_char line.[!i] do
        incr i
      done;
      let k = String.sub line k0 (!i - k0) in
      if !i >= len || line.[!i] <> '=' then fail "expected '='";
      incr i;
      if !i >= len || line.[!i] <> '"' then fail "expected '\"'";
      incr i;
      let b = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= len then fail "unterminated label value";
        (match line.[!i] with
        | '"' -> closed := true
        | '\\' ->
            if !i + 1 >= len then fail "dangling escape";
            incr i;
            Buffer.add_char b
              (match line.[!i] with
              | 'n' -> '\n'
              | '\\' -> '\\'
              | '"' -> '"'
              | c -> fail (Printf.sprintf "bad escape '\\%c'" c))
        | c -> Buffer.add_char b c);
        incr i
      done;
      labels := (k, Buffer.contents b) :: !labels;
      if !i < len && line.[!i] = ',' then incr i
      else if !i < len && line.[!i] = '}' then begin
        incr i;
        stop := true
      end
      else fail "expected ',' or '}'"
    done
  end;
  if !i >= len || line.[!i] <> ' ' then fail "expected space before value";
  let rest = String.sub line (!i + 1) (len - !i - 1) in
  let tok = match String.index_opt rest ' ' with
    | None -> rest
    | Some j -> String.sub rest 0 j
  in
  match parse_value tok with
  | Error e -> fail e
  | Ok v -> { name; labels = List.rev !labels; value = v }

let parse text =
  let lines = String.split_on_char '\n' text in
  let eof_seen = ref false in
  try
    let samples =
      List.filter_map
        (fun line ->
          let line = String.trim line in
          if line = "" then None
          else if !eof_seen then raise (Parse_error "content after # EOF")
          else if line = "# EOF" then begin
            eof_seen := true;
            None
          end
          else if String.length line > 0 && line.[0] = '#' then None
          else Some (parse_sample_line line))
        lines
    in
    if not !eof_seen then Error "missing # EOF terminator" else Ok samples
  with Parse_error msg -> Error msg

(* ---------------- Validation ---------------- *)

let strip_suffix s suf =
  let ls = String.length s and lf = String.length suf in
  if ls >= lf && String.sub s (ls - lf) lf = suf then Some (String.sub s 0 (ls - lf))
  else None

let le_value ls =
  match List.assoc_opt "le" ls with
  | None -> None
  | Some "+Inf" -> Some Float.infinity
  | Some s -> float_of_string_opt s

(* Structural checks over a parsed exposition: counters are finite and
   non-negative; every histogram bucket series has nondecreasing
   cumulative counts, ends at le="+Inf", and agrees with its _count
   sample.  This is what [vbl-omcheck] and the CI bench smoke run. *)
let validate text =
  match parse text with
  | Error e -> Error e
  | Ok samples ->
      let problems = ref [] in
      let problem fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
      (* counters *)
      List.iter
        (fun s ->
          match strip_suffix s.name "_total" with
          | Some _ ->
              if Float.is_nan s.value || s.value < 0. || s.value = Float.infinity then
                problem "counter %s has non-finite or negative value %g" s.name s.value
          | None -> ())
        samples;
      (* histogram bucket series, grouped by (base name, labels sans le) *)
      let groups : (string * labels, (float * float) list ref) Hashtbl.t =
        Hashtbl.create 16
      in
      List.iter
        (fun s ->
          match strip_suffix s.name "_bucket" with
          | None -> ()
          | Some base -> (
              let ls = List.remove_assoc "le" s.labels in
              match le_value s.labels with
              | None -> problem "bucket sample %s lacks a numeric le label" s.name
              | Some le -> (
                  let key = (base, ls) in
                  match Hashtbl.find_opt groups key with
                  | Some r -> r := (le, s.value) :: !r
                  | None -> Hashtbl.add groups key (ref [ (le, s.value) ]))))
        samples;
      Hashtbl.iter
        (fun (base, ls) series ->
          let sorted = List.sort compare !series in
          let rec check prev = function
            | [] -> ()
            | (le, v) :: rest ->
                if v < prev then
                  problem "%s%s buckets not cumulative at le=%s" base
                    (render_labels ls) (render_le le);
                check v rest
          in
          check 0. sorted;
          (match List.rev sorted with
          | (le, last) :: _ ->
              if le <> Float.infinity then
                problem "%s%s bucket series lacks le=\"+Inf\"" base (render_labels ls)
              else begin
                (* _count, when present, must equal the +Inf bucket *)
                let count_name = base ^ "_count" in
                List.iter
                  (fun s ->
                    if s.name = count_name && s.labels = ls && s.value <> last then
                      problem "%s%s count %g disagrees with +Inf bucket %g" count_name
                        (render_labels ls) s.value last)
                  samples
              end
          | [] -> ()))
        groups;
      (match !problems with
      | [] -> Ok (List.length samples)
      | ps -> Error (String.concat "; " (List.rev ps)))
