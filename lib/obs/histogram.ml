(** Log-bucketed latency histograms (HDR-histogram style).

    Values are non-negative integers (the harness records nanoseconds).
    Buckets cover the whole [int] range with [2^sub_bits] sub-buckets per
    power of two, so relative error is bounded by [2^-sub_bits] (12.5%)
    at every scale while the whole histogram stays a few kilobytes.
    Recording is O(1) and allocation-free; each worker owns its own
    histogram and the harness merges them after the domains are joined. *)

let sub_bits = 3
let sub = 1 lsl sub_bits (* 8 sub-buckets per octave *)

(* Highest octave for 63-bit OCaml ints is 62, so the largest bucket index
   is (62 - sub_bits + 1) * sub + (sub - 1). *)
let n_buckets = ((62 - sub_bits + 1) * sub) + sub

let msb v =
  let r = ref 0 and v = ref v in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* For v < sub the bucket is exact; above that, the top [sub_bits + 1] bits
   select (octave, sub-bucket).  The mapping is continuous: octave
   [sub_bits] still lands on exact buckets. *)
let bucket_of v =
  if v < sub then v
  else begin
    let m = msb v in
    let shift = m - sub_bits in
    (((m - sub_bits + 1) * sub) lor ((v lsr shift) land (sub - 1)))
  end

(* Inclusive lower bound of bucket [b] — the inverse of [bucket_of] — and
   the bucket's midpoint, both in floating point: the top octave is 62, and
   [1 lsl 62] overflows the 63-bit native int to a negative value, so the
   integer formulation returned garbage for buckets near [max_int].
   [ldexp] is exact for every bucket boundary (they are all small-mantissa
   powers of two sums). *)
let bucket_low b =
  if b < sub then float_of_int b
  else begin
    let octave = (b lsr sub_bits) + sub_bits - 1 in
    let within = b land (sub - 1) in
    Float.ldexp 1. octave +. Float.ldexp (float_of_int within) (octave - sub_bits)
  end

(* Representative value: the bucket's midpoint. *)
let bucket_mid b =
  if b < sub then float_of_int b
  else begin
    let octave = (b lsr sub_bits) + sub_bits - 1 in
    bucket_low b +. Float.ldexp 1. (octave - sub_bits - 1)
  end

type t = {
  counts : int array;
  mutable n : int;
  mutable max_v : int;
  mutable min_v : int;
  mutable sum : float;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; max_v = 0; min_v = max_int; sum = 0. }

let clear t =
  Array.fill t.counts 0 n_buckets 0;
  t.n <- 0;
  t.max_v <- 0;
  t.min_v <- max_int;
  t.sum <- 0.

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v;
  t.sum <- t.sum +. float_of_int v

let count t = t.n

let sum t = t.sum

let merge ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.n <- into.n + t.n;
  if t.max_v > into.max_v then into.max_v <- t.max_v;
  if t.min_v < into.min_v then into.min_v <- t.min_v;
  into.sum <- into.sum +. t.sum

let merged ts =
  let out = create () in
  List.iter (fun t -> merge ~into:out t) ts;
  out

let mean t = if t.n = 0 then Float.nan else t.sum /. float_of_int t.n

let min_value t = if t.n = 0 then Float.nan else float_of_int t.min_v
let max_value t = if t.n = 0 then Float.nan else float_of_int t.max_v

(* Percentile by closest rank over the bucket counts.  Exact values are not
   retained, so an interior rank answers with the representative of the
   bucket containing it — within one sub-bucket (12.5%) of the true value.
   The extremes are exact in both senses: p0/p100 return the recorded
   min/max, and so do rank 1 and rank n — the 1st-smallest sample {e is}
   the minimum and the nth {e is} the maximum, so extreme percentiles
   (p99.9 of 1000 samples, p50 of 1 sample) no longer report a bucket
   midpoint that can sit a whole sub-bucket away from the only sample they
   can possibly name.  The rank itself is computed with a relative epsilon:
   [p /. 100. *. n] accumulates float error (99.9/100*1000 evaluates just
   above 999), and a bare [ceil] then overshoots the closest rank by one —
   exactly at the sparse tail ranks where one sample is the whole answer.
   An empty histogram has no quantiles: the result is [nan], not an
   exception, so report code can format "no samples" without guarding
   every call site. *)
let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of range";
  if t.n = 0 then Float.nan
  else if p = 0. then float_of_int t.min_v
  else if p = 100. then float_of_int t.max_v
  else begin
    let n = float_of_int t.n in
    let rank = int_of_float (Float.ceil ((p /. 100. *. n) -. (1e-9 *. n))) in
    let rank = if rank < 1 then 1 else if rank > t.n then t.n else rank in
    if rank = 1 then float_of_int t.min_v
    else if rank = t.n then float_of_int t.max_v
    else begin
      let rec walk b acc =
        let acc = acc + t.counts.(b) in
        if acc >= rank then b else walk (b + 1) acc
      in
      let b = walk 0 0 in
      (* Clamp to the observed extremes so sparse histograms do not report
         a bucket midpoint outside the recorded range. *)
      Float.min (float_of_int t.max_v) (Float.max (float_of_int t.min_v) (bucket_mid b))
    end
  end

(* Cumulative counts at octave boundaries, for OpenMetrics exposition:
   (le, samples <= le) pairs with le = 8, 16, 32, ... up to the first
   boundary covering the recorded maximum.  Leading all-empty octaves are
   skipped (after the first emitted bound every subsequent one is kept so
   the series stays contiguous); the final pair always covers every
   sample.  Empty histogram: a single (8, 0) bucket, so an exporter still
   emits a well-formed series. *)
let cumulative_buckets t =
  let out = ref [] in
  let cum = ref 0 in
  let idx = ref 0 in
  let octave = ref sub_bits in
  let stop = ref false in
  while not !stop && !idx < n_buckets do
    let next = if !octave = sub_bits then sub else !idx + sub in
    let next = if next > n_buckets then n_buckets else next in
    for i = !idx to next - 1 do
      cum := !cum + t.counts.(i)
    done;
    let le = Float.ldexp 1. !octave in
    if !cum > 0 || !out <> [] || le >= float_of_int (max 1 t.max_v) then
      out := (le, !cum) :: !out;
    if !cum >= t.n && le >= float_of_int t.max_v then stop := true;
    idx := next;
    incr octave
  done;
  (match !out with [] -> out := [ (float_of_int sub, 0) ] | _ -> ());
  List.rev !out

type summary = {
  n : int;
  mean : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
  max : float;
}

let summarize (h : t) =
  if h.n = 0 then None
  else
    Some
      {
        n = h.n;
        mean = mean h;
        min = float_of_int h.min_v;
        p50 = percentile h 50.;
        p90 = percentile h 90.;
        p99 = percentile h 99.;
        p999 = percentile h 99.9;
        p9999 = percentile h 99.99;
        max = float_of_int h.max_v;
      }

let summary_to_json s =
  Printf.sprintf
    "{\"n\": %d, \"mean_ns\": %.1f, \"min_ns\": %.1f, \"p50_ns\": %.1f, \"p90_ns\": %.1f, \
     \"p99_ns\": %.1f, \"p999_ns\": %.1f, \"p9999_ns\": %.1f, \"max_ns\": %.1f}"
    s.n s.mean s.min s.p50 s.p90 s.p99 s.p999 s.p9999 s.max
