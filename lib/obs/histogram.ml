(** Log-bucketed latency histograms (HDR-histogram style).

    Values are non-negative integers (the harness records nanoseconds).
    Buckets cover the whole [int] range with [2^sub_bits] sub-buckets per
    power of two, so relative error is bounded by [2^-sub_bits] (12.5%)
    at every scale while the whole histogram stays a few kilobytes.
    Recording is O(1) and allocation-free; each worker owns its own
    histogram and the harness merges them after the domains are joined. *)

let sub_bits = 3
let sub = 1 lsl sub_bits (* 8 sub-buckets per octave *)

(* Highest octave for 63-bit OCaml ints is 62, so the largest bucket index
   is (62 - sub_bits + 1) * sub + (sub - 1). *)
let n_buckets = ((62 - sub_bits + 1) * sub) + sub

let msb v =
  let r = ref 0 and v = ref v in
  while !v > 1 do
    incr r;
    v := !v lsr 1
  done;
  !r

(* For v < sub the bucket is exact; above that, the top [sub_bits + 1] bits
   select (octave, sub-bucket).  The mapping is continuous: octave
   [sub_bits] still lands on exact buckets. *)
let bucket_of v =
  if v < sub then v
  else begin
    let m = msb v in
    let shift = m - sub_bits in
    (((m - sub_bits + 1) * sub) lor ((v lsr shift) land (sub - 1)))
  end

(* Inclusive lower bound of bucket [b] — the inverse of [bucket_of] — and
   the bucket's midpoint, both in floating point: the top octave is 62, and
   [1 lsl 62] overflows the 63-bit native int to a negative value, so the
   integer formulation returned garbage for buckets near [max_int].
   [ldexp] is exact for every bucket boundary (they are all small-mantissa
   powers of two sums). *)
let bucket_low b =
  if b < sub then float_of_int b
  else begin
    let octave = (b lsr sub_bits) + sub_bits - 1 in
    let within = b land (sub - 1) in
    Float.ldexp 1. octave +. Float.ldexp (float_of_int within) (octave - sub_bits)
  end

(* Representative value: the bucket's midpoint. *)
let bucket_mid b =
  if b < sub then float_of_int b
  else begin
    let octave = (b lsr sub_bits) + sub_bits - 1 in
    bucket_low b +. Float.ldexp 1. (octave - sub_bits - 1)
  end

type t = {
  counts : int array;
  mutable n : int;
  mutable max_v : int;
  mutable min_v : int;
  mutable sum : float;
}

let create () =
  { counts = Array.make n_buckets 0; n = 0; max_v = 0; min_v = max_int; sum = 0. }

let record t v =
  let v = if v < 0 then 0 else v in
  let b = bucket_of v in
  t.counts.(b) <- t.counts.(b) + 1;
  t.n <- t.n + 1;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v;
  t.sum <- t.sum +. float_of_int v

let count t = t.n

let merge ~into t =
  Array.iteri (fun i c -> into.counts.(i) <- into.counts.(i) + c) t.counts;
  into.n <- into.n + t.n;
  if t.max_v > into.max_v then into.max_v <- t.max_v;
  if t.min_v < into.min_v then into.min_v <- t.min_v;
  into.sum <- into.sum +. t.sum

let mean t = if t.n = 0 then Float.nan else t.sum /. float_of_int t.n

(* Percentile by closest rank over the bucket counts.  Exact values are not
   retained, so the answer is the representative of the bucket containing
   the rank — within one sub-bucket (12.5%) of the true value.  The
   extremes are exact: p0 returns the recorded minimum, p100 the maximum.
   An empty histogram has no quantiles: the result is [nan], not an
   exception, so report code can format "no samples" without guarding
   every call site. *)
let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile: p out of range";
  if t.n = 0 then Float.nan
  else if p = 0. then float_of_int t.min_v
  else if p = 100. then float_of_int t.max_v
  else begin
    let rank = int_of_float (Float.ceil (p /. 100. *. float_of_int t.n)) in
    let rank = if rank < 1 then 1 else rank in
    let rec walk b acc =
      let acc = acc + t.counts.(b) in
      if acc >= rank then b else walk (b + 1) acc
    in
    let b = walk 0 0 in
    (* Clamp to the observed extremes so sparse histograms do not report a
       bucket midpoint outside the recorded range. *)
    Float.min (float_of_int t.max_v) (Float.max (float_of_int t.min_v) (bucket_mid b))
  end

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

let summarize (h : t) =
  if h.n = 0 then None
  else
    Some
      {
        n = h.n;
        mean = mean h;
        p50 = percentile h 50.;
        p90 = percentile h 90.;
        p99 = percentile h 99.;
        max = float_of_int h.max_v;
      }

let summary_to_json s =
  Printf.sprintf
    "{\"n\": %d, \"mean_ns\": %.1f, \"p50_ns\": %.1f, \"p90_ns\": %.1f, \"p99_ns\": %.1f, \"max_ns\": %.1f}"
    s.n s.mean s.p50 s.p90 s.p99 s.max
