(** Sharded, cache-padded event counters.

    The registry behind {!Probe}: each domain increments a private shard
    (one plain load/store, no synchronization), and shards are summed only
    at trial end.  The counter set names the quantities the paper's
    rejected-schedule argument is made of — traversal length, restarts,
    the two validation modes of the value-aware try-lock, CAS traffic, and
    the logical/physical halves of deletion (§3.1, §4). *)

type counter =
  | Traversal_steps  (** node hops performed by traversals *)
  | Restarts  (** operation attempts beyond the first *)
  | Lock_acquisitions  (** successful validated lock acquisitions *)
  | Lock_next_at_failures  (** [lock_next_at] validation failures (§3.1(1)) *)
  | Lock_next_at_value_failures
      (** [lock_next_at_value] validation failures (§3.1(2)) *)
  | Validation_failures  (** generic post-lock validation failures *)
  | Lock_contended  (** blocking-acquire rounds that found the lock held *)
  | Cas_attempts
  | Cas_failures
  | Logical_deletes  (** nodes marked deleted *)
  | Physical_unlinks  (** nodes actually unlinked *)
  | Dpor_executions  (** complete executions checked by the DPOR explorer *)
  | Dpor_sleep_blocked  (** executions abandoned: every enabled thread asleep *)
  | Analysis_races  (** unordered conflicting plain-write pairs reported *)
  | Analysis_lint_hits  (** lock-discipline lint reports *)
  | Sct_runs  (** executions driven by the randomized (swarm) scheduler *)
  | Sct_distinct_schedules  (** distinct schedules seen across randomized runs *)
  | Shrink_attempts  (** candidate replays tried by the schedule shrinker *)
  | Shrink_removed_steps  (** schedule steps deleted by accepted shrinks *)
  | Bound_prunes  (** scheduling choices rejected by the active bound's budget *)
  | Shard_batches  (** [apply_batch] calls on a sharded set *)
  | Shard_batch_ops  (** operations applied through [apply_batch] *)
  | Ops_completed  (** set operations completed by harness workers *)
  | Trace_dropped  (** trace-ring events overwritten before being read *)
  | Recorder_dropped  (** flight-recorder entries overwritten before a dump *)
  | Reclaim_retired  (** unlinked nodes handed to the reclamation limbo bags *)
  | Reclaim_recycled  (** inserts served from a reclamation free-list *)
  | Reclaim_freed  (** limbo nodes whose grace period passed (now recyclable) *)
  | Reclaim_epoch_advances  (** successful global reclamation-epoch advances *)

val all : counter list
(** Every counter, in reporting order. *)

val num_counters : int

val index : counter -> int
(** Dense index in [\[0, num_counters)], stable within a build. *)

val label : counter -> string
(** Snake-case identifier used in tables, CSV and JSON. *)

val describe : counter -> string
(** One-line description for documentation and report legends. *)

val shard_label : int -> string
(** ["shard<i>"], memoized — per-shard series labels for reports that
    break a sharded set's load out by shard.  Raises [Invalid_argument]
    on a negative index. *)

val incr : counter -> unit
(** Bump the calling domain's shard.  Unsynchronized and wait-free. *)

val add : counter -> int -> unit

val local_get : counter -> int
(** The calling domain's private count only.  Difference around one
    operation for an unsynchronized per-operation delta (e.g. how many
    restarts that operation cost). *)

type snapshot
(** Immutable sum over all shards at one instant. *)

val snapshot : unit -> snapshot
(** Sum every shard.  Only exact at quiescence (no concurrent
    increments); the harness snapshots after joining its domains. *)

val reset : unit -> unit
(** Zero every shard.  Call at quiescence, before a measured phase. *)

val get : snapshot -> counter -> int

val diff : snapshot -> snapshot -> snapshot
(** [diff a b] is the per-counter difference [a - b]. *)

val sum : snapshot list -> snapshot

val to_assoc : snapshot -> (string * int) list
(** [(label, count)] pairs in reporting order. *)

val to_json : snapshot -> string
(** One flat JSON object of [label : count] fields. *)
