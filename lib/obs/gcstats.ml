(** GC pressure as observability data: deltas of [Gc.quick_stat] against
    a rebasable baseline, so a run's allocation footprint (minor words,
    promotions, major words, collection counts) can sit next to the
    operation counters in the exporters.

    [Gc.quick_stat] is cheap (no heap traversal) but in a multi-domain
    program its word counters are an approximation: each domain buffers
    its contribution and flushes at collection boundaries, so deltas
    taken mid-run can lag.  The harness takes them at quiescence (after
    joining the worker domains), where they are exact.

    The baseline is plain mutable state like {!Metrics}' shards: rebase
    and read from the coordinating domain only. *)

type delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

let baseline : Gc.stat ref = ref (Gc.quick_stat ())

let rebase () = baseline := Gc.quick_stat ()

let delta () =
  let now = Gc.quick_stat () and b = !baseline in
  {
    minor_words = now.minor_words -. b.minor_words;
    promoted_words = now.promoted_words -. b.promoted_words;
    major_words = now.major_words -. b.major_words;
    minor_collections = now.minor_collections - b.minor_collections;
    major_collections = now.major_collections - b.major_collections;
    compactions = now.compactions - b.compactions;
  }

let pp ppf d =
  Format.fprintf ppf
    "minor_words=%.0f promoted_words=%.0f major_words=%.0f minor_gcs=%d \
     major_gcs=%d compactions=%d"
    d.minor_words d.promoted_words d.major_words d.minor_collections
    d.major_collections d.compactions
