(** Interval reporter: periodic snapshot deltas (throughput, restart
    rate, contention rate, per-shard load skew) during long runs.
    Called from the harness main thread; mid-run snapshots are
    approximate, which is fine for a progress line. *)

type t

val start : unit -> t
(** Capture the baseline snapshot. *)

val tick : t -> string
(** Difference against the previous tick and format one progress line,
    e.g. ["[interval 3] +1.00s  1.23M ops/s  restarts/op 0.0120
    contention/op 0.0340  shard-skew 1.31"]. *)
