(** Interval reporter: periodic snapshot deltas during long runs.

    The harness's main thread (which otherwise just sleeps through a
    timed phase) calls {!tick} every reporting interval; each tick
    differences the metrics snapshot and the per-shard traffic against
    the previous tick and formats one line — throughput, restart rate,
    contention rate, per-shard load skew — so a long bench or stress run
    shows progress and emerging skew while it happens rather than only in
    the post-run report.

    Snapshots taken mid-run are approximate (workers are still
    incrementing their shards), which is fine for a progress line and is
    why the final report still comes from the quiescent snapshot. *)

type t = {
  mutable last_ns : int;
  mutable last_snap : Metrics.snapshot;
  mutable last_shard_ops : int array;
  mutable ticks : int;
}

let start () =
  {
    last_ns = Contention.now_ns ();
    last_snap = Metrics.snapshot ();
    last_shard_ops = Contention.shard_ops_totals ();
    ticks = 0;
  }

let rate_per_op ops n = if ops = 0 then 0. else float_of_int n /. float_of_int ops

let throughput_pretty ops dt_s =
  let r = float_of_int ops /. dt_s in
  if r >= 1e6 then Printf.sprintf "%.2fM ops/s" (r /. 1e6)
  else if r >= 1e3 then Printf.sprintf "%.1fk ops/s" (r /. 1e3)
  else Printf.sprintf "%.0f ops/s" r

let tick t =
  let now = Contention.now_ns () in
  let snap = Metrics.snapshot () in
  let shard_ops = Contention.shard_ops_totals () in
  let d = Metrics.diff snap t.last_snap in
  let dt_s = float_of_int (now - t.last_ns) /. 1e9 in
  let dt_s = Float.max dt_s 1e-9 in
  let ops = Metrics.get d Ops_completed in
  let restarts = Metrics.get d Restarts in
  let contended =
    Metrics.get d Lock_contended
    + Metrics.get d Lock_next_at_failures
    + Metrics.get d Lock_next_at_value_failures
    + Metrics.get d Validation_failures
  in
  (* Shard skew over this interval: max/mean of per-shard traffic deltas
     across shards that saw any. *)
  let skew =
    let len = Array.length shard_ops in
    let total = ref 0 and mx = ref 0 and active = ref 0 in
    for i = 0 to len - 1 do
      let prev = if i < Array.length t.last_shard_ops then t.last_shard_ops.(i) else 0 in
      let dv = shard_ops.(i) - prev in
      if dv > 0 then begin
        total := !total + dv;
        active := !active + 1;
        if dv > !mx then mx := dv
      end
    done;
    if !total = 0 then "-"
    else
      Printf.sprintf "%.2f"
        (float_of_int !mx /. (float_of_int !total /. float_of_int !active))
  in
  t.last_ns <- now;
  t.last_snap <- snap;
  t.last_shard_ops <- shard_ops;
  t.ticks <- t.ticks + 1;
  Printf.sprintf
    "[interval %d] +%.2fs  %s  restarts/op %.4f  contention/op %.4f  shard-skew %s"
    t.ticks dt_s
    (throughput_pretty ops dt_s)
    (rate_per_op ops restarts)
    (rate_per_op ops contended)
    skew
