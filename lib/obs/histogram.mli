(** Log-bucketed latency histograms (HDR-histogram style).

    O(1), allocation-free recording of non-negative integers (the harness
    records nanoseconds) into [2^3 = 8] sub-buckets per power of two, so
    every reported quantile is within 12.5% of the true value at any
    scale.  Each worker records into a private histogram; merge after the
    workers are joined. *)

type t

val create : unit -> t

val clear : t -> unit
(** Reset to the empty state in place, keeping the bucket storage. *)

val record : t -> int -> unit
(** [record t v] adds one sample.  Negative values clamp to 0. *)

val count : t -> int

val sum : t -> float
(** Sum of all recorded samples. *)

val min_value : t -> float
(** Exact recorded minimum (not bucketed); [nan] on an empty histogram. *)

val max_value : t -> float
(** Exact recorded maximum (not bucketed); [nan] on an empty histogram. *)

val merge : into:t -> t -> unit
(** Add every bucket of the second histogram into [into]. *)

val merged : t list -> t
(** Merge a list of histograms into a fresh one. *)

val mean : t -> float
(** [nan] on an empty histogram. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]], closest-rank over buckets;
    p0/p100 — and rank 1 / rank n, so any percentile sparse enough to
    resolve to them, e.g. p99.9 of ten samples — return the exact
    recorded extremes, and every answer is clamped to the recorded
    [min, max].  [nan] on an empty histogram; raises [Invalid_argument]
    on an out-of-range [p]. *)

val cumulative_buckets : t -> (float * int) list
(** Cumulative [(le, samples <= le)] pairs at octave boundaries
    (8, 16, 32, ...) for OpenMetrics exposition.  Counts are
    nondecreasing; the final pair covers every recorded sample; an empty
    histogram yields a single [(8., 0)] pair. *)

type summary = {
  n : int;
  mean : float;
  min : float;
  p50 : float;
  p90 : float;
  p99 : float;
  p999 : float;
  p9999 : float;
  max : float;
}

val summarize : t -> summary option
(** [None] on an empty histogram. *)

val summary_to_json : summary -> string
(** Flat JSON object with [n], [mean_ns], [min_ns], [p50_ns], [p90_ns],
    [p99_ns], [p999_ns], [p9999_ns], [max_ns]. *)
