(** Log-bucketed latency histograms (HDR-histogram style).

    O(1), allocation-free recording of non-negative integers (the harness
    records nanoseconds) into [2^3 = 8] sub-buckets per power of two, so
    every reported quantile is within 12.5% of the true value at any
    scale.  Each worker records into a private histogram; merge after the
    workers are joined. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** [record t v] adds one sample.  Negative values clamp to 0. *)

val count : t -> int

val merge : into:t -> t -> unit
(** Add every bucket of the second histogram into [into]. *)

val mean : t -> float
(** [nan] on an empty histogram. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]], closest-rank over buckets;
    p0/p100 return the exact recorded extremes and every answer is
    clamped to the recorded [min, max].  [nan] on an empty histogram;
    raises [Invalid_argument] on an out-of-range [p]. *)

type summary = {
  n : int;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
}

val summarize : t -> summary option
(** [None] on an empty histogram. *)

val summary_to_json : summary -> string
(** Flat JSON object with [n], [mean_ns], [p50_ns], [p90_ns], [p99_ns],
    [max_ns]. *)
