(** Exporters: Chrome trace-event (catapult) JSON and OpenMetrics text,
    plus a parser/validator for the latter so exporter output can be
    checked in-tree.  Cold-path code only. *)

(** {2 Chrome trace-event JSON} *)

val chrome_trace_of_entries : Recorder.entry list -> string
(** One complete event ([ph:"X"]) per flight-recorder entry, microsecond
    timestamps relative to the earliest entry.  Loads in [about:tracing]
    and Perfetto. *)

val chrome_trace_of_trace : Trace.t -> string
(** An instrumented-schedule event ring as a timeline; the step index is
    the timestamp. *)

(** {2 OpenMetrics text exposition} *)

type labels = (string * string) list

type family =
  | Counter of { name : string; help : string; samples : (labels * float) list }
  | Gauge of { name : string; help : string; samples : (labels * float) list }
  | Histogram_family of {
      name : string;
      help : string;
      series : (labels * Histogram.t) list;
    }

val render : family list -> string
(** OpenMetrics text: [# HELP]/[# TYPE] per family, [_total] suffix on
    counter samples, cumulative [_bucket]/[_sum]/[_count] series per
    histogram, [# EOF] terminator. *)

val counter_families : Metrics.snapshot -> family list
(** One counter family per {!Metrics.counter} ([vbl_<label>]). *)

val contention_families : Contention.site_stats list -> family list
(** [vbl_lock_wait_ns] / [vbl_lock_hold_ns] histogram families with a
    [site] label; sites without samples are omitted. *)

val shard_families : int array -> family list
(** [vbl_shard_ops] counter with a [shard] label; empty when no sharded
    traffic was recorded. *)

val gc_families : Gcstats.delta -> family list
(** [vbl_gc_words] / [vbl_gc_collections] gauge families with a [kind]
    label. *)

val openmetrics_of_run : unit -> string
(** The full exposition for the current process state: every counter,
    the GC footprint, the contention histograms, and the per-shard
    traffic. *)

(** {2 Parsing and validation} *)

type sample = { name : string; labels : labels; value : float }

val parse : string -> (sample list, string) result
(** Parse OpenMetrics text into samples.  Requires the [# EOF]
    terminator; tolerates and ignores timestamps. *)

val validate : string -> (int, string) result
(** Parse, then structurally check: counters finite and non-negative,
    histogram bucket series cumulative and ending at [le="+Inf"], and
    [_count] agreeing with the [+Inf] bucket.  [Ok n] gives the sample
    count. *)
