(** Deltas of [Gc.quick_stat] against a rebasable baseline, for exporting
    a run's allocation footprint next to its operation counters.  Rebase
    and read from the coordinating domain only; see gcstats.ml for the
    multi-domain approximation caveat. *)

type delta = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
  compactions : int;
}

val rebase : unit -> unit
(** Reset the baseline to the current [Gc.quick_stat].  The harness calls
    this where it resets {!Metrics}, so the delta covers exactly the
    measured trials. *)

val delta : unit -> delta
(** Counters accumulated since the last {!rebase} (or module load). *)

val pp : Format.formatter -> delta -> unit
