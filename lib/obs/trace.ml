(** Bounded event-trace sink: a ring buffer of schedule-step events.

    The schedule conductor ([lib/sched]) emits one event per executed step
    when a tracer is installed (see {!Probe.tracer}), giving a replayable
    dump of the interleaving in the paper's own step vocabulary
    ([X5.next], [h.lock], ...).  The ring is bounded so tracing a long run
    keeps the most recent [capacity] events instead of growing without
    limit; [dropped] reports how many fell off the front. *)

type kind =
  | Read
  | Write
  | Cas
  | Touch
  | New_node
  | Lock_try
  | Lock_release
  | Lock_blocked
  | Note

let kind_to_string = function
  | Read -> "R"
  | Write -> "W"
  | Cas -> "CAS"
  | Touch -> "touch"
  | New_node -> "new"
  | Lock_try -> "trylock"
  | Lock_release -> "unlock"
  | Lock_blocked -> "blocked"
  | Note -> "note"

type event = { thread : int; step : string; kind : kind }

let dummy = { thread = 0; step = ""; kind = Note }

type t = { buf : event array; capacity : int; mutable emitted : int }

let create ?(capacity = 4096) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  { buf = Array.make capacity dummy; capacity; emitted = 0 }

(* Overwriting an unread event is evidence loss; make it visible in the
   metrics ({!Metrics.Trace_dropped}) rather than only discoverable by
   comparing [emitted] against [capacity] after the fact. *)
let emit t ev =
  if t.emitted >= t.capacity then Metrics.incr Metrics.Trace_dropped;
  t.buf.(t.emitted mod t.capacity) <- ev;
  t.emitted <- t.emitted + 1

let emitted t = t.emitted

let dropped t = max 0 (t.emitted - t.capacity)

(* Retained events, oldest first. *)
let events t =
  let kept = min t.emitted t.capacity in
  let first = t.emitted - kept in
  List.init kept (fun i -> t.buf.((first + i) mod t.capacity))

let event_to_string ev =
  Printf.sprintf "t%d  %-8s %s" ev.thread (kind_to_string ev.kind) ev.step

let to_lines t = List.map event_to_string (events t)
