(** Contention profiler: lock wait/hold-time attribution by acquisition
    site, plus per-shard operation accounting for hot-shard ranking.

    The paper's optimality argument says {e which} schedules are rejected;
    this module says {e where the time goes} when they are.  Each timed
    site (the two validated acquisitions of the value-aware try-lock, the
    blocking spin of the underlying lock, and the sharded frontend's
    striped size counters) records monotonic-clock deltas into per-domain
    histograms, following the same single-writer discipline as
    {!Metrics}: a domain touches only its own state on the hot path, and
    states are merged at quiescence.

    Cost model: every probe is guarded by [!profiling], so a disabled
    probe costs one load-and-branch; an enabled one costs two clock reads
    and an O(1) histogram record.  [profiling] is off by default and the
    harness only enables it around explicitly profiled runs. *)

type site =
  | Lock_next_at  (** validated identity acquisition in [insert]/[remove] *)
  | Lock_next_at_value  (** validated value acquisition in [remove] *)
  | Blocking_acquire  (** contended spin in [Try_lock.lock] *)
  | Shard_stripe  (** CAS loop on a striped shard size counter *)

let num_sites = 4

let site_index = function
  | Lock_next_at -> 0
  | Lock_next_at_value -> 1
  | Blocking_acquire -> 2
  | Shard_stripe -> 3

let site_label = function
  | Lock_next_at -> "lock_next_at"
  | Lock_next_at_value -> "lock_next_at_value"
  | Blocking_acquire -> "blocking_acquire"
  | Shard_stripe -> "shard_stripe"

let all_sites = [ Lock_next_at; Lock_next_at_value; Blocking_acquire; Shard_stripe ]

let profiling = ref false
let enable () = profiling := true
let disable () = profiling := false

let now_ns () = Int64.to_int (Monotonic_clock.now ())

(* Per-domain state, registered on first use exactly like the Metrics
   shards: the hot path is unsynchronized; merging happens under the
   registry mutex at quiescence. *)
type state = {
  wait : Histogram.t array;  (** indexed by [site_index] *)
  hold : Histogram.t array;
  mutable shard_ops : int array;  (** ops routed to shard [i], grown on demand *)
}

let states : state list ref = ref []
let states_mu = Mutex.create ()

let state_key =
  Domain.DLS.new_key (fun () ->
      let s =
        {
          wait = Array.init num_sites (fun _ -> Histogram.create ());
          hold = Array.init num_sites (fun _ -> Histogram.create ());
          shard_ops = Array.make 16 0;
        }
      in
      Mutex.protect states_mu (fun () -> states := s :: !states);
      s)

let record_wait site ns =
  let s = Domain.DLS.get state_key in
  Histogram.record s.wait.(site_index site) ns

let record_hold site ns =
  let s = Domain.DLS.get state_key in
  Histogram.record s.hold.(site_index site) ns

(* Count one operation routed to shard [i].  Growth doubles, so the steady
   state is a bounds check and one store. *)
let shard_op i =
  let s = Domain.DLS.get state_key in
  let a = s.shard_ops in
  let len = Array.length a in
  if i < len then a.(i) <- a.(i) + 1
  else begin
    let n = ref (max 16 len) in
    while !n <= i do
      n := !n * 2
    done;
    let b = Array.make !n 0 in
    Array.blit a 0 b 0 len;
    b.(i) <- 1;
    s.shard_ops <- b
  end

let reset () =
  Mutex.protect states_mu (fun () ->
      List.iter
        (fun s ->
          Array.iter Histogram.clear s.wait;
          Array.iter Histogram.clear s.hold;
          Array.fill s.shard_ops 0 (Array.length s.shard_ops) 0)
        !states)

(* Merged views, exact at quiescence only (same caveat as
   {!Metrics.snapshot}). *)

type site_stats = { site : site; wait : Histogram.t; hold : Histogram.t }

let report () =
  let snap = Mutex.protect states_mu (fun () -> !states) in
  List.map
    (fun site ->
      let i = site_index site in
      {
        site;
        wait = Histogram.merged (List.map (fun (s : state) -> s.wait.(i)) snap);
        hold = Histogram.merged (List.map (fun (s : state) -> s.hold.(i)) snap);
      })
    all_sites

let shard_ops_totals () =
  let snap = Mutex.protect states_mu (fun () -> !states) in
  let len = List.fold_left (fun m s -> max m (Array.length s.shard_ops)) 0 snap in
  let out = Array.make (max len 1) 0 in
  List.iter
    (fun s -> Array.iteri (fun i v -> out.(i) <- out.(i) + v) s.shard_ops)
    snap;
  out

(* Highest-traffic shards, [(shard, ops)] sorted by descending ops, zeros
   omitted. *)
let hot_shards ?(top = 8) () =
  let totals = shard_ops_totals () in
  let ranked = ref [] in
  Array.iteri (fun i v -> if v > 0 then ranked := (i, v) :: !ranked) totals;
  let sorted = List.sort (fun (_, a) (_, b) -> compare b a) !ranked in
  List.filteri (fun i _ -> i < top) sorted

(* Rendering ------------------------------------------------------------ *)

let ns_pretty v =
  if Float.is_nan v then "-"
  else if v >= 1e6 then Printf.sprintf "%.2fms" (v /. 1e6)
  else if v >= 1e3 then Printf.sprintf "%.2fus" (v /. 1e3)
  else Printf.sprintf "%.0fns" v

(* Wait-time breakdown by acquisition site.  Sites that never fired are
   dropped from the table but the header is always printed, so a profiled
   run with no contention still shows where the probes are. *)
let render_site_table () =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "%-20s %10s %10s %10s %10s %10s %10s %10s\n" "site" "acquires"
       "wait-mean" "wait-p50" "wait-p99" "wait-p999" "wait-max" "hold-p99");
  List.iter
    (fun { site; wait; hold } ->
      if Histogram.count wait > 0 || Histogram.count hold > 0 then
        Buffer.add_string b
          (Printf.sprintf "%-20s %10d %10s %10s %10s %10s %10s %10s\n"
             (site_label site) (Histogram.count wait)
             (ns_pretty (Histogram.mean wait))
             (ns_pretty (Histogram.percentile wait 50.))
             (ns_pretty (Histogram.percentile wait 99.))
             (ns_pretty (Histogram.percentile wait 99.9))
             (ns_pretty (Histogram.max_value wait))
             (ns_pretty (Histogram.percentile hold 99.))))
    (report ());
  Buffer.contents b

(* Hot-shard ranking plus load-skew summary (max/mean over shards that saw
   any traffic).  Empty string when nothing was routed through a sharded
   frontend, so unsharded profiles do not print a misleading header. *)
let render_hot_shards ?(top = 8) () =
  let totals = shard_ops_totals () in
  let total = Array.fold_left ( + ) 0 totals in
  if total = 0 then ""
  else begin
    let active = Array.fold_left (fun n v -> if v > 0 then n + 1 else n) 0 totals in
    let mean = float_of_int total /. float_of_int (max active 1) in
    let b = Buffer.create 256 in
    Buffer.add_string b
      (Printf.sprintf "hot shards (%d ops over %d active shards, skew max/mean %.2f):\n"
         total active
         (float_of_int (Array.fold_left max 0 totals) /. Float.max mean 1e-9));
    List.iter
      (fun (shard, ops) ->
        Buffer.add_string b
          (Printf.sprintf "  %-8s %10d  %5.1f%%\n"
             (Metrics.shard_label shard)
             ops
             (100. *. float_of_int ops /. float_of_int total)))
      (hot_shards ~top ());
    Buffer.contents b
  end
