(** Bounded event-trace ring buffer for schedule replay dumps.

    Installed through {!Probe.tracer}; the schedule conductor emits one
    event per executed step.  Keeps the most recent [capacity] events. *)

type kind =
  | Read
  | Write
  | Cas
  | Touch
  | New_node
  | Lock_try
  | Lock_release
  | Lock_blocked  (** a thread parked on a held lock *)
  | Note  (** free-form annotation *)

val kind_to_string : kind -> string

type event = { thread : int; step : string; kind : kind }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 4096 events. *)

val emit : t -> event -> unit
(** Record one event.  Overwriting a not-yet-read event also bumps
    {!Metrics.Trace_dropped}, so truncated evidence is visible. *)

val emitted : t -> int
(** Total events emitted, including dropped ones. *)

val dropped : t -> int
(** Events that fell off the front of the ring. *)

val events : t -> event list
(** Retained events, oldest first. *)

val event_to_string : event -> string
(** ["t0  W        X5.next"]-style line. *)

val to_lines : t -> string list
