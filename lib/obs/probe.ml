(** The instrumentation entry point threaded through the synchronization
    layer, the list algorithms and the schedule conductor.

    A probe is a record of closures ({!t}); [noop] is installed by default
    and every hook ({!count}, {!emit}) is guarded by a single flag test, so
    the disabled hot path costs one predictable branch and no allocation —
    the acceptance bar for leaving probes compiled into the production
    lists.  Installation is not synchronized: install/uninstall at
    quiescence (before spawning workers / after joining them), which is
    what the harness does. *)

type t = {
  count : Metrics.counter -> unit;
  add : Metrics.counter -> int -> unit;
  trace : (Trace.event -> unit) option;
}

let noop = { count = (fun _ -> ()); add = (fun _ _ -> ()); trace = None }

let metrics () = { count = Metrics.incr; add = Metrics.add; trace = None }

let tracer tr = { count = (fun _ -> ()); add = (fun _ _ -> ()); trace = Some (Trace.emit tr) }

let with_trace tr p = { p with trace = Some (Trace.emit tr) }

let current = ref noop
let counting = ref false
let tracing = ref false

let install p =
  current := p;
  counting := true;
  tracing := (match p.trace with Some _ -> true | None -> false)

let uninstall () =
  current := noop;
  counting := false;
  tracing := false

let installed () = !counting

(* Hot-path hooks: one branch when disabled.  Per-hop traversal loops
   should guard on [enabled] at the call site (a ref load and a branch,
   no call) and only then pay the dispatch below. *)

let enabled = counting

let[@inline] count c = if !counting then !current.count c

let[@inline] add c n = if !counting then !current.add c n

let[@inline] trace_enabled () = !tracing

let emit ev = match !current.trace with Some f -> f ev | None -> ()
