(** Contention profiler: lock wait/hold-time attribution by acquisition
    site, plus per-shard operation accounting for hot-shard ranking.

    Disabled (the default), every probe costs one load-and-branch on
    [!profiling] at the call site.  Enabled, a timed site costs two
    monotonic-clock reads and an O(1) per-domain histogram record — the
    same single-writer discipline as {!Metrics}, so profiling perturbs
    but never synchronizes the measured schedules.  Merged views
    ({!report}, {!shard_ops_totals}) are exact at quiescence only. *)

type site =
  | Lock_next_at  (** validated identity acquisition in [insert]/[remove] *)
  | Lock_next_at_value  (** validated value acquisition in [remove] *)
  | Blocking_acquire  (** contended spin in [Try_lock.lock] *)
  | Shard_stripe  (** CAS loop on a striped shard size counter *)

val all_sites : site list
val site_label : site -> string

val profiling : bool ref
(** Guard every probe with [if !profiling then ...] at the call site, so a
    disabled probe compiles to a single branch. *)

val enable : unit -> unit
val disable : unit -> unit

val now_ns : unit -> int
(** Monotonic clock in nanoseconds. *)

val record_wait : site -> int -> unit
(** Time spent waiting to acquire (call with a [now_ns] delta). *)

val record_hold : site -> int -> unit
(** Time the lock was held after a successful validated acquisition. *)

val shard_op : int -> unit
(** Count one operation routed to the given shard index. *)

val reset : unit -> unit
(** Clear every domain's recorded state.  Call at quiescence. *)

type site_stats = { site : site; wait : Histogram.t; hold : Histogram.t }

val report : unit -> site_stats list
(** Merged wait/hold histograms per site, in [all_sites] order. *)

val shard_ops_totals : unit -> int array
(** Per-shard operation counts merged over all domains. *)

val hot_shards : ?top:int -> unit -> (int * int) list
(** [(shard, ops)] ranked by descending traffic, zeros omitted;
    default [top] 8. *)

val render_site_table : unit -> string
(** Wait-time breakdown table by acquisition site. *)

val render_hot_shards : ?top:int -> unit -> string
(** Hot-shard ranking with a load-skew summary; [""] when no sharded
    traffic was recorded. *)
