(** Flight recorder: per-domain ring buffers of recent operations.

    Every stress failure should ship a timeline, not just a seed.  Each
    domain records its completed operations (kind, key, shard, outcome,
    restart count, start/stop timestamps) into a private flat [int array]
    ring — O(1), unsynchronized, allocation-free — and a dump merges the
    rings into one timeline sorted by start time.  Dumps are triggered on
    differential-oracle divergence, deadlock timeout, or explicit request.

    Overwriting an entry that was never dumped bumps
    {!Metrics.Recorder_dropped}, so truncated evidence is visible.

    Like {!Metrics} and {!Contention}, merged views are exact at
    quiescence only; the ring registry retains rings of finished domains
    so a post-join dump still sees every worker's tail. *)

type kind = Insert | Remove | Contains

let kind_index = function Insert -> 0 | Remove -> 1 | Contains -> 2
let kind_label = function Insert -> "insert" | Remove -> "remove" | Contains -> "contains"
let kind_of_index = function 0 -> Insert | 1 -> Remove | _ -> Contains

type entry = {
  thread : int;  (** logical worker id supplied by the recorder *)
  kind : kind;
  key : int;
  shard : int;  (** -1 when the set is not sharded *)
  ok : bool;
  restarts : int;
  t0_ns : int;
  t1_ns : int;
}

(* Ring layout: [fields] ints per entry, flat array, no per-entry boxes. *)
let fields = 8

type ring = { buf : int array; cap : int; mutable n : int }

let enabled = ref false
let set_enabled b = enabled := b

let default_capacity = ref 4096
let set_capacity c =
  if c < 1 then invalid_arg "Recorder.set_capacity: capacity must be >= 1";
  default_capacity := c

let rings : ring list ref = ref []
let rings_mu = Mutex.create ()

let ring_key =
  Domain.DLS.new_key (fun () ->
      let cap = !default_capacity in
      let r = { buf = Array.make (cap * fields) 0; cap; n = 0 } in
      Mutex.protect rings_mu (fun () -> rings := r :: !rings);
      r)

let record ~thread ~kind ~key ~shard ~ok ~restarts ~t0_ns ~t1_ns =
  let r = Domain.DLS.get ring_key in
  if r.n >= r.cap then Metrics.incr Metrics.Recorder_dropped;
  let off = r.n mod r.cap * fields in
  let b = r.buf in
  b.(off) <- thread;
  b.(off + 1) <- kind_index kind;
  b.(off + 2) <- key;
  b.(off + 3) <- shard;
  b.(off + 4) <- (if ok then 1 else 0);
  b.(off + 5) <- restarts;
  b.(off + 6) <- t0_ns;
  b.(off + 7) <- t1_ns;
  r.n <- r.n + 1

let emitted () =
  let snap = Mutex.protect rings_mu (fun () -> !rings) in
  List.fold_left (fun acc r -> acc + r.n) 0 snap

let dropped () =
  let snap = Mutex.protect rings_mu (fun () -> !rings) in
  List.fold_left (fun acc r -> acc + max 0 (r.n - r.cap)) 0 snap

let reset () =
  Mutex.protect rings_mu (fun () -> List.iter (fun r -> r.n <- 0) !rings)

let ring_entries r =
  let kept = min r.n r.cap in
  let first = r.n - kept in
  List.init kept (fun i ->
      let off = (first + i) mod r.cap * fields in
      let b = r.buf in
      {
        thread = b.(off);
        kind = kind_of_index b.(off + 1);
        key = b.(off + 2);
        shard = b.(off + 3);
        ok = b.(off + 4) = 1;
        restarts = b.(off + 5);
        t0_ns = b.(off + 6);
        t1_ns = b.(off + 7);
      })

(* Retained entries over every ring, merged and sorted by start time. *)
let entries () =
  let snap = Mutex.protect rings_mu (fun () -> !rings) in
  List.concat_map ring_entries snap
  |> List.stable_sort (fun a b -> compare a.t0_ns b.t0_ns)

let entry_to_string ~origin e =
  Printf.sprintf "+%10.3fus t%-3d %-8s key=%-8d %s ok=%-5b restarts=%-3d dur=%.3fus"
    (float_of_int (e.t0_ns - origin) /. 1e3)
    e.thread (kind_label e.kind) e.key
    (if e.shard >= 0 then Printf.sprintf "shard=%-4d" e.shard else "shard=-   ")
    e.ok e.restarts
    (float_of_int (e.t1_ns - e.t0_ns) /. 1e3)

(* Human-readable timeline of the most recent [last] entries (default 40).
   Timestamps are printed relative to the earliest retained entry. *)
let dump ?(last = 40) () =
  let all = entries () in
  let total = emitted () and lost = dropped () in
  match all with
  | [] -> "flight recorder: empty (no operations recorded)\n"
  | first :: _ ->
      let origin = first.t0_ns in
      let n = List.length all in
      let tail =
        if n <= last then all
        else List.filteri (fun i _ -> i >= n - last) all
      in
      let b = Buffer.create 4096 in
      Buffer.add_string b
        (Printf.sprintf "flight recorder (last %d of %d ops, %d overwritten):\n"
           (List.length tail) total lost);
      List.iter
        (fun e ->
          Buffer.add_string b "  ";
          Buffer.add_string b (entry_to_string ~origin e);
          Buffer.add_char b '\n')
        tail;
      Buffer.contents b
