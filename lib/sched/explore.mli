(** Bounded exhaustive exploration of interleavings (dscheck-style
    re-execution) with dynamic partial-order reduction, checking every
    complete execution for linearizability and structural invariants — the
    executable counterpart of the paper's Theorem 1 on bounded
    configurations.

    {!run} is the DPOR explorer: it detects races (dependent, unordered
    step pairs) in each execution via vector clocks, seeds
    Flanagan–Godefroid backtrack points just before them, and prunes
    commutations with sleep sets.  With [preemption_bound = None] it is
    sound and complete per Mazurkiewicz trace; with a bound it explores
    the same executions the bounded naive DFS would, minus redundant
    commutations.  {!run_naive} keeps the brute-force DFS (every enabled
    thread branches at every step) for comparison.

    Both explorers accept an optional {!step_monitor}: a per-execution
    observer fed every executed access (with its shadow state), able to
    veto an otherwise-passing execution at quiescence — this is how the
    race detector and lock-discipline linter of [vbl.analysis] hook in. *)

type scenario = { make : unit -> instance }
(** Called once per explored execution; must return fully independent
    state. *)

and instance = {
  bodies : (unit -> unit) list;
  history : unit -> Vbl_spec.History.t;  (** read after all threads finish *)
  invariants : unit -> (unit, string) result;
}

type config = {
  max_executions : int;
  preemption_bound : int option;  (** [None] = full exploration *)
  max_steps : int;  (** per-execution cap (guards against livelock) *)
}

val default_config : config

type failure =
  | Not_linearizable of { schedule : int list; history : string }
  | Invariant_broken of { schedule : int list; msg : string }
  | Deadlock of { schedule : int list }
  | Step_limit of { schedule : int list }
  | Crashed of { schedule : int list; exn : string }
  | Analysis_violation of { schedule : int list; kind : string; msg : string }
      (** Reported by the step monitor at the end of an execution (race,
          lock-discipline breach, ...). *)

type report = {
  executions : int;  (** completed executions checked *)
  sleep_blocked : int;  (** executions pruned by the sleep set (DPOR only) *)
  races : int;  (** dependent unordered pairs that seeded backtracks (DPOR only) *)
  truncated : bool;  (** the execution cap stopped exploration early *)
  failure : failure option;  (** first failure found *)
}

type event = {
  ev_thread : int;
  ev_access : Vbl_memops.Instr_mem.access;
  ev_effective : bool;  (** CAS / lock-attempt success; [true] for other kinds *)
  ev_completed : bool;  (** the thread finished right after this step *)
}

type step_monitor = {
  on_step : event -> unit;
  at_end : unit -> (string * string) option;
      (** called at quiescence of a complete execution; [Some (kind, msg)]
          becomes an {!Analysis_violation} *)
}

val pp_failure : Format.formatter -> failure -> unit

val failure_schedule : failure -> int list
(** The thread-choice sequence reproducing the failure. *)

val run : ?config:config -> ?monitor:(unit -> step_monitor) -> scenario -> report
(** DPOR + sleep-set exploration.  [monitor] is called once per execution
    to create a fresh observer. *)

val run_naive : ?config:config -> ?monitor:(unit -> step_monitor) -> scenario -> report
(** The pre-DPOR brute-force DFS; identical verdicts, no reduction
    ([sleep_blocked] and [races] are always [0]). *)
