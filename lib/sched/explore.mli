(** Systematic concurrency testing of interleavings (dscheck-style
    re-execution), checking every complete execution for linearizability
    and structural invariants — the executable counterpart of the paper's
    Theorem 1 on bounded configurations.

    Three exploration {!strategy}s share one entry point ({!run}) and one
    verdict pipeline:

    - [Dpor bound] — persistent-set DPOR with sleep sets
      (Flanagan–Godefroid): races (dependent, unordered step pairs) are
      detected via vector clocks and seed backtrack points; commutations
      are pruned by sleep sets.  With the {!none} bound it is sound and
      complete per Mazurkiewicz trace.
    - [Dfs bound] — the brute-force DFS (every enabled thread branches at
      every step), kept for parity and reduction measurements.
    - [Random {seed; iters}] — weighted-random swarm scheduling for
      schedule spaces too large to enumerate: each run draws its own
      weights, preemption probability, and fairness window from the
      seeded stream.  Fair in the dejafu sense (a monopolising thread is
      forcibly descheduled past the fairness window), so spin-wait loops
      terminate.

    Schedule bounding is pluggable ({!BOUND}, after dejafu's
    [sctPreBound]/[sctDelayBound]): {!preempt} charges preemptions,
    {!delay} charges deviations from the deterministic baseline
    scheduler, {!none} admits everything.  Bounds apply to both
    systematic strategies; the random strategy ignores them.

    All strategies accept an optional {!step_monitor}: a per-execution
    observer fed every executed access (with its shadow state), able to
    veto an otherwise-passing execution at quiescence — this is how the
    race detector and lock-discipline linter of [vbl.analysis] hook in. *)

type scenario = { make : unit -> instance }
(** Called once per explored execution; must return fully independent
    state. *)

and instance = {
  bodies : (unit -> unit) list;
  history : unit -> Vbl_spec.History.t;  (** read after all threads finish *)
  invariants : unit -> (unit, string) result;
}

type config = {
  max_executions : int;
  preemption_bound : int option;
      (** legacy bound selector used when no [strategy] is passed:
          [Some n] = {!preempt}[ n], [None] = {!none} *)
  max_steps : int;  (** per-execution cap (guards against livelock) *)
}

val default_config : config

(** {2 Schedule bounds} *)

module type BOUND = sig
  val name : string

  val budget : int option
  (** Total admission cost one execution may spend; [None] = no cap. *)

  val cost : last:int -> enabled:int list -> choice:int -> int
  (** Admission cost of scheduling [choice] when [last] ran previously
      ([-1] at the initial state) and [enabled] are runnable. *)

  val priority : last:int -> enabled:int list -> choice:int -> int
  (** Priority among sibling backtrack points: lower explored first.  A
      constant priority preserves the underlying search order. *)
end

type bound = (module BOUND)

val preempt : int -> bound
(** At most [n] preemptions: switching away from a thread that could
    still run costs one unit. *)

val delay : int -> bound
(** At most [n] deviations from the deterministic baseline scheduler
    (keep running the previous thread while it can run, else the
    lowest-numbered enabled thread) — dejafu's delay bounding.  The
    schedule space grows with the step count but {e not} with the thread
    count, which is what scales to 3–4 domain scenarios. *)

val none : bound
(** No bound: full exhaustive exploration. *)

val bound_name : bound -> string

val bound_of_config : config -> bound
(** The bound [config.preemption_bound] historically encoded. *)

type random_config = { seed : int64; iters : int }

type strategy = Dpor of bound | Dfs of bound | Random of random_config

val strategy_name : strategy -> string

type failure =
  | Not_linearizable of { schedule : int list; history : string }
  | Invariant_broken of { schedule : int list; msg : string }
  | Deadlock of { schedule : int list }
  | Step_limit of { schedule : int list }
  | Crashed of { schedule : int list; exn : string }
  | Analysis_violation of { schedule : int list; kind : string; msg : string }
      (** Reported by the step monitor at the end of an execution (race,
          lock-discipline breach, ...). *)

type report = {
  executions : int;  (** executions run (to quiescence for Dpor/Dfs) *)
  sleep_blocked : int;  (** executions pruned by the sleep set (DPOR only) *)
  races : int;  (** dependent unordered pairs that seeded backtracks (DPOR only) *)
  bound_prunes : int;  (** choices rejected by the bound's budget (systematic only) *)
  distinct_schedules : int;
      (** distinct complete schedules observed; equals [executions] for the
          systematic strategies, and counts schedule-collisions out for
          [Random] *)
  truncated : bool;  (** the execution cap stopped exploration early *)
  failure : failure option;  (** first failure found *)
}

type event = {
  ev_thread : int;
  ev_access : Vbl_memops.Instr_mem.access;
  ev_effective : bool;  (** CAS / lock-attempt success; [true] for other kinds *)
  ev_completed : bool;  (** the thread finished right after this step *)
}

type step_monitor = {
  on_step : event -> unit;
  at_end : unit -> (string * string) option;
      (** called at quiescence of a complete execution; [Some (kind, msg)]
          becomes an {!Analysis_violation} *)
}

val pp_failure : Format.formatter -> failure -> unit

val failure_schedule : failure -> int list
(** The thread-choice sequence reproducing the failure. *)

val step_with_monitor : Exec.t -> step_monitor option -> int -> unit
(** Execute one scheduling choice and feed the step to the monitor — the
    one legal way to advance an execution an attached monitor observes.
    The schedule shrinker replays through this. *)

val verdict_at_quiescence : instance -> step_monitor option -> int list -> failure option
(** The verdict every strategy applies to a complete execution: monitor
    first, then linearizability of the history, then invariants.  [None]
    means the execution passes. *)

val run :
  ?config:config -> ?monitor:(unit -> step_monitor) -> ?strategy:strategy -> scenario -> report
(** Explore under [strategy] (default: [Dpor (bound_of_config config)],
    the historical behaviour).  [monitor] is called once per execution to
    create a fresh observer. *)

val run_naive : ?config:config -> ?monitor:(unit -> step_monitor) -> scenario -> report
(** [run ~strategy:(Dfs (bound_of_config config))]: the pre-DPOR
    brute-force DFS; identical verdicts, no reduction ([sleep_blocked]
    and [races] are always [0]). *)
