(** Bounded exhaustive exploration of interleavings (dscheck-style
    re-execution DFS), checking every complete execution for
    linearizability and structural invariants — the executable counterpart
    of the paper's Theorem 1 on bounded configurations.

    Optionally preemption-bounded: switching away from a thread that could
    continue costs one unit; most concurrency bugs need very few
    preemptions and the bound keeps schedule counts polynomial. *)

type scenario = { make : unit -> instance }
(** Called once per explored execution; must return fully independent
    state. *)

and instance = {
  bodies : (unit -> unit) list;
  history : unit -> Vbl_spec.History.t;  (** read after all threads finish *)
  invariants : unit -> (unit, string) result;
}

type config = {
  max_executions : int;
  preemption_bound : int option;  (** [None] = full exploration *)
  max_steps : int;  (** per-execution cap (guards against livelock) *)
}

val default_config : config

type failure =
  | Not_linearizable of { schedule : int list; history : string }
  | Invariant_broken of { schedule : int list; msg : string }
  | Deadlock of { schedule : int list }
  | Step_limit of { schedule : int list }
  | Crashed of { schedule : int list; exn : string }

type report = {
  executions : int;
  truncated : bool;  (** the execution cap stopped exploration early *)
  failure : failure option;  (** first failure found *)
}

val pp_failure : Format.formatter -> failure -> unit

val failure_schedule : failure -> int list
(** The thread-choice sequence reproducing the failure. *)

val run : ?config:config -> scenario -> report
