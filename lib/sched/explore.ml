(** Bounded exhaustive exploration of interleavings (dscheck-style).

    Executions are deterministic functions of the scheduling choice
    sequence, so the explorer needs no state snapshots: to branch it simply
    re-executes a fresh scenario instance along the choice prefix and
    diverges at the last decision.  Every complete execution's high-level
    history is checked for linearizability against the set specification
    and the structure is checked via the scenario's invariant hook — an
    executable, bounded version of the paper's Theorem 1.

    Exploration is optionally {e preemption-bounded}: switching away from a
    thread that could still run costs one unit of budget.  Most concurrency
    bugs need very few preemptions, and the bound keeps the schedule count
    polynomial instead of factorial. *)

type scenario = {
  make : unit -> instance;
      (** Fresh, fully independent instance: list, recorder, thread bodies.
          Called once per explored execution. *)
}

and instance = {
  bodies : (unit -> unit) list;
  history : unit -> Vbl_spec.History.t;  (** called after all threads finish *)
  invariants : unit -> (unit, string) result;  (** structural check at quiescence *)
}

type config = {
  max_executions : int;  (** hard cap on explored executions *)
  preemption_bound : int option;  (** [None] = full exhaustive exploration *)
  max_steps : int;  (** per-execution step cap (guards against livelock) *)
}

let default_config = { max_executions = 50_000; preemption_bound = Some 3; max_steps = 5_000 }

type failure =
  | Not_linearizable of { schedule : int list; history : string }
  | Invariant_broken of { schedule : int list; msg : string }
  | Deadlock of { schedule : int list }
  | Step_limit of { schedule : int list }
  | Crashed of { schedule : int list; exn : string }

type report = {
  executions : int;  (** completed executions checked *)
  truncated : bool;  (** true if the execution cap stopped exploration early *)
  failure : failure option;  (** first failure found, if any *)
}

let pp_failure ppf = function
  | Not_linearizable { history; _ } ->
      Format.fprintf ppf "non-linearizable history:@,%s" history
  | Invariant_broken { msg; _ } -> Format.fprintf ppf "invariant broken: %s" msg
  | Deadlock _ -> Format.fprintf ppf "deadlock"
  | Step_limit _ -> Format.fprintf ppf "step limit exceeded (livelock?)"
  | Crashed { exn; _ } -> Format.fprintf ppf "exception: %s" exn

let failure_schedule = function
  | Not_linearizable { schedule; _ }
  | Invariant_broken { schedule; _ }
  | Deadlock { schedule }
  | Step_limit { schedule }
  | Crashed { schedule; _ } -> schedule

(* A branch left to explore: re-run along [prefix], then choose [choice]. *)
type branch = { prefix : int list (* reversed *); choice : int; preemptions : int }

let run ?(config = default_config) scenario =
  let executions = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  let worklist = Stack.create () in
  (* Execute one run: follow [prefix] (reversed choice list), then continue
     with the default policy (keep running the last thread; at each decision
     point push the untried alternatives).  Returns unit; failures land in
     [failure]. *)
  let execute prefix0 preemptions0 =
    incr executions;
    let inst = scenario.make () in
    let exec = Exec.create inst.bodies in
    let schedule = ref [] in
    let prefix = List.rev prefix0 in
    let fail f = failure := Some (f (List.rev !schedule)) in
    let step_choice c =
      schedule := c :: !schedule;
      Exec.step exec c
    in
    try
      (* Replay the committed prefix. *)
      List.iter step_choice prefix;
      (* Extend: default policy runs the lowest-numbered enabled thread,
         preferring the previously running one (no preemption); alternatives
         are pushed for later exploration. *)
      let rec extend last preemptions steps =
        if steps > config.max_steps then fail (fun s -> Step_limit { schedule = s })
        else if Exec.finished exec then begin
          let h = inst.history () in
          if not (Vbl_spec.Linearizability.check h) then
            fail (fun s ->
                Not_linearizable { schedule = s; history = Vbl_spec.History.to_string h })
          else
            match inst.invariants () with
            | Ok () -> ()
            | Error msg -> fail (fun s -> Invariant_broken { schedule = s; msg })
        end
        else begin
          let enabled = Exec.runnable_threads exec in
          match enabled with
          | [] -> fail (fun s -> Deadlock { schedule = s })
          | _ ->
              let continue_last = List.mem last enabled in
              let chosen = if continue_last then last else List.hd enabled in
              (* Alternatives: switching to [c] preempts iff the previous
                 thread could have continued. *)
              List.iter
                (fun c ->
                  if c <> chosen then begin
                    let cost = if continue_last then 1 else 0 in
                    let p = preemptions + cost in
                    let within =
                      match config.preemption_bound with None -> true | Some b -> p <= b
                    in
                    if within then
                      Stack.push { prefix = !schedule; choice = c; preemptions = p } worklist
                  end)
                enabled;
              let preemptions' = preemptions in
              step_choice chosen;
              extend chosen preemptions' (steps + 1)
        end
      in
      let last = match prefix with [] -> -1 | _ -> List.hd (List.rev prefix) in
      extend last preemptions0 (List.length prefix)
    with
    | Exec.Stuck msg -> fail (fun s -> Crashed { schedule = s; exn = msg })
    | e -> fail (fun s -> Crashed { schedule = s; exn = Printexc.to_string e })
  in
  execute [] 0;
  let rec drain () =
    if !failure <> None then ()
    else if Stack.is_empty worklist then ()
    else if !executions >= config.max_executions then truncated := true
    else begin
      let b = Stack.pop worklist in
      execute (b.choice :: b.prefix) b.preemptions;
      drain ()
    end
  in
  drain ();
  { executions = !executions; truncated = !truncated; failure = !failure }
