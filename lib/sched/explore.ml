(** Systematic concurrency testing over the instrumented backend: bounded
    exhaustive exploration (DPOR or naive DFS) behind a pluggable schedule
    bound, plus a weighted-random swarm scheduler for schedule spaces too
    large to enumerate.

    Executions are deterministic functions of the scheduling choice
    sequence, so no strategy needs state snapshots: to branch (or to
    replay) it simply re-executes a fresh scenario instance along the
    choice prefix and diverges at the recorded decision.  Every complete
    execution's high-level history is checked for linearizability against
    the set specification and the structure is checked via the scenario's
    invariant hook — an executable, bounded version of the paper's
    Theorem 1.

    {b Schedule bounding.}  Following dejafu's [sctPreBound] /
    [sctDelayBound], bounding is a policy ({!BOUND}), not a special case:
    a bound assigns each scheduling choice an admission cost (given the
    previously running thread and the enabled set) and a priority used to
    order backtrack points; exploration never exceeds the cost budget.
    {!preempt} charges switching away from a runnable thread (the
    classic preemption bound), {!delay} charges every deviation from the
    deterministic baseline scheduler (run the previous thread while it
    can run, else the lowest-numbered enabled thread), and {!none} admits
    everything.  Delay bounding is the coarser knife: [delay:N] explores
    O(steps^N) schedules regardless of thread count, which is what makes
    3–4 domain reclamation scenarios tractable.

    {b DPOR.}  Two steps are {e dependent} when they touch the same
    location (cell or lock shadow identity) and at least one writes, or
    both are lock operations on the same lock; all other pairs commute, so
    executions differing only in the order of adjacent independent steps
    belong to the same Mazurkiewicz trace and need exploring only once.
    The explorer runs one execution to completion, detects the races it
    contains (pairs of dependent steps by different threads not ordered by
    the happens-before relation of the trace, computed with per-thread
    vector clocks and last-access tables), and schedules backtrack points
    just before each race — the Flanagan–Godefroid rule: the racing
    thread if it was enabled there, every enabled thread otherwise.  Sleep
    sets carry the set of already-explored choices into sibling subtrees
    and prune executions that would only permute independent steps;
    executions whose every enabled thread is asleep are abandoned unchecked
    ([sleep_blocked] counts them).  With the {!none} bound the reduction
    is sound and complete: at least one representative of every trace is
    explored, so a failure existing in any interleaving is found in some
    explored one.  Under a bound the search is a heuristic bounded search:
    backtrack points whose admission cost would exceed the budget are
    pruned ([bound_prunes]).

    {b Swarm SCT.}  {!Random} runs [iters] independent executions; each
    run draws its own {e swarm configuration} from the seeded stream —
    per-thread weights, a stay-with-the-running-thread probability, and a
    fairness window — so distinct runs probe very differently shaped
    schedules (swarm testing).  The scheduler is fair in the dejafu
    sense: a thread that monopolises the processor past the fairness
    window is forcibly descheduled whenever another thread is runnable,
    so spin-wait loops waiting on another thread's store terminate.

    {!run_naive} keeps the pre-DPOR brute-force DFS (every enabled thread
    branches at every step) for comparison and for the DFS-vs-DPOR parity
    suite; it is [run ~strategy:(Dfs bound)]. *)

module Instr = Vbl_memops.Instr_mem
module Metrics = Vbl_obs.Metrics

type scenario = {
  make : unit -> instance;
      (** Fresh, fully independent instance: list, recorder, thread bodies.
          Called once per explored execution. *)
}

and instance = {
  bodies : (unit -> unit) list;
  history : unit -> Vbl_spec.History.t;  (** called after all threads finish *)
  invariants : unit -> (unit, string) result;  (** structural check at quiescence *)
}

type config = {
  max_executions : int;  (** hard cap on explored executions *)
  preemption_bound : int option;  (** [None] = full exhaustive exploration *)
  max_steps : int;  (** per-execution step cap (guards against livelock) *)
}

let default_config = { max_executions = 50_000; preemption_bound = Some 3; max_steps = 5_000 }

(* ------------------------------------------------------------------ *)
(* Schedule bounds.                                                    *)
(* ------------------------------------------------------------------ *)

module type BOUND = sig
  val name : string

  val budget : int option
  (** Total admission cost a single execution may spend; [None] = no cap. *)

  val cost : last:int -> enabled:int list -> choice:int -> int
  (** Admission cost of scheduling [choice] when [last] ran previously
      ([-1] at the initial state) and [enabled] are runnable. *)

  val priority : last:int -> enabled:int list -> choice:int -> int
  (** Exploration priority among sibling backtrack points: lower values
      are explored first.  A constant priority preserves the insertion
      order of the underlying search. *)
end

type bound = (module BOUND)

let bound_name (b : bound) =
  let module B = (val b) in
  B.name

let preempt n : bound =
  (module struct
    let name = "preempt:" ^ string_of_int n
    let budget = Some n

    let cost ~last ~enabled ~choice =
      if last >= 0 && choice <> last && List.mem last enabled then 1 else 0

    (* Constant: keeps the historic backtrack order of the preemption-
       bounded explorer, which pins the execution counts recorded in
       EXPERIMENTS.md. *)
    let priority ~last:_ ~enabled:_ ~choice:_ = 0
  end)

let delay n : bound =
  (module struct
    let name = "delay:" ^ string_of_int n
    let budget = Some n

    (* The deterministic baseline scheduler: keep running the previous
       thread while it can run, else the lowest-numbered enabled thread.
       Every deviation from it costs one delay (dejafu's sctDelayBound). *)
    let baseline ~last ~enabled =
      if List.mem last enabled then last else List.hd enabled

    let cost ~last ~enabled ~choice =
      if enabled <> [] && choice = baseline ~last ~enabled then 0 else 1

    let priority = cost
  end)

let none : bound =
  (module struct
    let name = "none"
    let budget = None
    let cost ~last:_ ~enabled:_ ~choice:_ = 0
    let priority ~last:_ ~enabled:_ ~choice:_ = 0
  end)

let bound_of_config config =
  match config.preemption_bound with None -> none | Some b -> preempt b

type random_config = { seed : int64; iters : int }

type strategy = Dpor of bound | Dfs of bound | Random of random_config

let strategy_name = function
  | Dpor b -> "dpor/" ^ bound_name b
  | Dfs b -> "dfs/" ^ bound_name b
  | Random { seed; iters } -> Printf.sprintf "random:%Ld:%d" seed iters

type failure =
  | Not_linearizable of { schedule : int list; history : string }
  | Invariant_broken of { schedule : int list; msg : string }
  | Deadlock of { schedule : int list }
  | Step_limit of { schedule : int list }
  | Crashed of { schedule : int list; exn : string }
  | Analysis_violation of { schedule : int list; kind : string; msg : string }

type report = {
  executions : int;  (** executions run to quiescence and checked *)
  sleep_blocked : int;  (** executions pruned by the sleep set *)
  races : int;  (** dependent unordered step pairs that seeded backtrack points *)
  bound_prunes : int;  (** scheduling choices rejected by the bound's budget *)
  distinct_schedules : int;  (** distinct complete schedules observed *)
  truncated : bool;  (** true if the execution cap stopped exploration early *)
  failure : failure option;  (** first failure found, if any *)
}

type event = {
  ev_thread : int;
  ev_access : Instr.access;
  ev_effective : bool;  (** CAS / lock-attempt success; [true] for other kinds *)
  ev_completed : bool;  (** the thread finished right after this step *)
}

type step_monitor = {
  on_step : event -> unit;
  at_end : unit -> (string * string) option;
      (** called at quiescence of a complete execution; [Some (kind, msg)]
          reports a violation *)
}

let pp_failure ppf = function
  | Not_linearizable { history; _ } ->
      Format.fprintf ppf "non-linearizable history:@,%s" history
  | Invariant_broken { msg; _ } -> Format.fprintf ppf "invariant broken: %s" msg
  | Deadlock _ -> Format.fprintf ppf "deadlock"
  | Step_limit _ -> Format.fprintf ppf "step limit exceeded (livelock?)"
  | Crashed { exn; _ } -> Format.fprintf ppf "exception: %s" exn
  | Analysis_violation { kind; msg; _ } -> Format.fprintf ppf "%s: %s" kind msg

let failure_schedule = function
  | Not_linearizable { schedule; _ }
  | Invariant_broken { schedule; _ }
  | Deadlock { schedule }
  | Step_limit { schedule }
  | Crashed { schedule; _ }
  | Analysis_violation { schedule; _ } -> schedule

(* ------------------------------------------------------------------ *)
(* Shared helpers.                                                     *)
(* ------------------------------------------------------------------ *)

(* Dependence classes; [KNil] steps (touches, node creations, unparks)
   commute with everything. *)
type cls = KRead | KWrite | KLock | KNil

let cls_of_kind = function
  | Instr.Read -> KRead
  | Instr.Write | Instr.Cas -> KWrite
  | Instr.Lock_try | Instr.Lock_release -> KLock
  | Instr.Touch | Instr.New_node -> KNil

(* (location, class) signature of a thread's next step.  A parked thread's
   next visible interaction is with its lock. *)
let sig_of_pending = function
  | Exec.Access a ->
      let s = a.Instr.shadow in
      if s.Instr.s_loc < 0 then (-1, KNil) else (s.Instr.s_loc, cls_of_kind a.Instr.kind)
  | Exec.Blocked l -> (l.Instr.l_shadow.Instr.s_loc, KLock)
  | Exec.Done -> (-1, KNil)

let conflict (l1, c1) (l2, c2) =
  l1 >= 0 && l1 = l2
  &&
  match (c1, c2) with
  | KWrite, (KRead | KWrite) | KRead, KWrite -> true
  | KLock, KLock -> true
  | _ -> false

let effective_of (a : Instr.access) =
  match a.Instr.kind with
  | Instr.Cas | Instr.Lock_try -> !Instr.last_cas_result
  | _ -> true

(* Feed one executed step to the monitor: must be called right after
   [Exec.step], while [Instr.last_cas_result] still belongs to it. *)
let notify_monitor monitor exec tid (a : Instr.access) =
  match monitor with
  | None -> ()
  | Some m ->
      m.on_step
        {
          ev_thread = tid;
          ev_access = a;
          ev_effective = effective_of a;
          ev_completed = Exec.pending exec tid = Exec.Done;
        }

(* Execute one scheduling choice, feeding the step to the monitor.  This
   is the one legal way to advance an execution that an attached monitor
   observes; the shrinker replays through it too. *)
let step_with_monitor exec monitor c =
  let pend = Exec.pending exec c in
  Exec.step exec c;
  match pend with Exec.Access a -> notify_monitor monitor exec c a | _ -> ()

(* The verdict shared by every strategy at quiescence of a complete
   execution.  The monitor speaks first: the analysis layer is more
   specific about *why* an execution is wrong than the history check. *)
let verdict_at_quiescence (inst : instance) monitor schedule : failure option =
  match (match monitor with None -> None | Some m -> m.at_end ()) with
  | Some (kind, msg) -> Some (Analysis_violation { schedule; kind; msg })
  | None ->
      let h = inst.history () in
      if not (Vbl_spec.Linearizability.check h) then
        Some (Not_linearizable { schedule; history = Vbl_spec.History.to_string h })
      else (
        match inst.invariants () with
        | Ok () -> None
        | Error msg -> Some (Invariant_broken { schedule; msg }))

(* Rank sibling backtrack candidates by the bound's priority, highest
   first: both searches below consume candidates LIFO (prepend to a
   backtrack list / push on a worklist stack), so emitting the
   lowest-priority candidate last makes it the first one explored.  The
   sort is stable, so a constant priority preserves the underlying
   search order exactly. *)
let rank_candidates (type a) (b : bound) ~last ~enabled (cands : (int * a) list) =
  let module B = (val b) in
  List.stable_sort
    (fun (c1, _) (c2, _) ->
      compare (B.priority ~last ~enabled ~choice:c2) (B.priority ~last ~enabled ~choice:c1))
    cands

(* ------------------------------------------------------------------ *)
(* DPOR exploration.                                                   *)
(* ------------------------------------------------------------------ *)

(* One state of the current exploration prefix, together with the choice
   taken from it.  [enabled] and [spent] are refreshed on every
   (re-)execution; [dn_done] and [backtrack] persist across the subtree. *)
type dnode = {
  mutable chosen : int;
  mutable dn_done : int list;  (** choices explored or in progress *)
  mutable backtrack : int list;  (** choices still to explore *)
  mutable enabled : int list;  (** threads runnable at this state *)
  mutable spent : int;  (** bound budget consumed before this state *)
}

exception Sleep_blocked

let run_dpor ~config ~monitor (b : bound) scenario =
  let module B = (val b) in
  let completed = ref 0 in
  let blocked = ref 0 in
  let races = ref 0 in
  let prunes = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  (* Growable stack of exploration states (OCaml 5.1: no Dynarray). *)
  let dummy = { chosen = -1; dn_done = []; backtrack = []; enabled = []; spent = 0 } in
  let stack = ref (Array.make 64 dummy) in
  let len = ref 0 in
  let push n =
    if !len = Array.length !stack then begin
      let bigger = Array.make (2 * !len) dummy in
      Array.blit !stack 0 bigger 0 !len;
      stack := bigger
    end;
    !stack.(!len) <- n;
    incr len
  in
  (* Insert a backtrack point at state [i]: thread [q]'s step raced with the
     step taken there.  Flanagan–Godefroid rule, filtered by the bound's
     admission cost and ordered by its priority. *)
  let add_backtrack i q =
    incr races;
    let st = !stack.(i) in
    let last = if i > 0 then !stack.(i - 1).chosen else -1 in
    let candidates = if List.mem q st.enabled then [ q ] else st.enabled in
    let admitted =
      List.filter_map
        (fun p ->
          if List.mem p st.dn_done || List.mem p st.backtrack then None
          else begin
            let cost = B.cost ~last ~enabled:st.enabled ~choice:p in
            let within =
              match B.budget with None -> true | Some bd -> st.spent + cost <= bd
            in
            if within then Some (p, ())
            else begin
              incr prunes;
              None
            end
          end)
        candidates
    in
    List.iter
      (fun (p, ()) -> st.backtrack <- p :: st.backtrack)
      (rank_candidates b ~last ~enabled:st.enabled admitted)
  in
  (* Execute one run: replay the choices recorded on the stack, then extend
     with the default policy (keep running the last thread, avoid sleeping
     threads), pushing a fresh state per step.  Race analysis happens
     inline on every executed step. *)
  let run_one () =
    let inst = scenario.make () in
    let mon = Option.map (fun f -> f ()) monitor in
    let exec = Exec.create inst.bodies in
    let n = List.length inst.bodies in
    (* Happens-before state: per-thread vector clocks over per-thread step
       counts, plus last-access tables per location. *)
    let clocks = Array.init n (fun _ -> Array.make n 0) in
    let tcount = Array.make n 0 in
    let merge a b =
      for i = 0 to n - 1 do
        if b.(i) > a.(i) then a.(i) <- b.(i)
      done
    in
    (* loc -> (state index, tid, that thread's clock, vc snapshot) *)
    let last_write : (int, int * int * int * int array) Hashtbl.t = Hashtbl.create 64 in
    (* loc -> per-tid entries since the last write *)
    let last_reads : (int, (int * int * int * int array) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let schedule = ref [] in
    let fail f = failure := Some (f (List.rev !schedule)) in
    (* Race-check thread [q]'s step at state [idx] against a recorded
       access, then merge the dependence edge into [q]'s clock. *)
    let check_edge q (i, p, pclk, vc) =
      if p <> q && pclk > clocks.(q).(p) then add_backtrack i q;
      merge clocks.(q) vc
    in
    let analyze idx q (loc, c) =
      tcount.(q) <- tcount.(q) + 1;
      clocks.(q).(q) <- tcount.(q);
      (match c with
      | KRead ->
          Option.iter (check_edge q) (Hashtbl.find_opt last_write loc);
          let rs =
            match Hashtbl.find_opt last_reads loc with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace last_reads loc r;
                r
          in
          rs := (idx, q, tcount.(q), Array.copy clocks.(q))
                :: List.filter (fun (_, p, _, _) -> p <> q) !rs
      | KWrite | KLock ->
          Option.iter (check_edge q) (Hashtbl.find_opt last_write loc);
          (match Hashtbl.find_opt last_reads loc with
          | Some rs ->
              List.iter (check_edge q) !rs;
              Hashtbl.remove last_reads loc
          | None -> ());
          Hashtbl.replace last_write loc (idx, q, tcount.(q), Array.copy clocks.(q))
      | KNil -> ())
    in
    let zset = ref [] (* sleep set in effect at the frontier *) in
    let last = ref (-1) in
    let spent = ref 0 in
    let idx = ref 0 in
    try
      let rec go () =
        if !failure <> None then ()
        else if Exec.finished exec then begin
          incr completed;
          match verdict_at_quiescence inst mon (List.rev !schedule) with
          | Some f -> failure := Some f
          | None -> ()
        end
        else begin
          let enabled = Exec.runnable_threads exec in
          match enabled with
          | [] -> fail (fun s -> Deadlock { schedule = s })
          | _ when !idx >= config.max_steps -> fail (fun s -> Step_limit { schedule = s })
          | _ ->
              let node =
                if !idx < !len then begin
                  (* Replay: refresh the state-dependent fields. *)
                  let node = !stack.(!idx) in
                  node.enabled <- enabled;
                  node.spent <- !spent;
                  node
                end
                else begin
                  let awake = List.filter (fun t -> not (List.mem t !zset)) enabled in
                  match awake with
                  | [] ->
                      incr blocked;
                      raise Sleep_blocked
                  | _ ->
                      let c = if List.mem !last awake then !last else List.hd awake in
                      let node =
                        {
                          chosen = c;
                          dn_done = [ c ];
                          backtrack = [];
                          enabled;
                          spent = !spent;
                        }
                      in
                      push node;
                      node
                end
              in
              let c = node.chosen in
              (* Siblings already fully explored sleep through this
                 subtree; the chosen thread itself is always awake. *)
              List.iter
                (fun t -> if t <> c && not (List.mem t !zset) then zset := t :: !zset)
                node.dn_done;
              zset := List.filter (fun t -> t <> c) !zset;
              let z_pend = List.map (fun t -> (t, sig_of_pending (Exec.pending exec t))) !zset in
              let pend = Exec.pending exec c in
              schedule := c :: !schedule;
              Exec.step exec c;
              let step_sig =
                match pend with
                | Exec.Access a ->
                    notify_monitor mon exec c a;
                    let s = sig_of_pending pend in
                    analyze !idx c s;
                    s
                | Exec.Blocked _ -> (-1, KNil) (* unpark: no shared access *)
                | Exec.Done -> (-1, KNil)
              in
              (* A sleeping thread wakes when a dependent step executes. *)
              zset :=
                List.filter_map
                  (fun (t, psig) -> if conflict step_sig psig then None else Some t)
                  z_pend;
              spent := !spent + B.cost ~last:!last ~enabled ~choice:c;
              last := c;
              incr idx;
              go ()
        end
      in
      go ()
    with
    | Sleep_blocked -> ()
    | Exec.Stuck msg -> fail (fun s -> Crashed { schedule = s; exn = msg })
    | e -> fail (fun s -> Crashed { schedule = s; exn = Printexc.to_string e })
  in
  (* Outer loop: run, then backtrack to the deepest state with an untried
     choice, truncate and re-run. *)
  let rec explore () =
    if !failure <> None then ()
    else if !completed + !blocked >= config.max_executions then truncated := true
    else begin
      run_one ();
      if !failure = None then begin
        let rec find k =
          if k < 0 then None
          else
            let st = !stack.(k) in
            match List.filter (fun p -> not (List.mem p st.dn_done)) st.backtrack with
            | [] -> find (k - 1)
            | p :: _ -> Some (k, p)
        in
        match find (!len - 1) with
        | None -> ()
        | Some (k, p) ->
            len := k + 1;
            let st = !stack.(k) in
            st.chosen <- p;
            st.dn_done <- p :: st.dn_done;
            explore ()
      end
    end
  in
  explore ();
  if !Vbl_obs.Probe.enabled then begin
    Vbl_obs.Probe.add Metrics.Dpor_executions !completed;
    Vbl_obs.Probe.add Metrics.Dpor_sleep_blocked !blocked;
    Vbl_obs.Probe.add Metrics.Bound_prunes !prunes
  end;
  {
    executions = !completed;
    sleep_blocked = !blocked;
    races = !races;
    bound_prunes = !prunes;
    distinct_schedules = !completed;
    truncated = !truncated;
    failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* Naive DFS (the pre-DPOR explorer), behind the same bounds.          *)
(* ------------------------------------------------------------------ *)

(* A branch left to explore: re-run along [prefix], then choose [choice]. *)
type branch = { prefix : int list (* reversed *); choice : int; b_spent : int }

let run_dfs ~config ~monitor (b : bound) scenario =
  let module B = (val b) in
  let executions = ref 0 in
  let prunes = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  let worklist = Stack.create () in
  (* Execute one run: follow [prefix] (reversed choice list), then continue
     with the default policy (keep running the last thread; at each decision
     point push the untried alternatives).  Returns unit; failures land in
     [failure]. *)
  let execute prefix0 spent0 =
    incr executions;
    let inst = scenario.make () in
    let mon = Option.map (fun f -> f ()) monitor in
    let exec = Exec.create inst.bodies in
    let schedule = ref [] in
    let prefix = List.rev prefix0 in
    let fail f = failure := Some (f (List.rev !schedule)) in
    let step_choice c =
      schedule := c :: !schedule;
      step_with_monitor exec mon c
    in
    try
      (* Replay the committed prefix. *)
      List.iter step_choice prefix;
      (* Extend: the default policy runs the previous thread while it can
         run, else the lowest-numbered enabled thread (this is exactly the
         delay bound's baseline scheduler); alternatives within the bound's
         budget are pushed for later exploration. *)
      let rec extend last spent steps =
        if steps > config.max_steps then fail (fun s -> Step_limit { schedule = s })
        else if Exec.finished exec then begin
          match verdict_at_quiescence inst mon (List.rev !schedule) with
          | Some f -> failure := Some f
          | None -> ()
        end
        else begin
          let enabled = Exec.runnable_threads exec in
          match enabled with
          | [] -> fail (fun s -> Deadlock { schedule = s })
          | _ ->
              let continue_last = List.mem last enabled in
              let chosen = if continue_last then last else List.hd enabled in
              (* Alternatives: admitted iff the bound's budget covers their
                 admission cost; ranked so the lowest-priority alternative
                 is popped first from the LIFO worklist. *)
              let admitted =
                List.filter_map
                  (fun c ->
                    if c = chosen then None
                    else begin
                      let cost = B.cost ~last ~enabled ~choice:c in
                      let within =
                        match B.budget with None -> true | Some bd -> spent + cost <= bd
                      in
                      if within then Some (c, spent + cost)
                      else begin
                        incr prunes;
                        None
                      end
                    end)
                  enabled
              in
              List.iter
                (fun (c, sp) ->
                  Stack.push { prefix = !schedule; choice = c; b_spent = sp } worklist)
                (rank_candidates b ~last ~enabled admitted);
              let spent' = spent + B.cost ~last ~enabled ~choice:chosen in
              step_choice chosen;
              extend chosen spent' (steps + 1)
        end
      in
      let last = match prefix with [] -> -1 | _ -> List.hd (List.rev prefix) in
      extend last spent0 (List.length prefix)
    with
    | Exec.Stuck msg -> fail (fun s -> Crashed { schedule = s; exn = msg })
    | e -> fail (fun s -> Crashed { schedule = s; exn = Printexc.to_string e })
  in
  execute [] 0;
  let rec drain () =
    if !failure <> None then ()
    else if Stack.is_empty worklist then ()
    else if !executions >= config.max_executions then truncated := true
    else begin
      let br = Stack.pop worklist in
      execute (br.choice :: br.prefix) br.b_spent;
      drain ()
    end
  in
  drain ();
  if !Vbl_obs.Probe.enabled then Vbl_obs.Probe.add Metrics.Bound_prunes !prunes;
  {
    executions = !executions;
    sleep_blocked = 0;
    races = 0;
    bound_prunes = !prunes;
    distinct_schedules = !executions;
    truncated = !truncated;
    failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* Weighted-random swarm scheduler.                                    *)
(* ------------------------------------------------------------------ *)

module Rng = Vbl_util.Rng

let run_random ~config ~monitor { seed; iters } scenario =
  let runs = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  let seen : (int list, unit) Hashtbl.t = Hashtbl.create 64 in
  let i = ref 0 in
  while !failure = None && !i < iters && not !truncated do
    if !runs >= config.max_executions then truncated := true
    else begin
      incr runs;
      (* One independent stream per run: the whole swarm is a pure function
         of (seed, run index), so failures replay deterministically. *)
      let rng = Rng.stream ~seed ~index:!i in
      let inst = scenario.make () in
      let mon = Option.map (fun f -> f ()) monitor in
      let exec = Exec.create inst.bodies in
      let n = List.length inst.bodies in
      (* Swarm configuration: this run's personality.  Weights skew which
         threads win contended choices; [p_stay] sets the preemption
         probability; [streak_cap] is the fairness window after which a
         running thread is forcibly descheduled if anyone else can run. *)
      let weights = Array.init n (fun _ -> 1 + Rng.int rng 8) in
      let p_stay = 0.4 +. (0.5 *. Rng.float rng) in
      let streak_cap = 4 + Rng.int rng 29 in
      let weighted pool =
        let total = List.fold_left (fun acc t -> acc + weights.(t)) 0 pool in
        let r = Rng.int rng total in
        let rec go acc = function
          | [] -> assert false
          | [ t ] -> t
          | t :: tl ->
              let acc = acc + weights.(t) in
              if r < acc then t else go acc tl
        in
        go 0 pool
      in
      let pick enabled last streak =
        let others = List.filter (fun t -> t <> last) enabled in
        if others = [] then List.hd enabled
        else if last >= 0 && List.mem last enabled then
          if streak >= streak_cap then weighted others (* fairness: forced switch *)
          else if Rng.float rng < p_stay then last
          else weighted enabled
        else weighted enabled
      in
      let schedule = ref [] in
      let fail f = failure := Some (f (List.rev !schedule)) in
      (try
         let rec drive last streak steps =
           if Exec.finished exec then (
             match verdict_at_quiescence inst mon (List.rev !schedule) with
             | Some f -> failure := Some f
             | None -> ())
           else
             match Exec.runnable_threads exec with
             | [] -> fail (fun s -> Deadlock { schedule = s })
             | _ when steps >= config.max_steps ->
                 fail (fun s -> Step_limit { schedule = s })
             | enabled ->
                 let c = pick enabled last streak in
                 schedule := c :: !schedule;
                 step_with_monitor exec mon c;
                 drive c (if c = last then streak + 1 else 1) (steps + 1)
         in
         drive (-1) 0 0
       with
      | Exec.Stuck msg -> fail (fun s -> Crashed { schedule = s; exn = msg })
      | e -> fail (fun s -> Crashed { schedule = s; exn = Printexc.to_string e }));
      Hashtbl.replace seen (List.rev !schedule) ();
      incr i
    end
  done;
  let distinct = Hashtbl.length seen in
  if !Vbl_obs.Probe.enabled then begin
    Vbl_obs.Probe.add Metrics.Sct_runs !runs;
    Vbl_obs.Probe.add Metrics.Sct_distinct_schedules distinct
  end;
  {
    executions = !runs;
    sleep_blocked = 0;
    races = 0;
    bound_prunes = 0;
    distinct_schedules = distinct;
    truncated = !truncated;
    failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* Entry points.                                                       *)
(* ------------------------------------------------------------------ *)

let run ?(config = default_config) ?monitor ?strategy scenario =
  let strategy =
    match strategy with Some s -> s | None -> Dpor (bound_of_config config)
  in
  match strategy with
  | Dpor b -> run_dpor ~config ~monitor b scenario
  | Dfs b -> run_dfs ~config ~monitor b scenario
  | Random rc -> run_random ~config ~monitor rc scenario

let run_naive ?(config = default_config) ?monitor scenario =
  run ~config ?monitor ~strategy:(Dfs (bound_of_config config)) scenario
