(** Bounded exhaustive exploration of interleavings with dynamic
    partial-order reduction (dscheck-style re-execution, Flanagan–Godefroid
    backtracking, sleep sets).

    Executions are deterministic functions of the scheduling choice
    sequence, so the explorer needs no state snapshots: to branch it simply
    re-executes a fresh scenario instance along the choice prefix and
    diverges at the recorded decision.  Every complete execution's
    high-level history is checked for linearizability against the set
    specification and the structure is checked via the scenario's invariant
    hook — an executable, bounded version of the paper's Theorem 1.

    {b DPOR.}  Two steps are {e dependent} when they touch the same
    location (cell or lock shadow identity) and at least one writes, or
    both are lock operations on the same lock; all other pairs commute, so
    executions differing only in the order of adjacent independent steps
    belong to the same Mazurkiewicz trace and need exploring only once.
    The explorer runs one execution to completion, detects the races it
    contains (pairs of dependent steps by different threads not ordered by
    the happens-before relation of the trace, computed with per-thread
    vector clocks and last-access tables), and schedules backtrack points
    just before each race — the Flanagan–Godefroid rule: the racing
    thread if it was enabled there, every enabled thread otherwise.  Sleep
    sets carry the set of already-explored choices into sibling subtrees
    and prune executions that would only permute independent steps;
    executions whose every enabled thread is asleep are abandoned unchecked
    ([sleep_blocked] counts them).

    Exploration remains optionally {e preemption-bounded}: switching away
    from a thread that could still run costs one unit of budget, and
    backtrack points that would exceed the budget are skipped.  With
    [preemption_bound = None] the reduction is sound and complete: at least
    one representative of every trace is explored, so a failure existing in
    any interleaving is found in some explored one.

    {!run_naive} keeps the pre-DPOR brute-force DFS (every enabled thread
    branches at every step) for comparison and for the DFS-vs-DPOR parity
    suite. *)

module Instr = Vbl_memops.Instr_mem

type scenario = {
  make : unit -> instance;
      (** Fresh, fully independent instance: list, recorder, thread bodies.
          Called once per explored execution. *)
}

and instance = {
  bodies : (unit -> unit) list;
  history : unit -> Vbl_spec.History.t;  (** called after all threads finish *)
  invariants : unit -> (unit, string) result;  (** structural check at quiescence *)
}

type config = {
  max_executions : int;  (** hard cap on explored executions *)
  preemption_bound : int option;  (** [None] = full exhaustive exploration *)
  max_steps : int;  (** per-execution step cap (guards against livelock) *)
}

let default_config = { max_executions = 50_000; preemption_bound = Some 3; max_steps = 5_000 }

type failure =
  | Not_linearizable of { schedule : int list; history : string }
  | Invariant_broken of { schedule : int list; msg : string }
  | Deadlock of { schedule : int list }
  | Step_limit of { schedule : int list }
  | Crashed of { schedule : int list; exn : string }
  | Analysis_violation of { schedule : int list; kind : string; msg : string }

type report = {
  executions : int;  (** completed executions checked *)
  sleep_blocked : int;  (** executions pruned by the sleep set *)
  races : int;  (** dependent unordered step pairs that seeded backtrack points *)
  truncated : bool;  (** true if the execution cap stopped exploration early *)
  failure : failure option;  (** first failure found, if any *)
}

type event = {
  ev_thread : int;
  ev_access : Instr.access;
  ev_effective : bool;  (** CAS / lock-attempt success; [true] for other kinds *)
  ev_completed : bool;  (** the thread finished right after this step *)
}

type step_monitor = {
  on_step : event -> unit;
  at_end : unit -> (string * string) option;
      (** called at quiescence of a complete execution; [Some (kind, msg)]
          reports a violation *)
}

let pp_failure ppf = function
  | Not_linearizable { history; _ } ->
      Format.fprintf ppf "non-linearizable history:@,%s" history
  | Invariant_broken { msg; _ } -> Format.fprintf ppf "invariant broken: %s" msg
  | Deadlock _ -> Format.fprintf ppf "deadlock"
  | Step_limit _ -> Format.fprintf ppf "step limit exceeded (livelock?)"
  | Crashed { exn; _ } -> Format.fprintf ppf "exception: %s" exn
  | Analysis_violation { kind; msg; _ } -> Format.fprintf ppf "%s: %s" kind msg

let failure_schedule = function
  | Not_linearizable { schedule; _ }
  | Invariant_broken { schedule; _ }
  | Deadlock { schedule }
  | Step_limit { schedule }
  | Crashed { schedule; _ }
  | Analysis_violation { schedule; _ } -> schedule

(* ------------------------------------------------------------------ *)
(* Shared helpers.                                                     *)
(* ------------------------------------------------------------------ *)

(* Dependence classes; [KNil] steps (touches, node creations, unparks)
   commute with everything. *)
type cls = KRead | KWrite | KLock | KNil

let cls_of_kind = function
  | Instr.Read -> KRead
  | Instr.Write | Instr.Cas -> KWrite
  | Instr.Lock_try | Instr.Lock_release -> KLock
  | Instr.Touch | Instr.New_node -> KNil

(* (location, class) signature of a thread's next step.  A parked thread's
   next visible interaction is with its lock. *)
let sig_of_pending = function
  | Exec.Access a ->
      let s = a.Instr.shadow in
      if s.Instr.s_loc < 0 then (-1, KNil) else (s.Instr.s_loc, cls_of_kind a.Instr.kind)
  | Exec.Blocked l -> (l.Instr.l_shadow.Instr.s_loc, KLock)
  | Exec.Done -> (-1, KNil)

let conflict (l1, c1) (l2, c2) =
  l1 >= 0 && l1 = l2
  &&
  match (c1, c2) with
  | KWrite, (KRead | KWrite) | KRead, KWrite -> true
  | KLock, KLock -> true
  | _ -> false

let effective_of (a : Instr.access) =
  match a.Instr.kind with
  | Instr.Cas | Instr.Lock_try -> !Instr.last_cas_result
  | _ -> true

(* Feed one executed step to the monitor: must be called right after
   [Exec.step], while [Instr.last_cas_result] still belongs to it. *)
let notify_monitor monitor exec tid (a : Instr.access) =
  match monitor with
  | None -> ()
  | Some m ->
      m.on_step
        {
          ev_thread = tid;
          ev_access = a;
          ev_effective = effective_of a;
          ev_completed = Exec.pending exec tid = Exec.Done;
        }

(* ------------------------------------------------------------------ *)
(* DPOR exploration.                                                   *)
(* ------------------------------------------------------------------ *)

(* One state of the current exploration prefix, together with the choice
   taken from it.  [enabled] and [preemptions] are refreshed on every
   (re-)execution; [dn_done] and [backtrack] persist across the subtree. *)
type dnode = {
  mutable chosen : int;
  mutable dn_done : int list;  (** choices explored or in progress *)
  mutable backtrack : int list;  (** choices still to explore *)
  mutable enabled : int list;  (** threads runnable at this state *)
  mutable preemptions : int;  (** preemptions consumed before this state *)
}

exception Sleep_blocked

let run ?(config = default_config) ?monitor scenario =
  let completed = ref 0 in
  let blocked = ref 0 in
  let races = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  (* Growable stack of exploration states (OCaml 5.1: no Dynarray). *)
  let dummy = { chosen = -1; dn_done = []; backtrack = []; enabled = []; preemptions = 0 } in
  let stack = ref (Array.make 64 dummy) in
  let len = ref 0 in
  let push n =
    if !len = Array.length !stack then begin
      let bigger = Array.make (2 * !len) dummy in
      Array.blit !stack 0 bigger 0 !len;
      stack := bigger
    end;
    !stack.(!len) <- n;
    incr len
  in
  (* Insert a backtrack point at state [i]: thread [q]'s step raced with the
     step taken there.  Flanagan–Godefroid rule, filtered by the preemption
     budget. *)
  let add_backtrack i q =
    incr races;
    let st = !stack.(i) in
    let candidates = if List.mem q st.enabled then [ q ] else st.enabled in
    List.iter
      (fun p ->
        if (not (List.mem p st.dn_done)) && not (List.mem p st.backtrack) then begin
          let cost =
            if i > 0 then begin
              let prev = !stack.(i - 1).chosen in
              if prev <> p && List.mem prev st.enabled then 1 else 0
            end
            else 0
          in
          let within =
            match config.preemption_bound with
            | None -> true
            | Some b -> st.preemptions + cost <= b
          in
          if within then st.backtrack <- p :: st.backtrack
        end)
      candidates
  in
  (* Execute one run: replay the choices recorded on the stack, then extend
     with the default policy (keep running the last thread, avoid sleeping
     threads), pushing a fresh state per step.  Race analysis happens
     inline on every executed step. *)
  let run_one () =
    let inst = scenario.make () in
    let mon = Option.map (fun f -> f ()) monitor in
    let exec = Exec.create inst.bodies in
    let n = List.length inst.bodies in
    (* Happens-before state: per-thread vector clocks over per-thread step
       counts, plus last-access tables per location. *)
    let clocks = Array.init n (fun _ -> Array.make n 0) in
    let tcount = Array.make n 0 in
    let merge a b =
      for i = 0 to n - 1 do
        if b.(i) > a.(i) then a.(i) <- b.(i)
      done
    in
    (* loc -> (state index, tid, that thread's clock, vc snapshot) *)
    let last_write : (int, int * int * int * int array) Hashtbl.t = Hashtbl.create 64 in
    (* loc -> per-tid entries since the last write *)
    let last_reads : (int, (int * int * int * int array) list ref) Hashtbl.t =
      Hashtbl.create 64
    in
    let schedule = ref [] in
    let fail f = failure := Some (f (List.rev !schedule)) in
    (* Race-check thread [q]'s step at state [idx] against a recorded
       access, then merge the dependence edge into [q]'s clock. *)
    let check_edge q (i, p, pclk, vc) =
      if p <> q && pclk > clocks.(q).(p) then add_backtrack i q;
      merge clocks.(q) vc
    in
    let analyze idx q (loc, c) =
      tcount.(q) <- tcount.(q) + 1;
      clocks.(q).(q) <- tcount.(q);
      (match c with
      | KRead ->
          Option.iter (check_edge q) (Hashtbl.find_opt last_write loc);
          let rs =
            match Hashtbl.find_opt last_reads loc with
            | Some r -> r
            | None ->
                let r = ref [] in
                Hashtbl.replace last_reads loc r;
                r
          in
          rs := (idx, q, tcount.(q), Array.copy clocks.(q))
                :: List.filter (fun (_, p, _, _) -> p <> q) !rs
      | KWrite | KLock ->
          Option.iter (check_edge q) (Hashtbl.find_opt last_write loc);
          (match Hashtbl.find_opt last_reads loc with
          | Some rs ->
              List.iter (check_edge q) !rs;
              Hashtbl.remove last_reads loc
          | None -> ());
          Hashtbl.replace last_write loc (idx, q, tcount.(q), Array.copy clocks.(q))
      | KNil -> ())
    in
    let zset = ref [] (* sleep set in effect at the frontier *) in
    let last = ref (-1) in
    let preempt = ref 0 in
    let idx = ref 0 in
    try
      let rec go () =
        if !failure <> None then ()
        else if Exec.finished exec then begin
          incr completed;
          (* Monitor verdict first: the analysis layer is more specific
             about *why* an execution is wrong than the history check. *)
          (match mon with
          | Some m -> (
              match m.at_end () with
              | Some (kind, msg) -> fail (fun s -> Analysis_violation { schedule = s; kind; msg })
              | None -> ())
          | None -> ());
          if !failure = None then begin
            let h = inst.history () in
            if not (Vbl_spec.Linearizability.check h) then
              fail (fun s ->
                  Not_linearizable { schedule = s; history = Vbl_spec.History.to_string h })
            else
              match inst.invariants () with
              | Ok () -> ()
              | Error msg -> fail (fun s -> Invariant_broken { schedule = s; msg })
          end
        end
        else begin
          let enabled = Exec.runnable_threads exec in
          match enabled with
          | [] -> fail (fun s -> Deadlock { schedule = s })
          | _ when !idx >= config.max_steps -> fail (fun s -> Step_limit { schedule = s })
          | _ ->
              let node =
                if !idx < !len then begin
                  (* Replay: refresh the state-dependent fields. *)
                  let node = !stack.(!idx) in
                  node.enabled <- enabled;
                  node.preemptions <- !preempt;
                  node
                end
                else begin
                  let awake = List.filter (fun t -> not (List.mem t !zset)) enabled in
                  match awake with
                  | [] ->
                      incr blocked;
                      raise Sleep_blocked
                  | _ ->
                      let c = if List.mem !last awake then !last else List.hd awake in
                      let node =
                        {
                          chosen = c;
                          dn_done = [ c ];
                          backtrack = [];
                          enabled;
                          preemptions = !preempt;
                        }
                      in
                      push node;
                      node
                end
              in
              let c = node.chosen in
              (* Siblings already fully explored sleep through this
                 subtree; the chosen thread itself is always awake. *)
              List.iter
                (fun t -> if t <> c && not (List.mem t !zset) then zset := t :: !zset)
                node.dn_done;
              zset := List.filter (fun t -> t <> c) !zset;
              let z_pend = List.map (fun t -> (t, sig_of_pending (Exec.pending exec t))) !zset in
              let pend = Exec.pending exec c in
              schedule := c :: !schedule;
              Exec.step exec c;
              let step_sig =
                match pend with
                | Exec.Access a ->
                    notify_monitor mon exec c a;
                    let s = sig_of_pending pend in
                    analyze !idx c s;
                    s
                | Exec.Blocked _ -> (-1, KNil) (* unpark: no shared access *)
                | Exec.Done -> (-1, KNil)
              in
              (* A sleeping thread wakes when a dependent step executes. *)
              zset :=
                List.filter_map
                  (fun (t, psig) -> if conflict step_sig psig then None else Some t)
                  z_pend;
              if !last >= 0 && c <> !last && List.mem !last enabled then incr preempt;
              last := c;
              incr idx;
              go ()
        end
      in
      go ()
    with
    | Sleep_blocked -> ()
    | Exec.Stuck msg -> fail (fun s -> Crashed { schedule = s; exn = msg })
    | e -> fail (fun s -> Crashed { schedule = s; exn = Printexc.to_string e })
  in
  (* Outer loop: run, then backtrack to the deepest state with an untried
     choice, truncate and re-run. *)
  let rec explore () =
    if !failure <> None then ()
    else if !completed + !blocked >= config.max_executions then truncated := true
    else begin
      run_one ();
      if !failure = None then begin
        let rec find k =
          if k < 0 then None
          else
            let st = !stack.(k) in
            match List.filter (fun p -> not (List.mem p st.dn_done)) st.backtrack with
            | [] -> find (k - 1)
            | p :: _ -> Some (k, p)
        in
        match find (!len - 1) with
        | None -> ()
        | Some (k, p) ->
            len := k + 1;
            let st = !stack.(k) in
            st.chosen <- p;
            st.dn_done <- p :: st.dn_done;
            explore ()
      end
    end
  in
  explore ();
  if !Vbl_obs.Probe.enabled then begin
    Vbl_obs.Probe.add Vbl_obs.Metrics.Dpor_executions !completed;
    Vbl_obs.Probe.add Vbl_obs.Metrics.Dpor_sleep_blocked !blocked
  end;
  {
    executions = !completed;
    sleep_blocked = !blocked;
    races = !races;
    truncated = !truncated;
    failure = !failure;
  }

(* ------------------------------------------------------------------ *)
(* Naive DFS (the pre-DPOR explorer), kept for comparison.             *)
(* ------------------------------------------------------------------ *)

(* A branch left to explore: re-run along [prefix], then choose [choice]. *)
type branch = { prefix : int list (* reversed *); choice : int; preemptions : int }

let run_naive ?(config = default_config) ?monitor scenario =
  let executions = ref 0 in
  let truncated = ref false in
  let failure = ref None in
  let worklist = Stack.create () in
  (* Execute one run: follow [prefix] (reversed choice list), then continue
     with the default policy (keep running the last thread; at each decision
     point push the untried alternatives).  Returns unit; failures land in
     [failure]. *)
  let execute prefix0 preemptions0 =
    incr executions;
    let inst = scenario.make () in
    let mon = Option.map (fun f -> f ()) monitor in
    let exec = Exec.create inst.bodies in
    let schedule = ref [] in
    let prefix = List.rev prefix0 in
    let fail f = failure := Some (f (List.rev !schedule)) in
    let step_choice c =
      let pend = Exec.pending exec c in
      schedule := c :: !schedule;
      Exec.step exec c;
      match pend with Exec.Access a -> notify_monitor mon exec c a | _ -> ()
    in
    try
      (* Replay the committed prefix. *)
      List.iter step_choice prefix;
      (* Extend: default policy runs the lowest-numbered enabled thread,
         preferring the previously running one (no preemption); alternatives
         are pushed for later exploration. *)
      let rec extend last preemptions steps =
        if steps > config.max_steps then fail (fun s -> Step_limit { schedule = s })
        else if Exec.finished exec then begin
          (match mon with
          | Some m -> (
              match m.at_end () with
              | Some (kind, msg) -> fail (fun s -> Analysis_violation { schedule = s; kind; msg })
              | None -> ())
          | None -> ());
          if !failure = None then begin
            let h = inst.history () in
            if not (Vbl_spec.Linearizability.check h) then
              fail (fun s ->
                  Not_linearizable { schedule = s; history = Vbl_spec.History.to_string h })
            else
              match inst.invariants () with
              | Ok () -> ()
              | Error msg -> fail (fun s -> Invariant_broken { schedule = s; msg })
          end
        end
        else begin
          let enabled = Exec.runnable_threads exec in
          match enabled with
          | [] -> fail (fun s -> Deadlock { schedule = s })
          | _ ->
              let continue_last = List.mem last enabled in
              let chosen = if continue_last then last else List.hd enabled in
              (* Alternatives: switching to [c] preempts iff the previous
                 thread could have continued. *)
              List.iter
                (fun c ->
                  if c <> chosen then begin
                    let cost = if continue_last then 1 else 0 in
                    let p = preemptions + cost in
                    let within =
                      match config.preemption_bound with None -> true | Some b -> p <= b
                    in
                    if within then
                      Stack.push { prefix = !schedule; choice = c; preemptions = p } worklist
                  end)
                enabled;
              let preemptions' = preemptions in
              step_choice chosen;
              extend chosen preemptions' (steps + 1)
        end
      in
      let last = match prefix with [] -> -1 | _ -> List.hd (List.rev prefix) in
      extend last preemptions0 (List.length prefix)
    with
    | Exec.Stuck msg -> fail (fun s -> Crashed { schedule = s; exn = msg })
    | e -> fail (fun s -> Crashed { schedule = s; exn = Printexc.to_string e })
  in
  execute [] 0;
  let rec drain () =
    if !failure <> None then ()
    else if Stack.is_empty worklist then ()
    else if !executions >= config.max_executions then truncated := true
    else begin
      let b = Stack.pop worklist in
      execute (b.choice :: b.prefix) b.preemptions;
      drain ()
    end
  in
  drain ();
  {
    executions = !executions;
    sleep_blocked = 0;
    races = 0;
    truncated = !truncated;
    failure = !failure;
  }
