(** Abstract schedules of the sequential list [LL] (paper §2.2): one step
    machine per operation executing Algorithm 1 against a shared abstract
    list, with {e no} synchronization — the very object Definitions 1 and 2
    quantify over.

    Workflow: build or {!enumerate} schedules, classify them with
    {!correct} (Definition 1), translate with {!to_script} and drive them
    against an implementation ({!Directed}) to decide acceptance
    (Definition 2). *)

type kind = Insert | Remove | Contains

type opspec = { kind : kind; v : int }

val insert : int -> opspec
val remove : int -> opspec
val contains : int -> opspec

type node = { id : int; value : int; mutable next : node }
(** Abstract list node; values immutable, [next] the only shared field. *)

type step =
  | S_read_next of { op : int; node : node; seen : node }
  | S_read_val of { op : int; node : node; seen : int }
  | S_new of { op : int; node : node; init_next : node; consistent : bool }
      (** [consistent]: line 13 re-reads [prev.next] into the new node; in
          any sequential execution that equals the traversal's [curr].
          Local serializability requires the flag. *)
  | S_write_next of { op : int; node : node; target : node }
  | S_return of { op : int; result : bool }

type t

val create : initial:int list -> ops:opspec list -> t

val n_ops : t -> int

val enabled : t -> int -> bool

val enabled_ops : t -> int list

val finished : t -> bool

val step : t -> int -> unit
(** Run one shared access (or the return) of operation [i]. *)

val results : t -> bool option array

val schedule : t -> step list

val final_values : t -> int list
(** Contents by traversal from the head; terminates even on corrupted
    lists (next pointers always lead to strictly larger values). *)

val locally_serializable : t -> bool
(** Definition 1(1), via the two data conditions that can fail (see the
    implementation for the argument that they are exactly enough). *)

val history : t -> Vbl_spec.History.t
(** High-level history with pre-populated values seeded as completed
    inserts before time zero. *)

val correct : t -> bool
(** Definition 1: locally serializable and every contains-extension
    linearizable.  Requires [finished]. *)

val enumerate :
  initial:int list -> ops:opspec list -> ?max:int -> (t -> unit) -> bool
(** Call the function on every complete interleaving; [false] if [max]
    truncated the enumeration. *)

val node_name : node -> string
(** The paper's naming: [h], [t], or [X<value>]. *)

val to_script : t -> Directed.directive list
(** Cell-exact directed script realising this schedule's data steps. *)

val spec_to_model : opspec -> Vbl_spec.Set_model.op

val pp_step : Format.formatter -> step -> unit

val pp_opspec : Format.formatter -> opspec -> unit
