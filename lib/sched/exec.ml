(** Cooperative multi-thread conductor over the instrumented memory backend.

    Threads are ordinary OCaml functions whose shared accesses go through
    {!Vbl_memops.Instr_mem}; each access performs an effect, the conductor
    captures the continuation, and a scheduler (the directed driver of
    {!Directed}, the model checker of {!Explore}, or the cost simulator in
    [lib/sim]) decides who moves next.  Everything runs in one domain;
    determinism comes for free.

    Invariant: between two conductor decisions a thread executes exactly one
    shared access (the one that was pending), so scheduling points and the
    paper's schedule steps coincide. *)

module Instr = Vbl_memops.Instr_mem

type pending =
  | Access of Instr.access  (** next shared access, not yet applied *)
  | Blocked of Instr.lock  (** parked on a held lock *)
  | Done  (** the thread body returned *)

type cont = (unit, unit) Effect.Deep.continuation

type status =
  | St_paused of { k : cont; access : Instr.access }
  | St_release of { k : cont; lock : Instr.lock }
  | St_parked of { k : cont; lock : Instr.lock }
  | St_done

type t = { statuses : status array; mutable steps : int }

exception Stuck of string

let handler t i =
  {
    Effect.Deep.retc = (fun () -> t.statuses.(i) <- St_done);
    exnc = raise;
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Instr.Access access ->
            Some
              (fun (k : (a, unit) Effect.Deep.continuation) ->
                t.statuses.(i) <- St_paused { k; access })
        | Instr.Lock_busy lock ->
            Some (fun k -> t.statuses.(i) <- St_parked { k; lock })
        | Instr.Release lock -> Some (fun k -> t.statuses.(i) <- St_release { k; lock })
        | _ -> None);
  }

let create bodies =
  let n = List.length bodies in
  let t = { statuses = Array.make n St_done; steps = 0 } in
  List.iteri
    (fun i body ->
      (* Run each thread up to its first shared access. *)
      Effect.Deep.match_with body () (handler t i))
    bodies;
  t

let n_threads t = Array.length t.statuses

let pending t i =
  match t.statuses.(i) with
  | St_paused { access; _ } -> Access access
  | St_release { lock; _ } ->
      Access
        {
          line = lock.Instr.l_line;
          name = lock.Instr.l_name;
          kind = Instr.Lock_release;
          shadow = lock.Instr.l_shadow;
        }
  | St_parked { lock; _ } -> Blocked lock
  | St_done -> Done

(* A parked thread is only resumable once the lock it waits for is free;
   resuming it earlier would just burn a retry step. *)
let runnable t i =
  match t.statuses.(i) with
  | St_paused _ | St_release _ -> true
  | St_parked { lock; _ } -> not (Instr.lock_held lock)
  | St_done -> false

let finished t = Array.for_all (fun s -> s = St_done) t.statuses

let runnable_threads t =
  List.filter (runnable t) (List.init (n_threads t) Fun.id)

let trace_kind = function
  | Instr.Read -> Vbl_obs.Trace.Read
  | Instr.Write -> Vbl_obs.Trace.Write
  | Instr.Cas -> Vbl_obs.Trace.Cas
  | Instr.Touch -> Vbl_obs.Trace.Touch
  | Instr.New_node -> Vbl_obs.Trace.New_node
  | Instr.Lock_try -> Vbl_obs.Trace.Lock_try
  | Instr.Lock_release -> Vbl_obs.Trace.Lock_release

(* One event per executed step when a tracer is installed (Obs.Probe);
   the guard keeps the untraced path allocation-free. *)
let trace_step t i =
  if Vbl_obs.Probe.trace_enabled () then
    match t.statuses.(i) with
    | St_paused { access; _ } ->
        Vbl_obs.Probe.emit
          { Vbl_obs.Trace.thread = i; step = access.Instr.name; kind = trace_kind access.Instr.kind }
    | St_release { lock; _ } ->
        Vbl_obs.Probe.emit
          { Vbl_obs.Trace.thread = i; step = lock.Instr.l_name; kind = Vbl_obs.Trace.Lock_release }
    | St_parked { lock; _ } ->
        Vbl_obs.Probe.emit
          { Vbl_obs.Trace.thread = i; step = lock.Instr.l_name; kind = Vbl_obs.Trace.Lock_try }
    | St_done -> ()

(** Execute thread [i]'s pending access and run it to its next one.
    Raises {!Stuck} on a non-runnable thread. *)
let step t i =
  t.steps <- t.steps + 1;
  trace_step t i;
  match t.statuses.(i) with
  | St_paused { k; _ } -> Effect.Deep.continue k ()
  | St_release { k; lock } ->
      Instr.apply_release lock;
      Effect.Deep.continue k ()
  | St_parked { k; lock } ->
      if Instr.lock_held lock then
        raise (Stuck (Printf.sprintf "thread %d resumed while %s still held" i lock.Instr.l_name));
      Effect.Deep.continue k ()
  | St_done -> raise (Stuck (Printf.sprintf "thread %d already finished" i))

let steps_taken t = t.steps

(** True when no thread can move but some are not done: every remaining
    thread is parked on a lock held by ... another parked thread.  With
    deadlock-free algorithms this indicates a bug (or a deliberately
    adversarial script). *)
let deadlocked t = (not (finished t)) && runnable_threads t = []

(** Run everything to completion round-robin; used to drain threads after a
    directed script has been fully consumed. *)
let drain ?(max_steps = 1_000_000) t =
  let n = n_threads t in
  let budget = ref max_steps in
  let rec go i =
    if finished t then ()
    else if !budget <= 0 then raise (Stuck "drain exceeded its step budget")
    else if deadlocked t then raise (Stuck "deadlock while draining")
    else begin
      let j = (i + 1) mod n in
      if runnable t i then begin
        decr budget;
        step t i
      end;
      go j
    end
  in
  go 0
