(** Cooperative multi-thread conductor over the instrumented memory
    backend ({!Vbl_memops.Instr_mem}).

    Threads are plain functions whose shared accesses perform effects; the
    conductor captures continuations and lets a scheduler (directed driver,
    model checker, cost simulator) decide who moves.  Between two
    decisions a thread executes exactly one shared access, so scheduling
    points and the paper's schedule steps coincide.  Single-domain only. *)

type pending =
  | Access of Vbl_memops.Instr_mem.access  (** next shared access, not yet applied *)
  | Blocked of Vbl_memops.Instr_mem.lock  (** parked on a held lock *)
  | Done

type t

exception Stuck of string
(** Raised on scheduling errors: stepping a finished or still-blocked
    thread, or a drain that deadlocks or exhausts its budget. *)

val create : (unit -> unit) list -> t
(** Start every thread and run it to its first shared access. *)

val n_threads : t -> int

val pending : t -> int -> pending

val runnable : t -> int -> bool
(** A parked thread is runnable only once its lock is observed free. *)

val finished : t -> bool

val runnable_threads : t -> int list

val step : t -> int -> unit
(** Execute thread [i]'s pending access and run it to its next one. *)

val steps_taken : t -> int

val deadlocked : t -> bool
(** No thread can move, but some are not done. *)

val drain : ?max_steps:int -> t -> unit
(** Round-robin everything to completion; {!Stuck} on deadlock/budget. *)
