(** Step patterns: how schedule scripts refer to implementation steps.

    The paper's figures name steps at node granularity — [R(X1)] reads any
    field of node X1, [W(h)] effectively writes the head's successor link,
    [new(X2)] creates the node storing 2.  Patterns classify the cells named
    by {!Naming}: [val]/[next]/[amr] cells are {e data}, [del]/[lock] cells,
    touches and lock operations are {e metadata}.  Directed driving skips a
    thread's non-matching steps, mirroring the figures' "not all steps are
    depicted". *)

module Instr = Vbl_memops.Instr_mem

type t =
  | Read_node of string  (** a [Read]/[Touch] of any data cell of the node *)
  | Write_node of string
      (** an {e effective} link write on the node: a [Write], or a [Cas]
          that must succeed, on its [next]/[amr] cell *)
  | Mark_node of string
      (** logical deletion of the node: a [Write]/successful [Cas] on its
          [del] cell or (for Harris-Michael encodings) its [next]/[amr]
          cell — figures write this as "W(X), logical deletion" *)
  | New_node of string  (** creation of the node *)
  | Lock_node of string  (** a successful lock acquisition on the node *)
  | Unlock_node of string
  | Exact of Instr.access_kind * string  (** full cell name, exact kind *)

let node_of_cell name =
  match String.index_opt name '.' with
  | Some i -> String.sub name 0 i
  | None -> name

let field_of_cell name =
  match String.index_opt name '.' with
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)
  | None -> ""

(* Skip-list towers name their per-level links ["next0"], ["next1"], … *)
let is_level_link f =
  String.length f > 4
  && String.sub f 0 4 = "next"
  && String.for_all (function '0' .. '9' -> true | _ -> false)
       (String.sub f 4 (String.length f - 4))

let is_data_field = function
  | "val" | "next" | "amr" | "key" | "left" | "right" -> true
  | f -> is_level_link f

let is_link_field = function
  | "next" | "amr" | "left" | "right" -> true
  | f -> is_level_link f

(** [matches pat access] — purely syntactic match; CAS success is checked
    by the driver after executing the step (see {!Directed}). *)
let matches pat (a : Instr.access) =
  let node = node_of_cell a.name and field = field_of_cell a.name in
  match (pat, a.kind) with
  | Read_node n, Instr.Read -> node = n && (is_data_field field || field = "")
  | Read_node n, Instr.Touch -> node = n (* the dependent pair load counts as a read *)
  | Read_node _, _ -> false
  | Write_node n, (Instr.Write | Instr.Cas) -> node = n && is_link_field field
  | Write_node _, _ -> false
  | Mark_node n, (Instr.Write | Instr.Cas) ->
      node = n && (field = "del" || is_link_field field)
  | Mark_node _, _ -> false
  | New_node n, Instr.New_node -> a.name = n
  | New_node _, _ -> false
  | Lock_node n, Instr.Lock_try -> node = n
  | Lock_node _, _ -> false
  | Unlock_node n, Instr.Lock_release -> node = n
  | Unlock_node _, _ -> false
  | Exact (k, name), _ -> a.kind = k && a.name = name

(** Does this pattern require the executed CAS/lock attempt to succeed? *)
let requires_success = function
  | Write_node _ | Mark_node _ | Lock_node _ -> true
  | Read_node _ | New_node _ | Unlock_node _ | Exact _ -> false

let pp ppf = function
  | Read_node n -> Format.fprintf ppf "R(%s)" n
  | Write_node n -> Format.fprintf ppf "W(%s)" n
  | Mark_node n -> Format.fprintf ppf "mark(%s)" n
  | New_node n -> Format.fprintf ppf "new(%s)" n
  | Lock_node n -> Format.fprintf ppf "lock(%s)" n
  | Unlock_node n -> Format.fprintf ppf "unlock(%s)" n
  | Exact (k, name) -> Format.fprintf ppf "%a(%s)" Instr.pp_kind k name

let to_string p = Format.asprintf "%a" pp p
