(** The schedules of the paper's Figures 2 and 3 as executable artefacts:
    scenario, script in the paper's step vocabulary, and drivers.  The
    claims themselves are asserted in the test suite and narrated by
    [bin/schedules.exe]. *)

module Fig2 : sig
  val initial : int list
  (** [{1}] — the list contains X1 storing 1. *)

  val ops : Ll_abstract.opspec list
  (** Thread 0: insert(1); thread 1: insert(2). *)

  val script : Directed.directive list

  val run : Drive.impl -> Directed.outcome
  (** Drive the Figure 2 schedule against an implementation: VBL accepts,
      the lazy list rejects with [Thread_blocked]. *)

  val abstract : unit -> Ll_abstract.t
  (** The same schedule replayed on sequential LL, for Definition 1
      checking. *)
end

module Fig3 : sig
  val initial : int list
  (** [{2; 3; 4}]. *)

  val ops : Ll_abstract.opspec list
  (** insert(1), remove(2), insert(3), insert(4). *)

  val script : Directed.directive list
  (** In Harris-Michael's adjusted-LL vocabulary; both HM encodings reject
      it with [Step_failed] at insert(4)'s unlink. *)

  val run : Drive.impl -> Directed.outcome

  val vbl_phase_b_script : Directed.directive list
  (** The same four operations adapted to VBL's immediate unlink. *)

  val run_vbl : unit -> Directed.outcome
end
