(** Counterexample shrinking for failing schedules.

    Every failure a strategy in {!Explore} reports carries the schedule
    (thread-choice sequence) that produced it, but a schedule found by a
    randomized or deeply-backtracked search is rarely minimal: it is
    padded with irrelevant operations and gratuitous context switches
    that obscure the actual race.  The shrinker greedily reduces it while
    replaying under {!Exec} after each edit, keeping an edit only when
    the replay still exhibits {e the same} violation ({!same_violation}:
    same failure constructor, and for analysis violations the same kind).

    {b Replay semantics.}  A schedule is replayed as a list of {e hints}:
    each hint steps its thread if that thread is currently runnable and
    is silently dropped otherwise (the shrunk prefix may have diverged);
    once the hints run out, the deterministic baseline scheduler (keep
    running the previous thread, else the lowest-numbered runnable one)
    finishes the execution.  Everything in the conductor is
    deterministic, so a shrunk schedule replays to the same violation on
    every run — which is also what makes the greedy search sound: each
    accepted candidate has been {e observed} to fail, not assumed to.

    {b Passes}, iterated to a fixpoint:
    - {e deletion} — ddmin-style: delete chunks of the schedule, halving
      the chunk size down to single steps;
    - {e segment merge} — swap an interior run of thread [B] with the
      following run of thread [A] when the preceding run is also [A]'s,
      merging two same-thread segments and removing one preemption.

    The result is locally minimal: no single chunk deletion or adjacent
    segment transposition preserves the violation.  Local minimality is
    the practical sweet spot (dejafu, QuickCheck shrinking): globally
    minimal counterexamples would need another exponential search. *)

module Metrics = Vbl_obs.Metrics

type result = {
  original : int list;
  shrunk : int list;
  failure : Explore.failure option;
      (** verdict of replaying [shrunk]; [None] only when the input
          schedule already passed (no-op shrink) *)
  attempts : int;  (** candidate replays performed, the accepted ones included *)
  removed : int;  (** [length original - length shrunk] *)
}

(* Hint-list replay: see the header.  The failure returned carries the
   schedule actually executed (hints minus stale ones plus the baseline
   tail), so it is self-contained for display; the shrinker's bookkeeping
   stays in hint space. *)
let replay ?monitor ?(max_steps = 5_000) (scenario : Explore.scenario) hints :
    Explore.failure option =
  let inst = scenario.Explore.make () in
  let mon = Option.map (fun f -> f ()) monitor in
  let exec = Exec.create inst.Explore.bodies in
  let schedule = ref [] in
  let steps = ref 0 in
  let step c =
    schedule := c :: !schedule;
    incr steps;
    Explore.step_with_monitor exec mon c
  in
  let fail mk = Some (mk (List.rev !schedule)) in
  try
    let rec follow hints =
      if Exec.finished exec then
        Explore.verdict_at_quiescence inst mon (List.rev !schedule)
      else if Exec.deadlocked exec then fail (fun s -> Explore.Deadlock { schedule = s })
      else if !steps >= max_steps then fail (fun s -> Explore.Step_limit { schedule = s })
      else
        match hints with
        | h :: rest ->
            (* A stale hint (thread done, or parked on a held lock) is
               dropped; the edit that made it stale already happened. *)
            if h >= 0 && h < Exec.n_threads exec && Exec.runnable exec h then step h;
            follow rest
        | [] ->
            let enabled = Exec.runnable_threads exec in
            let last = match !schedule with c :: _ -> c | [] -> -1 in
            let c = if List.mem last enabled then last else List.hd enabled in
            step c;
            follow []
    in
    follow hints
  with
  | Exec.Stuck msg -> fail (fun s -> Explore.Crashed { schedule = s; exn = msg })
  | e -> fail (fun s -> Explore.Crashed { schedule = s; exn = Printexc.to_string e })

(* Two failures count as the same violation when they fail the same way;
   schedules and messages differ freely under shrinking (a shorter
   counterexample words its history differently), but the failure class —
   and for monitor verdicts the violation kind — must survive. *)
let same_violation (a : Explore.failure) (b : Explore.failure) =
  match (a, b) with
  | Explore.Not_linearizable _, Explore.Not_linearizable _
  | Explore.Invariant_broken _, Explore.Invariant_broken _
  | Explore.Deadlock _, Explore.Deadlock _
  | Explore.Step_limit _, Explore.Step_limit _
  | Explore.Crashed _, Explore.Crashed _ -> true
  | ( Explore.Analysis_violation { kind = k1; _ },
      Explore.Analysis_violation { kind = k2; _ } ) -> k1 = k2
  | _ -> false

(* Maximal same-thread runs of a schedule, as (thread, run) pairs. *)
let segments sched =
  let rec go acc cur = function
    | [] -> List.rev (match cur with [] -> acc | _ -> List.rev cur :: acc)
    | c :: rest -> (
        match cur with
        | x :: _ when x = c -> go acc (c :: cur) rest
        | [] -> go acc [ c ] rest
        | _ -> go (List.rev cur :: acc) [ c ] rest)
  in
  go [] [] sched

let delete_range l i n =
  List.filteri (fun k _ -> k < i || k >= i + n) l

(* Budget on candidate replays: shrinking is O(len^2) replays in the
   worst case; the cap keeps pathological schedules from hijacking a test
   run.  2000 replays of a <= max_steps execution is well under a second
   for the scenarios the harness explores. *)
let default_max_attempts = 2_000

let shrink_from ?monitor ?max_steps ?(max_attempts = default_max_attempts) scenario
    ~(target : Explore.failure) hints0 =
  let attempts = ref 0 in
  let last_failure = ref None in
  (* [Some f] when replaying [cand] still exhibits the target violation. *)
  let still_fails cand =
    if !attempts >= max_attempts then None
    else begin
      incr attempts;
      match replay ?monitor ?max_steps scenario cand with
      | Some f when same_violation target f ->
          last_failure := Some f;
          Some f
      | _ -> None
    end
  in
  (* Pass 1: chunk deletion, halving chunk sizes (ddmin-style). *)
  let delete_pass sched =
    let changed = ref false in
    let sched = ref sched in
    let size = ref (max 1 (List.length !sched / 2)) in
    while !size >= 1 do
      let i = ref 0 in
      while !i + !size <= List.length !sched do
        let cand = delete_range !sched !i !size in
        match still_fails cand with
        | Some _ ->
            sched := cand;
            changed := true
            (* same position now holds the next chunk: retry without advancing *)
        | None -> i := !i + !size
      done;
      size := (if !size = 1 then 0 else !size / 2)
    done;
    (!sched, !changed)
  in
  (* Pass 2: merge same-thread segments separated by one other-thread
     segment, i.e. A B A -> A A B: one preemption fewer if accepted. *)
  let merge_pass sched =
    let changed = ref false in
    let sched = ref sched in
    let continue_ = ref true in
    while !continue_ do
      continue_ := false;
      let segs = Array.of_list (segments !sched) in
      let n = Array.length segs in
      (try
         for j = 1 to n - 2 do
           let t_prev = List.hd segs.(j - 1) and t_next = List.hd segs.(j + 1) in
           if t_prev = t_next && List.hd segs.(j) <> t_prev then begin
             let swapped =
               Array.to_list segs
               |> List.mapi (fun k s ->
                      if k = j then segs.(j + 1) else if k = j + 1 then segs.(j) else s)
               |> List.concat
             in
             match still_fails swapped with
             | Some _ ->
                 sched := swapped;
                 changed := true;
                 continue_ := true;
                 raise Exit (* segment array is stale: recompute *)
             | None -> ()
           end
         done
       with Exit -> ())
    done;
    (!sched, !changed)
  in
  let rec fixpoint sched =
    let sched, d = delete_pass sched in
    let sched, m = merge_pass sched in
    if (d || m) && !attempts < max_attempts then fixpoint sched else sched
  in
  let shrunk = fixpoint hints0 in
  let removed = List.length hints0 - List.length shrunk in
  if !Vbl_obs.Probe.enabled then begin
    Vbl_obs.Probe.add Metrics.Shrink_attempts !attempts;
    Vbl_obs.Probe.add Metrics.Shrink_removed_steps removed
  end;
  {
    original = hints0;
    shrunk;
    failure = (match !last_failure with Some f -> Some f | None -> Some target);
    attempts = !attempts;
    removed;
  }

let shrink ?monitor ?max_steps ?max_attempts scenario (failure : Explore.failure) =
  let hints0 = Explore.failure_schedule failure in
  (* Confirm the violation replays before shrinking anything: a schedule
     that does not reproduce (it should always reproduce — the conductor
     is deterministic) is returned untouched rather than "shrunk" against
     a different bug. *)
  match replay ?monitor ?max_steps scenario hints0 with
  | Some f when same_violation failure f ->
      let r = shrink_from ?monitor ?max_steps ?max_attempts scenario ~target:failure hints0 in
      { r with attempts = r.attempts + 1 }
  | _ -> { original = hints0; shrunk = hints0; failure = Some failure; attempts = 1; removed = 0 }

let shrink_schedule ?monitor ?max_steps ?max_attempts scenario hints =
  match replay ?monitor ?max_steps scenario hints with
  | None ->
      (* Passing schedule: shrinking is a no-op by construction. *)
      { original = hints; shrunk = hints; failure = None; attempts = 1; removed = 0 }
  | Some target ->
      let r = shrink_from ?monitor ?max_steps ?max_attempts scenario ~target hints in
      { r with attempts = r.attempts + 1 }

let pp_steps ppf sched =
  Format.fprintf ppf "[%s]" (String.concat "; " (List.map string_of_int sched))
