(** Glue between the schedule machinery and concrete implementations on
    the instrumented backend: fresh pre-populated instances wrapped as
    thread bodies for {!Directed} and {!Explore}. *)

(** The algorithm family instantiated on {!Vbl_memops.Instr_mem}. *)
module Vbl_i : Vbl_lists.Set_intf.S

module Lazy_i : Vbl_lists.Set_intf.S
module Hm_i : Vbl_lists.Set_intf.S
module Hm_tagged_i : Vbl_lists.Set_intf.S
module Seq_i : Vbl_lists.Set_intf.S
module Coarse_i : Vbl_lists.Set_intf.S
module Hoh_i : Vbl_lists.Set_intf.S
module Optimistic_i : Vbl_lists.Set_intf.S
module Vbl_postlock_i : Vbl_lists.Set_intf.S
module Fr_i : Vbl_lists.Set_intf.S
module Vbl_versioned_i : Vbl_lists.Set_intf.S

(** Reclaiming variants on {!Vbl_memops.Instr_reclaim.Safe}: DPOR
    interleaves the epoch protocol against traversals. *)

module Vbl_reclaim_i : Vbl_lists.Set_intf.S
module Lazy_reclaim_i : Vbl_lists.Set_intf.S
module Hm_reclaim_i : Vbl_lists.Set_intf.S

type impl = (module Vbl_lists.Set_intf.S)

val instrumented : impl list

val find_instrumented : string -> impl
(** Lookup by [S.name]; raises [Invalid_argument] on unknown names. *)

type prepared = {
  bodies : (unit -> unit) list;
  results : bool option array;
  invariants : unit -> (unit, string) result;
  contents : unit -> int list;
}

val prepare :
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  ops:Ll_abstract.opspec list ->
  prepared
(** Fresh instance, sequentially pre-populated with [initial]; one body
    per operation, results captured by index. *)

val run_script_full :
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  ops:Ll_abstract.opspec list ->
  Directed.directive list ->
  Directed.outcome * prepared

val run_script :
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  ops:Ll_abstract.opspec list ->
  Directed.directive list ->
  Directed.outcome

val explore_scenario :
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  ops:Ll_abstract.opspec list ->
  Explore.scenario
(** Fresh instance per execution; the checked history seeds the initial
    values as completed inserts and appends one contains probe per
    relevant key reflecting the final contents (the paper's σ̄
    extension — this is what catches lost updates). *)

val explore_range_scenario :
  (module Vbl_lists.Set_intf.S) ->
  initial:int list ->
  range:int * int ->
  ops:Ll_abstract.opspec list ->
  Explore.scenario
(** Thread 0 runs [range_query lo hi] concurrently with one thread per
    op.  The verdict goes through {!Vbl_spec.Multikey.check} — the
    whole-state linearizability search that can judge a multi-key read —
    inside the scenario's [invariants] closure, with σ̄-style trailing
    contains probes against the final contents.  The single-key history
    fed to the per-key checker is left empty (subsumed). *)
