(** Directed schedule driving: does implementation I {e accept} schedule σ
    (paper §2.2)?

    A script pins the order of the steps that matter; the driver realises
    it against an implementation on the instrumented backend.  For
    [Step (tid, pat)] it advances thread [tid], silently executing
    non-matching steps, until a step matching [pat] executes effectively;
    [Ret (tid, r)] drives the thread to completion and checks its result.
    While the scripted thread waits on a lock, other threads may advance
    through {e invisible} metadata steps only (unlocks, deleted-flag
    writes, touches) — exported schedules do not contain those.

    Rejection reasons map onto the paper's arguments: [Thread_blocked] is
    the lazy list on Figure 2; [Step_failed] is Harris-Michael's failed
    helping CAS on Figure 3. *)

type directive =
  | Step of int * Pattern.t  (** thread [tid] performs a matching step *)
  | Ret of int * bool  (** thread [tid] completes with the given result *)

type rejection =
  | Thread_blocked of { tid : int; lock : string }
  | Step_failed of { tid : int; pattern : string }
  | Completed_early of { tid : int; pattern : string }
  | No_matching_step of { tid : int; pattern : string; took : string list }
  | Wrong_result of { tid : int; expected : bool; got : bool option }

type outcome =
  | Accepted of { trace : (int * Vbl_memops.Instr_mem.access) list }
  | Rejected of {
      at : int;  (** 0-based index of the failed directive *)
      reason : rejection;
      trace : (int * Vbl_memops.Instr_mem.access) list;
    }

val pp_rejection : Format.formatter -> rejection -> unit

val run :
  bodies:(unit -> unit) list ->
  results:bool option array ->
  script:directive list ->
  outcome

val accepted : outcome -> bool
