(** Directed schedule driving: does implementation I accept schedule σ?

    A script pins the ordering of the steps that matter (the ones the
    paper's figures draw); the driver realises it against a real
    implementation instance running on the instrumented backend.  To
    realise [Step (tid, pat)] the driver advances thread [tid], silently
    executing its non-matching steps, until a step matching [pat] executes
    {e effectively} (a CAS or lock attempt matched by a success-requiring
    pattern must succeed).  [Ret (tid, r)] advances the thread to
    completion and checks its recorded result.

    Rejection reasons map exactly onto the paper's arguments:
    - [Thread_blocked] — the thread parked on a lock another operation
      holds (the lazy list on Figure 2);
    - [Step_failed] — the matching CAS executed but did not take effect,
      and the thread moved on or restarted (Harris-Michael on Figure 3);
    - [Completed_early] / [No_matching_step] — the thread finished or
      wandered off (restarted traversal) without ever producing the
      scripted step. *)

module Instr = Vbl_memops.Instr_mem

type directive =
  | Step of int * Pattern.t  (** thread [tid] performs a step matching the pattern *)
  | Ret of int * bool  (** thread [tid] completes, returning the given result *)

type rejection =
  | Thread_blocked of { tid : int; lock : string }
  | Step_failed of { tid : int; pattern : string }
  | Completed_early of { tid : int; pattern : string }
  | No_matching_step of { tid : int; pattern : string; took : string list }
  | Wrong_result of { tid : int; expected : bool; got : bool option }

type outcome =
  | Accepted of { trace : (int * Instr.access) list }
  | Rejected of { at : int; reason : rejection; trace : (int * Instr.access) list }

let pp_rejection ppf = function
  | Thread_blocked { tid; lock } ->
      Format.fprintf ppf "thread %d blocked on lock %s" tid lock
  | Step_failed { tid; pattern } ->
      Format.fprintf ppf "thread %d: step %s executed but did not take effect" tid pattern
  | Completed_early { tid; pattern } ->
      Format.fprintf ppf "thread %d completed before performing %s" tid pattern
  | No_matching_step { tid; pattern; took } ->
      Format.fprintf ppf "thread %d never performed %s (took: %s)" tid pattern
        (String.concat ", " took)
  | Wrong_result { tid; expected; got } ->
      Format.fprintf ppf "thread %d returned %s, script expected %b" tid
        (match got with Some b -> string_of_bool b | None -> "nothing")
        expected

(* Cap on silently skipped steps per directive: prevents livelock when a
   script sends a thread into an unbounded retry loop. *)
let skip_budget = 10_000

let run ~(bodies : (unit -> unit) list) ~(results : bool option array)
    ~(script : directive list) : outcome =
  let exec = Exec.create bodies in
  let trace = ref [] in
  let record tid access = trace := (tid, access) :: !trace in
  let exec_step tid =
    (match Exec.pending exec tid with
    | Exec.Access a -> record tid a
    | Exec.Blocked _ | Exec.Done -> ());
    Exec.step exec tid
  in
  let reject at reason = Rejected { at; reason; trace = List.rev !trace } in
  (* Exported schedules (§2.2) contain only the steps that take effect on
     data; unlocks, deleted-flag writes and pair touches are invisible.  So
     when the scripted thread waits on a lock, other threads may advance
     through such invisible steps (typically: the holder finishing its
     unlocks) without perturbing the scripted data-step order.  Lock
     acquisitions are NOT invisible here — advancing one could steal the
     very lock the scripted thread needs. *)
  let is_invisible (a : Instr.access) =
    match a.kind with
    | Instr.Lock_release | Instr.Touch -> true
    | Instr.Write | Instr.Cas -> (
        (* Metadata writes: logical flags ([del], the skiplist's
           [linked], the BST's [ulk]) and version bumps never appear in
           exported schedules. *)
        match Pattern.field_of_cell a.name with
        | "del" | "ulk" | "ver" | "linked" -> true
        | _ -> false)
    | Instr.Read | Instr.New_node | Instr.Lock_try -> false
  in
  let unblock_via_metadata lock =
    let n = List.length bodies in
    let rec go budget =
      (not (Instr.lock_held lock))
      ||
      if budget = 0 then false
      else begin
        let progressed = ref false in
        for j = 0 to n - 1 do
          match Exec.pending exec j with
          | Exec.Access a when is_invisible a ->
              exec_step j;
              progressed := true
          | Exec.Access _ | Exec.Blocked _ | Exec.Done -> ()
        done;
        !progressed && go (budget - 1)
      end
    in
    go 1_000
  in
  (* Advance [tid] until a step matching [pat] has executed effectively.
     Returns None on success or Some rejection. *)
  let realize_step at tid pat =
    let took = ref [] in
    let rec advance budget =
      if budget = 0 then
        Some
          (reject at
             (No_matching_step
                { tid; pattern = Pattern.to_string pat; took = List.rev !took }))
      else
        match Exec.pending exec tid with
        | Exec.Done ->
            Some (reject at (Completed_early { tid; pattern = Pattern.to_string pat }))
        | Exec.Blocked lock ->
            if Instr.lock_held lock && not (unblock_via_metadata lock) then
              Some (reject at (Thread_blocked { tid; lock = lock.Instr.l_name }))
            else begin
              exec_step tid (* unpark; the retry becomes the pending step *)
              ;
              advance (budget - 1)
            end
        | Exec.Access a ->
            if Pattern.matches pat a then begin
              let was_cas = a.kind = Instr.Cas || a.kind = Instr.Lock_try in
              exec_step tid;
              if Pattern.requires_success pat && was_cas && not !Instr.last_cas_result
              then Some (reject at (Step_failed { tid; pattern = Pattern.to_string pat }))
              else None
            end
            else begin
              took := Format.asprintf "%a" Instr.pp_access a :: !took;
              exec_step tid;
              advance (budget - 1)
            end
    in
    advance skip_budget
  in
  let realize_ret at tid expected =
    let rec advance budget =
      if budget = 0 then
        Some
          (reject at
             (No_matching_step { tid; pattern = "return"; took = [ "step budget exhausted" ] }))
      else
        match Exec.pending exec tid with
        | Exec.Done ->
            if results.(tid) = Some expected then None
            else Some (reject at (Wrong_result { tid; expected; got = results.(tid) }))
        | Exec.Blocked lock ->
            if Instr.lock_held lock && not (unblock_via_metadata lock) then
              Some (reject at (Thread_blocked { tid; lock = lock.Instr.l_name }))
            else begin
              exec_step tid;
              advance (budget - 1)
            end
        | Exec.Access _ ->
            exec_step tid;
            advance (budget - 1)
    in
    advance skip_budget
  in
  let rec drive at = function
    | [] -> Accepted { trace = List.rev !trace }
    | d :: rest -> begin
        let failure =
          match d with
          | Step (tid, pat) -> realize_step at tid pat
          | Ret (tid, expected) -> realize_ret at tid expected
        in
        match failure with Some r -> r | None -> drive (at + 1) rest
      end
  in
  drive 0 script

let accepted = function Accepted _ -> true | Rejected _ -> false
