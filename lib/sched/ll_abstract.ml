(** Abstract schedules of the sequential list [LL] (paper §2.2).

    This module executes the {e sequential} code of Algorithm 1 step by
    step, one step machine per high-level operation, against a shared
    abstract list — i.e. it generates exactly the "schedules" of the paper:
    interleavings of LL's reads, writes and node creations with no
    synchronization whatsoever.  Schedules built here can then be

    - checked for {e correctness} per Definition 1 ([correct]): local
      serializability with respect to LL plus linearizability of every
      contains-extension;
    - enumerated exhaustively for small scenarios ([enumerate]);
    - translated into {!Directed} scripts ([to_script]) and driven against
      a real implementation — which is how the repository demonstrates
      concurrency-optimality (Theorem 3) on bounded configurations.  *)

type kind = Insert | Remove | Contains

type opspec = { kind : kind; v : int }

let insert v = { kind = Insert; v }
let remove v = { kind = Remove; v }
let contains v = { kind = Contains; v }

(* Abstract list node: values immutable, [next] the only shared mutable. *)
type node = { id : int; value : int; mutable next : node }

type step =
  | S_read_next of { op : int; node : node; seen : node }
  | S_read_val of { op : int; node : node; seen : int }
  | S_new of { op : int; node : node; init_next : node; consistent : bool }
      (** [consistent] — line 13 of LL initialises the new node from
          [prev.next]; in a sequential execution that is necessarily the
          [curr] the traversal stopped at.  The flag records whether that
          held here; local serializability requires it. *)
  | S_write_next of { op : int; node : node; target : node }
  | S_return of { op : int; result : bool }

(* Program counter of one LL operation (decision logic between shared
   accesses is collapsed into the transition function). *)
type pc =
  | P_start  (* next: read prev.next *)
  | P_read_val  (* next: read curr.val *)
  | P_advance  (* next: read curr.next, shift the window *)
  | P_act  (* traversal done: insert/remove/contains specific *)
  | P_insert_write  (* next: write prev.next <- new node *)
  | P_remove_read  (* next: read curr.next (line 23) *)
  | P_remove_write  (* next: write prev.next <- tnext *)
  | P_return
  | P_done

type machine = {
  spec : opspec;
  mutable pc : pc;
  mutable prev : node;
  mutable curr : node;  (* meaningful from P_read_val on *)
  mutable tval : int;
  mutable new_node : node;  (* meaningful in P_insert_write *)
  mutable tnext : node;  (* meaningful in P_remove_write *)
  mutable result : bool option;
}

type t = {
  head : node;
  tail : node;
  initial : int list;  (* pre-populated values, seeded into histories *)
  machines : machine array;
  mutable next_id : int;
  mutable trace : step list;  (* reversed *)
}

let create ~initial ~ops =
  let rec tail = { id = 1; value = max_int; next = tail } in
  let head = { id = 0; value = min_int; next = tail } in
  let next_id = ref 2 in
  (* Pre-populate sequentially (sorted input required). *)
  let sorted = List.sort_uniq compare initial in
  let link prev v =
    let n = { id = !next_id; value = v; next = tail } in
    incr next_id;
    prev.next <- n;
    n
  in
  ignore (List.fold_left link head sorted);
  let machines =
    Array.of_list
      (List.map
         (fun spec ->
           {
             spec;
             pc = P_start;
             prev = head;
             curr = head;
             tval = 0;
             new_node = head;
             tnext = head;
             result = None;
           })
         ops)
  in
  { head; tail; initial = sorted; machines; next_id = !next_id; trace = [] }

let n_ops t = Array.length t.machines

let enabled t i = t.machines.(i).pc <> P_done

let enabled_ops t = List.filter (enabled t) (List.init (n_ops t) Fun.id)

let finished t = not (Array.exists (fun m -> m.pc <> P_done) t.machines)

let record t s = t.trace <- s :: t.trace

(** Run one step of operation [i]: exactly one shared access (or the
    return).  Mirrors Algorithm 1 line by line. *)
let step t i =
  let m = t.machines.(i) in
  let v = m.spec.v in
  match m.pc with
  | P_done -> invalid_arg "Ll_abstract.step: operation already finished"
  | P_start ->
      m.curr <- m.prev.next;
      record t (S_read_next { op = i; node = m.prev; seen = m.curr });
      m.pc <- P_read_val
  | P_read_val ->
      m.tval <- m.curr.value;
      record t (S_read_val { op = i; node = m.curr; seen = m.tval });
      m.pc <-
        (if m.tval < v then P_advance
         else
           match m.spec.kind with
           | Remove when m.tval = v -> P_remove_read
           | Remove | Insert | Contains -> P_act)
  | P_advance ->
      let succ = m.curr.next in
      record t (S_read_next { op = i; node = m.curr; seen = succ });
      m.prev <- m.curr;
      m.curr <- succ;
      m.pc <- P_read_val
  | P_act -> begin
      match m.spec.kind with
      | Contains ->
          m.result <- Some (m.tval = v);
          record t (S_return { op = i; result = m.tval = v });
          m.pc <- P_done
      | Insert ->
          if m.tval = v then begin
            m.result <- Some false;
            record t (S_return { op = i; result = false });
            m.pc <- P_done
          end
          else begin
            (* Line 13: X <- new-node(v, prev.next). *)
            let init_next = m.prev.next in
            let x = { id = t.next_id; value = v; next = init_next } in
            t.next_id <- t.next_id + 1;
            record t (S_new { op = i; node = x; init_next; consistent = init_next == m.curr });
            m.new_node <- x;
            m.pc <- P_insert_write
          end
      | Remove ->
          (* tval = v was dispatched to P_remove_read at P_read_val. *)
          m.result <- Some false;
          record t (S_return { op = i; result = false });
          m.pc <- P_done
    end
  | P_insert_write ->
      record t (S_write_next { op = i; node = m.prev; target = m.new_node });
      m.prev.next <- m.new_node;
      m.result <- Some true;
      m.pc <- P_return
  | P_remove_read ->
      m.tnext <- m.curr.next;
      record t (S_read_next { op = i; node = m.curr; seen = m.tnext });
      m.pc <- P_remove_write
  | P_remove_write ->
      record t (S_write_next { op = i; node = m.prev; target = m.tnext });
      m.prev.next <- m.tnext;
      m.result <- Some true;
      m.pc <- P_return
  | P_return ->
      record t (S_return { op = i; result = true });
      m.pc <- P_done

let results t = Array.map (fun m -> m.result) t.machines

let schedule t = List.rev t.trace

(** Values present at the end, by traversal from the head.  Next pointers
    always lead to strictly larger values, so this terminates even on
    schedules that corrupted the list. *)
let final_values t =
  let rec loop acc n = if n == t.tail then List.rev acc else loop (n.value :: acc) n.next in
  loop [] t.head.next

let op_of_step = function
  | S_read_next { op; _ }
  | S_read_val { op; _ }
  | S_new { op; _ }
  | S_write_next { op; _ }
  | S_return { op; _ } -> op

(** Local serializability with respect to LL (Definition 1(1)).

    An operation's steps here are generated by LL's own code, so its control
    flow is LL's by construction; what can still diverge from every
    sequential execution is the {e data} it observed:
    - the traversal's value reads must be strictly increasing (in a
      sequential execution the traversal walks one static sorted list);
    - the successor that line 13 re-reads into the new node must still be
      the [curr] the traversal stopped at.

    Conversely, when both hold, the static list "head -> observed chain ->
    tail" realises the very same step sequence sequentially. *)
let locally_serializable t =
  let ok = ref true in
  let last_val = Array.make (n_ops t) min_int in
  List.iter
    (fun s ->
      match s with
      | S_read_val { op; seen; _ } ->
          if seen < last_val.(op) then ok := false;
          last_val.(op) <- seen
      | S_new { consistent; _ } -> if not consistent then ok := false
      | S_read_next _ | S_write_next _ | S_return _ -> ())
    (schedule t);
  !ok

let spec_to_model { kind; v } =
  match kind with
  | Insert -> Vbl_spec.Set_model.Insert v
  | Remove -> Vbl_spec.Set_model.Remove v
  | Contains -> Vbl_spec.Set_model.Contains v

(** The high-level history of a finished schedule: operation [i] is invoked
    at its first step's position and returns at its [S_return]'s position. *)
let history t =
  let steps = Array.of_list (schedule t) in
  let first = Array.make (n_ops t) max_int in
  let last = Array.make (n_ops t) max_int in
  Array.iteri
    (fun pos s ->
      let op = op_of_step s in
      if first.(op) = max_int then first.(op) <- pos;
      match s with S_return _ -> last.(op) <- pos | _ -> ())
    steps;
  let entries = ref [] in
  (* Pre-populated values: completed inserts before time zero, so
     linearizability is judged from the empty set per the specification. *)
  List.iteri
    (fun k v ->
      let at = -2 * (List.length t.initial - k) in
      entries :=
        (1000 + k, 0, Vbl_spec.Set_model.Insert v, at, Vbl_spec.History.Returned true, at + 1)
        :: !entries)
    t.initial;
  Array.iteri
    (fun i m ->
      let completion =
        match m.result with
        | Some r -> Vbl_spec.History.Returned r
        | None -> Vbl_spec.History.Pending
      in
      entries := (i, 0, spec_to_model m.spec, first.(i), completion, last.(i)) :: !entries)
    t.machines;
  Vbl_spec.History.of_list !entries

(** Definition 1: correct = locally serializable, and for every probe value
    [v] the extension of the schedule with a trailing [contains(v)] is
    linearizable.  Probing every key that any operation or the final list
    mentions is exhaustive: a contains on an untouched key returns false in
    every linearization either way. *)
let correct t =
  if not (finished t) then invalid_arg "Ll_abstract.correct: schedule not finished";
  locally_serializable t
  &&
  let probes =
    List.sort_uniq compare
      (final_values t @ Array.to_list (Array.map (fun m -> m.spec.v) t.machines))
  in
  let base = history t in
  let final = final_values t in
  let horizon =
    1 + List.fold_left (fun acc (o : Vbl_spec.History.operation) -> max acc o.returned_at)
          0 (Vbl_spec.History.operations base)
  in
  List.for_all
    (fun v ->
      let present = List.mem v final in
      let probe_entries =
        List.map
          (fun (o : Vbl_spec.History.operation) ->
            (o.thread, o.index, o.op, o.invoked_at, o.completion, o.returned_at))
          (Vbl_spec.History.operations base)
        @ [
            ( n_ops t,
              0,
              Vbl_spec.Set_model.Contains v,
              horizon + 1,
              Vbl_spec.History.Returned present,
              horizon + 2 );
          ]
      in
      Vbl_spec.Linearizability.check (Vbl_spec.History.of_list probe_entries))
    probes

(** Exhaustive enumeration of all schedules for a scenario: every
    interleaving of the operations' LL steps.  Calls [f] on each finished
    machine; returns [false] if [max] truncated the enumeration. *)
let enumerate ~initial ~ops ?(max = 1_000_000) (f : t -> unit) =
  let count = ref 0 in
  let complete = ref true in
  (* Re-execution DFS: replay a prefix of op choices, then branch. *)
  let rec explore prefix =
    if !count >= max then complete := false
    else begin
      let t = create ~initial ~ops in
      List.iter (fun i -> step t i) (List.rev prefix);
      branch t prefix
    end
  and branch t prefix =
    if finished t then begin
      incr count;
      f t
    end
    else begin
      match enabled_ops t with
      | [] -> assert false
      | first :: rest ->
          (* Continue the first choice in-place; re-execute for the rest. *)
          List.iter (fun c -> if !count < max then explore (c :: prefix)) rest;
          step t first;
          branch t (first :: prefix)
    end
  in
  explore [];
  !complete

let node_name (n : node) =
  if n.value = min_int then Vbl_lists.Naming.head
  else if n.value = max_int then Vbl_lists.Naming.tail
  else Vbl_lists.Naming.node n.value

(** Translate an abstract schedule into a directed-driver script: data reads
    and effective writes keep their order; implementation-specific metadata
    (locks, marks, validation re-reads) is left to the driver's skip rule.
    Patterns are exact at cell level so that an implementation's extra data
    accesses (e.g. VBL's contains reading the head sentinel's value, or its
    validation re-reads under lock) cannot alias the scripted LL steps. *)
let to_script t =
  let read cell = Pattern.Exact (Vbl_memops.Instr_mem.Read, cell) in
  let write cell = Pattern.Exact (Vbl_memops.Instr_mem.Write, cell) in
  List.map
    (fun s ->
      match s with
      | S_read_next { op; node; _ } ->
          Directed.Step (op, read (Vbl_lists.Naming.next_cell (node_name node)))
      | S_read_val { op; node; _ } ->
          Directed.Step (op, read (Vbl_lists.Naming.value_cell (node_name node)))
      | S_new { op; node; _ } -> Directed.Step (op, Pattern.New_node (node_name node))
      | S_write_next { op; node; _ } ->
          Directed.Step (op, write (Vbl_lists.Naming.next_cell (node_name node)))
      | S_return { op; result } -> Directed.Ret (op, result))
    (schedule t)

let pp_step ppf = function
  | S_read_next { op; node; _ } -> Format.fprintf ppf "op%d: R(%s.next)" op (node_name node)
  | S_read_val { op; node; _ } -> Format.fprintf ppf "op%d: R(%s.val)" op (node_name node)
  | S_new { op; node; _ } -> Format.fprintf ppf "op%d: new(%s)" op (node_name node)
  | S_write_next { op; node; target } ->
      Format.fprintf ppf "op%d: W(%s.next <- %s)" op (node_name node) (node_name target)
  | S_return { op; result } -> Format.fprintf ppf "op%d: return %b" op result

let pp_opspec ppf { kind; v } =
  match kind with
  | Insert -> Format.fprintf ppf "insert(%d)" v
  | Remove -> Format.fprintf ppf "remove(%d)" v
  | Contains -> Format.fprintf ppf "contains(%d)" v
