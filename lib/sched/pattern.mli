(** Step patterns: how schedule scripts refer to implementation steps, in
    the paper's node-level vocabulary ([R(X1)], [W(h)], [new(X2)], ...).

    Cells are classified by their {!Vbl_lists.Naming} suffix:
    [val]/[next]/[amr] are {e data}; [del]/[lock] cells, pair touches and
    lock operations are {e metadata} that directed driving may skip. *)

type t =
  | Read_node of string  (** a read/touch of any data cell of the node *)
  | Write_node of string
      (** an {e effective} link write: a write, or a CAS that must
          succeed, on the node's [next]/[amr] cell *)
  | Mark_node of string
      (** logical deletion: an effective write/CAS on the node's [del]
          cell or (Harris-style encodings) its link cell *)
  | New_node of string
  | Lock_node of string  (** a successful lock acquisition on the node *)
  | Unlock_node of string
  | Exact of Vbl_memops.Instr_mem.access_kind * string
      (** full cell name, exact kind — used by mechanically generated
          scripts to avoid aliasing *)

val node_of_cell : string -> string
(** ["X1.next"] -> ["X1"]. *)

val field_of_cell : string -> string
(** ["X1.next"] -> ["next"]; [""] when there is no field part. *)

val matches : t -> Vbl_memops.Instr_mem.access -> bool
(** Purely syntactic; effectiveness of CAS/lock steps is checked by the
    driver after execution (see {!Directed}). *)

val requires_success : t -> bool
(** Must a matched CAS/lock attempt succeed for the step to count? *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
