(** Counterexample shrinking for failing schedules.

    Greedy delta-debugging over the thread-choice sequence of a
    {!Explore.failure}: delete chunks (halving chunk size down to single
    steps) and merge adjacent same-thread segments (removing
    preemptions), keeping each edit only when replaying the edited
    schedule under {!Exec} still exhibits the {e same} violation
    ({!same_violation}).  Iterated to a fixpoint, this yields a locally
    minimal deterministic counterexample: no single chunk deletion or
    adjacent segment transposition preserves the violation.

    Replay interprets a schedule as {e hints}: a hint naming a thread
    that is not currently runnable is dropped (the shrunk prefix may
    have diverged from the original execution), and once the hints are
    exhausted the deterministic baseline scheduler — keep the previous
    thread while it can run, else the lowest-numbered runnable one —
    finishes the execution.  Because the conductor is deterministic,
    every accepted candidate has been observed to fail, not assumed to.

    Updates [Shrink_attempts] and [Shrink_removed_steps] when
    {!Vbl_obs.Probe} is enabled. *)

type result = {
  original : int list;  (** the schedule shrinking started from *)
  shrunk : int list;  (** locally minimal hint sequence *)
  failure : Explore.failure option;
      (** verdict of replaying [shrunk]; [None] only when the input
          schedule already passed (no-op shrink) *)
  attempts : int;  (** candidate replays performed *)
  removed : int;  (** [length original - length shrunk] *)
}

val replay :
  ?monitor:(unit -> Explore.step_monitor) ->
  ?max_steps:int ->
  Explore.scenario ->
  int list ->
  Explore.failure option
(** Replay a hint sequence on a fresh instance of the scenario and
    return its verdict ([None] = the execution passes).  The failure's
    embedded schedule is the one actually executed — stale hints
    dropped, baseline tail included — so it is self-contained. *)

val same_violation : Explore.failure -> Explore.failure -> bool
(** Same failure constructor; for [Analysis_violation], same [kind].
    Schedules and messages are allowed to differ (a shorter
    counterexample words its history differently). *)

val shrink :
  ?monitor:(unit -> Explore.step_monitor) ->
  ?max_steps:int ->
  ?max_attempts:int ->
  Explore.scenario ->
  Explore.failure ->
  result
(** Shrink the schedule embedded in a failure.  If the schedule does not
    reproduce the violation on replay (it always should — the conductor
    is deterministic), the failure is returned untouched rather than
    shrunk against a different bug. *)

val shrink_schedule :
  ?monitor:(unit -> Explore.step_monitor) ->
  ?max_steps:int ->
  ?max_attempts:int ->
  Explore.scenario ->
  int list ->
  result
(** Like {!shrink} but starting from a bare schedule: replays it first
    and shrinks whatever violation it exhibits.  A passing schedule is a
    no-op ([shrunk = original], [failure = None], [removed = 0]). *)

val pp_steps : Format.formatter -> int list -> unit
(** ["[0; 1; 2]"] — the schedule rendering used by failure reports. *)
