(** The concrete schedules of the paper's Figures 2 and 3, as executable
    artefacts.

    Each figure provides: the scenario (initial list + operations), the
    schedule script in the paper's step vocabulary, and drivers that show
    which algorithm accepts or rejects it.  The tests in [test/test_sched.ml]
    assert the paper's claims; [bin/schedules.exe] narrates them. *)

open Directed

(** {1 Figure 2}

    Initial list [{X1=1}]; [insert(1)] (thread 0) concurrent with
    [insert(2)] (thread 1).  Both read the head; insert(2) reads X1 and
    creates X2; then insert(1) reads X1 and returns false {e before
    insert(2) writes or completes}.  Correct (insert(1) linearizes first),
    but the lazy list cannot accept it: insert(1) must acquire the lock on
    X1 that insert(2) is holding.  VBL accepts: insert(1) returns without
    locking. *)

module Fig2 = struct
  let initial = [ 1 ]
  let ops = [ Ll_abstract.insert 1; Ll_abstract.insert 2 ]

  let script =
    [
      Step (0, Pattern.Read_node "h");     (* insert(1): R(h) *)
      Step (1, Pattern.Read_node "h");     (* insert(2): R(h) *)
      Step (1, Pattern.Read_node "X1");    (* insert(2): R(X1) — val and next *)
      Step (1, Pattern.New_node "X2");     (* insert(2): new(X2) *)
      Step (0, Pattern.Read_node "X1");    (* insert(1): R(X1) — sees value 1 *)
      Ret (0, false);                      (* insert(1) returns false now *)
      Step (1, Pattern.Write_node "X1");   (* insert(2): W(X1.next <- X2) *)
      Ret (1, true);
    ]

  let run impl = Drive.run_script impl ~initial ~ops script

  (* The same schedule replayed on the abstract sequential LL — used to
     verify it is correct per Definition 1.  Thread 1's traversal also
     reads X1.next and t.val between its R(X1) and new(X2); the abstract
     steps spell them out. *)
  let abstract () =
    let t = Ll_abstract.create ~initial ~ops in
    (* op1: R(h.next); op2: R(h.next); op2: R(X1.val); op2: R(X1.next);
       op2: R(t.val); op2: new(X2); op1: R(X1.val); op1: ret false;
       op2: W(X1.next); op2: ret true *)
    List.iter (Ll_abstract.step t) [ 0; 1; 1; 1; 1; 1; 0; 0; 1; 1 ];
    t
end

(** {1 Figure 3}

    Initial list [{X2, X3, X4}].  Phase A: [insert(1)] (thread 0) and
    [remove(2)] (thread 1) run concurrently; remove(2) reads the head
    before insert(1) updates it, marks X2 logically, and its physical
    unlink CAS fails — under Harris-Michael the operation still completes,
    leaving X2 linked-but-marked.  Phase B: [insert(3)] (thread 2) and
    [insert(4)] (thread 3) both traverse past the marked X2 and both
    attempt to unlink it by writing X1's link; the schedule has both writes
    take effect (they write the same value).  Harris-Michael must reject:
    insert(4)'s CAS fails and it restarts from the head.  The script below
    is in Harris-Michael's (adjusted-LL) vocabulary. *)

module Fig3 = struct
  let initial = [ 2; 3; 4 ]

  let ops =
    [
      Ll_abstract.insert 1; (* thread 0 *)
      Ll_abstract.remove 2; (* thread 1 *)
      Ll_abstract.insert 3; (* thread 2 *)
      Ll_abstract.insert 4; (* thread 3 *)
    ]

  let script =
    [
      (* Phase A *)
      Step (1, Pattern.Read_node "h");   (* remove(2) reads h before the update *)
      Step (1, Pattern.Read_node "X2");  (* remove(2) locates X2 *)
      Step (0, Pattern.Read_node "h");   (* insert(1) traverses *)
      Step (0, Pattern.Read_node "X2");  (* stops at X2 (2 > 1) *)
      Step (0, Pattern.New_node "X1");
      Step (0, Pattern.Write_node "h");  (* links X1: h.next <- X1 *)
      Ret (0, true);
      Step (1, Pattern.Mark_node "X2");  (* logical deletion of X2 *)
      Ret (1, true);                     (* physical CAS fails; op completes *)
      (* Phase B *)
      Step (2, Pattern.Read_node "h");
      Step (3, Pattern.Read_node "h");
      Step (2, Pattern.Read_node "X1");
      Step (3, Pattern.Read_node "X1");
      Step (2, Pattern.Read_node "X2");  (* sees the mark *)
      Step (3, Pattern.Read_node "X2");  (* sees the mark too *)
      Step (2, Pattern.Write_node "X1"); (* insert(3) unlinks X2 *)
      Step (2, Pattern.Read_node "X3");
      Ret (2, false);
      Step (3, Pattern.Write_node "X1"); (* insert(4)'s unlink must take effect *)
      Step (3, Pattern.Read_node "X3");
      Step (3, Pattern.Read_node "X4");
      Ret (3, false);
    ]

  let run impl = Drive.run_script impl ~initial ~ops script

  (** The same four operations under VBL, where remove(2) unlinks X2
      physically at once: phase B runs on the list {1, 3, 4} and both
      inserts return false with {e no} locking and no restarts, under every
      interleaving.  This is the VBL-accepts side of the figure. *)
  let vbl_phase_b_script =
    [
      (* Phase A, adapted to VBL's immediate unlink: remove(2) reads h
         before insert(1) writes it, so its value-aware validation fails
         once and it re-locates from its prev — the scripted steps pin only
         phase ordering. *)
      Step (1, Pattern.Read_node "h");
      Step (1, Pattern.Read_node "X2");
      Step (0, Pattern.Read_node "h");
      Step (0, Pattern.Read_node "X2");
      Step (0, Pattern.New_node "X1");
      Step (0, Pattern.Write_node "h");
      Ret (0, true);
      Step (1, Pattern.Write_node "X1"); (* unlink X2 from its live pred X1 *)
      Ret (1, true);
      (* Phase B: fully interleaved reads, no writes, both complete. *)
      Step (2, Pattern.Read_node "h");
      Step (3, Pattern.Read_node "h");
      Step (2, Pattern.Read_node "X1");
      Step (3, Pattern.Read_node "X1");
      Step (2, Pattern.Read_node "X3");
      Step (3, Pattern.Read_node "X3");
      Ret (2, false);
      Step (3, Pattern.Read_node "X4");
      Ret (3, false);
    ]

  let run_vbl () =
    Drive.run_script (module Drive.Vbl_i) ~initial ~ops vbl_phase_b_script
end
