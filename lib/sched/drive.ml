(** Glue between the schedule machinery and concrete list implementations
    running on the instrumented backend.

    [prepare] builds a fresh instance of an algorithm, pre-populates it
    sequentially (outside the measured schedule, like the paper's warm-up
    population), and wraps the requested operations as thread bodies whose
    results are captured — ready for {!Directed.run} or {!Explore.run}. *)

module Instr = Vbl_memops.Instr_mem

(* The measured algorithms, instantiated on the instrumented backend. *)
module Vbl_i = Vbl_lists.Vbl_list.Make (Instr)
module Lazy_i = Vbl_lists.Lazy_list.Make (Instr)
module Hm_i = Vbl_lists.Harris_michael.Make (Instr)
module Hm_tagged_i = Vbl_lists.Harris_michael_tagged.Make (Instr)
module Seq_i = Vbl_lists.Seq_list.Make (Instr)
module Coarse_i = Vbl_lists.Coarse_list.Make (Instr)
module Hoh_i = Vbl_lists.Hoh_list.Make (Instr)
module Optimistic_i = Vbl_lists.Optimistic_list.Make (Instr)
module Vbl_postlock_i = Vbl_lists.Vbl_postlock.Make (Instr)
module Fr_i = Vbl_lists.Fomitchev_ruppert.Make (Instr)
module Vbl_versioned_i = Vbl_lists.Vbl_versioned.Make (Instr)

(* Reclaiming variants on the instrumented reclaim backend: the epoch
   counter is an instrumented cell, so DPOR interleaves epoch
   announcements, retires and recycles against traversals.  Only the
   grace-respecting [Safe] backend is registered here; the seeded
   use-after-reclaim [Eager] mutant is reserved for the analysis tests. *)
module Instr_safe = Vbl_memops.Instr_reclaim.Safe

module Vbl_reclaim_i = struct
  include Vbl_lists.Vbl_list.Make (Instr_safe)

  let name = "vbl-reclaim"
end

module Lazy_reclaim_i = struct
  include Vbl_lists.Lazy_list.Make (Instr_safe)

  let name = "lazy-reclaim"
end

module Hm_reclaim_i = struct
  include Vbl_lists.Harris_michael.Make (Instr_safe)

  let name = "harris-michael-reclaim"
end

type impl = (module Vbl_lists.Set_intf.S)

let instrumented : impl list =
  [
    (module Seq_i);
    (module Coarse_i);
    (module Hoh_i);
    (module Optimistic_i);
    (module Lazy_i);
    (module Hm_i);
    (module Hm_tagged_i);
    (module Fr_i);
    (module Vbl_postlock_i);
    (module Vbl_versioned_i);
    (module Vbl_i);
    (module Lazy_reclaim_i);
    (module Hm_reclaim_i);
    (module Vbl_reclaim_i);
  ]

let find_instrumented nm : impl =
  match
    List.find_opt
      (fun i ->
        let module S = (val i : Vbl_lists.Set_intf.S) in
        S.name = nm)
      instrumented
  with
  | Some i -> i
  | None -> invalid_arg ("Drive.find_instrumented: unknown algorithm " ^ nm)

type prepared = {
  bodies : (unit -> unit) list;
  results : bool option array;
  invariants : unit -> (unit, string) result;
  contents : unit -> int list;
}

let run_op (type s) (module S : Vbl_lists.Set_intf.S with type t = s) (t : s)
    (spec : Ll_abstract.opspec) =
  match spec.Ll_abstract.kind with
  | Ll_abstract.Insert -> S.insert t spec.Ll_abstract.v
  | Ll_abstract.Remove -> S.remove t spec.Ll_abstract.v
  | Ll_abstract.Contains -> S.contains t spec.Ll_abstract.v

let prepare (module S : Vbl_lists.Set_intf.S) ~initial ~(ops : Ll_abstract.opspec list) :
    prepared =
  let t =
    Instr.run_sequential (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) initial;
        t)
  in
  let results = Array.make (List.length ops) None in
  let bodies =
    List.mapi
      (fun i spec () -> results.(i) <- Some (run_op (module S) t spec))
      ops
  in
  {
    bodies;
    results;
    invariants = (fun () -> Instr.run_sequential (fun () -> S.check_invariants t));
    contents = (fun () -> Instr.run_sequential (fun () -> S.to_list t));
  }

(** Drive a script against a fresh instance; the returned [prepared] gives
    access to the instance's final contents and invariants. *)
let run_script_full (module S : Vbl_lists.Set_intf.S) ~initial ~ops script =
  let p = prepare (module S) ~initial ~ops in
  (Directed.run ~bodies:p.bodies ~results:p.results ~script, p)

let run_script impl ~initial ~ops script = fst (run_script_full impl ~initial ~ops script)

(** An exploration scenario over a fresh instance per execution.  The
    checked history is seeded with one completed [insert] per initial value
    so that linearizability is judged from the empty set, matching the
    specification. *)
let explore_scenario (module S : Vbl_lists.Set_intf.S) ~initial ~(ops : Ll_abstract.opspec list)
    : Explore.scenario =
  let make () =
    let p = prepare (module S) ~initial ~ops in
    let recorder = Vbl_spec.History.Recorder.create () in
    let bodies =
      List.mapi
        (fun i spec () ->
          let id =
            Vbl_spec.History.Recorder.invoke recorder ~thread:i (Ll_abstract.spec_to_model spec)
          in
          let body = List.nth p.bodies i in
          body ();
          let result = Option.get p.results.(i) in
          Vbl_spec.History.Recorder.return recorder id result)
        ops
    in
    let history () =
      let recorded = Vbl_spec.History.Recorder.history recorder in
      let seed =
        List.mapi
          (fun k v ->
            ( 1000 + k,
              0,
              Vbl_spec.Set_model.Insert v,
              -2 * (List.length initial - k),
              Vbl_spec.History.Returned true,
              (-2 * (List.length initial - k)) + 1 ))
          (List.sort_uniq compare initial)
      in
      let recorded_entries =
        List.map
          (fun (o : Vbl_spec.History.operation) ->
            (o.thread, o.index, o.op, o.invoked_at, o.completion, o.returned_at))
          (Vbl_spec.History.operations recorded)
      in
      (* The sigma-bar extension of §2.2: probe every relevant key with a
         trailing contains reflecting the actual final contents — this is
         what exposes lost updates, which leave the raw history
         linearizable. *)
      let final = p.contents () in
      let horizon =
        1 + List.fold_left (fun acc (_, _, _, _, _, r) -> max acc r) 0 recorded_entries
      in
      let keys =
        List.sort_uniq compare
          (List.map (fun (spec : Ll_abstract.opspec) -> spec.Ll_abstract.v) ops
          @ initial @ final)
      in
      let probes =
        List.mapi
          (fun k v ->
            ( 2000 + k,
              0,
              Vbl_spec.Set_model.Contains v,
              horizon + (2 * k) + 1,
              Vbl_spec.History.Returned (List.mem v final),
              horizon + (2 * k) + 2 ))
          keys
      in
      Vbl_spec.History.of_list (seed @ recorded_entries @ probes)
    in
    { Explore.bodies; history; invariants = p.invariants }
  in
  { Explore.make }

(** A range-read exploration scenario: thread 0 runs [range_query lo hi]
    while threads 1..n run [ops].  Single-key verdicts cannot judge a
    multi-key read, so the whole history goes through
    {!Vbl_spec.Multikey.check} instead: every operation is recorded as a
    multikey event against a logical clock (plain refs — ticks ride
    along with the adjacent instrumented step, like the history
    recorder's clock), and the verdict runs in the [invariants] closure
    at quiescence, after the structural check.  The bool-op history
    handed to the per-key checker is left empty; the multikey search
    subsumes it.  σ̄-style trailing contains probes against the actual
    final contents are appended so lost updates stay visible. *)
let explore_range_scenario (module S : Vbl_lists.Set_intf.S) ~initial
    ~range:(lo, hi) ~(ops : Ll_abstract.opspec list) : Explore.scenario =
  let make () =
    let t =
      Instr.run_sequential (fun () ->
          let t = S.create () in
          List.iter (fun v -> ignore (S.insert t v)) initial;
          t)
    in
    let clock = ref 0 in
    let tick () =
      incr clock;
      !clock
    in
    let events = ref [] in
    let record thread op f =
      let invoked_at = tick () in
      let result = f () in
      let returned_at = tick () in
      events :=
        { Vbl_spec.Multikey.thread; op; result; invoked_at; returned_at }
        :: !events
    in
    let bodies =
      (fun () ->
        record 0
          (Vbl_spec.Multikey.Range { lo; hi })
          (fun () -> Vbl_spec.Multikey.Values (S.range_query t lo hi)))
      :: List.mapi
           (fun i (spec : Ll_abstract.opspec) () ->
             record (i + 1)
               (Vbl_spec.Multikey.Single (Ll_abstract.spec_to_model spec))
               (fun () -> Vbl_spec.Multikey.Bool (run_op (module S) t spec)))
           ops
    in
    let invariants () =
      match Instr.run_sequential (fun () -> S.check_invariants t) with
      | Error _ as e -> e
      | Ok () ->
          let final = Instr.run_sequential (fun () -> S.to_list t) in
          let horizon = !clock in
          let keys =
            List.sort_uniq compare
              (List.map
                 (fun (spec : Ll_abstract.opspec) -> spec.Ll_abstract.v)
                 ops
              @ initial @ final)
          in
          let probes =
            List.mapi
              (fun k v ->
                {
                  Vbl_spec.Multikey.thread = 2000 + k;
                  op = Vbl_spec.Multikey.Single (Vbl_spec.Set_model.Contains v);
                  result = Vbl_spec.Multikey.Bool (List.mem v final);
                  invoked_at = horizon + (2 * k) + 1;
                  returned_at = horizon + (2 * k) + 2;
                })
              keys
          in
          let history = List.rev_append !events probes in
          if Vbl_spec.Multikey.check ~initial history then Ok ()
          else
            Error
              (Format.asprintf
                 "@[<h>range history not linearizable: %a@]"
                 (Format.pp_print_list
                    ~pp_sep:(fun ppf () -> Format.fprintf ppf " ")
                    Vbl_spec.Multikey.pp_event)
                 history)
    in
    {
      Explore.bodies;
      history = (fun () -> Vbl_spec.History.of_list []);
      invariants;
    }
  in
  { Explore.make }
