(** Compile-time check that both backends implement {!Mem_intf.S}; exports
    nothing. *)
