(** Backend conformance checks.

    Compile-time: both backends must implement {!Mem_intf.S} (checked by
    module constraints, exporting nothing).

    Runtime: {!check_parity} pushes one mixed workload — covering every
    primitive of the signature — through {!Real_mem} and {!Instr_mem} (the
    latter under [run_sequential]) and diffs the resulting abstract sets
    and per-operation results. *)

type parity_report = {
  real_set : int list;
  instr_set : int list;
  mismatches : string list;  (** empty = backends agree *)
}

val check_parity : unit -> parity_report
