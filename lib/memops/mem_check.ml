(* Compile-time check that both backends implement the shared signature.
   No code is generated; a mismatch is a build error here rather than a
   confusing one inside a list functor application. *)

module _ : Mem_intf.S = Real_mem
module _ : Mem_intf.S = Instr_mem

(* Runtime backend-parity check: the same mixed workload, expressed once
   as a functor over {!Mem_intf.S}, must leave the same abstract set
   behind on both backends.  The workload is a miniature sorted
   singly-linked set exercising every primitive of the signature — get,
   set, cas (taken and failed), touch, new_node, try_lock, blocking
   lock/unlock — so a backend whose primitive semantics drift (a cas that
   misreports, a set that is lost, lock state leaking between operations)
   produces a visible set difference rather than a subtle downstream
   failure.  [Instr_mem] runs it under [run_sequential]; [Real_mem]
   runs it directly on a single domain — both are sequential executions of
   the same program, so the results must agree exactly. *)

module Parity_workload (M : Mem_intf.S) = struct
  type node = Nil | Node of { value : int; next : node M.cell }

  let insert head v =
    let line = M.fresh_line () in
    if M.named then M.new_node ~name:(Printf.sprintf "P%d" v) ~line;
    let rec walk prev =
      match M.get prev with
      | Node { value; next } when value < v -> walk next
      | Node { value; _ } when value = v -> false
      | at ->
          let n = Node { value = v; next = M.make ~name:"p.next" ~line at } in
          M.cas prev at n
    in
    walk head

  let remove head v =
    let rec walk prev =
      match M.get prev with
      | Node { value; next } when value < v -> walk next
      | Node { value; next } when value = v ->
          M.set prev (M.get next);
          true
      | _ -> false
    in
    walk head

  let to_list head =
    let rec go acc n =
      match M.get n with Nil -> List.rev acc | Node { value; next } -> go (value :: acc) next
    in
    go [] head

  (* One deterministic mixed run: interleaved inserts/removes, a failed
     cas, lock-guarded mutation, and the bookkeeping primitives. *)
  let run () =
    let line = M.fresh_line () in
    let head = M.make ~name:"p.head" ~line Nil in
    M.touch ~line ~name:"p.touch";
    let lock = M.make_lock ~name:"p.lock" ~line () in
    let log = ref [] in
    let record op v r = log := (op, v, r) :: !log in
    List.iter
      (fun v -> record "insert" v (insert head v))
      [ 5; 3; 9; 3; 7; 1; 9 ];
    record "remove" 3 (remove head 3);
    record "remove" 4 (remove head 4);
    (* A cas that must fail: insert 0 replaces the head cell's node, so
       the earlier read is stale by the time the cas runs. *)
    let stale = M.get head in
    record "insert" 0 (insert head 0);
    record "cas-stale" 0 (M.cas head stale Nil);
    (* Lock-guarded update; also checks try_lock sees the held state. *)
    M.lock lock;
    record "trylock-held" 0 (M.try_lock lock);
    record "insert" 6 (insert head 6);
    M.unlock lock;
    record "trylock-free" 0 (M.try_lock lock);
    M.unlock lock;
    record "remove" 9 (remove head 9);
    (to_list head, List.rev !log)
end

module Parity_real = Parity_workload (Real_mem)
module Parity_instr = Parity_workload (Instr_mem)

type parity_report = {
  real_set : int list;
  instr_set : int list;
  mismatches : string list;  (** empty = backends agree *)
}

(** Run the workload through both backends and diff the resulting abstract
    sets and per-operation results. *)
let check_parity () =
  let real_set, real_log = Parity_real.run () in
  let instr_set, instr_log = Instr_mem.run_sequential Parity_instr.run in
  let mismatches = ref [] in
  if real_set <> instr_set then
    mismatches :=
      Printf.sprintf "final sets differ: real {%s} vs instr {%s}"
        (String.concat ", " (List.map string_of_int real_set))
        (String.concat ", " (List.map string_of_int instr_set))
      :: !mismatches;
  (try
     List.iter2
       (fun (op_r, v_r, res_r) (op_i, v_i, res_i) ->
         if (op_r, v_r, res_r) <> (op_i, v_i, res_i) then
           mismatches :=
             Printf.sprintf "op result differs: real %s(%d)=%b vs instr %s(%d)=%b" op_r v_r
               res_r op_i v_i res_i
             :: !mismatches)
       real_log instr_log
   with Invalid_argument _ ->
     mismatches := "operation logs have different lengths" :: !mismatches);
  { real_set; instr_set; mismatches = List.rev !mismatches }
