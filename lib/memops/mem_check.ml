(* Compile-time check that both backends implement the shared signature.
   No code is generated; a mismatch is a build error here rather than a
   confusing one inside a list functor application. *)

module _ : Mem_intf.S = Real_mem
module _ : Mem_intf.S = Instr_mem
