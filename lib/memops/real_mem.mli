(** The production memory backend: cells are [Atomic.t], locks are CAS
    try-locks with exponential backoff, instrumentation hooks are no-ops.
    See {!Mem_intf.S} for the contract. *)

include Mem_intf.S
