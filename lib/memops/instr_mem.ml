(** The instrumented backend: every shared-memory access performs an effect
    before it takes effect, so a single-domain handler can interleave
    threads deterministically.

    Atomicity model: the handler resumes exactly one thread at a time, and a
    resumed thread executes until its next effect.  Because each [get],
    [set], [cas], [touch], [new_node] and lock attempt performs its effect
    {e before} touching memory, every inter-effect interval contains at most
    one shared access, i.e. schedule points and shared accesses coincide —
    precisely the granularity at which the paper's schedules are defined.

    Two exceptions are handled specially:

    - a blocking {!lock} that finds the lock held performs {!Lock_busy};
      the handler is expected to park the thread and resume it only when the
      lock is (observed) free, so waiters consume no schedule steps;
    - {!unlock} performs {!Release} and the {e handler} applies the store,
      so a release is atomic with its schedule point.

    Every cell and lock additionally carries a {!shadow} record — a unique
    location identity plus mutable per-location analysis state (last-writer
    epoch, acquire-release vector clock, candidate lock-set).  The backend
    itself never reads or writes the analysis fields; they are owned by the
    dynamic-analysis layer ([vbl.analysis]), which reaches them through the
    {!access} payload without any side-table lookup on the hot path.
    Shadow state is per-instance: a fresh list means fresh cells means
    fresh shadows, so explored executions never leak state into each other.

    This module is deliberately not thread-safe: all instrumented execution
    happens cooperatively inside one domain. *)

type shadow = {
  s_loc : int;  (** unique location id; [-1] on the placeholder shadow *)
  mutable s_wr_tid : int;  (** last plain-write thread, [-1] if none *)
  mutable s_wr_clock : int;  (** that thread's clock at the write *)
  mutable s_sync : int array;  (** acquire-release vector clock; [[||]] = bottom *)
  mutable s_lockset : int array option;  (** candidate lock-set over plain writes *)
  mutable s_writers : int;  (** bitmask of plain-writer thread ids *)
}

let loc_counter = ref 0

let fresh_shadow () =
  incr loc_counter;
  {
    s_loc = !loc_counter;
    s_wr_tid = -1;
    s_wr_clock = 0;
    s_sync = [||];
    s_lockset = None;
    s_writers = 0;
  }

(* Shared by location-less steps ([touch], [new_node]); the analysis layer
   skips shadows with a negative location. *)
let no_shadow =
  { s_loc = -1; s_wr_tid = -1; s_wr_clock = 0; s_sync = [||]; s_lockset = None; s_writers = 0 }

type access_kind =
  | Read
  | Write
  | Cas
  | Touch
  | New_node
  | Lock_try
  | Lock_release
      (** Synthesized by schedulers for pending {!Release} effects; the
          instrumented code itself never performs an [Access] with this
          kind. *)

type access = { line : int; name : string; kind : access_kind; shadow : shadow }

type lock = { l_line : int; l_name : string; mutable held : bool; l_shadow : shadow }

type _ Effect.t +=
  | Access : access -> unit Effect.t
      (** Scheduling point announcing the access about to happen. *)
  | Lock_busy : lock -> unit Effect.t
      (** The performer wants [lock] but it is held; park me until free. *)
  | Release : lock -> unit Effect.t
      (** The handler must set [held <- false] before resuming anyone. *)

let pp_kind ppf = function
  | Read -> Format.pp_print_string ppf "R"
  | Write -> Format.pp_print_string ppf "W"
  | Cas -> Format.pp_print_string ppf "CAS"
  | Touch -> Format.pp_print_string ppf "touch"
  | New_node -> Format.pp_print_string ppf "new"
  | Lock_try -> Format.pp_print_string ppf "trylock"
  | Lock_release -> Format.pp_print_string ppf "unlock"

let pp_access ppf a = Format.fprintf ppf "%a(%s)" pp_kind a.kind a.name

type 'a cell = { mutable v : 'a; c_line : int; c_name : string; c_shadow : shadow }

(* This backend is what names are for: schedule scripts address steps by
   them, so algorithms must take their [named = true] branch and build the
   full Naming.* vocabulary. *)
let named = true

let line_counter = ref 0

let fresh_line () =
  incr line_counter;
  !line_counter

let make ?(name = "") ~line v =
  { v; c_line = line; c_name = name; c_shadow = fresh_shadow () }

(* Padding is a physical-layout concern; the instrumented cost model works
   in explicit [line]s, so a padded cell is just a cell (and must NOT be
   re-allocated: schedules address cells by identity). *)
let make_padded ?name ~line v = make ?name ~line v

let yield ~line ~name ~shadow kind = Effect.perform (Access { line; name; kind; shadow })

let get c =
  yield ~line:c.c_line ~name:c.c_name ~shadow:c.c_shadow Read;
  c.v

let set c v =
  yield ~line:c.c_line ~name:c.c_name ~shadow:c.c_shadow Write;
  c.v <- v

(* Result of the most recent [cas], readable by the scheduler that resumed
   it: schedule scripts distinguish effective writes from failed CAS
   attempts (e.g. the failed physical removal in the paper's Figure 3).
   Single-domain cooperative execution makes the singleton safe. *)
let last_cas_result = ref true

let cas c expected desired =
  yield ~line:c.c_line ~name:c.c_name ~shadow:c.c_shadow Cas;
  let success = c.v == expected in
  if success then c.v <- desired;
  last_cas_result := success;
  success

let touch ~line ~name = yield ~line ~name ~shadow:no_shadow Touch

let new_node ~name ~line = yield ~line ~name ~shadow:no_shadow New_node

(* No reclamation on the plain instrumented backend: schedules and their
   golden step sequences predate the reclaim layer and must not change.
   {!Instr_reclaim} layers the live hooks over these same cells. *)
let reclaiming = false

type 'a pool = 'a

let make_pool ~dummy = dummy

let op_enter _ = 0

let op_exit _ _ = ()

let retire _ _ = ()

let recycle p = p

let make_lock ?(name = "") ~line () =
  { l_line = line; l_name = name; held = false; l_shadow = fresh_shadow () }

let try_lock l =
  yield ~line:l.l_line ~name:l.l_name ~shadow:l.l_shadow Lock_try;
  let success = not l.held in
  if success then l.held <- true;
  last_cas_result := success;
  success

let rec lock l =
  if try_lock l then ()
  else begin
    Effect.perform (Lock_busy l);
    lock l
  end

let unlock l = Effect.perform (Release l)

let lock_held l = l.held

(* Handlers must apply the release themselves; this helper keeps that logic
   in one place. *)
let apply_release l = l.held <- false

(** Run instrumented code single-threaded, resuming every effect
    immediately.  Used to build initial list states (pre-population) before
    handing control to a real scheduler.  A [Lock_busy] here means a lock
    was left held by earlier setup code — a bug — so it raises. *)
let run_sequential (type r) (f : unit -> r) : r =
  Effect.Deep.match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Access _ -> Some (fun (k : (a, r) Effect.Deep.continuation) -> Effect.Deep.continue k ())
          | Release l ->
              Some
                (fun (k : (a, r) Effect.Deep.continuation) ->
                  apply_release l;
                  Effect.Deep.continue k ())
          | Lock_busy l ->
              Some
                (fun (_ : (a, r) Effect.Deep.continuation) ->
                  failwith ("Instr_mem.run_sequential: deadlock on " ^ l.l_name))
          | _ -> None);
    }
