(** The reclaiming production backend: {!Real_mem} cells and locks with
    epoch-based reclamation and per-domain node recycling live.  See
    {!Mem_intf.S} for the contract and [lib/reclaim] for the protocol. *)

include Mem_intf.S with type 'a pool = 'a Vbl_reclaim.Pool.t

val stats : 'a pool -> Vbl_reclaim.Pool.stats
(** Racy limbo/free depths for reports; exact only at quiescence. *)
