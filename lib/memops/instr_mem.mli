(** The instrumented memory backend: every shared access performs an
    effect before taking effect, so a single-domain handler can interleave
    threads deterministically.

    Atomicity model: a resumed thread executes until its next effect, and
    every inter-effect interval contains at most one shared access, so
    schedule points and shared accesses coincide — the granularity the
    paper's schedules are defined at.  Two special cases: a blocking
    {!lock} that finds the lock held performs {!Lock_busy} (handlers park
    the thread), and {!unlock} performs {!Release} (the {e handler}
    applies the store via {!apply_release}, atomically with the schedule
    point).

    This module implements {!Mem_intf.S} but deliberately exposes its
    representation: handlers (the conductor in [vbl.sched], the cost
    simulator in [vbl.sim]) need the effect payloads and lock state, and
    the dynamic-analysis layer ([vbl.analysis]) needs the per-location
    {!shadow} records carried by every access. *)

type shadow = {
  s_loc : int;  (** unique location id; [-1] on {!no_shadow} *)
  mutable s_wr_tid : int;  (** last plain-write thread, [-1] if none *)
  mutable s_wr_clock : int;  (** that thread's clock at the write *)
  mutable s_sync : int array;  (** acquire-release vector clock; [[||]] = bottom *)
  mutable s_lockset : int array option;  (** candidate lock-set over plain writes *)
  mutable s_writers : int;  (** bitmask of plain-writer thread ids *)
}
(** Per-location analysis state.  The backend allocates one shadow per cell
    and per lock (identity plus bottom analysis fields) and never touches
    the mutable fields itself; the race detector and lock-discipline linter
    own them.  Shadows are per-instance — fresh cells mean fresh shadows —
    so explored executions cannot contaminate each other. *)

val fresh_shadow : unit -> shadow

val no_shadow : shadow
(** Placeholder carried by location-less steps ([touch], [new_node]); its
    [s_loc] is [-1] and analyses skip it. *)

type access_kind =
  | Read
  | Write
  | Cas
  | Touch
  | New_node
  | Lock_try
  | Lock_release
      (** Synthesized by schedulers for pending {!Release} effects; the
          instrumented code itself never performs an [Access] with this
          kind. *)

type access = { line : int; name : string; kind : access_kind; shadow : shadow }

type lock = { l_line : int; l_name : string; mutable held : bool; l_shadow : shadow }

type _ Effect.t +=
  | Access : access -> unit Effect.t  (** announces the access about to happen *)
  | Lock_busy : lock -> unit Effect.t  (** performer wants a held lock: park me *)
  | Release : lock -> unit Effect.t  (** handler must {!apply_release} before resuming anyone *)

val pp_kind : Format.formatter -> access_kind -> unit

val pp_access : Format.formatter -> access -> unit

type 'a cell

val named : bool
(** [true]: schedule scripts address steps by name, so algorithms must
    build the [Naming.*] vocabulary for this backend. *)

val fresh_line : unit -> int

val make : ?name:string -> line:int -> 'a -> 'a cell

val make_padded : ?name:string -> line:int -> 'a -> 'a cell
(** Identical to {!make}: padding is a physical-layout concern the
    instrumented cost model expresses through [line]s instead. *)

val get : 'a cell -> 'a

val set : 'a cell -> 'a -> unit

val cas : 'a cell -> 'a -> 'a -> bool

val last_cas_result : bool ref
(** Result of the most recent [cas] or [try_lock], readable by the
    scheduler that resumed it (schedule scripts distinguish effective
    writes from failed attempts).  Single-domain cooperative execution
    makes the singleton safe. *)

val touch : line:int -> name:string -> unit

val new_node : name:string -> line:int -> unit

val reclaiming : bool
(** [false]: the plain instrumented backend never recycles, so golden
    schedule step sequences are unchanged.  {!Instr_reclaim} provides the
    reclaiming variant over these same cells. *)

type 'a pool

val make_pool : dummy:'a -> 'a pool

val op_enter : 'a pool -> int

val op_exit : 'a pool -> int -> unit

val retire : 'a pool -> 'a -> unit

val recycle : 'a pool -> 'a

val make_lock : ?name:string -> line:int -> unit -> lock

val try_lock : lock -> bool

val lock : lock -> unit

val unlock : lock -> unit

val lock_held : lock -> bool

val apply_release : lock -> unit
(** Handlers must apply the release themselves on {!Release}. *)

val run_sequential : (unit -> 'r) -> 'r
(** Run instrumented code single-threaded, resuming every effect
    immediately; used to build initial states before a scheduler takes
    over.  [Lock_busy] here means setup code deadlocked itself and
    fails. *)
