(** The reclaiming production backend: {!Real_mem}'s cells and locks with
    the epoch-based reclamation hooks live ([reclaiming = true]).

    Operations bracket themselves with the process-wide epoch protocol
    ([Vbl_reclaim.Epoch]); unlinked nodes sit in per-domain limbo bags
    until two epoch advances prove no traversal can still reach them, then
    recycle into later inserts through a per-domain free-list
    ([Vbl_reclaim.Pool]).  In OCaml nothing is ever freed behind the GC's
    back — what the grace period buys is the safety of {e reinitializing}
    a node (new value, new successor) without a concurrent traversal
    observing the change, plus the allocation win: a free-list hit costs
    an insert 0 fresh words instead of a 13-word node. *)

include Real_mem

let reclaiming = true

type 'a pool = 'a Vbl_reclaim.Pool.t

let make_pool ~dummy = Vbl_reclaim.Pool.create ~dummy

let[@inline] op_enter _ = Vbl_reclaim.Epoch.enter ()

let[@inline] op_exit _ _ = Vbl_reclaim.Epoch.leave ()

let retire p x = Vbl_reclaim.Pool.retire p x

let[@inline] recycle p = Vbl_reclaim.Pool.recycle p

let stats = Vbl_reclaim.Pool.stats
