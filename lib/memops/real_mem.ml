(** The production backend: cells are [Atomic.t], locks are CAS try-locks
    with exponential backoff, instrumentation hooks are no-ops.  See
    {!Mem_intf.S} for the contract.

    [named = false]: algorithms skip name construction entirely, so a
    node's creation allocates exactly its cells and nothing else.  The
    accessors are [@inline]-annotated single primitives, letting the
    compiler collapse them into the callers once a functor body is
    specialised (flambda collapses the whole indirection; classic mode
    still turns them into direct known calls). *)

type 'a cell = 'a Atomic.t

let named = false

let fresh_line () = 0

let[@inline] make ?name:_ ~line:_ v = Atomic.make v

(* A padded cell spans a whole cache line, so striped counters written by
   different domains never invalidate each other's lines.  Cold path only
   (cells are padded at creation; accesses go through the same [Atomic]
   primitives). *)
let make_padded ?name:_ ~line:_ v = Vbl_sync.Padding.copy_as_padded (Atomic.make v)

let[@inline] get c = Atomic.get c

let[@inline] set c v = Atomic.set c v

let[@inline] cas c expected desired = Atomic.compare_and_set c expected desired

let[@inline] touch ~line:_ ~name:_ = ()

let[@inline] new_node ~name:_ ~line:_ = ()

(* No reclamation: the pool is just the dummy sentinel, so [recycle]
   always "misses" and algorithms always allocate fresh nodes — the
   pre-reclamation behaviour, at zero cost (every hook below is a
   constant or the identity). *)
let reclaiming = false

type 'a pool = 'a

let[@inline] make_pool ~dummy = dummy

let[@inline] op_enter _ = 0

let[@inline] op_exit _ _ = ()

let[@inline] retire _ _ = ()

let[@inline] recycle p = p

type lock = Vbl_sync.Try_lock.t

(* Opt-in cache-line padding for per-node lock words (curbs false sharing
   between a node's lock and its neighbours at 8 words/lock): set
   VBL_PADDED_LOCKS=1 in the environment.  Read once at module
   initialisation so the per-node decision is one immutable bool. *)
let padded_locks =
  match Sys.getenv_opt "VBL_PADDED_LOCKS" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let make_lock ?name:_ ~line:_ () =
  if padded_locks then Vbl_sync.Try_lock.create_padded ()
  else Vbl_sync.Try_lock.create ()

let[@inline] try_lock l = Vbl_sync.Try_lock.try_lock l

let[@inline] lock l = Vbl_sync.Try_lock.lock l

let[@inline] unlock l = Vbl_sync.Try_lock.unlock l

let[@inline] lock_held l = Vbl_sync.Try_lock.is_locked l
