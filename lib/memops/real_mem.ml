(** The production backend: cells are [Atomic.t], locks are CAS try-locks
    with exponential backoff, instrumentation hooks are no-ops.  See
    {!Mem_intf.S} for the contract. *)

type 'a cell = 'a Atomic.t

let fresh_line () = 0

let make ?name:_ ~line:_ v = Atomic.make v

let get = Atomic.get

let set = Atomic.set

let cas c expected desired = Atomic.compare_and_set c expected desired

let touch ~line:_ ~name:_ = ()

let new_node ~name:_ ~line:_ = ()

type lock = Vbl_sync.Try_lock.t

let make_lock ?name:_ ~line:_ () = Vbl_sync.Try_lock.create ()

let try_lock = Vbl_sync.Try_lock.try_lock

let lock = Vbl_sync.Try_lock.lock

let unlock = Vbl_sync.Try_lock.unlock

let lock_held = Vbl_sync.Try_lock.is_locked
