(** Shared-memory operations, abstracted.

    Every list-based set in this repository is a functor over {!S}, so a
    single source per algorithm serves three clients:

    - {!Real_mem}: plain [Atomic.t] cells — what benchmarks and the example
      applications run on;
    - {!Instr_mem}: cells whose every access performs an effect, so a
      single-domain handler can interleave threads deterministically — what
      the schedule framework (paper §2), the bounded-exploration checker and
      the multicore cost simulator run on;
    - {!Reclaim_mem} / {!Instr_reclaim}: the same two engines with the
      epoch-based reclamation hooks ({!S.reclaiming} and friends) live, so
      unlinked nodes are quarantined until their grace period passes and
      then recycled into later inserts instead of leaking to the GC.

    The vocabulary matches what the paper's schedules are made of: [get] /
    [set] / [cas] on node fields, node-creation events, and per-node locks.
    Lines tag the coherence granule an access belongs to: all cells of one
    list node share the node's line, mirroring the fact that a node's
    [val]/[next]/[deleted]/lock metadata share a cache line on the paper's
    testbeds.  The real backend ignores lines and names entirely. *)

module type S = sig
  type 'a cell
  (** A shared mutable location holding an ['a]. *)

  val named : bool
  (** Whether this backend consumes step names.  Instrumented backends say
      [true]; the real backend says [false], and algorithms use the flag to
      skip building [Naming.*] strings (and the [new_node]/[touch] calls
      that would carry them) entirely.  This keeps the real hot path
      allocation-free: a [make ~name:...] call site boxes the optional
      argument and builds the string even though {!Real_mem} discards both.
      Instrumented step names are unaffected — the [named = true] branch of
      every algorithm is the verbatim pre-existing naming code. *)

  val fresh_line : unit -> int
  (** Allocate a new coherence-granule identifier.  Each list node calls
      this once and tags all its cells with the result. *)

  val make : ?name:string -> line:int -> 'a -> 'a cell
  (** [make ?name ~line v] allocates a cell on [line] with initial value
      [v].  [name] only matters to instrumented backends (it is how schedule
      scripts refer to steps, e.g. ["X1.next"]). *)

  val make_padded : ?name:string -> line:int -> 'a -> 'a cell
  (** Like {!make}, but the real backend places the cell on its own cache
      line (cf. [Padding.copy_as_padded]) so hot counters written by
      different domains never false-share.  Instrumented backends — whose
      cost model already works in explicit [line]s — treat it exactly as
      {!make}. *)

  val get : 'a cell -> 'a

  val set : 'a cell -> 'a -> unit

  val cas : 'a cell -> 'a -> 'a -> bool
  (** [cas c expected desired] — single-word compare-and-set on physical
      equality, as with [Atomic.compare_and_set]. *)

  val touch : line:int -> name:string -> unit
  (** Record a read of an immutable allocation living on [line].  Used by
      the Harris-Michael AMR variant, whose mark/pointer pair is a separate
      allocation: the extra dependent load the paper blames for its slower
      traversals.  No-op on the real backend (the actual dependent load
      happens in the OCaml code itself). *)

  val new_node : name:string -> line:int -> unit
  (** Record a node-creation step (the [new(X)] events of the paper's
      schedules, e.g. Figure 2).  No-op on the real backend. *)

  val reclaiming : bool
  (** Whether this backend reclaims retired nodes.  Like {!named}, this is
      a branch-compile-time flag algorithms guard on: when [false] (the
      plain real and instrumented backends) every reclamation hook below
      is a no-op and algorithms skip the epoch brackets and free-list
      probes entirely, so the non-reclaiming hot paths are byte-for-byte
      the pre-reclamation code.  When [true], operations must be
      bracketed with {!op_enter}/{!op_exit}, unlinked nodes handed to
      {!retire}, and inserts may ask {!recycle} for an aged-out node
      before allocating a fresh one. *)

  type 'a pool
  (** Per-structure recycling state for nodes of type ['a] (limbo bags +
      free-lists on reclaiming backends; just the dummy sentinel on the
      others). *)

  val make_pool : dummy:'a -> 'a pool
  (** [dummy] is what {!recycle} returns on a miss; callers compare with
      [==] (never an option — the insert path is [[@hot]]).  Use a node
      that can never be retired; list head sentinels are ideal. *)

  val op_enter : 'a pool -> int
  (** Open an epoch-protected critical section around one set operation;
      returns a handle for the matching {!op_exit}.  While a domain is
      inside a bracket, no node it can reach may be recycled.  No-op
      returning [0] on non-reclaiming backends. *)

  val op_exit : 'a pool -> int -> unit

  val retire : 'a pool -> 'a -> unit
  (** Hand over a node that was just physically unlinked (or never
      published).  At most once per node, from within the operation's
      bracket.  The node's cells must be left in a state where
      reinitialization by a later recycler is safe — in particular its
      lock (if any) released by the end of the retiring operation. *)

  val recycle : 'a pool -> 'a
  (** A node whose grace period has verifiably passed, or the pool's
      dummy.  Allocation-free on reclaiming real backends (the free-list
      pop the [@hot] lint rule is pointed at). *)

  type lock
  (** A per-node mutex. *)

  val make_lock : ?name:string -> line:int -> unit -> lock

  val try_lock : lock -> bool
  (** One acquisition attempt; never waits. *)

  val lock : lock -> unit
  (** Blocking acquire.  On the instrumented backend a waiter parks until a
      release on the same lock rather than consuming schedule steps. *)

  val unlock : lock -> unit

  val lock_held : lock -> bool
  (** Racy observation, for validation-under-lock and tests. *)
end
