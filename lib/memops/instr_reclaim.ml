(** Instrumented reclaiming backends: {!Instr_mem}'s effect-performing
    cells and locks with the reclamation hooks live, so DPOR and the
    seeded random scheduler can interleave the epoch protocol itself
    against traversals and check that no execution observes a recycled
    node it could still reach.

    Model granularity: the epoch counter is an instrumented cell — every
    read of it and every advance CAS is a schedule point — while the
    active-operation counts, limbo bags and free-list are plain state
    mutated in the same inter-effect slice as the epoch access they
    follow.  This models announce (epoch read + active increment) and
    advance (condition check + CAS) as atomic protocol steps, which is
    the semantics the real backend's validated-announce loop enforces;
    see FRAMEWORK.md "Known approximations".  [op_exit] performs no
    effect: the decrement lands in the slice of the operation's last
    shared access, i.e. the model lets a domain quiesce at its final
    access rather than strictly after it — sound, because the operation
    reads nothing afterwards.

    [Make] takes an [eager] knob: [Safe] enforces the three-bag grace
    period; [Eager] recycles a retired node immediately, the seeded
    use-after-reclaim mutant the DPOR suite must catch (a traversal
    parked on the node observes its reinitialized value — a
    non-linearizable outcome). *)

module type CONFIG = sig
  val eager : bool
  (** [true]: skip the grace period entirely (seeded bug for the analysis
      suites). *)
end

module Make (Cfg : CONFIG) = struct
  include Instr_mem

  let reclaiming = true

  type 'a pstate = {
    dummy : 'a;
    epoch : int Instr_mem.cell;  (* instrumented: reads/CASes are steps *)
    active : int array;  (* ops in flight per epoch mod 3 *)
    bags : 'a list array;  (* limbo, indexed by retire-epoch mod 3 *)
    bag_lens : int array;
    mutable bag_epoch : int;
    mutable free : 'a list;
  }

  type 'a pool = 'a pstate

  (* Per-pool (hence per-instance) epoch state: every explored execution
     builds a fresh structure, so replayed schedule prefixes always see
     identical protocol state — the determinism DPOR depends on. *)
  let make_pool ~dummy =
    {
      dummy;
      epoch = Instr_mem.make ~name:"reclaim.epoch" ~line:(Instr_mem.fresh_line ()) 1;
      active = [| 0; 0; 0 |];
      bags = [| []; []; [] |];
      bag_lens = [| 0; 0; 0 |];
      bag_epoch = 1;
      free = [];
    }

  let op_enter p =
    let e = Instr_mem.get p.epoch in
    p.active.(e mod 3) <- p.active.(e mod 3) + 1;
    e

  let op_exit p h = p.active.(h mod 3) <- p.active.(h mod 3) - 1

  let move_bag p i =
    if p.bag_lens.(i) > 0 then begin
      p.free <- List.rev_append p.bags.(i) p.free;
      p.bags.(i) <- [];
      p.bag_lens.(i) <- 0
    end

  (* Catch the bags up with epoch [e]; a bag frees when [bag_epoch]
     passes its slot again, three epochs after it was filled. *)
  let rotate p e =
    if e - p.bag_epoch >= 3 then begin
      move_bag p 0;
      move_bag p 1;
      move_bag p 2;
      p.bag_epoch <- e
    end
    else
      while p.bag_epoch < e do
        p.bag_epoch <- p.bag_epoch + 1;
        move_bag p (p.bag_epoch mod 3)
      done

  (* Advance from [e] is legal once no operation announced at an older
     epoch remains; only [e] and [e - 1] can carry announcements. *)
  let can_advance p e = p.active.((e - 1) mod 3) = 0

  let retire p x =
    if Cfg.eager then
      (* Seeded use-after-reclaim: straight onto the free-list. *)
      p.free <- x :: p.free
    else begin
      let e = Instr_mem.get p.epoch in
      rotate p e;
      let i = e mod 3 in
      p.bags.(i) <- x :: p.bags.(i);
      p.bag_lens.(i) <- p.bag_lens.(i) + 1;
      if can_advance p e then ignore (Instr_mem.cas p.epoch e (e + 1) : bool)
    end

  (* Help the epoch along on a miss: up to [budget] advance attempts,
     each a visible CAS step, stopping as soon as a bag frees. *)
  let rec catch_up p budget =
    let e = Instr_mem.get p.epoch in
    rotate p e;
    if budget > 0 && p.free == [] && can_advance p e then begin
      if Instr_mem.cas p.epoch e (e + 1) then rotate p (e + 1);
      catch_up p (budget - 1)
    end

  let recycle p =
    match p.free with
    | x :: tl ->
        p.free <- tl;
        x
    | [] -> (
        if Cfg.eager then p.dummy
        else begin
          catch_up p 3;
          match p.free with
          | x :: tl ->
              p.free <- tl;
              x
          | [] -> p.dummy
        end)
end

module Safe = Make (struct
  let eager = false
end)

module Eager = Make (struct
  let eager = true
end)
