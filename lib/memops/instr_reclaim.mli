(** Instrumented reclaiming backends over {!Instr_mem}'s cells: the epoch
    counter is itself an instrumented cell, so DPOR interleaves the
    reclamation protocol against traversals.  [Safe] enforces the grace
    period; [Eager] is the seeded use-after-reclaim mutant the analysis
    suite must catch.  See instr_reclaim.ml for the atomicity model. *)

module type CONFIG = sig
  val eager : bool
end

module Make (_ : CONFIG) : Mem_intf.S

module Safe : Mem_intf.S

module Eager : Mem_intf.S
