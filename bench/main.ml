(* The benchmark harness: regenerates every figure of the paper's
   evaluation plus the ablations called out in DESIGN.md.

   Sections (all printed by a default run):

     1. Bechamel microbenchmarks — one Test.make group per figure/ablation:
          fig1-ops / fig4-ops      per-op latency on the paper's workloads
          ablation-functor         functorised VBL vs hand-specialised VBL
          ablation-marks           mark encodings (flag / AMR / tagged)
          skiplist-ops / bst-ops   the extension families
     2. Figure 1 — Lazy vs VBL thread sweep (simulated engine + real).
     3. Figure 4 — the 3x4 workload grid (simulated engine).
     4. Headlines — the 1.6x ratios quoted in the paper's prose.
     5. Ablations — vbl vs vbl-postlock vs vbl-versioned (validation
        strategies) on the Figure 1 workload.
     6. Extended family — all eight list algorithms on one workload.
     7. Extensions — skip lists and external BSTs (paper §5 future work).
     8. Appendix — zipfian hot-key workload.

   Flags: --quick (smaller sweeps), --full (paper-sized sweeps),
          --machine amd (Opteron cost profile), --skip-micro,
          --skip-figures.

   Observability modes (run instead of the figure suite):
          --metrics [--json FILE]  per-algorithm counter + latency tables
          --trace                  event-trace dump from a short sim run
          --smoke                  tiny metrics+trace exercise for CI
          --matrix [--json FILE]   real-engine scaling matrix
                                   (threads x update%% x key range) over the
                                   measured algorithms plus the vbl-direct
                                   ablation baseline and the reclamation
                                   on/off churn ablation; JSON in the
                                   BENCH_*.json schema
          --churn [--json FILE]    churn preset: update-heavy traffic on a
                                   small key range, each algorithm with
                                   reclamation off and on — throughput,
                                   retire/recycle counters, limbo depth and
                                   GC words per operation
          --profile [--algos a,b]  contention profile: wait-time-by-site
                                   table, hot-shard ranking, flight-recorder
                                   tail ([--interval S] adds periodic
                                   progress lines; composes with --smoke for
                                   a short CI-sized run)
          --export PREFIX          write PREFIX.metrics.txt (OpenMetrics)
                                   and PREFIX.trace.json (Chrome trace) from
                                   the last profiled run                   *)

open Bechamel
open Toolkit

let quick = Array.exists (( = ) "--quick") Sys.argv
let full = Array.exists (( = ) "--full") Sys.argv
let skip_micro = Array.exists (( = ) "--skip-micro") Sys.argv
let skip_figures = Array.exists (( = ) "--skip-figures") Sys.argv
let metrics_mode = Array.exists (( = ) "--metrics") Sys.argv
let trace_mode = Array.exists (( = ) "--trace") Sys.argv
let smoke = Array.exists (( = ) "--smoke") Sys.argv
let matrix_mode = Array.exists (( = ) "--matrix") Sys.argv
let churn_mode = Array.exists (( = ) "--churn") Sys.argv
let profile_mode = Array.exists (( = ) "--profile") Sys.argv

let flag_value name =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then None
    else if Sys.argv.(i) = name then Some Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let json_file = flag_value "--json"
let export_prefix = flag_value "--export"
let interval_s = Option.map float_of_string (flag_value "--interval")

let seed = 42L

(* ------------------------------------------------------------------ *)
(* 1. Bechamel microbenchmarks                                         *)
(* ------------------------------------------------------------------ *)

(* Per-op latency of each measured algorithm on a pre-populated list:
   one insert+remove pair and one contains per "run", uniform keys. *)
let ops_test ~range (impl : Vbl_lists.Registry.impl) =
  let module S = (val impl) in
  let t = S.create () in
  let rng = Vbl_util.Rng.create ~seed () in
  for v = 1 to range do
    if Vbl_util.Rng.bool rng then ignore (S.insert t v)
  done;
  Test.make ~name:S.name
    (Staged.stage (fun () ->
         let v = 1 + Vbl_util.Rng.int rng range in
         ignore (S.insert t v);
         ignore (S.contains t (1 + Vbl_util.Rng.int rng range));
         ignore (S.remove t v)))

let contains_test ~range (impl : Vbl_lists.Registry.impl) =
  let module S = (val impl) in
  let t = S.create () in
  let rng = Vbl_util.Rng.create ~seed () in
  for v = 1 to range do
    if Vbl_util.Rng.bool rng then ignore (S.insert t v)
  done;
  Test.make ~name:S.name
    (Staged.stage (fun () -> ignore (S.contains t (1 + Vbl_util.Rng.int rng range))))

let vbl_direct_test ~range =
  let t = Vbl_direct.create () in
  let rng = Vbl_util.Rng.create ~seed () in
  for v = 1 to range do
    if Vbl_util.Rng.bool rng then ignore (Vbl_direct.insert t v)
  done;
  Test.make ~name:"vbl-direct"
    (Staged.stage (fun () ->
         let v = 1 + Vbl_util.Rng.int rng range in
         ignore (Vbl_direct.insert t v);
         ignore (Vbl_direct.contains t (1 + Vbl_util.Rng.int rng range));
         ignore (Vbl_direct.remove t v)))

let micro_groups () =
  let measured = Vbl_lists.Registry.measured in
  let hm_amr = Vbl_lists.Registry.find_exn "harris-michael" in
  let vbl = Vbl_lists.Registry.find_exn "vbl" in
  let hm_tagged = Vbl_lists.Registry.find_exn "harris-michael-tagged" in
  [
    Test.make_grouped ~name:"fig1-ops" (List.map (ops_test ~range:50) measured);
    Test.make_grouped ~name:"fig4-ops"
      (List.map (ops_test ~range:2_000) (measured @ [ hm_amr ]));
    Test.make_grouped ~name:"ablation-functor"
      [ ops_test ~range:200 vbl; vbl_direct_test ~range:200 ];
    Test.make_grouped ~name:"ablation-marks"
      (List.map (contains_test ~range:200) [ vbl; hm_amr; hm_tagged ]);
    Test.make_grouped ~name:"skiplist-ops"
      (List.map (ops_test ~range:2_000) Vbl_skiplists.Registry.all
      @ [ ops_test ~range:2_000 vbl ]);
    Test.make_grouped ~name:"bst-ops"
      (List.map (ops_test ~range:2_000) Vbl_trees.Registry.concurrent);
  ]

let run_micro () =
  let quota = Time.second (if quick then 0.25 else 0.5) in
  let cfg = Benchmark.cfg ~limit:2000 ~quota ~kde:None () in
  let instances = Instance.[ monotonic_clock ] in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  print_endline "== Microbenchmarks (Bechamel, ns/op, single thread, real backend) ==";
  List.iter
    (fun group ->
      let raw = Benchmark.all cfg instances group in
      let results = Analyze.all ols Instance.monotonic_clock raw in
      let rows =
        Hashtbl.fold
          (fun name ols acc ->
            let est =
              match Analyze.OLS.estimates ols with Some (e :: _) -> e | _ -> nan
            in
            (name, est) :: acc)
          results []
      in
      List.iter
        (fun (name, est) -> Printf.printf "  %-40s %12.1f ns/op\n" name est)
        (List.sort compare rows);
      print_newline ())
    (micro_groups ())

(* ------------------------------------------------------------------ *)
(* 2-5. Figure harness                                                  *)
(* ------------------------------------------------------------------ *)

(* --machine amd switches the coherence profile to the paper's Opteron
   testbed (its tech-report results); default is the Intel profile. *)
let machine =
  let rec find i =
    if i + 1 >= Array.length Sys.argv then "intel"
    else if Sys.argv.(i) = "--machine" then Sys.argv.(i + 1)
    else find (i + 1)
  in
  find 1

let sim_engine =
  Vbl_harness.Sweep.simulated
    ~costs:(Vbl_sim.Coherence.profile_exn machine)
    ~horizon:(if quick then 30_000. else if full then 200_000. else 50_000.)
    ~trials:(if quick then 2 else if full then 5 else 2)
    ()

let real_engine =
  Vbl_harness.Sweep.Real
    {
      duration_s = (if quick then 0.2 else if full then 5.0 else 0.5);
      warmup_s = (if quick then 0.1 else if full then 5.0 else 0.25);
      trials = (if quick then 2 else if full then 5 else 3);
    }

let sim_threads =
  if quick then [ 1; 8; 24; 48; 72 ] else [ 1; 4; 8; 16; 24; 32; 40; 48; 56; 64; 72 ]

let real_threads =
  let cores = Domain.recommended_domain_count () in
  List.sort_uniq compare (List.filter (fun t -> t <= max 2 (2 * cores)) [ 1; 2; 4; 8 ])

let figure1 () =
  print_endline "== Figure 1: throughput, 20% updates, key range 50 ==";
  print_newline ();
  let sim = Vbl_harness.Sweep.figure1 ~thread_counts:sim_threads sim_engine ~seed in
  print_endline (Vbl_harness.Report.render_figure1 sim_engine sim);
  print_newline ();
  let real = Vbl_harness.Sweep.figure1 ~thread_counts:real_threads real_engine ~seed in
  print_endline (Vbl_harness.Report.render_figure1 real_engine real);
  Printf.printf "\n(real engine bounded by %d physical cores on this host)\n\n"
    (Domain.recommended_domain_count ())

let figure4 () =
  print_endline "== Figure 4: the 3-ratio x 4-range grid (simulated engine) ==";
  print_newline ();
  (* The two large ranges cost O(range) simulated steps per operation;
     the default sweep keeps them to three thread counts so a full default
     run stays under an hour on one core.  --full restores the dense
     sweep. *)
  let thread_counts =
    if quick then [ 1; 24; 72 ] else if full then [ 1; 8; 24; 48; 72 ] else [ 1; 24; 72 ]
  in
  let key_ranges =
    if quick then [ 50; 2_000 ] else Vbl_harness.Workload.paper_key_ranges
  in
  let panels =
    Vbl_harness.Sweep.figure4 ~thread_counts ~key_ranges sim_engine ~seed
  in
  print_endline (Vbl_harness.Report.render_figure4 sim_engine panels);
  print_newline ()

let headlines () =
  print_endline "== Headline ratios ==";
  print_endline
    (Vbl_harness.Report.render_headlines
       (Vbl_harness.Sweep.headlines ~threads:72 sim_engine ~seed));
  print_newline ()

(* The whole list family on one contended workload: where each synchroni-
   sation strategy lands between coarse locking and VBL. *)
let family_sweep () =
  print_endline "== Extended family: every list algorithm, 20% updates, range 50 ==";
  print_newline ();
  let points =
    Vbl_harness.Sweep.series sim_engine
      ~algorithms:
        [
          "coarse";
          "hand-over-hand";
          "optimistic";
          "lazy";
          "harris-michael";
          "harris-michael-tagged";
          "fomitchev-ruppert";
          "vbl";
        ]
      ~thread_counts:(if quick then [ 1; 24 ] else [ 1; 8; 24; 48; 72 ])
      ~update_percent:20 ~key_range:50 ~seed
  in
  print_endline
    (Vbl_harness.Report.render_panel ~engine:sim_engine ~title:"20% updates, key range 50"
       points);
  print_newline ()

(* The paper's future-work direction: does value-aware validation help a
   skip list the way it helps a list?  (See lib/skiplists/vbl_skiplist.ml
   for why the expected gap is small.) *)
let skiplist_sweep () =
  print_endline "== Extension: skip lists (paper §5 future work) ==";
  print_newline ();
  List.iter
    (fun (update, range) ->
      let points =
        Vbl_harness.Sweep.series sim_engine
          ~algorithms:[ "lazy-skiplist"; "vbl-skiplist"; "lockfree-skiplist"; "vbl" ]
          ~thread_counts:(if quick then [ 1; 24 ] else [ 1; 8; 24; 48; 72 ])
          ~update_percent:update ~key_range:range ~seed
      in
      print_endline
        (Vbl_harness.Report.render_panel ~engine:sim_engine
           ~title:(Printf.sprintf "%d%% updates, key range %d" update range)
           points);
      print_newline ())
    [ (20, 50); (100, 50); (20, 2_000) ]

(* The other future-work direction: the external BST with VBL-style
   value-aware synchronisation vs its coarse-locked anchor. *)
let tree_sweep () =
  print_endline "== Extension: external BSTs (paper §5 future work) ==";
  print_newline ();
  List.iter
    (fun (update, range) ->
      let points =
        Vbl_harness.Sweep.series sim_engine
          ~algorithms:[ "coarse-bst"; "vbl-bst"; "vbl-skiplist"; "vbl" ]
          ~thread_counts:(if quick then [ 1; 24 ] else [ 1; 8; 24; 48; 72 ])
          ~update_percent:update ~key_range:range ~seed
      in
      print_endline
        (Vbl_harness.Report.render_panel ~engine:sim_engine
           ~title:(Printf.sprintf "%d%% updates, key range %d" update range)
           points);
      print_newline ())
    [ (20, 200); (100, 200) ]

(* Hot-key appendix: zipfian keys concentrate traffic on the list prefix,
   recreating small-range contention inside a large range — a synchrobench
   workload family the paper leaves on the table. *)
let zipf_sweep () =
  print_endline "== Appendix: zipfian keys (s = 1.0), 20% updates, key range 2000 ==";
  print_newline ();
  let threads_list = if quick then [ 1; 24 ] else [ 1; 8; 24; 48; 72 ] in
  let table =
    Vbl_util.Table.create
      [ "threads"; "lazy (ops/kcycle)"; "hm-tagged (ops/kcycle)"; "vbl (ops/kcycle)" ]
  in
  List.iter
    (fun threads ->
      let run name =
        let impl = Vbl_harness.Sweep.find_instrumented name in
        let r =
          Vbl_sim.Sim_run.run impl
            {
              Vbl_sim.Sim_run.threads;
              update_percent = 20;
              key_range = 2_000;
              horizon = (if quick then 120_000. else 250_000.);
              seed;
              zipf = Some 1.0;
            }
        in
        Vbl_util.Table.si_cell r.Vbl_sim.Sim_run.throughput
      in
      Vbl_util.Table.add_row table
        [ string_of_int threads; run "lazy"; run "harris-michael-tagged"; run "vbl" ])
    threads_list;
  print_endline (Vbl_util.Table.render table);
  print_newline ()

(* NUMA appendix: the same Figure 1 point under the paper's 4-socket
   topology — cross-socket penalties hit the lock-handoff-heavy algorithms
   hardest. *)
let numa_sweep () =
  print_endline "== Appendix: 4-socket NUMA topology, 20% updates, range 50 ==";
  print_newline ();
  let table =
    Vbl_util.Table.create
      [ "threads"; "topology"; "lazy (ops/kcycle)"; "vbl (ops/kcycle)" ]
  in
  let horizon = if quick then 30_000. else 60_000. in
  List.iter
    (fun threads ->
      List.iter
        (fun (tname, topology) ->
          let run name =
            let impl = Vbl_harness.Sweep.find_instrumented name in
            let r =
              Vbl_sim.Sim_run.run
                ~costs:(Vbl_sim.Coherence.profile_exn machine)
                ~topology impl
                {
                  Vbl_sim.Sim_run.threads;
                  update_percent = 20;
                  key_range = 50;
                  horizon;
                  seed;
                  zipf = None;
                }
            in
            Vbl_util.Table.si_cell r.Vbl_sim.Sim_run.throughput
          in
          Vbl_util.Table.add_row table
            [ string_of_int threads; tname; run "lazy"; run "vbl" ])
        [ ("flat", Vbl_sim.Coherence.flat); ("4-socket", Vbl_sim.Coherence.intel_topology) ])
    (if quick then [ 24 ] else [ 24; 72 ]);
  print_endline (Vbl_util.Table.render table);
  print_newline ()

let ablation_sweep () =
  print_endline "== Ablation: value-aware pre-lock validation (vbl vs vbl-postlock) ==";
  print_newline ();
  let points =
    Vbl_harness.Sweep.series sim_engine
      ~algorithms:[ "vbl"; "vbl-postlock"; "vbl-versioned"; "lazy" ]
      ~thread_counts:(if quick then [ 1; 24; 72 ] else [ 1; 8; 24; 48; 72 ])
      ~update_percent:20 ~key_range:50 ~seed
  in
  print_endline
    (Vbl_harness.Report.render_panel ~engine:sim_engine
       ~title:"20% updates, key range 50" points);
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Scaling matrix (--matrix [--json FILE])                             *)
(* ------------------------------------------------------------------ *)

let vbl_direct_impl : (module Vbl_lists.Set_intf.S) = (module Vbl_direct)

(* The real-engine scaling matrix: every measured algorithm (plus the
   AMR Harris-Michael and the hand-specialised vbl-direct ablation
   baseline) at every host thread count, update ratio and key range.
   Counters and latency are collected as in --metrics so the JSON matches
   the BENCH_*.json schema of earlier snapshots and bench/compare_bench
   can diff two of them. *)
let matrix_algorithms =
  [
    "vbl";
    "lazy";
    "harris-michael";
    "harris-michael-tagged";
    (* skiplist family *)
    "vbl-skiplist";
    "lazy-skiplist";
    "lockfree-skiplist";
    (* tree family *)
    "vbl-bst";
    "lazy-bst";
    "lockfree-bst";
  ]

let matrix_updates = [ 0; 20; 100 ]
let matrix_ranges = [ 50; 200; 2_000; 20_000 ]

let run_matrix () =
  Printf.printf "== Scaling matrix: %s threads x %s%% updates x range %s ==\n"
    (String.concat "/" (List.map string_of_int real_threads))
    (String.concat "/" (List.map string_of_int matrix_updates))
    (String.concat "/" (List.map string_of_int matrix_ranges));
  Printf.printf "   (real engine, %d cores on this host)\n\n"
    (Domain.recommended_domain_count ());
  let points = ref [] in
  let record (p : Vbl_harness.Sweep.point) =
    points := p :: !points;
    Printf.printf "  %-22s t=%d u=%3d%% r=%-6d  %s ops/s\n%!" p.Vbl_harness.Sweep.algorithm
      p.Vbl_harness.Sweep.threads p.Vbl_harness.Sweep.update_percent
      p.Vbl_harness.Sweep.key_range
      (Vbl_util.Table.si_cell (Vbl_harness.Sweep.point_mean p))
  in
  List.iter
    (fun key_range ->
      List.iter
        (fun update_percent ->
          List.iter
            (fun threads ->
              List.iter
                (fun algorithm ->
                  record
                    (Vbl_harness.Sweep.measure ~metrics:true real_engine ~algorithm
                       ~threads ~update_percent ~key_range ~seed))
                matrix_algorithms;
              record
                (Vbl_harness.Sweep.measure_impl ~metrics:true real_engine vbl_direct_impl
                   ~algorithm:"vbl-direct" ~threads ~update_percent ~key_range ~seed))
            real_threads)
        matrix_updates)
    matrix_ranges;
  let points = List.rev !points in
  print_newline ();
  (* Ablation: what the functor-over-MEM architecture costs the VBL hot
     path, per workload cell.  Positive overhead means the hand-specialised
     baseline is faster. *)
  print_endline "== Ablation: functorised vbl vs hand-specialised vbl-direct ==";
  print_newline ();
  let find algo threads update range =
    List.find_opt
      (fun (p : Vbl_harness.Sweep.point) ->
        p.Vbl_harness.Sweep.algorithm = algo
        && p.Vbl_harness.Sweep.threads = threads
        && p.Vbl_harness.Sweep.update_percent = update
        && p.Vbl_harness.Sweep.key_range = range)
      points
  in
  let table =
    Vbl_util.Table.create
      [ "threads"; "update%"; "range"; "vbl (ops/s)"; "vbl-direct (ops/s)"; "overhead" ]
  in
  List.iter
    (fun range ->
      List.iter
        (fun update ->
          List.iter
            (fun threads ->
              match (find "vbl" threads update range, find "vbl-direct" threads update range) with
              | Some pv, Some pd ->
                  let mv = Vbl_harness.Sweep.point_mean pv
                  and md = Vbl_harness.Sweep.point_mean pd in
                  Vbl_util.Table.add_row table
                    [
                      string_of_int threads;
                      string_of_int update;
                      string_of_int range;
                      Vbl_util.Table.si_cell mv;
                      Vbl_util.Table.si_cell md;
                      Printf.sprintf "%+.1f%%" ((md -. mv) /. md *. 100.);
                    ]
              | _ -> ())
            real_threads)
        matrix_updates)
    matrix_ranges;
  print_endline (Vbl_util.Table.render table);
  (match (find "vbl" 2 20 200, find "vbl-direct" 2 20 200) with
  | Some pv, Some pd ->
      let mv = Vbl_harness.Sweep.point_mean pv
      and md = Vbl_harness.Sweep.point_mean pd in
      Printf.printf
        "\nheadline cell (2 threads, 20%% updates, range 200): functor overhead %+.1f%%\n"
        ((md -. mv) /. md *. 100.)
  | _ -> ());
  print_newline ();
  points

(* ------------------------------------------------------------------ *)
(* Sharding section of the matrix                                      *)
(* ------------------------------------------------------------------ *)

(* Shard-count scaling: the sharded frontends against the single-list
   vbl baseline.  The thread axis is fixed at 1..8 independently of the
   host core count — the headline cell (8 domains, 20% updates, range
   2e4) is traversal-bound, not parallelism-bound: 8 shards cut the
   expected traversal to 1/8th of the single list's, so the ratio holds
   even when the domains time-share one core. *)
let shard_algorithms =
  [ "vbl"; "vbl-sharded-2"; "vbl-sharded-4"; "vbl-sharded-8"; "vbl-sharded-16" ]

let shard_threads = [ 1; 2; 4; 8 ]
let shard_ranges = [ 2_000; 20_000 ]

let run_shard_matrix () =
  Printf.printf "== Sharding: %s threads x 20%% updates x range %s ==\n\n"
    (String.concat "/" (List.map string_of_int shard_threads))
    (String.concat "/" (List.map string_of_int shard_ranges));
  let points = ref [] in
  List.iter
    (fun key_range ->
      List.iter
        (fun threads ->
          List.iter
            (fun algorithm ->
              let p =
                Vbl_harness.Sweep.measure ~metrics:true real_engine ~algorithm ~threads
                  ~update_percent:20 ~key_range ~seed
              in
              points := p :: !points;
              Printf.printf "  %-22s t=%d u= 20%% r=%-6d  %s ops/s\n%!"
                p.Vbl_harness.Sweep.algorithm p.Vbl_harness.Sweep.threads
                p.Vbl_harness.Sweep.key_range
                (Vbl_util.Table.si_cell (Vbl_harness.Sweep.point_mean p)))
            shard_algorithms)
        shard_threads)
    shard_ranges;
  let points = List.rev !points in
  print_newline ();
  let find algo threads range =
    List.find_opt
      (fun (p : Vbl_harness.Sweep.point) ->
        p.Vbl_harness.Sweep.algorithm = algo
        && p.Vbl_harness.Sweep.threads = threads
        && p.Vbl_harness.Sweep.key_range = range)
      points
  in
  print_endline "== Shard-count scaling (ops/s, 20% updates) ==";
  print_newline ();
  let table =
    Vbl_util.Table.create
      ([ "range"; "threads" ] @ shard_algorithms @ [ "sharded-8 / vbl" ])
  in
  List.iter
    (fun range ->
      List.iter
        (fun threads ->
          let cells =
            List.map
              (fun algo ->
                match find algo threads range with
                | Some p -> Vbl_util.Table.si_cell (Vbl_harness.Sweep.point_mean p)
                | None -> "-")
              shard_algorithms
          in
          let ratio =
            match (find "vbl" threads range, find "vbl-sharded-8" threads range) with
            | Some pv, Some ps ->
                Printf.sprintf "%.2fx"
                  (Vbl_harness.Sweep.point_mean ps /. Vbl_harness.Sweep.point_mean pv)
            | _ -> "-"
          in
          Vbl_util.Table.add_row table
            ([ string_of_int range; string_of_int threads ] @ cells @ [ ratio ]))
        shard_threads)
    shard_ranges;
  print_endline (Vbl_util.Table.render table);
  (match (find "vbl" 8 20_000, find "vbl-sharded-8" 8 20_000) with
  | Some pv, Some ps ->
      let mv = Vbl_harness.Sweep.point_mean pv
      and ms = Vbl_harness.Sweep.point_mean ps in
      Printf.printf
        "\nheadline cell (8 domains, 20%% updates, range 20000): vbl-sharded-8 = %.2fx vbl\n"
        (ms /. mv)
  | _ -> ());
  print_newline ();
  points

(* Batch-vs-single-op ablation: the same mixed workload pushed through
   apply_batch at growing batch sizes, one domain.  Larger batches drain
   each shard's group in one pass, so consecutive operations revisit a
   cache-hot chain; batch size 1 prices the pure grouping overhead. *)
let run_batch_ablation () =
  print_endline "== Ablation: apply_batch batch size (vbl-sharded-8, 1 domain, 20% updates, range 20000) ==";
  print_newline ();
  let module S = Vbl_shard.Registry.Vbl_sharded_8 in
  let range = 20_000 in
  let rng = Vbl_util.Rng.create ~seed () in
  let t = S.create () in
  for _ = 1 to range / 2 do
    ignore (S.insert t (1 + Vbl_util.Rng.int rng range))
  done;
  let gen_op () =
    let v = 1 + Vbl_util.Rng.int rng range in
    match Vbl_util.Rng.int rng 10 with
    | 0 -> Vbl_shard.Sharded_set.Insert v
    | 1 -> Vbl_shard.Sharded_set.Remove v
    | _ -> Vbl_shard.Sharded_set.Contains v
  in
  let duration = if quick then 0.15 else if full then 1.0 else 0.4 in
  let table = Vbl_util.Table.create [ "batch size"; "ops/s"; "vs batch 1" ] in
  let base = ref nan in
  List.iter
    (fun bs ->
      let ops = Array.init bs (fun _ -> gen_op ()) in
      let count = ref 0 in
      let t0 = Unix.gettimeofday () in
      let elapsed = ref 0. in
      while !elapsed < duration do
        for i = 0 to bs - 1 do
          ops.(i) <- gen_op ()
        done;
        ignore (S.apply_batch t ops);
        count := !count + bs;
        elapsed := Unix.gettimeofday () -. t0
      done;
      let rate = float_of_int !count /. !elapsed in
      if Float.is_nan !base then base := rate;
      Vbl_util.Table.add_row table
        [
          string_of_int bs;
          Vbl_util.Table.si_cell rate;
          Printf.sprintf "%+.1f%%" ((rate -. !base) /. !base *. 100.);
        ])
    [ 1; 16; 256 ];
  print_endline (Vbl_util.Table.render table);
  (* Per-shard load at the end of the ablation: splitmix64 routing should
     keep the shards within a few percent of each other. *)
  let sizes = S.shard_sizes t in
  print_string "per-shard load:";
  Array.iteri
    (fun i n -> Printf.printf " %s=%d" (Vbl_obs.Metrics.shard_label i) n)
    sizes;
  print_newline ();
  (match S.check_invariants t with
  | Ok () -> ()
  | Error m -> failwith ("sharded invariants after ablation: " ^ m));
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Churn preset (--churn; also the --matrix reclamation ablation)      *)
(* ------------------------------------------------------------------ *)

(* Update-heavy traffic on a small key range: nodes churn through
   unlink/retire/recycle continuously, the workload the reclamation
   layer exists for.  Each algorithm runs with reclamation off and on
   (same sources, different MEM backend), so the delta prices the epoch
   brackets and the recycling win together.  GC words per operation come
   from the {!Vbl_obs.Gcstats} delta the runner rebases around the
   measured trials. *)
let churn_update_percent = 90
let churn_key_range = 256

let churn_pairs =
  [
    ("vbl", "vbl-reclaim");
    ("lazy", "lazy-reclaim");
    ("harris-michael", "harris-michael-reclaim");
  ]

let run_churn () =
  Printf.printf "== Churn: %s threads, %d%% updates, key range %d ==\n\n"
    (String.concat "/" (List.map string_of_int real_threads))
    churn_update_percent churn_key_range;
  let points = ref [] in
  let measure algorithm threads =
    let p =
      Vbl_harness.Sweep.measure ~metrics:true real_engine ~algorithm ~threads
        ~update_percent:churn_update_percent ~key_range:churn_key_range ~seed
    in
    let gc = Vbl_obs.Gcstats.delta () in
    points := p :: !points;
    Printf.printf "  %-24s t=%d  %s ops/s\n%!" algorithm threads
      (Vbl_util.Table.si_cell (Vbl_harness.Sweep.point_mean p));
    (p, gc.Vbl_obs.Gcstats.minor_words /. float_of_int (max 1 p.Vbl_harness.Sweep.ops))
  in
  let table =
    Vbl_util.Table.create
      [
        "threads"; "algorithm"; "ops/s"; "vs plain"; "retired"; "recycled"; "limbo";
        "minor words/op";
      ]
  in
  List.iter
    (fun threads ->
      List.iter
        (fun (plain, reclaiming) ->
          let pp, plain_words = measure plain threads in
          let pr, reclaim_words = measure reclaiming threads in
          let mp = Vbl_harness.Sweep.point_mean pp
          and mr = Vbl_harness.Sweep.point_mean pr in
          let counter c =
            match pr.Vbl_harness.Sweep.metrics with
            | Some s -> Vbl_obs.Metrics.get s c
            | None -> 0
          in
          let retired = counter Vbl_obs.Metrics.Reclaim_retired
          and recycled = counter Vbl_obs.Metrics.Reclaim_recycled
          and freed = counter Vbl_obs.Metrics.Reclaim_freed in
          Vbl_util.Table.add_row table
            [
              string_of_int threads; plain; Vbl_util.Table.si_cell mp; "-"; "-"; "-"; "-";
              Printf.sprintf "%.1f" plain_words;
            ];
          Vbl_util.Table.add_row table
            [
              string_of_int threads;
              reclaiming;
              Vbl_util.Table.si_cell mr;
              Printf.sprintf "%+.1f%%" ((mr -. mp) /. mp *. 100.);
              Vbl_util.Table.si_cell (float_of_int retired);
              Vbl_util.Table.si_cell (float_of_int recycled);
              string_of_int (retired - freed);
              Printf.sprintf "%.1f" reclaim_words;
            ])
        churn_pairs)
    real_threads;
  print_newline ();
  print_endline "== Ablation: reclamation off vs on (churn workload) ==";
  print_newline ();
  print_endline (Vbl_util.Table.render table);
  print_newline ();
  List.rev !points

(* vbl-direct must agree with the functorised vbl on every operation
   result — the ablation is meaningless if the baseline drifts.  Driven
   under --smoke so `dune runtest` asserts it. *)
let direct_parity () =
  let module S = (val Vbl_lists.Registry.find_exn "vbl" : Vbl_lists.Set_intf.S) in
  let reference = S.create () in
  let direct = Vbl_direct.create () in
  let rng = Vbl_util.Rng.create ~seed () in
  let range = 64 in
  let ops = 20_000 in
  for i = 1 to ops do
    let v = 1 + Vbl_util.Rng.int rng range in
    let want, got =
      match Vbl_util.Rng.int rng 3 with
      | 0 -> (S.insert reference v, Vbl_direct.insert direct v)
      | 1 -> (S.remove reference v, Vbl_direct.remove direct v)
      | _ -> (S.contains reference v, Vbl_direct.contains direct v)
    in
    if got <> want then
      failwith (Printf.sprintf "vbl-direct parity: op %d on key %d diverged" i v)
  done;
  if Vbl_direct.to_list direct <> S.to_list reference then
    failwith "vbl-direct parity: final contents diverge";
  (match Vbl_direct.check_invariants direct with
  | Ok () -> ()
  | Error m -> failwith ("vbl-direct invariants: " ^ m));
  Printf.printf "vbl-direct parity vs registry vbl: OK (%d ops, range %d)\n\n" ops range

(* ------------------------------------------------------------------ *)
(* Observability modes                                                 *)
(* ------------------------------------------------------------------ *)

(* Counter + latency tables for a few algorithms on one workload: the
   numbers that explain the throughput gaps — restarts, lock failures
   split by field, traversal length, p50/p99 latency per op kind. *)
let metrics_section ~algorithms ~threads ~update_percent ~key_range ~engine () =
  let points =
    List.map
      (fun algorithm ->
        Vbl_harness.Sweep.measure ~metrics:true engine ~algorithm ~threads
          ~update_percent ~key_range ~seed)
      algorithms
  in
  print_endline
    (Vbl_harness.Report.render_metrics
       ~title:
         (Printf.sprintf
            "== Per-operation counters: %d threads, %d%% updates, range %d [%s] =="
            threads update_percent key_range
            (Vbl_harness.Report.engine_name engine))
       points);
  print_newline ();
  if List.exists (fun p -> p.Vbl_harness.Sweep.latency <> []) points then begin
    print_endline
      (Vbl_harness.Report.render_latency ~title:"== Per-operation latency (ns) ==" points);
    print_newline ()
  end;
  print_endline "-- counters as CSV --";
  print_string (Vbl_harness.Report.metrics_csv points);
  print_newline ();
  (match json_file with
  | Some file ->
      let oc = open_out file in
      output_string oc (Vbl_harness.Report.points_json ~engine points);
      output_string oc "\n";
      close_out oc;
      Printf.printf "(wrote %s)\n" file
  | None -> ());
  points

(* A short deterministic simulated run with the trace sink installed:
   every conductor step becomes one event line, schedule-replay style. *)
let trace_section ~events () =
  print_endline "== Event trace: vbl, 2 threads, 50% updates, range 8 (simulated) ==";
  print_newline ();
  let tr = Vbl_obs.Trace.create () in
  Vbl_obs.Probe.install (Vbl_obs.Probe.tracer tr);
  let engine = Vbl_harness.Sweep.simulated ~horizon:600. ~trials:1 () in
  ignore
    (Vbl_harness.Sweep.measure engine ~algorithm:"vbl" ~threads:2 ~update_percent:50
       ~key_range:8 ~seed);
  Vbl_obs.Probe.uninstall ();
  let all = Vbl_obs.Trace.events tr in
  let shown = List.filteri (fun i _ -> i < events) all in
  List.iter (fun e -> print_endline ("  " ^ Vbl_obs.Trace.event_to_string e)) shown;
  Printf.printf "\n(%d events emitted, %d dropped from the ring, first %d shown)\n\n"
    (Vbl_obs.Trace.emitted tr) (Vbl_obs.Trace.dropped tr) (List.length shown)

(* ------------------------------------------------------------------ *)
(* Contention profile (--profile [--export PREFIX] [--interval S])     *)
(* ------------------------------------------------------------------ *)

let write_file file s =
  let oc = open_out file in
  output_string oc s;
  close_out oc

(* Export the process's current profiling state: the OpenMetrics text of
   every counter + contention histogram + shard traffic, and the flight
   recorder as a Chrome trace.  Runner resets that state per profiled run,
   so this snapshots the {e last} one. *)
let export_run prefix =
  let metrics_file = prefix ^ ".metrics.txt" in
  let trace_file = prefix ^ ".trace.json" in
  write_file metrics_file (Vbl_obs.Export.openmetrics_of_run ());
  write_file trace_file
    (Vbl_obs.Export.chrome_trace_of_entries (Vbl_obs.Recorder.entries ()));
  Printf.printf "(wrote %s and %s — load the trace in about:tracing)\n" metrics_file
    trace_file

let run_profile ~engine () =
  let algorithms =
    match flag_value "--algos" with
    | Some s -> String.split_on_char ',' s
    | None -> [ "vbl"; "vbl-sharded-8" ]
  in
  let threads = max 2 (min 4 (Domain.recommended_domain_count ())) in
  let update_percent = 50 and key_range = 512 in
  List.iter
    (fun algorithm ->
      Printf.printf "== Contention profile: %s, %d threads, %d%% updates, range %d ==\n\n"
        algorithm threads update_percent key_range;
      let p =
        Vbl_harness.Sweep.measure ~profile:true ?interval_s engine ~algorithm ~threads
          ~update_percent ~key_range ~seed
      in
      Printf.printf "throughput: %s ops/s\n\n"
        (Vbl_util.Table.si_cell (Vbl_harness.Sweep.point_mean p));
      print_string (Vbl_obs.Contention.render_site_table ());
      print_newline ();
      let shards = Vbl_obs.Contention.render_hot_shards () in
      if shards <> "" then begin
        print_string shards;
        print_newline ()
      end;
      print_string (Vbl_obs.Recorder.dump ~last:8 ());
      print_newline ())
    algorithms;
  (* The export snapshots the last profiled algorithm (state is reset per
     run). *)
  Option.iter export_run export_prefix

let metrics_threads = max 2 (min 4 (Domain.recommended_domain_count ()))

let run_metrics_mode () =
  let algorithms =
    match flag_value "--algos" with
    | Some s -> String.split_on_char ',' s
    | None -> [ "vbl"; "lazy"; "harris-michael-tagged" ]
  in
  ignore
    (metrics_section ~algorithms ~threads:metrics_threads ~update_percent:20
       ~key_range:200 ~engine:real_engine ())

(* Tiny end-to-end exercise of the metrics/trace path, cheap enough for
   `dune runtest` (the smoke alias in bench/dune). *)
let run_smoke () =
  direct_parity ();
  ignore
    (metrics_section ~algorithms:[ "vbl"; "lazy" ] ~threads:2 ~update_percent:20
       ~key_range:64
       ~engine:(Vbl_harness.Sweep.Real { duration_s = 0.05; warmup_s = 0.02; trials = 1 })
       ());
  (* And the same counters through the simulated engine: the probes live in
     the shared functor code, so both engines must produce them. *)
  ignore
    (metrics_section ~algorithms:[ "vbl" ] ~threads:2 ~update_percent:20 ~key_range:64
       ~engine:(Vbl_harness.Sweep.simulated ~horizon:2_000. ~trials:1 ())
       ());
  trace_section ~events:12 ()

let () =
  if smoke then begin
    print_endline "vbl benchmark harness (smoke mode)\n";
    run_smoke ();
    (* --smoke --profile: the CI-sized profile pass, short trials but the
       full pipeline — site table, hot shards, recorder, exporters. *)
    if profile_mode then
      run_profile
        ~engine:(Vbl_harness.Sweep.Real { duration_s = 0.08; warmup_s = 0.02; trials = 1 })
        ()
  end
  else if profile_mode then begin
    print_endline "vbl benchmark harness (profile mode)\n";
    run_profile ~engine:real_engine ()
  end
  else if matrix_mode then begin
    print_endline "vbl benchmark harness (matrix mode)\n";
    let points = run_matrix () in
    let shard_points = run_shard_matrix () in
    let churn_points = run_churn () in
    run_batch_ablation ();
    match json_file with
    | Some file ->
        let points = points @ shard_points @ churn_points in
        let oc = open_out file in
        output_string oc (Vbl_harness.Report.points_json ~engine:real_engine points);
        output_string oc "\n";
        close_out oc;
        Printf.printf "(wrote %s: %d points)\n" file (List.length points)
    | None -> ()
  end
  else if churn_mode then begin
    print_endline "vbl benchmark harness (churn mode)\n";
    let points = run_churn () in
    match json_file with
    | Some file ->
        let oc = open_out file in
        output_string oc (Vbl_harness.Report.points_json ~engine:real_engine points);
        output_string oc "\n";
        close_out oc;
        Printf.printf "(wrote %s: %d points)\n" file (List.length points)
    | None -> ()
  end
  else if metrics_mode || trace_mode then begin
    Printf.printf "vbl benchmark harness (observability mode)\n\n";
    if metrics_mode then run_metrics_mode ();
    if trace_mode then trace_section ~events:30 ()
  end
  else begin
    Printf.printf "vbl benchmark harness (%s mode)\n\n"
      (if quick then "quick" else if full then "full" else "default");
    if not skip_micro then run_micro ();
    if not skip_figures then begin
      figure1 ();
      figure4 ();
      headlines ();
      ablation_sweep ();
      family_sweep ();
      skiplist_sweep ();
      tree_sweep ();
      zipf_sweep ();
      numa_sweep ()
    end
  end
