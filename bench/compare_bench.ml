(* compare_bench OLD.json NEW.json [--threshold PCT]

   Diffs two benchmark snapshots in the BENCH_*.json schema (written by
   `bench/main.exe --matrix --json F` or `--metrics --json F`): matches
   points by (algorithm, threads, update_percent, key_range), prints the
   throughput delta for each, and flags regressions where the new mean is
   more than PCT percent (default 10) below the old one.  Exits 1 if any
   point regressed (so it can gate CI), 2 if the point sets differ without
   any regression (warning only: the snapshots do not cover the same
   workload matrix), 64 on usage errors, 0 otherwise.

   The schema is small and fixed, so the JSON reader below is a minimal
   recursive-descent parser rather than a library dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    if peek () = Some c then advance () else fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some (('"' | '\\' | '/') as c) ->
              Buffer.add_char b c;
              advance ();
              loop ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              loop ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              loop ()
          | _ -> fail "unsupported escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          loop ()
    in
    loop ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "malformed number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ((key, v) :: acc)
            | Some '}' ->
                advance ();
                Obj (List.rev ((key, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements (v :: acc)
            | Some ']' ->
                advance ();
                Arr (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let num_exn what = function
  | Some (Num f) -> f
  | _ -> failwith ("missing or non-numeric field " ^ what)

let str_exn what = function
  | Some (Str s) -> s
  | _ -> failwith ("missing or non-string field " ^ what)

(* One comparable point: workload key plus mean throughput. *)
type point = { algorithm : string; threads : int; update : int; range : int; mean : float }

let load_points file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  let root = parse contents in
  let points = match member "points" root with Some (Arr l) -> l | _ -> [] in
  let unit_ = match member "unit" root with Some (Str u) -> u | _ -> "?" in
  ( unit_,
    List.map
      (fun p ->
        {
          algorithm = str_exn "algorithm" (member "algorithm" p);
          threads = int_of_float (num_exn "threads" (member "threads" p));
          update = int_of_float (num_exn "update_percent" (member "update_percent" p));
          range = int_of_float (num_exn "key_range" (member "key_range" p));
          mean =
            num_exn "throughput.mean"
              (Option.bind (member "throughput" p) (member "mean"));
        })
      points )

let () =
  let args = Array.to_list Sys.argv in
  let rec split files threshold = function
    | [] -> (List.rev files, threshold)
    | "--threshold" :: v :: rest -> split files (float_of_string v) rest
    | f :: rest -> split (f :: files) threshold rest
  in
  match split [] 10.0 (List.tl args) with
  | [ old_file; new_file ], threshold ->
      let old_unit, old_points = load_points old_file in
      let new_unit, new_points = load_points new_file in
      if old_unit <> new_unit then
        Printf.printf "note: units differ (%s vs %s); deltas are still relative\n\n"
          old_unit new_unit;
      Printf.printf "%-24s %7s %4s %7s %14s %14s %9s\n" "algorithm" "threads" "upd%"
        "range" old_file new_file "delta";
      let regressions = ref 0 in
      let compared = ref 0 in
      List.iter
        (fun (np : point) ->
          match
            List.find_opt
              (fun (op : point) ->
                op.algorithm = np.algorithm && op.threads = np.threads
                && op.update = np.update && op.range = np.range)
              old_points
          with
          | None -> ()
          | Some op ->
              incr compared;
              let delta = (np.mean -. op.mean) /. op.mean *. 100. in
              let flag =
                if delta < -.threshold then begin
                  incr regressions;
                  "  << REGRESSION"
                end
                else ""
              in
              Printf.printf "%-24s %7d %4d %7d %14.0f %14.0f %+8.1f%%%s\n" np.algorithm
                np.threads np.update np.range op.mean np.mean delta flag)
        new_points;
      let only_new =
        List.length new_points - !compared
      and only_old =
        List.length old_points
        - List.length
            (List.filter
               (fun (op : point) ->
                 List.exists
                   (fun (np : point) ->
                     op.algorithm = np.algorithm && op.threads = np.threads
                     && op.update = np.update && op.range = np.range)
                   new_points)
               old_points)
      in
      Printf.printf
        "\n%d point(s) compared, %d regression(s) beyond %.0f%%; %d only in %s, %d only in %s\n"
        !compared !regressions threshold only_new new_file only_old old_file;
      if only_new > 0 || only_old > 0 then
        Printf.eprintf
          "warning: point sets differ — the snapshots do not cover the same workload matrix\n";
      (* Exit codes: 1 = throughput regression (gates CI), 2 = point-set
         mismatch only (warning — snapshots are not directly comparable),
         64 = usage error. *)
      if !regressions > 0 then exit 1
      else if only_new > 0 || only_old > 0 then exit 2
      else exit 0
  | _, _ ->
      prerr_endline "usage: compare_bench OLD.json NEW.json [--threshold PCT]";
      exit 64
