(* Ablation baseline: the VBL algorithm hand-specialised to Atomic.t, with
   no memory-backend functor in the way.  Comparing this against
   Vbl_lists.Registry.Vbl in the microbenchmarks and in the scaling matrix
   quantifies the overhead of the functor-over-MEM architecture
   (DESIGN.md §5) — the indirection is uniform across algorithms, but it
   should also be small in absolute terms, and this measures it.

   The hot paths use the same closed top-level recursions as the
   functorised list (see lib/lists/vbl_list.ml): without flambda a
   tuple-returning traversal or a capturing closure allocates per
   operation, which would contaminate the ablation with allocator noise.

   The module satisfies {!Vbl_lists.Set_intf.S} so the real-thread runner
   and the scaling matrix can drive it directly alongside the registry
   algorithms. *)

type node =
  | Node of {
      value : int;
      next : node Atomic.t;
      deleted : bool Atomic.t;
      lock : Vbl_sync.Try_lock.t;
    }
  | Tail

type t = { head : node }

let name = "vbl-direct"

let node_value = function Node n -> n.value | Tail -> max_int
let node_deleted = function Node n -> Atomic.get n.deleted | Tail -> false
let node_lock = function Node n -> n.lock | Tail -> assert false
let next_atomic = function Node n -> n.next | Tail -> assert false

let create () =
  {
    head =
      Node
        {
          value = min_int;
          next = Atomic.make Tail;
          deleted = Atomic.make false;
          lock = Vbl_sync.Try_lock.create ();
        };
  }

let lock_next_at node at =
  Vbl_sync.Try_lock.lock (node_lock node);
  if (not (node_deleted node)) && Atomic.get (next_atomic node) == at then true
  else begin
    Vbl_sync.Try_lock.unlock (node_lock node);
    false
  end

let lock_next_at_value node v =
  Vbl_sync.Try_lock.lock (node_lock node);
  if (not (node_deleted node)) && node_value (Atomic.get (next_atomic node)) = v then true
  else begin
    Vbl_sync.Try_lock.unlock (node_lock node);
    false
  end

let rec insert_attempt t v prev =
  let prev = if node_deleted prev then t.head else prev in
  insert_walk t v prev (Atomic.get (next_atomic prev))

and insert_walk t v prev curr =
  if node_value curr < v then insert_walk t v curr (Atomic.get (next_atomic curr))
  else if node_value curr = v then false
  else begin
    let x =
      Node
        {
          value = v;
          next = Atomic.make curr;
          deleted = Atomic.make false;
          lock = Vbl_sync.Try_lock.create ();
        }
    in
    if lock_next_at prev curr then begin
      Atomic.set (next_atomic prev) x;
      Vbl_sync.Try_lock.unlock (node_lock prev);
      true
    end
    else insert_attempt t v prev
  end

let insert t v = insert_attempt t v t.head

let rec remove_attempt t v prev =
  let prev = if node_deleted prev then t.head else prev in
  remove_walk t v prev (Atomic.get (next_atomic prev))

and remove_walk t v prev curr =
  if node_value curr < v then remove_walk t v curr (Atomic.get (next_atomic curr))
  else if node_value curr <> v then false
  else begin
    let next = Atomic.get (next_atomic curr) in
    if not (lock_next_at_value prev v) then remove_attempt t v prev
    else begin
      let curr = Atomic.get (next_atomic prev) in
      if not (lock_next_at curr next) then begin
        Vbl_sync.Try_lock.unlock (node_lock prev);
        remove_attempt t v prev
      end
      else begin
        (match curr with Node n -> Atomic.set n.deleted true | Tail -> assert false);
        Atomic.set (next_atomic prev) (Atomic.get (next_atomic curr));
        Vbl_sync.Try_lock.unlock (node_lock curr);
        Vbl_sync.Try_lock.unlock (node_lock prev);
        true
      end
    end
  end

let remove t v = remove_attempt t v t.head

let rec contains_walk v curr =
  if node_value curr < v then contains_walk v (Atomic.get (next_atomic curr))
  else node_value curr = v

let contains t v = contains_walk v t.head

(* Quiescent diagnostics, mirroring the functorised list so the module
   satisfies Set_intf.S. *)
let fold f init t =
  let rec loop acc node =
    match node with
    | Tail -> acc
    | Node n ->
        let keep = n.value <> min_int && not (Atomic.get n.deleted) in
        let acc = if keep then f acc n.value else acc in
        loop acc (Atomic.get n.next)
  in
  loop init t.head

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
let size t = fold (fun acc _ -> acc + 1) 0 t

include Vbl_lists.Set_intf.Derive (struct
  type nonrec t = t

  let fold = fold
end)

let check_invariants t =
  let rec loop last node steps =
    if steps > 10_000_000 then Error "traversal did not terminate (cycle?)"
    else
      match node with
      | Tail -> Ok ()
      | Node n ->
          if n.value <= last && steps > 0 then
            Error (Printf.sprintf "values not strictly increasing at %d" n.value)
          else if steps > 0 && Atomic.get n.deleted then
            Error (Printf.sprintf "deleted node %d still reachable" n.value)
          else if Vbl_sync.Try_lock.is_locked n.lock then
            Error (Printf.sprintf "node %d left locked" n.value)
          else loop n.value (Atomic.get n.next) (steps + 1)
  in
  match t.head with
  | Node n when n.value = min_int -> loop min_int t.head 0
  | _ -> Error "head sentinel does not store min_int"
