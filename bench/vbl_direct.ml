(* Ablation baseline: the VBL algorithm hand-specialised to Atomic.t, with
   no memory-backend functor in the way.  Comparing this against
   Vbl_lists.Registry.Vbl in the microbenchmarks quantifies the overhead of
   the functor-over-MEM architecture (DESIGN.md §5) — the indirection is
   uniform across algorithms, but it should also be small in absolute
   terms, and this measures it. *)

type node =
  | Node of {
      value : int;
      next : node Atomic.t;
      deleted : bool Atomic.t;
      lock : Vbl_sync.Try_lock.t;
    }
  | Tail

type t = { head : node }

let node_value = function Node n -> n.value | Tail -> max_int
let node_deleted = function Node n -> Atomic.get n.deleted | Tail -> false
let node_lock = function Node n -> n.lock | Tail -> assert false
let next_atomic = function Node n -> n.next | Tail -> assert false

let create () =
  {
    head =
      Node
        {
          value = min_int;
          next = Atomic.make Tail;
          deleted = Atomic.make false;
          lock = Vbl_sync.Try_lock.create ();
        };
  }

let waitfree_traversal t v prev =
  let prev = if node_deleted prev then t.head else prev in
  let rec loop prev curr =
    if node_value curr < v then loop curr (Atomic.get (next_atomic curr)) else (prev, curr)
  in
  loop prev (Atomic.get (next_atomic prev))

let lock_next_at node at =
  Vbl_sync.Try_lock.lock (node_lock node);
  if (not (node_deleted node)) && Atomic.get (next_atomic node) == at then true
  else begin
    Vbl_sync.Try_lock.unlock (node_lock node);
    false
  end

let lock_next_at_value node v =
  Vbl_sync.Try_lock.lock (node_lock node);
  if (not (node_deleted node)) && node_value (Atomic.get (next_atomic node)) = v then true
  else begin
    Vbl_sync.Try_lock.unlock (node_lock node);
    false
  end

let insert t v =
  let rec attempt prev =
    let prev, curr = waitfree_traversal t v prev in
    if node_value curr = v then false
    else begin
      let x =
        Node
          {
            value = v;
            next = Atomic.make curr;
            deleted = Atomic.make false;
            lock = Vbl_sync.Try_lock.create ();
          }
      in
      if lock_next_at prev curr then begin
        Atomic.set (next_atomic prev) x;
        Vbl_sync.Try_lock.unlock (node_lock prev);
        true
      end
      else attempt prev
    end
  in
  attempt t.head

let remove t v =
  let rec attempt prev =
    let prev, curr = waitfree_traversal t v prev in
    if node_value curr <> v then false
    else begin
      let next = Atomic.get (next_atomic curr) in
      if not (lock_next_at_value prev v) then attempt prev
      else begin
        let curr = Atomic.get (next_atomic prev) in
        if not (lock_next_at curr next) then begin
          Vbl_sync.Try_lock.unlock (node_lock prev);
          attempt prev
        end
        else begin
          (match curr with Node n -> Atomic.set n.deleted true | Tail -> assert false);
          Atomic.set (next_atomic prev) (Atomic.get (next_atomic curr));
          Vbl_sync.Try_lock.unlock (node_lock curr);
          Vbl_sync.Try_lock.unlock (node_lock prev);
          true
        end
      end
    end
  in
  attempt t.head

let contains t v =
  let rec loop curr =
    if node_value curr < v then loop (Atomic.get (next_atomic curr)) else node_value curr = v
  in
  loop t.head
