(* Schedule audit: using the concurrency framework as a library.

   This example treats the schedule machinery the way a data-structure
   designer would during development:

   1. enumerate every schedule of a small scenario on the sequential list,
   2. classify them with Definition 1 (correct / incorrect),
   3. drive each correct one against an implementation and report its
      *acceptance rate* — the fraction of correct schedules it admits,
      which is the paper's concurrency metric made concrete.  VBL scores
      100% on every scenario (it is concurrency-optimal); each baseline's
      rejections show where its synchronization over-reaches.

   The second scenario is chosen so that both inserts share the head as
   predecessor: the post-lock ablation (vbl-postlock) then rejects
   schedules where the failing insert(1) must complete while insert(0)
   holds the head's lock — isolating exactly the paper's §3.1 point.

   Run with:  dune exec examples/schedule_audit.exe                       *)

open Vbl_sched

let scenarios =
  [
    ( "insert(1) || insert(2) on {1}   (the Figure 2 family)",
      [ 1 ],
      [ Ll_abstract.insert 1; Ll_abstract.insert 2 ] );
    ( "insert(1) || insert(0) on {1}   (shared predecessor: head)",
      [ 1 ],
      [ Ll_abstract.insert 1; Ll_abstract.insert 0 ] );
    ( "remove(1) || contains(1) on {1; 2}",
      [ 1; 2 ],
      [ Ll_abstract.remove 1; Ll_abstract.contains 1 ] );
  ]

let audit ~initial ~ops name impl correct_schedules =
  let accepted = ref 0 in
  List.iter
    (fun t ->
      let script = Ll_abstract.to_script t in
      let outcome, p = Drive.run_script_full impl ~initial ~ops script in
      let ok =
        Directed.accepted outcome && p.Drive.contents () = Ll_abstract.final_values t
      in
      if ok then incr accepted)
    correct_schedules;
  let n = List.length correct_schedules in
  Printf.printf "  %-16s accepts %3d / %d correct schedules (%.0f%%)\n" name !accepted n
    (100. *. float_of_int !accepted /. float_of_int n)

let () =
  List.iter
    (fun (scenario_name, initial, ops) ->
      Printf.printf "schedule audit: %s\n" scenario_name;
      let correct = ref [] and incorrect = ref 0 and total = ref 0 in
      let complete =
        Ll_abstract.enumerate ~initial ~ops (fun t ->
            incr total;
            if Ll_abstract.correct t then correct := t :: !correct else incr incorrect)
      in
      assert complete;
      Printf.printf "  schedules of the sequential code: %d total, %d correct, %d incorrect\n"
        !total (List.length !correct) !incorrect;
      audit ~initial ~ops "vbl" (module Drive.Vbl_i) !correct;
      audit ~initial ~ops "vbl-postlock" (module Drive.Vbl_postlock_i) !correct;
      audit ~initial ~ops "lazy" (module Drive.Lazy_i) !correct;
      audit ~initial ~ops "hand-over-hand" (module Drive.Hoh_i) !correct;
      print_newline ())
    scenarios;
  print_endline "(an accepted schedule = the driver realises every scripted step and";
  print_endline " the execution ends with the schedule's results and final contents)"
