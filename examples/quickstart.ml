(* Quickstart: the VBL list as a concurrent integer set.

   Run with:  dune exec examples/quickstart.exe

   The public API is Vbl_lists.Registry (pre-instantiated algorithms on the
   real Atomic backend) or any Vbl_lists.*.Make functor applied to
   Vbl_memops.Real_mem.                                                   *)

module Set = Vbl_lists.Registry.Vbl

let () =
  (* Single-threaded basics. *)
  let s = Set.create () in
  assert (Set.insert s 42);
  assert (not (Set.insert s 42)) (* duplicate: no lock was even taken *);
  assert (Set.contains s 42);
  assert (Set.remove s 42);
  assert (not (Set.contains s 42));

  (* Concurrent use: just share the set across domains. *)
  let keys = 1_000 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            let rng = Vbl_util.Rng.create ~seed:(Int64.of_int (7 * (d + 1))) () in
            let hits = ref 0 in
            for _ = 1 to 20_000 do
              let v = 1 + Vbl_util.Rng.int rng keys in
              match Vbl_util.Rng.int rng 10 with
              | 0 | 1 -> ignore (Set.insert s v)
              | 2 | 3 -> ignore (Set.remove s v)
              | _ -> if Set.contains s v then incr hits
            done;
            !hits))
  in
  let hits = List.map Domain.join domains in
  Printf.printf "4 domains ran 80k mixed operations; contains hits per domain: %s\n"
    (String.concat ", " (List.map string_of_int hits));

  (* The structure is intact and sorted afterwards. *)
  (match Set.check_invariants s with
  | Ok () -> Printf.printf "invariants OK, final size = %d\n" (Set.size s)
  | Error msg -> failwith msg);

  (* Every algorithm of the family shares the same interface; pick by name. *)
  let module Lazy_list = (val Vbl_lists.Registry.find_exn "lazy") in
  let l = Lazy_list.create () in
  List.iter (fun v -> ignore (Lazy_list.insert l v)) [ 3; 1; 2 ];
  Printf.printf "lazy list contents: [%s]\n"
    (String.concat "; " (List.map string_of_int (Lazy_list.to_list l)))
