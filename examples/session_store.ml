(* Session store: the workload class the paper's 20%-update point models.

   A web tier tracks active session ids in a shared set: request handlers
   mostly *check* sessions (contains), login/logout traffic inserts and
   removes.  The paper calls 20% updates "the standard load on databases";
   this example runs exactly that mix on the VBL list and on the lazy list
   and reports what each sustained, plus the failed-update rates that
   explain why VBL's no-lock-on-failure matters: a failed login retry
   (insert of a live session) or a double logout (remove of a dead one)
   never touches a lock under VBL.

   Run with:  dune exec examples/session_store.exe                        *)

let sessions = 512 (* small id space: deliberately contended *)
let handlers = 4
let requests_per_handler = 30_000

type tally = { mutable checks : int; mutable logins : int; mutable logouts : int;
               mutable failed_updates : int }

let run_store name (impl : Vbl_lists.Registry.impl) =
  let module S = (val impl) in
  let store = S.create () in
  (* Half the session ids are live at the start. *)
  let rng = Vbl_util.Rng.create ~seed:2024L () in
  for id = 1 to sessions do
    if Vbl_util.Rng.bool rng then ignore (S.insert store id)
  done;
  let worker h () =
    let rng = Vbl_util.Rng.create ~seed:(Int64.of_int (1000 + h)) () in
    let t = { checks = 0; logins = 0; logouts = 0; failed_updates = 0 } in
    for _ = 1 to requests_per_handler do
      let id = 1 + Vbl_util.Rng.int rng sessions in
      let roll = Vbl_util.Rng.int rng 100 in
      if roll < 10 then begin
        t.logins <- t.logins + 1;
        if not (S.insert store id) then t.failed_updates <- t.failed_updates + 1
      end
      else if roll < 20 then begin
        t.logouts <- t.logouts + 1;
        if not (S.remove store id) then t.failed_updates <- t.failed_updates + 1
      end
      else begin
        t.checks <- t.checks + 1;
        ignore (S.contains store id)
      end
    done;
    t
  in
  let started = Unix.gettimeofday () in
  let tallies = List.map Domain.join (List.init handlers (fun h -> Domain.spawn (worker h))) in
  let elapsed = Unix.gettimeofday () -. started in
  let total f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
  let updates = total (fun t -> t.logins) + total (fun t -> t.logouts) in
  Printf.printf "%-6s %8.0f req/s | %d checks, %d logins, %d logouts\n" name
    (float_of_int (handlers * requests_per_handler) /. elapsed)
    (total (fun t -> t.checks)) (total (fun t -> t.logins)) (total (fun t -> t.logouts));
  Printf.printf "       failed updates: %d of %d (%.0f%%) — each one is a lock VBL never took\n"
    (total (fun t -> t.failed_updates))
    updates
    (100. *. float_of_int (total (fun t -> t.failed_updates)) /. float_of_int updates);
  match S.check_invariants store with
  | Ok () -> Printf.printf "       store intact, %d live sessions\n\n" (S.size store)
  | Error msg -> failwith (name ^ ": " ^ msg)

let () =
  Printf.printf "session store: %d handlers x %d requests, %d session ids, 20%% updates\n\n"
    handlers requests_per_handler sessions;
  run_store "vbl" (Vbl_lists.Registry.find_exn "vbl");
  run_store "lazy" (Vbl_lists.Registry.find_exn "lazy")
