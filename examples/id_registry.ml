(* ID registry: an allocator built on the set's update return values.

   The boolean responses of insert/remove are atomic claims: [insert id]
   returning true means *this* caller owns [id]; [remove id] returning true
   means this caller released a held id.  That is enough to build a small
   resource registry — e.g. worker shards claiming partition numbers — with
   no additional synchronization, and it exercises exactly the semantics
   the linearizability proofs are about: two concurrent claims of one id
   must see one true and one false.

   The example double-checks the accounting: every id claimed by exactly
   one worker at a time, and the books balance at the end.

   Run with:  dune exec examples/id_registry.exe                          *)

module Registry = Vbl_lists.Registry.Vbl

let partitions = 64
let workers = 8
let rounds = 5_000

let () =
  let claimed = Registry.create () in
  (* Per-worker ledger: how many claims each worker made per id minus
     releases; at quiescence every id's total must be 0 or 1, and must
     equal what the set reports. *)
  let ledger = Array.init workers (fun _ -> Array.make (partitions + 1) 0) in
  let worker w () =
    let rng = Vbl_util.Rng.create ~seed:(Int64.of_int (31 * (w + 1))) () in
    let held = Array.make (partitions + 1) false in
    for _ = 1 to rounds do
      let id = 1 + Vbl_util.Rng.int rng partitions in
      if held.(id) then begin
        (* We own it: release must always succeed. *)
        if not (Registry.remove claimed id) then
          failwith "release of a held id failed: ownership was not exclusive!";
        held.(id) <- false;
        ledger.(w).(id) <- ledger.(w).(id) - 1
      end
      else if Registry.insert claimed id then begin
        held.(id) <- true;
        ledger.(w).(id) <- ledger.(w).(id) + 1
      end
      (* else: someone else holds it; fine. *)
    done;
    (* Release everything still held. *)
    for id = 1 to partitions do
      if held.(id) then begin
        if not (Registry.remove claimed id) then
          failwith "final release failed: ownership was not exclusive!";
        ledger.(w).(id) <- ledger.(w).(id) - 1
      end
    done
  in
  List.iter Domain.join (List.init workers (fun w -> Domain.spawn (worker w)));
  (* Books must balance: all claims released, set empty. *)
  for id = 1 to partitions do
    let net = Array.fold_left (fun acc l -> acc + l.(id)) 0 (Array.init workers (fun w -> ledger.(w))) in
    if net <> 0 then failwith (Printf.sprintf "id %d net claims = %d, expected 0" id net)
  done;
  assert (Registry.size claimed = 0);
  (match Registry.check_invariants claimed with
  | Ok () -> ()
  | Error msg -> failwith msg);
  Printf.printf
    "id registry: %d workers x %d rounds over %d ids — exclusive ownership held, books balance\n"
    workers rounds partitions
