(* Leaderboard: picking the right structure from the family.

   A game service tracks which score buckets are occupied.  Lookups
   dominate, the bucket space is large (10k), and the working set churns —
   the access pattern that separates the O(n) lists from the O(log n)
   structures, and the reason the paper's key-range axis matters.

   The example runs the same workload over four family members sharing one
   interface — the VBL list, the two skip lists and the VBL tree — and
   prints sustained throughput, demonstrating that the repository is a
   toolbox, not a single data structure.

   Run with:  dune exec examples/leaderboard.exe                          *)

let buckets = 10_000
let workers = 4
let requests = 25_000

let run_board name (impl : (module Vbl_lists.Set_intf.S)) =
  let module S = (val impl) in
  let board = S.create () in
  let rng = Vbl_util.Rng.create ~seed:99L () in
  let keys = Array.init buckets (fun i -> i + 1) in
  Vbl_util.Rng.shuffle rng keys;
  Array.iter (fun b -> if Vbl_util.Rng.bool rng then ignore (S.insert board b)) keys;
  let worker w () =
    let rng = Vbl_util.Rng.create ~seed:(Int64.of_int (500 + w)) () in
    for _ = 1 to requests do
      let b = 1 + Vbl_util.Rng.int rng buckets in
      let roll = Vbl_util.Rng.int rng 100 in
      if roll < 5 then ignore (S.insert board b)
      else if roll < 10 then ignore (S.remove board b)
      else ignore (S.contains board b)
    done
  in
  let started = Unix.gettimeofday () in
  List.iter Domain.join (List.init workers (fun w -> Domain.spawn (worker w)));
  let elapsed = Unix.gettimeofday () -. started in
  (match S.check_invariants board with
  | Ok () -> ()
  | Error msg -> failwith (name ^ ": " ^ msg));
  Printf.printf "  %-16s %8.0f req/s   (%d buckets occupied at the end)\n" name
    (float_of_int (workers * requests) /. elapsed)
    (S.size board)

let () =
  Printf.printf
    "leaderboard: %d workers x %d requests over %d buckets, 10%% updates\n\n"
    workers requests buckets;
  run_board "vbl (list)" (Vbl_lists.Registry.find_exn "vbl");
  run_board "lazy-skiplist" (Vbl_skiplists.Registry.find_exn "lazy-skiplist");
  run_board "vbl-skiplist" (Vbl_skiplists.Registry.find_exn "vbl-skiplist");
  run_board "vbl-bst" (Vbl_trees.Registry.find_exn "vbl-bst");
  print_newline ();
  print_endline "(same Set_intf.S interface throughout; the log-depth structures win";
  print_endline " as soon as the key range dwarfs the contention hot-spots)"
