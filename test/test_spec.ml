(* Tests for the sequential set model, history plumbing, and the
   linearizability checker — including the paper's own examples: the
   "lost update" schedule of §2.2 must be caught once extended with the
   discriminating contains. *)

open Vbl_spec

let op_ins v = Set_model.Insert v
let op_rem v = Set_model.Remove v
let op_ctn v = Set_model.Contains v

let model_tests =
  [
    Alcotest.test_case "insert into empty returns true" `Quick (fun () ->
        let _, r = Set_model.apply Set_model.empty (op_ins 1) in
        Alcotest.(check bool) "r" true r);
    Alcotest.test_case "insert duplicate returns false" `Quick (fun () ->
        let s, _ = Set_model.apply Set_model.empty (op_ins 1) in
        let _, r = Set_model.apply s (op_ins 1) in
        Alcotest.(check bool) "r" false r);
    Alcotest.test_case "remove present/absent" `Quick (fun () ->
        let s, _ = Set_model.apply Set_model.empty (op_ins 2) in
        let s, r1 = Set_model.apply s (op_rem 2) in
        let _, r2 = Set_model.apply s (op_rem 2) in
        Alcotest.(check bool) "first" true r1;
        Alcotest.(check bool) "second" false r2);
    Alcotest.test_case "contains reflects state" `Quick (fun () ->
        let s, _ = Set_model.apply Set_model.empty (op_ins 3) in
        let _, r1 = Set_model.apply s (op_ctn 3) in
        let _, r2 = Set_model.apply s (op_ctn 4) in
        Alcotest.(check bool) "present" true r1;
        Alcotest.(check bool) "absent" false r2);
    Alcotest.test_case "run threads state through" `Quick (fun () ->
        let _, rs = Set_model.run [ op_ins 1; op_ins 1; op_rem 1; op_ctn 1 ] in
        Alcotest.(check (list bool)) "results" [ true; false; true; false ] rs);
    Alcotest.test_case "key and is_update" `Quick (fun () ->
        Alcotest.(check int) "key" 7 (Set_model.key (op_rem 7));
        Alcotest.(check bool) "update" true (Set_model.is_update (op_ins 1));
        Alcotest.(check bool) "not update" false (Set_model.is_update (op_ctn 1)));
  ]

(* entry: (thread, index, op, invoked_at, completion, returned_at) *)
let history entries = History.of_list entries

let returned b = History.Returned b

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let lin_tests =
  [
    Alcotest.test_case "empty history is linearizable" `Quick (fun () ->
        Alcotest.(check bool) "lin" true (Linearizability.check (history [])));
    Alcotest.test_case "sequential correct run" `Quick (fun () ->
        let h =
          History.sequential
            [ (op_ins 1, true); (op_ctn 1, true); (op_rem 1, true); (op_ctn 1, false) ]
        in
        Alcotest.(check bool) "lin" true (Linearizability.check h));
    Alcotest.test_case "sequential wrong response rejected" `Quick (fun () ->
        let h = History.sequential [ (op_ins 1, true); (op_ctn 1, false) ] in
        Alcotest.(check bool) "not lin" false (Linearizability.check h));
    Alcotest.test_case "concurrent inserts, one wins" `Quick (fun () ->
        (* Two overlapping insert(5): exactly one may return true. *)
        let h =
          history
            [
              (0, 0, op_ins 5, 0, returned true, 3);
              (1, 0, op_ins 5, 1, returned false, 2);
            ]
        in
        Alcotest.(check bool) "lin" true (Linearizability.check h));
    Alcotest.test_case "concurrent inserts, both true, rejected" `Quick (fun () ->
        let h =
          history
            [
              (0, 0, op_ins 5, 0, returned true, 3);
              (1, 0, op_ins 5, 1, returned true, 2);
            ]
        in
        Alcotest.(check bool) "not lin" false (Linearizability.check h));
    Alcotest.test_case "lost update caught via extension (paper §2.2)" `Quick
      (fun () ->
        (* insert(1) and insert(2) both report true, then contains(2) sees
           false: the extension exposes the overwritten insert. *)
        let h =
          history
            [
              (0, 0, op_ins 1, 0, returned true, 3);
              (1, 0, op_ins 2, 1, returned true, 2);
              (0, 1, op_ctn 2, 4, returned false, 5);
            ]
        in
        Alcotest.(check bool) "not lin" false (Linearizability.check h));
    Alcotest.test_case "real-time order enforced" `Quick (fun () ->
        (* insert(1) completes before contains(1) starts, so contains must
           see it. *)
        let h =
          history
            [
              (0, 0, op_ins 1, 0, returned true, 1);
              (1, 0, op_ctn 1, 2, returned false, 3);
            ]
        in
        Alcotest.(check bool) "not lin" false (Linearizability.check h));
    Alcotest.test_case "concurrent contains may see either state" `Quick (fun () ->
        let see_true =
          history
            [
              (0, 0, op_ins 1, 0, returned true, 3);
              (1, 0, op_ctn 1, 1, returned true, 2);
            ]
        and see_false =
          history
            [
              (0, 0, op_ins 1, 0, returned true, 3);
              (1, 0, op_ctn 1, 1, returned false, 2);
            ]
        in
        Alcotest.(check bool) "true ok" true (Linearizability.check see_true);
        Alcotest.(check bool) "false ok" true (Linearizability.check see_false));
    Alcotest.test_case "remove/insert race admits both orders" `Quick (fun () ->
        (* {1} initially built by a prior insert; then concurrent remove(1)
           and contains(1). *)
        let h =
          history
            [
              (0, 0, op_ins 1, 0, returned true, 1);
              (0, 1, op_rem 1, 2, returned true, 5);
              (1, 0, op_ctn 1, 3, returned true, 4);
            ]
        in
        Alcotest.(check bool) "lin" true (Linearizability.check h));
    Alcotest.test_case "pending op may take effect" `Quick (fun () ->
        (* insert(1) never returns, but a later contains sees 1: the pending
           insert must be allowed to have taken effect. *)
        let h =
          history
            [
              (0, 0, op_ins 1, 0, History.Pending, max_int);
              (1, 0, op_ctn 1, 2, returned true, 3);
            ]
        in
        Alcotest.(check bool) "lin" true (Linearizability.check h));
    Alcotest.test_case "pending op may be dropped" `Quick (fun () ->
        let h =
          history
            [
              (0, 0, op_ins 1, 0, History.Pending, max_int);
              (1, 0, op_ctn 1, 2, returned false, 3);
            ]
        in
        Alcotest.(check bool) "lin" true (Linearizability.check h));
    Alcotest.test_case "cross-key independence" `Quick (fun () ->
        (* Interleaved ops on different keys, each key individually fine. *)
        let h =
          history
            [
              (0, 0, op_ins 1, 0, returned true, 5);
              (1, 0, op_ins 2, 1, returned true, 2);
              (1, 1, op_ctn 1, 3, returned true, 4);
            ]
        in
        Alcotest.(check bool) "lin" true (Linearizability.check h));
    Alcotest.test_case "violation names the key" `Quick (fun () ->
        let h =
          history
            [
              (0, 0, op_ins 9, 0, returned true, 1);
              (1, 0, op_ctn 9, 2, returned false, 3);
            ]
        in
        match Linearizability.find_violation h with
        | Some msg -> Alcotest.(check bool) "mentions key" true (contains_sub msg "9")
        | None -> Alcotest.fail "expected violation");
  ]

(* Property: the checker accepts every history generated by actually
   running ops sequentially against the model, and rejects it if we flip
   one response of an update that the rest of the history depends on. *)
let gen_ops =
  QCheck2.Gen.(
    list_size (int_range 1 12)
      (let* v = int_range 0 3 in
       oneofl [ op_ins v; op_rem v; op_ctn v ]))

let prop_sequential_accepted =
  QCheck2.Test.make ~count:500 ~name:"sequentially generated histories accepted"
    ~print:(fun ops -> String.concat ";" (List.map Set_model.op_to_string ops))
    gen_ops
    (fun ops ->
      let _, results = Set_model.run ops in
      let h = History.sequential (List.combine ops results) in
      Linearizability.check h)

let prop_flipped_rejected =
  QCheck2.Test.make ~count:500 ~name:"flipping a contains response rejected"
    ~print:(fun ops -> String.concat ";" (List.map Set_model.op_to_string ops))
    gen_ops
    (fun ops ->
      (* Append a contains per key and flip its response: must reject. *)
      let _, results = Set_model.run ops in
      let keys = List.sort_uniq compare (List.map Set_model.key ops) in
      List.for_all
        (fun k ->
          let probe = op_ctn k in
          let _, probe_results = Set_model.run (ops @ [ probe ]) in
          let flipped = not (List.nth probe_results (List.length ops)) in
          let h =
            History.sequential (List.combine ops results @ [ (probe, flipped) ])
          in
          not (Linearizability.check h))
        keys)

(* Interval spreading: run ops sequentially for their specified results,
   then widen each operation's interval around its linearization point
   (point of op k = time 10k).  Any such history is linearizable by
   construction — the original order is a witness — however the intervals
   overlap. *)
let prop_spread_accepted =
  QCheck2.Test.make ~count:500 ~name:"interval-spread histories accepted"
    ~print:(fun (ops, _) -> String.concat ";" (List.map Set_model.op_to_string ops))
    QCheck2.Gen.(pair gen_ops (int_range 0 1_000_000))
    (fun (ops, salt) ->
      let rng = Vbl_util.Rng.create ~seed:(Int64.of_int salt) () in
      let _, results = Set_model.run ops in
      let entries =
        List.mapi
          (fun i (op, r) ->
            let point = 10 * (i + 1) in
            let inv = point - Vbl_util.Rng.int rng 10 in
            let ret = point + Vbl_util.Rng.int rng 10 in
            (i, 0, op, inv, returned r, ret))
          (List.combine ops results)
      in
      Linearizability.check (history entries))

(* The whole-state checker against the double-collect counterexample:
   with initial {1}, one updater toggling
   remove 1; insert 2; remove 2; insert 1; remove 1; insert 2
   concurrent with range_query 1 2 can let both of the derived query's
   collections observe [1; 2] — a window that no instant ever contains.
   Multikey must reject that history (this is what would flag the torn
   view if an explored scenario ever reached the six-update schedule;
   the bounded DPOR range suites do not, so the derived range_query
   documents best-effort — see Set_intf.Derive and the scripted canary
   in test_lists_seq.ml). *)
let multikey_tests =
  let single th op result invoked returned =
    {
      Multikey.thread = th;
      op = Multikey.Single op;
      result = Multikey.Bool result;
      invoked_at = invoked;
      returned_at = returned;
    }
  in
  let range lo hi vs invoked returned =
    {
      Multikey.thread = 0;
      op = Multikey.Range { lo; hi };
      result = Multikey.Values vs;
      invoked_at = invoked;
      returned_at = returned;
    }
  in
  let toggles =
    [
      single 1 (op_rem 1) true 10 11;
      single 1 (op_ins 2) true 20 21;
      single 1 (op_rem 2) true 30 31;
      single 1 (op_ins 1) true 40 41;
      single 1 (op_rem 1) true 50 51;
      single 1 (op_ins 2) true 60 61;
    ]
  in
  let check_toggle name expected result =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check bool)
          "linearizable" expected
          (Multikey.check ~initial:[ 1 ] (range 1 2 result 0 100 :: toggles)))
  in
  [
    check_toggle "ABA torn range view rejected" false [ 1; 2 ];
    check_toggle "final-state range view accepted" true [ 2 ];
    check_toggle "initial-state range view accepted" true [ 1 ];
    check_toggle "mid-toggle empty window accepted" true [];
  ]

let () =
  Alcotest.run "spec"
    [
      ("model", model_tests);
      ("linearizability", lin_tests);
      ("multikey", multikey_tests);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_sequential_accepted;
          QCheck_alcotest.to_alcotest prop_flipped_rejected;
          QCheck_alcotest.to_alcotest prop_spread_accepted;
        ] );
    ]
