(* Tests for the concurrency-analysis layer: DPOR exploration (failure
   variants with reproducing schedules, DFS parity, reduction factor), the
   pluggable schedule bounds (preempt/delay/none) and the randomized swarm
   strategy, the counterexample shrinker, the happens-before race detector
   and lock-discipline linter, and the seeded mutation suite. *)

open Vbl_sched
module Instr = Vbl_memops.Instr_mem
module Monitor = Vbl_analysis.Monitor
module Check = Vbl_analysis.Check
module Mutants = Vbl_analysis.Mutants
module Ll = Ll_abstract

let quick_config =
  { Explore.max_executions = 200_000; preemption_bound = Some 3; max_steps = 5_000 }

let is_infix ~affix s =
  let n = String.length affix and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = affix || go (i + 1)) in
  n = 0 || go 0

(* Raw-body scenarios with a trivially linearizable (empty) history, so the
   only possible verdicts come from the explorer and the monitor. *)
let raw_scenario mk_bodies : Explore.scenario =
  {
    Explore.make =
      (fun () ->
        {
          Explore.bodies = mk_bodies ();
          history = (fun () -> Vbl_spec.History.of_list []);
          invariants = (fun () -> Ok ());
        });
  }

(* Replay a schedule against a fresh instance of the scenario; returns the
   conductor at the point the schedule ends. *)
let replay scenario schedule =
  let inst = scenario.Explore.make () in
  let exec = Exec.create inst.Explore.bodies in
  List.iter (fun t -> Exec.step exec t) schedule;
  exec

(* ------------------------------------------------------------------ *)
(* Failure variants carry reproducing schedules.                       *)
(* ------------------------------------------------------------------ *)

let failure_tests =
  [
    Alcotest.test_case "Deadlock carries a schedule that replays to deadlock" `Quick
      (fun () ->
        let mk () =
          let line = Instr.fresh_line () in
          let a = Instr.make_lock ~name:"A.lock" ~line () in
          let b = Instr.make_lock ~name:"B.lock" ~line () in
          let grab l1 l2 () =
            Instr.lock l1;
            Instr.lock l2;
            Instr.unlock l2;
            Instr.unlock l1
          in
          [ grab a b; grab b a ]
        in
        let scenario = raw_scenario mk in
        let report = Explore.run ~config:quick_config scenario in
        match report.Explore.failure with
        | Some (Explore.Deadlock { schedule }) ->
            Alcotest.(check bool) "non-empty schedule" true (schedule <> []);
            let exec = replay scenario schedule in
            Alcotest.(check bool) "replays to deadlock" true (Exec.deadlocked exec)
        | Some f -> Alcotest.failf "expected Deadlock, got %a" Explore.pp_failure f
        | None -> Alcotest.fail "expected Deadlock, found no failure");
    Alcotest.test_case "Step_limit carries the truncated schedule" `Quick (fun () ->
        let mk () =
          let line = Instr.fresh_line () in
          let c = Instr.make ~name:"c" ~line 0 in
          [
            (fun () ->
              while Instr.get c >= 0 do
                ()
              done);
          ]
        in
        let config = { quick_config with Explore.max_steps = 40 } in
        let report = Explore.run ~config (raw_scenario mk) in
        match report.Explore.failure with
        | Some (Explore.Step_limit { schedule }) ->
            Alcotest.(check int) "schedule hits the cap" 40 (List.length schedule);
            (* The schedule replays without raising: the instance really
               does run that long. *)
            ignore (replay (raw_scenario mk) schedule)
        | _ -> Alcotest.fail "expected Step_limit");
    Alcotest.test_case "Crashed carries the exception and its schedule" `Quick (fun () ->
        let mk () =
          let line = Instr.fresh_line () in
          let c = Instr.make ~name:"c" ~line 0 in
          [
            (fun () ->
              if Instr.get c = 0 then failwith "seeded crash";
              ());
          ]
        in
        let report = Explore.run ~config:quick_config (raw_scenario mk) in
        match report.Explore.failure with
        | Some (Explore.Crashed { schedule; exn }) ->
            Alcotest.(check bool) "exn mentions seed" true
              (is_infix ~affix:"seeded crash" exn);
            Alcotest.(check int) "crash after the read step" 1 (List.length schedule)
        | _ -> Alcotest.fail "expected Crashed");
    Alcotest.test_case "naive DFS reports the same deadlock" `Quick (fun () ->
        let mk () =
          let line = Instr.fresh_line () in
          let a = Instr.make_lock ~name:"A.lock" ~line () in
          let b = Instr.make_lock ~name:"B.lock" ~line () in
          let grab l1 l2 () =
            Instr.lock l1;
            Instr.lock l2;
            Instr.unlock l2;
            Instr.unlock l1
          in
          [ grab a b; grab b a ]
        in
        let report = Explore.run_naive ~config:quick_config (raw_scenario mk) in
        match report.Explore.failure with
        | Some (Explore.Deadlock _) -> ()
        | _ -> Alcotest.fail "expected Deadlock from the naive DFS");
  ]

(* ------------------------------------------------------------------ *)
(* DPOR vs naive DFS: identical verdicts, fewer executions.            *)
(* ------------------------------------------------------------------ *)

let reference_scenarios =
  [
    ("vbl 2-thread", "vbl", [ 2 ], [ Ll.insert 1; Ll.remove 2 ]);
    ("vbl 3-thread", "vbl", [ 2 ], [ Ll.insert 1; Ll.remove 2; Ll.contains 1 ]);
    ("lazy 3-thread", "lazy", [ 2 ], [ Ll.insert 1; Ll.remove 2; Ll.contains 1 ]);
  ]

let dpor_tests =
  List.map
    (fun (label, nm, initial, ops) ->
      Alcotest.test_case (Printf.sprintf "parity + reduction: %s" label) `Slow (fun () ->
          let impl = Drive.find_instrumented nm in
          let scenario = Drive.explore_scenario impl ~initial ~ops in
          let naive = Explore.run_naive ~config:quick_config scenario in
          let dpor = Explore.run ~config:quick_config scenario in
          Alcotest.(check bool) "naive passes" true (naive.Explore.failure = None);
          Alcotest.(check bool) "dpor passes" true (dpor.Explore.failure = None);
          Alcotest.(check bool) "neither truncated" true
            ((not naive.Explore.truncated) && not dpor.Explore.truncated);
          Alcotest.(check bool) "dpor explores more than one execution" true
            (dpor.Explore.executions > 1);
          (* The acceptance bar: >= 5x fewer executions on the 3-thread
             scenarios (the 2-thread one also clears it comfortably). *)
          Alcotest.(check bool)
            (Printf.sprintf "5x reduction (naive %d vs dpor %d)" naive.Explore.executions
               dpor.Explore.executions)
            true
            (naive.Explore.executions >= 5 * dpor.Explore.executions)))
      reference_scenarios
  @ [
      Alcotest.test_case "parity on a buggy list: both explorers fail" `Quick (fun () ->
          let impl = Drive.find_instrumented "sequential" in
          let scenario =
            Drive.explore_scenario impl ~initial:[ 2 ] ~ops:[ Ll.insert 1; Ll.remove 2 ]
          in
          let failed r =
            match r.Explore.failure with
            | Some (Explore.Not_linearizable _) | Some (Explore.Invariant_broken _) -> true
            | _ -> false
          in
          Alcotest.(check bool) "naive finds the bug" true
            (failed (Explore.run_naive ~config:quick_config scenario));
          Alcotest.(check bool) "dpor finds the bug" true
            (failed (Explore.run ~config:quick_config scenario)));
    ]

(* ------------------------------------------------------------------ *)
(* Verdict parity on randomized scenarios.                             *)
(* ------------------------------------------------------------------ *)

(* DPOR and the naive DFS must agree on the ok/failure verdict for small
   randomized scenarios, clean or mutated.  The PRNG seed is fixed so the
   three scenarios (and the test's cost) are reproducible. *)
let verdict_parity_tests =
  let impls =
    [|
      ("vbl", fun () -> Drive.find_instrumented "vbl");
      ("lazy", fun () -> Drive.find_instrumented "lazy");
      ("harris-michael", fun () -> Drive.find_instrumented "harris-michael");
      ("vbl-no-deleted-check", fun () -> Mutants.find "vbl-no-deleted-check");
      ("lazy-no-validation", fun () -> Mutants.find "lazy-no-validation");
    |]
  in
  let gen_op st =
    let v = 1 + Random.State.int st 3 in
    match Random.State.int st 3 with
    | 0 -> Ll.insert v
    | 1 -> Ll.remove v
    | _ -> Ll.contains v
  in
  let gen_scenario st =
    let nm, mk = impls.(Random.State.int st (Array.length impls)) in
    let initial = List.filter (fun _ -> Random.State.bool st) [ 1; 2; 3 ] in
    let ops = [ gen_op st; gen_op st ] in
    (nm, mk (), initial, ops)
  in
  (* The bounds the parity sweep runs under: each must yield the same
     ok/failure verdict from DPOR and the brute-force DFS. *)
  let parity_bounds =
    [ ("preempt:3", Explore.preempt 3); ("delay:3", Explore.delay 3); ("none", Explore.none) ]
  in
  [
    Alcotest.test_case "random scenarios: run and run_naive verdicts agree" `Slow
      (fun () ->
        let st = Random.State.make [| 0x5eed |] in
        for i = 1 to 3 do
          let nm, impl, initial, ops = gen_scenario st in
          let scenario = Drive.explore_scenario impl ~initial ~ops in
          let dpor = Explore.run ~config:quick_config scenario in
          let naive = Explore.run_naive ~config:quick_config scenario in
          Alcotest.(check bool)
            (Printf.sprintf "scenario %d (%s): verdicts agree" i nm)
            (naive.Explore.failure = None)
            (dpor.Explore.failure = None)
        done);
    Alcotest.test_case "random scenarios: Dpor and Dfs agree under every bound" `Slow
      (fun () ->
        (* Same seed as above, so the sweep covers the same three
           scenarios — once per bound instance. *)
        let st = Random.State.make [| 0x5eed |] in
        for i = 1 to 3 do
          let nm, impl, initial, ops = gen_scenario st in
          let scenario = Drive.explore_scenario impl ~initial ~ops in
          List.iter
            (fun (bname, b) ->
              let dpor = Explore.run ~config:quick_config ~strategy:(Explore.Dpor b) scenario in
              let dfs = Explore.run ~config:quick_config ~strategy:(Explore.Dfs b) scenario in
              Alcotest.(check bool)
                (Printf.sprintf "scenario %d (%s) under %s: verdicts agree" i nm bname)
                (dfs.Explore.failure = None)
                (dpor.Explore.failure = None);
              Alcotest.(check bool)
                (Printf.sprintf "scenario %d (%s) under %s: dpor not above dfs" i nm bname)
                true
                (dpor.Explore.executions <= dfs.Explore.executions))
            parity_bounds
        done);
    Alcotest.test_case "swarm scheduling agrees with DPOR on clean scenarios" `Slow
      (fun () ->
        (* The random strategy is incomplete by design, so agreement is
           asserted one-sided: it must not report a failure DPOR (sound
           and complete up to the bound) rules out. *)
        let st = Random.State.make [| 0x5eed |] in
        for i = 1 to 3 do
          let nm, impl, initial, ops = gen_scenario st in
          let scenario = Drive.explore_scenario impl ~initial ~ops in
          let dpor = Explore.run ~config:quick_config ~strategy:(Explore.Dpor Explore.none) scenario in
          let rand =
            Explore.run ~config:quick_config
              ~strategy:(Explore.Random { Explore.seed = Int64.of_int (0xbeef + i); iters = 50 })
              scenario
          in
          if dpor.Explore.failure = None then
            Alcotest.(check bool)
              (Printf.sprintf "scenario %d (%s): no false alarm from swarm" i nm)
              true (rand.Explore.failure = None);
          Alcotest.(check bool)
            (Printf.sprintf "scenario %d (%s): swarm ran all iterations or failed" i nm)
            true
            (rand.Explore.failure <> None || rand.Explore.executions = 50);
          Alcotest.(check bool)
            (Printf.sprintf "scenario %d (%s): distinct <= runs" i nm)
            true
            (rand.Explore.distinct_schedules <= rand.Explore.executions)
        done);
  ]

(* ------------------------------------------------------------------ *)
(* Monitor unit tests on synthetic event streams.                      *)
(* ------------------------------------------------------------------ *)

let ev ?(effective = true) ?(completed = false) thread kind shadow name : Explore.event =
  {
    Explore.ev_thread = thread;
    ev_access = { Instr.line = 1; name; kind; shadow };
    ev_effective = effective;
    ev_completed = completed;
  }

let kinds_of m = List.map (fun v -> v.Monitor.v_kind) (Monitor.violations m)

let monitor_tests =
  [
    Alcotest.test_case "unordered plain writes race" `Quick (fun () ->
        let m = Monitor.create ~threads:2 () in
        let c = Instr.fresh_shadow () in
        Monitor.on_step m (ev 0 Instr.Write c "x.next");
        Monitor.on_step m (ev 1 Instr.Write c "x.next");
        (* Both writers are lockless, so the lockset lint fires too; the
           race is the first (and leading) violation. *)
        Alcotest.(check (list string)) "race reported" [ "race"; "lockset" ] (kinds_of m));
    Alcotest.test_case "lock-ordered writes do not race" `Quick (fun () ->
        let m = Monitor.create ~threads:2 () in
        let c = Instr.fresh_shadow () in
        let l = Instr.fresh_shadow () in
        Monitor.on_step m (ev 0 Instr.Lock_try l "x.lock");
        Monitor.on_step m (ev 0 Instr.Write c "x.next");
        Monitor.on_step m (ev 0 Instr.Lock_release l "x.lock");
        Monitor.on_step m (ev 1 Instr.Lock_try l "x.lock");
        Monitor.on_step m (ev 1 Instr.Write c "x.next");
        Monitor.on_step m (ev 1 Instr.Lock_release l "x.lock");
        Alcotest.(check (list string)) "clean" [] (kinds_of m));
    Alcotest.test_case "reading a release does not excuse a later write" `Quick (fun () ->
        (* Thread 1 reads the cell after thread 0's write (acquiring its
           publication clock) but its own overwrite happens without any
           lock: still a race?  No - the read *does* order the write via
           s_sync publication.  The racy pattern is read first, write after
           the victim's store. *)
        let m = Monitor.create ~threads:2 () in
        let c = Instr.fresh_shadow () in
        Monitor.on_step m (ev 1 Instr.Read c "x.next");
        Monitor.on_step m (ev 0 Instr.Write c "x.next");
        Monitor.on_step m (ev 1 Instr.Write c "x.next");
        Alcotest.(check (list string)) "stale write races" [ "race"; "lockset" ]
          (kinds_of m));
    Alcotest.test_case "CAS discipline is race-free" `Quick (fun () ->
        let m = Monitor.create ~threads:2 () in
        let c = Instr.fresh_shadow () in
        Monitor.on_step m (ev 0 Instr.Cas c "x.next");
        Monitor.on_step m (ev 1 Instr.Cas c "x.next");
        Monitor.on_step m (ev ~effective:false 0 Instr.Cas c "x.next");
        Alcotest.(check (list string)) "clean" [] (kinds_of m));
    Alcotest.test_case "lockset: no common lock over plain writes" `Quick (fun () ->
        let m = Monitor.create ~threads:3 () in
        let c = Instr.fresh_shadow () in
        let l1 = Instr.fresh_shadow () in
        let l2 = Instr.fresh_shadow () in
        (* Thread 0 writes under l1 twice (first write is the exempt
           exclusive phase), thread 1 under l2: the intersection empties on
           the third write.  The HB race also fires; the lockset lint is
           the second, distinct violation. *)
        Monitor.on_step m (ev 0 Instr.Lock_try l1 "l1");
        Monitor.on_step m (ev 0 Instr.Write c "x.next");
        Monitor.on_step m (ev 0 Instr.Lock_release l1 "l1");
        Monitor.on_step m (ev 1 Instr.Lock_try l2 "l2");
        Monitor.on_step m (ev 1 Instr.Write c "x.next");
        Monitor.on_step m (ev 1 Instr.Lock_release l2 "l2");
        Monitor.on_step m (ev 2 Instr.Lock_try l1 "l1");
        Monitor.on_step m (ev 2 Instr.Write c "x.next");
        Monitor.on_step m (ev 2 Instr.Lock_release l1 "l1");
        Alcotest.(check bool) "lockset lint present" true
          (List.mem "lockset" (kinds_of m)));
    Alcotest.test_case "first-writer exclusive phase is exempt" `Quick (fun () ->
        let m = Monitor.create ~threads:2 () in
        let c = Instr.fresh_shadow () in
        let l = Instr.fresh_shadow () in
        (* Unlocked initialization write by thread 0, then both threads
           write under the same lock: no lockset lint. *)
        Monitor.on_step m (ev 0 Instr.Write c "x.next");
        Monitor.on_step m (ev 0 Instr.Lock_try l "l");
        Monitor.on_step m (ev 0 Instr.Write c "x.next");
        Monitor.on_step m (ev 0 Instr.Lock_release l "l");
        Monitor.on_step m (ev 1 Instr.Lock_try l "l");
        Monitor.on_step m (ev 1 Instr.Write c "x.next");
        Monitor.on_step m (ev 1 Instr.Lock_release l "l");
        Alcotest.(check bool) "no lockset lint" true
          (not (List.mem "lockset" (kinds_of m))));
    Alcotest.test_case "double-acquire lint" `Quick (fun () ->
        let m = Monitor.create ~threads:1 () in
        let l = Instr.fresh_shadow () in
        Monitor.on_step m (ev 0 Instr.Lock_try l "x.lock");
        Monitor.on_step m (ev ~effective:false 0 Instr.Lock_try l "x.lock");
        Alcotest.(check (list string)) "reported" [ "double-acquire" ] (kinds_of m));
    Alcotest.test_case "release-without-acquire lint" `Quick (fun () ->
        let m = Monitor.create ~threads:1 () in
        let l = Instr.fresh_shadow () in
        Monitor.on_step m (ev 0 Instr.Lock_release l "x.lock");
        Alcotest.(check (list string)) "reported" [ "release-without-acquire" ]
          (kinds_of m));
    Alcotest.test_case "lock-held-at-return lint" `Quick (fun () ->
        let m = Monitor.create ~threads:1 () in
        let l = Instr.fresh_shadow () in
        Monitor.on_step m (ev ~completed:true 0 Instr.Lock_try l "x.lock");
        Alcotest.(check (list string)) "reported" [ "lock-held-at-return" ] (kinds_of m));
  ]

(* ------------------------------------------------------------------ *)
(* End-to-end: monitored exploration of raw bodies.                    *)
(* ------------------------------------------------------------------ *)

let integration_tests =
  [
    Alcotest.test_case "unsynchronized writers are flagged as a race" `Quick (fun () ->
        let mk () =
          let line = Instr.fresh_line () in
          let c = Instr.make ~name:"c" ~line 0 in
          [ (fun () -> Instr.set c 1); (fun () -> Instr.set c 2) ]
        in
        let report =
          Explore.run ~config:quick_config ~monitor:(Monitor.make ~threads:2 ())
            (raw_scenario mk)
        in
        match report.Explore.failure with
        | Some (Explore.Analysis_violation { kind = "race"; schedule; _ }) ->
            Alcotest.(check bool) "schedule attached" true (schedule <> [])
        | _ -> Alcotest.fail "expected a race violation");
    Alcotest.test_case "lock-protected writers pass the analysis" `Quick (fun () ->
        let mk () =
          let line = Instr.fresh_line () in
          let c = Instr.make ~name:"c" ~line 0 in
          let l = Instr.make_lock ~name:"c.lock" ~line () in
          let body v () =
            Instr.lock l;
            Instr.set c v;
            Instr.unlock l
          in
          [ body 1; body 2 ]
        in
        let report =
          Explore.run ~config:quick_config ~monitor:(Monitor.make ~threads:2 ())
            (raw_scenario mk)
        in
        Alcotest.(check bool) "no failure" true (report.Explore.failure = None));
    Alcotest.test_case "self try-lock while holding is linted" `Quick (fun () ->
        let mk () =
          let line = Instr.fresh_line () in
          let l = Instr.make_lock ~name:"c.lock" ~line () in
          [
            (fun () ->
              Instr.lock l;
              ignore (Instr.try_lock l);
              Instr.unlock l);
          ]
        in
        let report =
          Explore.run ~config:quick_config ~monitor:(Monitor.make ~threads:1 ())
            (raw_scenario mk)
        in
        match report.Explore.failure with
        | Some (Explore.Analysis_violation { kind = "double-acquire"; _ }) -> ()
        | _ -> Alcotest.fail "expected double-acquire");
  ]

(* ------------------------------------------------------------------ *)
(* Mutation suite and clean suite.                                     *)
(* ------------------------------------------------------------------ *)

let mutation_tests =
  [
    Alcotest.test_case "every seeded mutant is caught with a schedule" `Slow (fun () ->
        List.iter
          (fun (r : Check.mutation_result) ->
            let name = r.Check.case.Check.mutant in
            match r.Check.report.Explore.failure with
            | None -> Alcotest.failf "mutant %s escaped the analysis" name
            | Some f ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: schedule attached" name)
                  true
                  (Explore.failure_schedule f <> []))
          (Check.mutation_suite ~config:quick_config ()));
    Alcotest.test_case "unlocked unlink is caught by the race detector" `Slow (fun () ->
        let impl = Mutants.find "vbl-unlocked-unlink" in
        let report =
          Check.analyze ~config:quick_config impl ~initial:[ 5 ]
            ~ops:[ Ll.remove 5; Ll.insert 3 ]
        in
        match report.Explore.failure with
        | Some (Explore.Analysis_violation { kind; _ }) ->
            Alcotest.(check bool) "race or lockset" true (kind = "race" || kind = "lockset")
        | Some f ->
            Alcotest.failf "expected a race, got %a" Explore.pp_failure f
        | None -> Alcotest.fail "mutant escaped");
    Alcotest.test_case "leaky lock is caught by the lock linter" `Slow (fun () ->
        let impl = Mutants.find "vbl-leaky-lock" in
        let report =
          Check.analyze ~config:quick_config impl ~initial:[]
            ~ops:[ Ll.insert 1; Ll.insert 2 ]
        in
        match report.Explore.failure with
        | Some (Explore.Analysis_violation { kind = "lock-held-at-return"; _ })
        | Some (Explore.Deadlock _) -> ()
        | Some f -> Alcotest.failf "unexpected failure %a" Explore.pp_failure f
        | None -> Alcotest.fail "mutant escaped");
    Alcotest.test_case "clean vbl/lazy/harris-michael/vbl-bst pass race-free" `Slow (fun () ->
        List.iter
          (fun (nm, report) ->
            (match report.Explore.failure with
            | None -> ()
            | Some f -> Alcotest.failf "%s flagged: %a" nm Explore.pp_failure f);
            Alcotest.(check bool)
              (Printf.sprintf "%s explored" nm)
              true
              (report.Explore.executions > 1))
          (Check.clean_suite ~config:quick_config ()));
  ]

(* ------------------------------------------------------------------ *)
(* Counterexample shrinking.                                           *)
(* ------------------------------------------------------------------ *)

(* Locally minimal hint-schedule length for every mutation case, pinned:
   a regression here means the shrinker got weaker (longer) or the
   violation changed (shorter).  Zero steps means the violation already
   manifests under the deterministic baseline scheduler. *)
let expected_shrunk_steps =
  [
    ("vbl-no-deleted-check", 11);
    ("vbl-unlocked-unlink", 3);
    ("vbl-no-logical-delete", 12);
    ("vbl-leaky-lock", 0);
    ("lazy-no-validation", 2);
    ("bst-no-version-recheck", 4);
    ("bst-unlocked-rotation-window", 7);
    ("vbl-reclaim-eager", 0);
  ]

let shrink_tests =
  [
    Alcotest.test_case "mutation counterexamples shrink to pinned minima" `Slow (fun () ->
        List.iter
          (fun (r : Check.mutation_result) ->
            let name = r.Check.case.Check.mutant in
            let orig =
              match r.Check.report.Explore.failure with
              | Some f -> f
              | None -> Alcotest.failf "mutant %s escaped the analysis" name
            in
            match r.Check.shrunk with
            | None -> Alcotest.failf "mutant %s: no shrink result" name
            | Some s ->
                Alcotest.(check int)
                  (Printf.sprintf "%s: locally minimal step count" name)
                  (List.assoc name expected_shrunk_steps)
                  (List.length s.Shrink.shrunk);
                Alcotest.(check int)
                  (Printf.sprintf "%s: removed = original - shrunk" name)
                  (List.length s.Shrink.original - List.length s.Shrink.shrunk)
                  s.Shrink.removed;
                Alcotest.(check bool)
                  (Printf.sprintf "%s: at least one replay attempted" name)
                  true (s.Shrink.attempts >= 1);
                (* The shrunk schedule reproduces the *same* violation. *)
                (match s.Shrink.failure with
                | Some f ->
                    Alcotest.(check bool)
                      (Printf.sprintf "%s: same violation after shrinking" name)
                      true
                      (Shrink.same_violation orig f)
                | None -> Alcotest.failf "mutant %s: shrunk schedule passes" name))
          (Check.mutation_suite ~config:quick_config ()));
    Alcotest.test_case "shrinking is deterministic (same seed, same minimum)" `Quick
      (fun () ->
        let strategy = Explore.Random { Explore.seed = 7L; iters = 100 } in
        let go () =
          Check.analyze_shrunk ~config:quick_config ~strategy
            (Mutants.find "vbl-no-logical-delete") ~initial:[ 5 ]
            ~ops:[ Ll.remove 5; Ll.insert 7; Ll.contains 5; Ll.insert 3 ]
        in
        let r1, s1 = go () and r2, s2 = go () in
        let sched = function
          | Some s -> s.Shrink.shrunk
          | None -> Alcotest.fail "swarm missed the seeded bug"
        in
        Alcotest.(check bool) "both runs fail" true
          (r1.Explore.failure <> None && r2.Explore.failure <> None);
        Alcotest.(check (list int)) "identical shrunk schedules" (sched s1) (sched s2));
    Alcotest.test_case "a passing schedule is a no-op shrink" `Quick (fun () ->
        let impl = Drive.find_instrumented "vbl" in
        let scenario =
          Drive.explore_scenario impl ~initial:[ 2 ] ~ops:[ Ll.insert 1; Ll.remove 2 ]
        in
        (* An interleaved but correct hint schedule: baseline fills in the
           rest, the execution passes, nothing must be "shrunk". *)
        let hints = [ 0; 1; 0; 1; 0; 1 ] in
        let r = Shrink.shrink_schedule ~max_steps:5_000 scenario hints in
        Alcotest.(check (list int)) "schedule untouched" hints r.Shrink.shrunk;
        Alcotest.(check bool) "no failure" true (r.Shrink.failure = None);
        Alcotest.(check int) "nothing removed" 0 r.Shrink.removed;
        Alcotest.(check int) "exactly the confirming replay" 1 r.Shrink.attempts);
    Alcotest.test_case "replay drops stale hints and stays deterministic" `Quick
      (fun () ->
        let impl = Mutants.find "vbl-unlocked-unlink" in
        let scenario =
          Drive.explore_scenario impl ~initial:[ 5 ] ~ops:[ Ll.remove 5; Ll.insert 3 ]
        in
        (* Thread 7 does not exist and thread 0 finishes long before the
           tail of hints runs out; replay must ignore both quietly. *)
        let noisy = [ 7; 0; 0; 9; 1; 0; 0; 0; 1; 7 ] in
        let v1 = Shrink.replay ~max_steps:5_000 scenario noisy in
        let v2 = Shrink.replay ~max_steps:5_000 scenario noisy in
        Alcotest.(check bool) "replay is reproducible" true
          ((v1 = None) = (v2 = None)));
  ]

(* ------------------------------------------------------------------ *)
(* Scale: budgeted DPOR misses, delay bounding and swarm catch.        *)
(* ------------------------------------------------------------------ *)

(* The documented scale demonstration (see EXPERIMENTS.md): on 4-5 domain
   scenarios the preemption-bounded DPOR exhausts a 100-execution budget
   without finding the seeded bug, while delay bounding and the swarm
   scheduler catch it well inside the same budget, and the shrinker
   reduces the counterexample to a few steps. *)
let scale_budget = { quick_config with Explore.max_executions = 100 }

(* 5 domains against the eager (grace-period-free) reclaiming backend:
   remove retires a node, insert recycles it under a parked contains. *)
let eager5 () =
  Drive.explore_scenario
    (Mutants.find "vbl-reclaim-eager")
    ~initial:[ 1; 2 ]
    ~ops:[ Ll.remove 1; Ll.insert 3; Ll.contains 2; Ll.insert 4; Ll.remove 2 ]

let scale_tests =
  [
    Alcotest.test_case "eager reclaim x5: preempt-DPOR exhausts the budget uncaught"
      `Slow (fun () ->
        let r =
          Explore.run ~config:scale_budget
            ~strategy:(Explore.Dpor (Explore.preempt 3))
            (eager5 ())
        in
        Alcotest.(check bool) "budget exhausted" true r.Explore.truncated;
        Alcotest.(check bool) "bug not found" true (r.Explore.failure = None));
    Alcotest.test_case "eager reclaim x5: delay bounding catches in-budget" `Slow
      (fun () ->
        let r =
          Explore.run ~config:scale_budget
            ~strategy:(Explore.Dpor (Explore.delay 2))
            (eager5 ())
        in
        match r.Explore.failure with
        | Some (Explore.Not_linearizable _) | Some (Explore.Invariant_broken _) ->
            Alcotest.(check bool) "within budget" true (not r.Explore.truncated)
        | Some f -> Alcotest.failf "unexpected failure %a" Explore.pp_failure f
        | None -> Alcotest.fail "delay:2 missed the use-after-reclaim");
    Alcotest.test_case "eager reclaim x5: swarm catches and shrinks in-budget" `Slow
      (fun () ->
        let scenario = eager5 () in
        let r =
          Explore.run ~config:scale_budget
            ~strategy:(Explore.Random { Explore.seed = 7L; iters = 100 })
            scenario
        in
        match r.Explore.failure with
        | Some ((Explore.Not_linearizable _ | Explore.Invariant_broken _) as f) ->
            Alcotest.(check bool) "found within a handful of runs" true
              (r.Explore.executions <= 10);
            let s = Shrink.shrink ~max_steps:5_000 scenario f in
            Alcotest.(check bool) "shrunk strictly smaller" true
              (List.length s.Shrink.shrunk < List.length s.Shrink.original);
            Alcotest.(check int) "four-step counterexample" 4
              (List.length s.Shrink.shrunk);
            Alcotest.(check bool) "same violation" true
              (match s.Shrink.failure with
              | Some f' -> Shrink.same_violation f f'
              | None -> false)
        | Some f -> Alcotest.failf "unexpected failure %a" Explore.pp_failure f
        | None -> Alcotest.fail "swarm missed the use-after-reclaim");
    Alcotest.test_case
      "no-logical-delete x4: DPOR misses, delay and swarm agree on a 3-step bug" `Slow
      (fun () ->
        let impl = Mutants.find "vbl-no-logical-delete" in
        let initial = [ 5 ] and ops = [ Ll.remove 5; Ll.insert 7; Ll.contains 5; Ll.insert 3 ] in
        let dpor =
          Check.analyze ~config:scale_budget
            ~strategy:(Explore.Dpor (Explore.preempt 3))
            impl ~initial ~ops
        in
        Alcotest.(check bool) "preempt-DPOR exhausts the budget uncaught" true
          (dpor.Explore.truncated && dpor.Explore.failure = None);
        let shrunk_of strategy =
          let report, shrunk =
            Check.analyze_shrunk ~config:scale_budget ~strategy impl ~initial ~ops
          in
          match (report.Explore.failure, shrunk) with
          | Some _, Some s -> s.Shrink.shrunk
          | _ -> Alcotest.failf "%s missed the seeded bug" (Explore.strategy_name strategy)
        in
        let via_delay = shrunk_of (Explore.Dpor (Explore.delay 2)) in
        let via_swarm = shrunk_of (Explore.Random { Explore.seed = 7L; iters = 100 }) in
        (* Both search strategies reduce to the *same* minimal schedule:
           two steps of the insert(7) thread, one of the insert(3) thread. *)
        Alcotest.(check (list int)) "delay-bounded counterexample" [ 1; 1; 3 ] via_delay;
        Alcotest.(check (list int)) "swarm counterexample" [ 1; 1; 3 ] via_swarm);
    Alcotest.test_case
      "stale-window BST x4: preempt-DPOR misses, delay and swarm catch and shrink" `Slow
      (fun () ->
        (* The BST analog of the table above: the stale-window splice needs
           the insert's whole run parked inside the remover's cleanup, a
           single but deeply-placed preemption that preempt:3 only reaches
           after ~2000 executions.  Delay bounding finds it at ~120 and the
           swarm's first weighted run lands on it. *)
        let impl = Mutants.find "bst-unlocked-rotation-window" in
        let initial = [ 1 ]
        and ops = [ Ll.remove 1; Ll.insert 2; Ll.contains 1; Ll.insert 3 ] in
        let budget = { quick_config with Explore.max_executions = 150 } in
        let dpor =
          Check.analyze ~config:budget
            ~strategy:(Explore.Dpor (Explore.preempt 3))
            impl ~initial ~ops
        in
        Alcotest.(check bool) "preempt-DPOR exhausts the budget uncaught" true
          (dpor.Explore.truncated && dpor.Explore.failure = None);
        let shrunk_of strategy =
          let report, shrunk =
            Check.analyze_shrunk ~config:budget ~strategy impl ~initial ~ops
          in
          match (report.Explore.failure, shrunk) with
          | Some (Explore.Not_linearizable _), Some s -> s
          | Some f, _ ->
              Alcotest.failf "%s: unexpected failure %a"
                (Explore.strategy_name strategy) Explore.pp_failure f
          | None, _ ->
              Alcotest.failf "%s missed the seeded bug" (Explore.strategy_name strategy)
        in
        let via_delay = shrunk_of (Explore.Dpor (Explore.delay 2)) in
        let via_swarm = shrunk_of (Explore.Random { Explore.seed = 7L; iters = 100 }) in
        (* The two strategies surface the lost update from different failing
           runs and settle in different local minima, so the lengths are
           pinned separately rather than the schedules compared. *)
        Alcotest.(check int) "delay-bounded counterexample length" 12
          (List.length via_delay.Shrink.shrunk);
        Alcotest.(check int) "swarm counterexample length" 7
          (List.length via_swarm.Shrink.shrunk));
  ]

let () =
  Alcotest.run "analysis"
    [
      ("failures", failure_tests);
      ("dpor", dpor_tests);
      ("parity", verdict_parity_tests);
      ("monitor", monitor_tests);
      ("integration", integration_tests);
      ("mutation", mutation_tests);
      ("shrink", shrink_tests);
      ("scale", scale_tests);
    ]
