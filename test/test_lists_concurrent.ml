(* Real-concurrency stress tests: OCaml domains hammer each algorithm and
   the recorded history is checked for linearizability (with the sigma-bar
   contains-extension over the final contents), plus structural invariants.
   Domains preempt each other even on a single core, so races do surface
   here — the sequential list is included as a canary and is expected to
   fail at least one of the checks across the stress configurations. *)

module H = Vbl_spec.History

(* [churn] is per-operation garbage (in words) allocated by every worker.
   Stop-the-world minor collections park *all* domains at their next
   safepoint — including one sitting inside another operation's
   read-modify-write window — so allocation churn in any domain shakes
   races loose in all of them.  The allocation-free hot paths barely
   collect on their own, so the canary asks for churn explicitly. *)
let stress ?(churn = 0) (impl : Vbl_lists.Registry.impl) ~domains ~ops_per_domain ~key_range
    ~update_percent ~seed =
  let module S = (val impl) in
  let t = S.create () in
  let master = Vbl_util.Rng.create ~seed () in
  let initial = ref [] in
  for v = 1 to key_range do
    if Vbl_util.Rng.bool master then
      if S.insert t v then initial := v :: !initial
  done;
  let recorder = H.Recorder.create () in
  let seeds = Array.init domains (fun _ -> Vbl_util.Rng.split master) in
  let worker d () =
    let rng = seeds.(d) in
    for _ = 1 to ops_per_domain do
      let v = 1 + Vbl_util.Rng.int rng key_range in
      let roll = Vbl_util.Rng.int rng 100 in
      let op : Vbl_spec.Set_model.op =
        if roll < update_percent then
          if roll mod 2 = 0 then Vbl_spec.Set_model.Insert v else Vbl_spec.Set_model.Remove v
        else Vbl_spec.Set_model.Contains v
      in
      ignore
        (H.Recorder.record recorder ~thread:d op (fun op ->
             match op with
             | Vbl_spec.Set_model.Insert v -> S.insert t v
             | Vbl_spec.Set_model.Remove v -> S.remove t v
             | Vbl_spec.Set_model.Contains v -> S.contains t v));
      if churn > 0 then ignore (Sys.opaque_identity (Array.make churn 0))
    done
  in
  List.iter Domain.join (List.init domains (fun d -> Domain.spawn (worker d)));
  let invariants = S.check_invariants t in
  let final = S.to_list t in
  (* Assemble the full judged history: seeded initial inserts, the recorded
     concurrent ops, then one contains probe per key reflecting the final
     contents. *)
  let recorded = H.Recorder.history recorder in
  let entries =
    List.map
      (fun (o : H.operation) -> (o.thread, o.index, o.op, o.invoked_at, o.completion, o.returned_at))
      (H.operations recorded)
  in
  let horizon = 1 + List.fold_left (fun acc (_, _, _, _, _, r) -> max acc r) 0 entries in
  let seed_entries =
    List.mapi
      (fun k v ->
        (1000 + k, 0, Vbl_spec.Set_model.Insert v, -2 * (k + 1), H.Returned true, (-2 * (k + 1)) + 1))
      (List.sort_uniq compare !initial)
  in
  let probes =
    List.mapi
      (fun k v ->
        ( 2000 + k,
          0,
          Vbl_spec.Set_model.Contains v,
          horizon + (2 * k) + 1,
          H.Returned (List.mem v final),
          horizon + (2 * k) + 2 ))
      (List.init key_range (fun i -> i + 1))
  in
  let history = H.of_list (seed_entries @ entries @ probes) in
  (invariants, Vbl_spec.Linearizability.check history)

let stress_ok name impl =
  Alcotest.test_case (name ^ ": stress is linearizable and intact") `Slow (fun () ->
      List.iteri
        (fun i (domains, ops_per_domain, key_range, update_percent) ->
          let invariants, linearizable =
            stress impl ~domains ~ops_per_domain ~key_range ~update_percent
              ~seed:(Int64.of_int (100 + i))
          in
          (match invariants with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "config %d: invariants: %s" i msg);
          if not linearizable then Alcotest.failf "config %d: non-linearizable history" i)
        [ (4, 400, 8, 60); (4, 400, 64, 20); (2, 1000, 4, 100); (8, 150, 16, 40) ])

let canary =
  Alcotest.test_case "sequential list is NOT safe under domains (canary)" `Slow
    (fun () ->
      (* The unsynchronised list must eventually corrupt or produce a
         non-linearizable history; try several seeds of a hot workload.
         Races only surface when a domain is parked (GC safepoint or OS
         preemption) inside an operation's read-modify-write window, and
         the allocation-free hot paths make such parks rare on a 1-core
         host — so hammer with many domains and allocation churn to
         accumulate enough mid-operation preemption events. *)
      let impl = Vbl_lists.Registry.find_exn "sequential" in
      let broken = ref false in
      (try
         for s = 1 to 20 do
           if not !broken then begin
             let invariants, linearizable =
               stress impl ~churn:256 ~domains:8 ~ops_per_domain:4_000 ~key_range:4
                 ~update_percent:100 ~seed:(Int64.of_int s)
             in
             if invariants <> Ok () || not linearizable then broken := true
           end
         done
       with _ -> broken := true);
      if not !broken then
        Alcotest.fail
          "the unsynchronised sequential list survived 20 hot stress runs — \
           the stress harness is probably not detecting anything")

let () =
  let concurrent =
    List.map
      (fun impl ->
        let module S = (val impl : Vbl_lists.Set_intf.S) in
        stress_ok S.name impl)
      Vbl_lists.Registry.concurrent
  in
  Alcotest.run "lists-concurrent" [ ("stress", concurrent @ [ canary ]) ]
