(* Tests for the multicore cost simulator: coherence-model unit tests,
   machine-level clock behaviour, determinism, and the qualitative shapes
   the reproduction depends on (these are the load-bearing assertions
   behind EXPERIMENTS.md). *)

module C = Vbl_sim.Coherence
module Instr = Vbl_memops.Instr_mem

let costs = C.default_costs

let coherence_tests =
  [
    Alcotest.test_case "first read is a clean miss, second a hit" `Quick (fun () ->
        let d = C.create ~n_threads:4 () in
        Alcotest.(check int) "miss" costs.C.remote_clean (C.read d ~thread:0 ~line:1);
        Alcotest.(check int) "hit" costs.C.l1_hit (C.read d ~thread:0 ~line:1));
    Alcotest.test_case "reading another core's dirty line is expensive" `Quick
      (fun () ->
        let d = C.create ~n_threads:4 () in
        ignore (C.write d ~thread:0 ~line:1);
        Alcotest.(check int) "dirty read" costs.C.remote_dirty (C.read d ~thread:1 ~line:1);
        (* the owner was downgraded: a third reader now sees a clean copy *)
        Alcotest.(check int) "clean read" costs.C.remote_clean (C.read d ~thread:2 ~line:1));
    Alcotest.test_case "writes invalidate readers" `Quick (fun () ->
        let d = C.create ~n_threads:4 () in
        ignore (C.read d ~thread:0 ~line:1);
        ignore (C.read d ~thread:1 ~line:1);
        (* thread 2 writes: upgrade over the sharers *)
        Alcotest.(check int) "upgrade" costs.C.upgrade (C.write d ~thread:2 ~line:1);
        (* previous sharers now miss *)
        Alcotest.(check int) "invalidated" costs.C.remote_dirty (C.read d ~thread:0 ~line:1));
    Alcotest.test_case "owner re-writes are hits" `Quick (fun () ->
        let d = C.create ~n_threads:4 () in
        ignore (C.write d ~thread:0 ~line:1);
        Alcotest.(check int) "hit" costs.C.l1_hit (C.write d ~thread:0 ~line:1));
    Alcotest.test_case "sole sharer upgrades silently" `Quick (fun () ->
        let d = C.create ~n_threads:4 () in
        ignore (C.read d ~thread:0 ~line:1);
        Alcotest.(check int) "silent upgrade" costs.C.l1_hit (C.write d ~thread:0 ~line:1));
    Alcotest.test_case "alloc grants ownership" `Quick (fun () ->
        let d = C.create ~n_threads:4 () in
        Alcotest.(check int) "alloc" costs.C.alloc (C.alloc d ~thread:0 ~line:9);
        Alcotest.(check int) "own write hit" costs.C.l1_hit (C.write d ~thread:0 ~line:9));
  ]

let numa_tests =
  let topology = C.intel_topology in
  [
    Alcotest.test_case "same-socket dirty reads are cheaper" `Quick (fun () ->
        let d = C.create ~topology ~n_threads:72 () in
        ignore (C.write d ~thread:0 ~line:1);
        (* thread 1 shares socket 0 with thread 0; thread 20 is on socket 1 *)
        let near = C.read d ~thread:1 ~line:1 in
        let d2 = C.create ~topology ~n_threads:72 () in
        ignore (C.write d2 ~thread:0 ~line:1);
        let far = C.read d2 ~thread:20 ~line:1 in
        Alcotest.(check bool)
          (Printf.sprintf "near %d < flat %d < far %d" near costs.C.remote_dirty far)
          true
          (near < costs.C.remote_dirty && costs.C.remote_dirty < far));
    Alcotest.test_case "cross-socket writes pay the interconnect" `Quick (fun () ->
        let d = C.create ~topology ~n_threads:72 () in
        ignore (C.write d ~thread:0 ~line:1);
        Alcotest.(check bool) "cross write dearer" true
          (C.write d ~thread:40 ~line:1 > costs.C.remote_write));
    Alcotest.test_case "flat topology unchanged" `Quick (fun () ->
        let d = C.create ~n_threads:72 () in
        ignore (C.write d ~thread:0 ~line:1);
        Alcotest.(check int) "flat dirty" costs.C.remote_dirty (C.read d ~thread:40 ~line:1));
    Alcotest.test_case "invalid topology rejected" `Quick (fun () ->
        Alcotest.check_raises "zero sockets"
          (Invalid_argument "Coherence.create: invalid topology") (fun () ->
            ignore
              (C.create ~topology:{ C.sockets = 0; cores_per_socket = 1 } ~n_threads:2 ())));
  ]

let machine_tests =
  [
    Alcotest.test_case "clocks advance by access costs" `Quick (fun () ->
        let coherence = C.create ~n_threads:1 () in
        let body () =
          let c = Instr.make ~name:"c" ~line:(Instr.fresh_line ()) 0 in
          Instr.set c 1;
          ignore (Instr.get c)
        in
        let m = Vbl_sim.Machine.create ~coherence [ body ] in
        let steps = Vbl_sim.Machine.run m ~horizon:1_000. in
        Alcotest.(check int) "steps" 2 steps;
        (* write miss (clean) + read hit *)
        Alcotest.(check (float 0.001)) "clock"
          (float_of_int (costs.C.remote_clean + costs.C.l1_hit))
          (Vbl_sim.Machine.clock m 0));
    Alcotest.test_case "horizon stops the run" `Quick (fun () ->
        let coherence = C.create ~n_threads:1 () in
        let line = Instr.fresh_line () in
        let body () =
          let c = Instr.make ~name:"c" ~line 0 in
          for _ = 1 to 1_000_000 do
            Instr.set c 1
          done
        in
        let m = Vbl_sim.Machine.create ~coherence [ body ] in
        let steps = Vbl_sim.Machine.run m ~horizon:50. in
        Alcotest.(check bool) "bounded" true (steps < 200));
    Alcotest.test_case "lock handoff pulls waiter clocks forward" `Quick (fun () ->
        let coherence = C.create ~n_threads:2 () in
        let line = Instr.fresh_line () in
        let lock = Instr.make_lock ~name:"l" ~line () in
        let body () =
          Instr.lock lock;
          Instr.unlock lock
        in
        let m = Vbl_sim.Machine.create ~coherence [ body; body ] in
        ignore (Vbl_sim.Machine.run m ~horizon:10_000.);
        (* The second thread could not finish before the first released. *)
        let c0 = Vbl_sim.Machine.clock m 0 and c1 = Vbl_sim.Machine.clock m 1 in
        Alcotest.(check bool) "serialized" true (Float.max c0 c1 > Float.min c0 c1));
  ]

let sim_params threads update range =
  {
    Vbl_sim.Sim_run.threads;
    update_percent = update;
    key_range = range;
    horizon = 30_000.;
    seed = 11L;
    zipf = None;
  }

let run name threads update range =
  Vbl_sim.Sim_run.run (Vbl_sched.Drive.find_instrumented name) (sim_params threads update range)

let sim_run_tests =
  [
    Alcotest.test_case "deterministic for a fixed seed" `Quick (fun () ->
        let a = run "vbl" 4 20 64 and b = run "vbl" 4 20 64 in
        Alcotest.(check int) "ops" a.Vbl_sim.Sim_run.ops_completed b.Vbl_sim.Sim_run.ops_completed;
        Alcotest.(check int) "steps" a.Vbl_sim.Sim_run.steps b.Vbl_sim.Sim_run.steps);
    Alcotest.test_case "different seeds differ" `Quick (fun () ->
        let a = run "vbl" 4 20 64 in
        let b =
          Vbl_sim.Sim_run.run
            (Vbl_sched.Drive.find_instrumented "vbl")
            { (sim_params 4 20 64) with Vbl_sim.Sim_run.seed = 12L }
        in
        Alcotest.(check bool) "ops differ" true
          (a.Vbl_sim.Sim_run.ops_completed <> b.Vbl_sim.Sim_run.ops_completed));
    Alcotest.test_case "steady-state size stays near range/2" `Quick (fun () ->
        let r = run "vbl" 8 100 64 in
        Alcotest.(check bool) "size sane" true
          (r.Vbl_sim.Sim_run.final_size > 8 && r.Vbl_sim.Sim_run.final_size < 56));
    Alcotest.test_case "parameter validation" `Quick (fun () ->
        Alcotest.check_raises "threads"
          (Invalid_argument "Sim_run.run: threads must be >= 1") (fun () ->
            ignore (run "vbl" 0 20 64));
        Alcotest.check_raises "update"
          (Invalid_argument "Sim_run.run: update_percent must be in [0, 100]") (fun () ->
            ignore (run "vbl" 1 101 64)));
    (* The qualitative claims of the paper, as assertions. *)
    Alcotest.test_case "shape: vbl scales on the Figure 1 workload" `Slow (fun () ->
        let t1 = (run "vbl" 1 20 50).Vbl_sim.Sim_run.throughput in
        let t48 = (run "vbl" 48 20 50).Vbl_sim.Sim_run.throughput in
        Alcotest.(check bool) "scales" true (t48 > 3. *. t1));
    Alcotest.test_case "shape: lazy collapses under contention (Fig 1)" `Slow (fun () ->
        let vbl = (run "vbl" 64 20 50).Vbl_sim.Sim_run.throughput in
        let lz = (run "lazy" 64 20 50).Vbl_sim.Sim_run.throughput in
        Alcotest.(check bool) "vbl well ahead" true (vbl > 1.5 *. lz));
    Alcotest.test_case "shape: vbl beats HM-AMR on read-only (1.6x claim)" `Slow
      (fun () ->
        let vbl = (run "vbl" 48 0 200).Vbl_sim.Sim_run.throughput in
        let hm = (run "harris-michael" 48 0 200).Vbl_sim.Sim_run.throughput in
        let ratio = vbl /. hm in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f in [1.2, 2.2]" ratio)
          true
          (ratio > 1.2 && ratio < 2.2));
    Alcotest.test_case "shape: equal at one thread (no-interference case)" `Slow
      (fun () ->
        let vbl = (run "vbl" 1 20 200).Vbl_sim.Sim_run.throughput in
        let lz = (run "lazy" 1 20 200).Vbl_sim.Sim_run.throughput in
        let ratio = vbl /. lz in
        Alcotest.(check bool)
          (Printf.sprintf "ratio %.2f near 1" ratio)
          true
          (ratio > 0.9 && ratio < 1.1));
    Alcotest.test_case "shape: pre-lock validation beats post-lock (ablation)" `Slow
      (fun () ->
        let vbl = (run "vbl" 64 20 50).Vbl_sim.Sim_run.throughput in
        let post = (run "vbl-postlock" 64 20 50).Vbl_sim.Sim_run.throughput in
        Alcotest.(check bool) "vbl ahead" true (vbl > post));
  ]

let () =
  Alcotest.run "sim"
    [
      ("coherence", coherence_tests);
      ("numa", numa_tests);
      ("machine", machine_tests);
      ("sim-run", sim_run_tests);
    ]
