(* Allocation tests for the real-backend hot paths.

   The zero-overhead claim of the real engine is concrete: with
   [Real_mem.named = false] and the closed top-level traversal loops, a
   [contains] allocates nothing on the minor heap, and an [insert]
   allocates exactly the node it links (its record plus the per-cell
   [Atomic.t]s).  These tests pin that down with [Gc.minor_words], so a
   future refactor that reintroduces a per-operation closure, tuple or
   name string fails loudly rather than just benching slower.

   Methodology: run the operation in a tight loop and divide the
   minor-words delta by the iteration count.  The constant overhead of the
   measurement itself (boxing the [Gc.minor_words] floats) is a handful of
   words in total, so with enough iterations a truly allocation-free loop
   measures well below one word per operation. *)

let iters = 20_000

(* Per-operation minor words of [f] applied to keys 1..n (cycled). *)
let minor_words_per_op ~range f =
  (* Warm up: promote the loop's code path and any lazy setup. *)
  for i = 1 to 100 do
    ignore (f ((i mod range) + 1))
  done;
  let before = Gc.minor_words () in
  for i = 1 to iters do
    ignore (f ((i mod range) + 1))
  done;
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int iters

let find_impl name =
  match Vbl_lists.Registry.find name with
  | Some impl -> impl
  | None -> Alcotest.failf "unknown algorithm %s" name

(* Pre-populate with every odd key in [1, range], so the measured traffic
   sees both hits and misses. *)
let populate (type s) (module S : Vbl_lists.Set_intf.S with type t = s) (t : s) range =
  let v = ref 1 in
  while !v <= range do
    ignore (S.insert t !v);
    v := !v + 2
  done

let contains_is_allocation_free name () =
  let range = 128 in
  let module S = (val find_impl name : Vbl_lists.Set_intf.S) in
  let t = S.create () in
  populate (module S) t range;
  let per_op = minor_words_per_op ~range (fun v -> S.contains t v) in
  if per_op > 0.01 then
    Alcotest.failf "%s contains allocates %.3f minor words/op (expected 0)" name per_op

(* Insert fresh descending keys into an initially empty list: every insert
   links right behind the head, so the walk is O(1) and the only
   allocation should be the node itself.  [budget] is the node's footprint
   in words (block + one 2-word Atomic per cell). *)
let insert_allocates_only_the_node name ~budget () =
  let impl = find_impl name in
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  let t = S.create () in
  let n = 20_000 in
  for v = n + 100 downto n + 1 do
    ignore (S.insert t v)
  done;
  let before = Gc.minor_words () in
  for v = n downto 1 do
    ignore (S.insert t v)
  done;
  let after = Gc.minor_words () in
  let per_op = (after -. before) /. float_of_int n in
  if per_op > float_of_int budget +. 0.1 then
    Alcotest.failf "%s insert allocates %.2f minor words/op (node budget %d)" name per_op
      budget

(* Failed updates take the value-check early exit without locking — and,
   on this engine, without allocating. *)
let failed_updates_are_allocation_free () =
  let range = 128 in
  let module S = (val find_impl "vbl" : Vbl_lists.Set_intf.S) in
  let t = S.create () in
  populate (module S) t range;
  (* Insert of a present key / remove of an absent key: keys 1,3,5.. are
     present, 2,4,6.. absent. *)
  let per_op =
    minor_words_per_op ~range (fun v ->
        if v land 1 = 1 then S.insert t v (* present: returns false *)
        else S.remove t v (* absent: returns false *))
  in
  if per_op > 0.01 then
    Alcotest.failf "vbl failed updates allocate %.3f minor words/op (expected 0)" per_op

(* The reclaiming backend's claim is the inverse of the node budget
   above: once a churn warm-up has aged retired nodes into the domain's
   free-list, an insert is served by reinitializing a recycled node and
   allocates (nearly) nothing — against the 13-word budget of a fresh
   vbl node.  "Nearly": the first few measured inserts may miss while
   the final bags age out, each miss costing one fresh node. *)
let recycled_insert_reuses_nodes () =
  let module S = Vbl_lists.Registry.Vbl_reclaim in
  let t = S.create () in
  let n = 20_000 in
  (* Descending inserts and ascending removes both hit right behind the
     head, so the warm-up is O(n) and retires 2n nodes. *)
  for _round = 1 to 2 do
    for v = n downto 1 do
      ignore (S.insert t v : bool)
    done;
    for v = 1 to n do
      ignore (S.remove t v : bool)
    done
  done;
  let before = Gc.minor_words () in
  for v = n downto 1 do
    ignore (S.insert t v : bool)
  done;
  let after = Gc.minor_words () in
  let per_op = (after -. before) /. float_of_int n in
  if per_op > 1.0 then
    Alcotest.failf
      "vbl-reclaim recycled insert allocates %.2f minor words/op (expected < 1, \
       fresh node is 13)"
      per_op

let contains_cases =
  List.map
    (fun name ->
      Alcotest.test_case (name ^ ": contains allocates nothing") `Quick
        (contains_is_allocation_free name))
    [ "vbl"; "lazy"; "harris-michael"; "harris-michael-tagged"; "vbl-reclaim" ]

(* vbl / lazy node: 5-word record (header + value/next/deleted/lock) plus
   four 2-word Atomic cells = 13 words. *)
let insert_cases =
  [
    Alcotest.test_case "vbl: insert allocates only the node" `Quick
      (insert_allocates_only_the_node "vbl" ~budget:13);
    Alcotest.test_case "lazy: insert allocates only the node" `Quick
      (insert_allocates_only_the_node "lazy" ~budget:13);
    Alcotest.test_case "vbl-reclaim: recycled insert allocates no node" `Quick
      recycled_insert_reuses_nodes;
  ]

let () =
  Alcotest.run "alloc"
    [
      ("contains", contains_cases);
      ("insert", insert_cases);
      ( "failed-updates",
        [
          Alcotest.test_case "vbl: value-check early exits allocate nothing" `Quick
            failed_updates_are_allocation_free;
        ] );
    ]
