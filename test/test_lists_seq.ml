(* Sequential semantics of every list algorithm: each must behave exactly
   like a reference Stdlib.Set when driven single-threaded, and must keep
   its structural invariants after every operation.  Property-based tests
   drive random operation sequences against the model. *)

let impls = Vbl_lists.Registry.all

let unit_tests (impl : Vbl_lists.Registry.impl) =
  let module S = (val impl) in
  let mk name fn = Alcotest.test_case (S.name ^ ": " ^ name) `Quick fn in
  [
    mk "empty set contains nothing" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "contains 1" false (S.contains t 1);
        Alcotest.(check (list int)) "to_list" [] (S.to_list t);
        Alcotest.(check int) "size" 0 (S.size t));
    mk "insert then contains" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "first insert" true (S.insert t 42);
        Alcotest.(check bool) "present" true (S.contains t 42);
        Alcotest.(check bool) "absent" false (S.contains t 41));
    mk "duplicate insert fails" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "first" true (S.insert t 7);
        Alcotest.(check bool) "second" false (S.insert t 7);
        Alcotest.(check int) "size stays 1" 1 (S.size t));
    mk "remove present" (fun () ->
        let t = S.create () in
        ignore (S.insert t 5);
        Alcotest.(check bool) "removed" true (S.remove t 5);
        Alcotest.(check bool) "gone" false (S.contains t 5);
        Alcotest.(check bool) "second remove" false (S.remove t 5));
    mk "remove absent fails" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "remove on empty" false (S.remove t 3);
        ignore (S.insert t 1);
        Alcotest.(check bool) "remove other" false (S.remove t 2));
    mk "keeps ascending order" (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) [ 5; 1; 9; 3; 7 ];
        Alcotest.(check (list int)) "sorted" [ 1; 3; 5; 7; 9 ] (S.to_list t));
    mk "insert at both ends" (fun () ->
        let t = S.create () in
        ignore (S.insert t 10);
        ignore (S.insert t (-1000));
        ignore (S.insert t 1000);
        Alcotest.(check (list int)) "ends" [ -1000; 10; 1000 ] (S.to_list t));
    mk "negative and zero keys" (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) [ 0; -5; 5 ];
        Alcotest.(check bool) "has 0" true (S.contains t 0);
        Alcotest.(check bool) "has -5" true (S.contains t (-5));
        Alcotest.(check (list int)) "order" [ -5; 0; 5 ] (S.to_list t));
    mk "remove head/middle/tail element" (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) [ 1; 2; 3; 4; 5 ];
        Alcotest.(check bool) "head" true (S.remove t 1);
        Alcotest.(check bool) "middle" true (S.remove t 3);
        Alcotest.(check bool) "tail" true (S.remove t 5);
        Alcotest.(check (list int)) "rest" [ 2; 4 ] (S.to_list t));
    mk "reinsert after remove" (fun () ->
        let t = S.create () in
        ignore (S.insert t 8);
        ignore (S.remove t 8);
        Alcotest.(check bool) "reinsert" true (S.insert t 8);
        Alcotest.(check bool) "present" true (S.contains t 8));
    mk "sentinel keys rejected" (fun () ->
        let t = S.create () in
        Alcotest.check_raises "insert min_int" (Invalid_argument
          "list-based set: key must be strictly between min_int and max_int")
          (fun () -> ignore (S.insert t min_int));
        Alcotest.check_raises "remove max_int" (Invalid_argument
          "list-based set: key must be strictly between min_int and max_int")
          (fun () -> ignore (S.remove t max_int));
        Alcotest.check_raises "contains min_int" (Invalid_argument
          "list-based set: key must be strictly between min_int and max_int")
          (fun () -> ignore (S.contains t min_int)));
    mk "invariants hold after workout" (fun () ->
        let t = S.create () in
        let rng = Vbl_util.Rng.create ~seed:11L () in
        for _ = 1 to 500 do
          let v = Vbl_util.Rng.in_range rng ~lo:0 ~hi:50 in
          match Vbl_util.Rng.int rng 3 with
          | 0 -> ignore (S.insert t v)
          | 1 -> ignore (S.remove t v)
          | _ -> ignore (S.contains t v)
        done;
        match S.check_invariants t with
        | Ok () -> ()
        | Error msg -> Alcotest.fail msg);
  ]

(* Model-based property: a random operation sequence must agree with
   Stdlib.Set at every step, and to_list must match the model at the end. *)
module IntSet = Set.Make (Int)

type op = Insert of int | Remove of int | Contains of int

let op_gen range =
  QCheck2.Gen.(
    let* v = int_range (-range) range in
    oneofl [ Insert v; Remove v; Contains v ])

let pp_op = function
  | Insert v -> Printf.sprintf "insert %d" v
  | Remove v -> Printf.sprintf "remove %d" v
  | Contains v -> Printf.sprintf "contains %d" v

let ops_gen = QCheck2.Gen.(list_size (int_range 0 200) (op_gen 25))

let agrees_with_model (impl : Vbl_lists.Registry.impl) ops =
  let module S = (val impl) in
  let t = S.create () in
  let model = ref IntSet.empty in
  let step op =
    match op with
    | Insert v ->
        let expected = not (IntSet.mem v !model) in
        model := IntSet.add v !model;
        S.insert t v = expected
    | Remove v ->
        let expected = IntSet.mem v !model in
        model := IntSet.remove v !model;
        S.remove t v = expected
    | Contains v -> S.contains t v = IntSet.mem v !model
  in
  List.for_all step ops
  && S.to_list t = IntSet.elements !model
  && S.size t = IntSet.cardinal !model
  && S.check_invariants t = Ok ()

let property_tests (impl : Vbl_lists.Registry.impl) =
  let module S = (val impl) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:300
         ~name:(S.name ^ ": random ops agree with Set model")
         ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
         ops_gen
         (agrees_with_model impl));
  ]

(* Set_intf.Derive semantics, pinned against a scripted base whose
   successive folds replay fixed views (the last view repeats once the
   script runs out).  The first case is the reason the derived
   range_query documents a best-effort contract for every family:
   agreement of two collections is not a snapshot certificate, because
   an ABA toggle between them restores agreement.  test_spec.ml holds
   the matching Multikey rejection of the full history. *)
module Scripted = struct
  type t = int list list ref

  let fold f init t =
    let view =
      match !t with
      | [] -> []
      | [ v ] -> v
      | v :: rest ->
          t := rest;
          v
    in
    List.fold_left f init view
end

module Scripted_range = Vbl_lists.Set_intf.Derive (Scripted)

let derive_tests =
  [
    Alcotest.test_case "agreement is not a snapshot certificate (ABA)" `Quick
      (fun () ->
        (* With initial {1} and an updater running remove 1; insert 2;
           remove 2; insert 1; remove 1; insert 2 across the two
           collections, each traversal reads 1 before a toggle and 2
           after one, so both collect [1; 2] — a window {1, 2} that no
           instant ever contained — and the query accepts it. *)
        let t = ref [ [ 1; 2 ]; [ 1; 2 ] ] in
        Alcotest.(check (list int))
          "torn view accepted" [ 1; 2 ]
          (Scripted_range.range_query t 1 2));
    Alcotest.test_case "disagreement retries until stable" `Quick (fun () ->
        let t = ref [ [ 1 ]; [ 2 ]; [ 2 ] ] in
        Alcotest.(check (list int))
          "stable view" [ 2 ]
          (Scripted_range.range_query t 0 5));
    Alcotest.test_case "budget exhaustion returns the last collection" `Quick
      (fun () ->
        (* Views alternate forever, so no two successive collections
           agree; after the 64-retry budget the query surrenders and
           returns the last collection (the documented, deliberately
           unsurfaced degradation). *)
        let t =
          ref (List.init 68 (fun i -> if i mod 2 = 0 then [ 1 ] else [ 2 ]))
        in
        Alcotest.(check (list int))
          "last collection" [ 2 ]
          (Scripted_range.range_query t 0 5));
    Alcotest.test_case "collections filter to the window" `Quick (fun () ->
        let t = ref [ [ 1; 3; 5; 7 ] ] in
        Alcotest.(check (list int))
          "window" [ 3; 5 ]
          (Scripted_range.range_query t 2 6);
        Alcotest.(check int) "approx_size" 4 (Scripted_range.approx_size t));
  ]

let () =
  Alcotest.run "lists-sequential"
    (List.map
       (fun impl ->
         let module S = (val impl : Vbl_lists.Set_intf.S) in
         (S.name, unit_tests impl @ property_tests impl))
       impls
    @ [ ("derive", derive_tests) ])
