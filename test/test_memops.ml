(* Tests for the memory backends: Real_mem semantics, Instr_mem semantics
   under a sequential handler, and the exactness of the instrumentation
   (every access yields exactly one effect, in program order). *)

module Real = Vbl_memops.Real_mem
module Instr = Vbl_memops.Instr_mem

let real_tests =
  [
    Alcotest.test_case "cells hold values" `Quick (fun () ->
        let c = Real.make ~line:(Real.fresh_line ()) 7 in
        Alcotest.(check int) "get" 7 (Real.get c);
        Real.set c 9;
        Alcotest.(check int) "after set" 9 (Real.get c));
    Alcotest.test_case "cas uses physical equality" `Quick (fun () ->
        let a = ref 1 and b = ref 1 in
        let c = Real.make ~line:0 a in
        Alcotest.(check bool) "wrong witness" false (Real.cas c b a);
        Alcotest.(check bool) "right witness" true (Real.cas c a b);
        Alcotest.(check bool) "stale witness" false (Real.cas c a a));
    Alcotest.test_case "locks exclude" `Quick (fun () ->
        let l = Real.make_lock ~line:0 () in
        Alcotest.(check bool) "free" false (Real.lock_held l);
        Alcotest.(check bool) "try" true (Real.try_lock l);
        Alcotest.(check bool) "held" true (Real.lock_held l);
        Alcotest.(check bool) "try again" false (Real.try_lock l);
        Real.unlock l;
        Alcotest.(check bool) "released" false (Real.lock_held l));
    Alcotest.test_case "instrumentation hooks are no-ops" `Quick (fun () ->
        Real.touch ~line:3 ~name:"x";
        Real.new_node ~name:"x" ~line:3);
  ]

let instr_tests =
  [
    Alcotest.test_case "run_sequential resumes every access" `Quick (fun () ->
        let r =
          Instr.run_sequential (fun () ->
              let c = Instr.make ~name:"c" ~line:(Instr.fresh_line ()) 1 in
              Instr.set c 2;
              let read = Instr.get c in
              let cas_bonus = if Instr.cas c 2 5 then 10 else 0 in
              read + cas_bonus)
        in
        Alcotest.(check int) "result" 12 r);
    Alcotest.test_case "cas semantics mirror the real backend" `Quick (fun () ->
        Instr.run_sequential (fun () ->
            let a = ref 1 and b = ref 1 in
            let c = Instr.make ~name:"c" ~line:0 a in
            Alcotest.(check bool) "wrong witness" false (Instr.cas c b a);
            Alcotest.(check bool) "right witness" true (Instr.cas c a b)));
    Alcotest.test_case "locks work sequentially" `Quick (fun () ->
        Instr.run_sequential (fun () ->
            let l = Instr.make_lock ~name:"l" ~line:0 () in
            Instr.lock l;
            Alcotest.(check bool) "held" true (Instr.lock_held l);
            Alcotest.(check bool) "try fails" false (Instr.try_lock l);
            Instr.unlock l;
            Alcotest.(check bool) "free" false (Instr.lock_held l);
            Alcotest.(check bool) "retake" true (Instr.try_lock l);
            Instr.unlock l));
    Alcotest.test_case "fresh lines are distinct" `Quick (fun () ->
        let a = Instr.fresh_line () and b = Instr.fresh_line () in
        Alcotest.(check bool) "distinct" true (a <> b));
    Alcotest.test_case "effects arrive in program order with names" `Quick (fun () ->
        (* Collect the access stream of a tiny program via a deep handler. *)
        let log = ref [] in
        Effect.Deep.match_with
          (fun () ->
            let line = Instr.fresh_line () in
            let c = Instr.make ~name:"x.val" ~line 1 in
            ignore (Instr.get c);
            Instr.set c 2;
            ignore (Instr.cas c 2 3);
            Instr.touch ~line ~name:"x.pair";
            Instr.new_node ~name:"x" ~line)
          ()
          {
            retc = Fun.id;
            exnc = raise;
            effc =
              (fun (type a) (eff : a Effect.t) ->
                match eff with
                | Instr.Access a ->
                    Some
                      (fun (k : (a, unit) Effect.Deep.continuation) ->
                        log := (a.Instr.kind, a.Instr.name) :: !log;
                        Effect.Deep.continue k ())
                | _ -> None);
          };
        Alcotest.(check (list (pair string string)))
          "stream"
          [
            ("R", "x.val");
            ("W", "x.val");
            ("CAS", "x.val");
            ("touch", "x.pair");
            ("new", "x");
          ]
          (List.rev_map
             (fun (k, n) -> (Format.asprintf "%a" Instr.pp_kind k, n))
             !log));
    Alcotest.test_case "last_cas_result tracks success" `Quick (fun () ->
        Instr.run_sequential (fun () ->
            let c = Instr.make ~name:"c" ~line:0 1 in
            ignore (Instr.cas c 1 2);
            Alcotest.(check bool) "success" true !Instr.last_cas_result;
            ignore (Instr.cas c 1 2);
            Alcotest.(check bool) "failure" false !Instr.last_cas_result));
    Alcotest.test_case "run_sequential propagates exceptions" `Quick (fun () ->
        Alcotest.check_raises "raises" Exit (fun () ->
            Instr.run_sequential (fun () ->
                let c = Instr.make ~name:"c" ~line:0 0 in
                Instr.set c 1;
                raise Exit)));
  ]

(* Backend parity: one mixed workload through Real_mem and Instr_mem must
   agree on every operation result and on the final abstract set. *)
let parity_tests =
  [
    Alcotest.test_case "mixed workload agrees across backends" `Quick (fun () ->
        let r = Vbl_memops.Mem_check.check_parity () in
        List.iter (fun m -> Alcotest.fail m) r.Vbl_memops.Mem_check.mismatches;
        Alcotest.(check (list int))
          "expected final set" [ 0; 1; 5; 6; 7 ] r.Vbl_memops.Mem_check.real_set);
  ]

let () =
  Alcotest.run "memops"
    [ ("real", real_tests); ("instr", instr_tests); ("parity", parity_tests) ]
