(* L2 fixture: [Naming.*] reached outside an [if M.named] guard, both
   directly and through a local alias.  The guarded builder is clean. *)
module Naming = struct
  let head = "h"
  let value_cell nm = nm ^ ".val"
end

module N = Naming

let good named = if named then Some (Naming.value_cell Naming.head) else None
let bad () = Naming.value_cell Naming.head
let bad_alias () = N.value_cell N.head

let bad_guard_wrong_sense named =
  match named with true -> Naming.head | false -> ""

let good_when named = match () with () when named -> Naming.head | _ -> ""
