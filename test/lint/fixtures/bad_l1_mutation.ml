(* L1 fixture: raw mutation outside the backend — a mutable record
   field, a [<-] assignment, and [ref] cells that escape their binding.
   The local-temporary idiom ([let acc = ref 0 in ...]) must pass. *)
type t = { mutable count : int }

let bump t = t.count <- t.count + 1
let cell = ref 0
let make_counter () = ref 0

let sum xs =
  let acc = ref 0 in
  List.iter (fun x -> acc := !acc + x) xs;
  !acc
