(* L1 fixture: raw [Atomic]/[Mutex] access, both direct and through a
   local module alias, plus an [open].  Fixtures only need to parse. *)
module A = Atomic

let counter = A.make 0
let bump () = Atomic.incr counter
let m = Mutex.create ()

let guarded f =
  Mutex.lock m;
  let r = f () in
  Mutex.unlock m;
  r

open Atomic

let direct () = get counter
