(* Negative control for L5/L6/L7: the disciplined reclaiming shape —
   operations bracketed by op_enter/op_exit (helpers inherit protection
   through the call graph, no tags needed), unlink before retire,
   initialize before publish, constant-flag store after.  Must be clean
   under every rule. *)
let walk_unlink t prev curr =
  M.set (next_cell prev) (M.get (next_cell curr));
  M.retire t.pool curr;
  true

let recycle_node t v next =
  let x = M.recycle t.pool in
  (match x with
  | Node n ->
      M.set n.value v;
      M.set n.next next
  | Tail -> ());
  x

let insert t v =
  if M.reclaiming then begin
    let h = M.op_enter t.pool in
    let x = recycle_node t v t.head in
    M.set (next_cell t.head) x;
    M.op_exit t.pool h;
    true
  end
  else false

let remove t v =
  if M.reclaiming then begin
    let h = M.op_enter t.pool in
    let r = walk_unlink t t.head (M.get (next_cell t.head)) in
    M.op_exit t.pool h;
    r
  end
  else false

let[@quiescent] fold f init t =
  let rec loop acc node =
    match node with
    | Tail -> acc
    | Node n -> loop (f acc (M.get n.value)) (M.get n.next)
  in
  loop init t.head
