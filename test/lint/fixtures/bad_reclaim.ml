(* Reclamation fixture: a free-list pop on the [@hot] insert path that
   allocates.  Boxing the popped node in an option (or re-consing the
   tail) defeats recycling's zero-allocation point; the disciplined
   shape returns the pool's dummy sentinel, compared with [==], and
   must stay clean. *)
let[@hot] bad_recycle pool =
  match pool.free with
  | x :: tl ->
      pool.free <- tl;
      Some x
  | [] -> None

let[@hot] bad_recycle_consing pool =
  match pool.free with
  | x :: tl ->
      pool.free <- x :: tl;
      x
  | [] -> pool.dummy

let[@hot] clean_recycle pool =
  match pool.free with
  | x :: tl ->
      pool.free <- tl;
      x
  | [] -> pool.dummy
