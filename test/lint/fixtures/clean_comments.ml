(* Negative control for the grep-era false-positive class: this comment
   mentions Atomic.get, Atomic.compare_and_set, Mutex.lock and even a
   field assignment [t.next <- curr], none of which is code.  The old
   [lint_atomics.sh] flagged files like this one; the AST lint must not. *)

let doc = "backed by Atomic.compare_and_set and Mutex.lock on the real engine"
let arrow = "t.next <- curr"
let describe () = doc ^ " / " ^ arrow
