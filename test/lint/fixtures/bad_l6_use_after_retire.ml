(* L6 fixture: retire/use discipline.  A retired node is poisoned — the
   unlock after the retire, the re-retire, and the retire with no prior
   unlinking store are the violations.  The unlink-then-retire and
   never-published shapes are negative controls and must stay clean. *)
let use_after_retire t prev curr =
  M.set (next_cell prev) (M.get (next_cell curr));
  M.retire t.pool curr;
  M.unlock (node_lock curr)

let double_retire t curr =
  M.cas (amr_cell t) curr curr;
  M.retire t.pool curr;
  M.retire t.pool curr

let undominated_retire t curr =
  M.retire t.pool curr

let clean_unlink_then_retire t prev curr =
  M.set (next_cell prev) (M.get (next_cell curr));
  M.retire t.pool curr;
  true

let clean_fresh_retire t v =
  let x = make_node v in
  M.retire t.pool x

let clean_branch_isolated t prev curr cond =
  M.set (next_cell prev) (M.get (next_cell curr));
  if cond then M.retire t.pool curr
  else M.unlock (node_lock curr)
