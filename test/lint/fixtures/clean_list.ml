(* Negative control: a miniature list that satisfies all four rules —
   guarded naming, balanced or [@acquires]-tagged locking, and a
   zero-allocation [@hot] walk.  Must produce no findings. *)
module Make (M : Mem) = struct
  type node =
    | Node of { value : int M.cell; next : node M.cell; lock : M.lock }
    | Tail of { value : int M.cell }

  let make_node v next =
    let line = M.fresh_line () in
    if M.named then begin
      let nm = Naming.node v in
      Node
        {
          value = M.make ~name:(Naming.value_cell nm) ~line v;
          next = M.make ~name:(Naming.next_cell nm) ~line next;
          lock = M.make_lock ~name:(Naming.lock_cell nm) ~line ();
        }
    end
    else Node { value = M.make ~line v; next = M.make ~line next; lock = M.make_lock ~line () }

  let[@hot] [@acquires] lock_next_at node at =
    M.lock (node_lock node);
    if M.get (next_cell node) == at then true
    else begin
      M.unlock (node_lock node);
      false
    end

  let[@hot] rec walk v curr = if node_value curr < v then walk v (next_of curr) else curr

  let insert t v =
    let prev = walk v t.head in
    if lock_next_at prev (M.get (next_cell prev)) then begin
      M.set (next_cell prev) (make_node v (M.get (next_cell prev)));
      M.unlock (node_lock prev);
      true
    end
    else false
end
