(* L3 fixture: lock acquisitions that are not released on every
   syntactic exit.  The balanced, try-lock, Fun.protect and [@acquires]
   variants are negative controls and must stay clean. *)
let leaky_branch l cond =
  M.lock l;
  if cond then begin
    M.unlock l;
    true
  end
  else false

let acquire_one_side l cond k =
  if cond then M.lock l;
  k ();
  M.unlock l

let loop_leak ls =
  while keep_going ls do
    M.lock (pick ls)
  done

let balanced l f =
  M.lock l;
  let r = f () in
  M.unlock l;
  r

let try_lock_paths l =
  if M.try_lock l then begin
    M.unlock l;
    true
  end
  else false

let protect_ok l f =
  Fun.protect ~finally:(fun () -> M.unlock l) (fun () ->
      M.lock l;
      f ())

let[@acquires] handoff l at =
  M.lock l;
  if M.get l == at then true
  else begin
    M.unlock l;
    false
  end
