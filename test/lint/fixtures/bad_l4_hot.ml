(* L4 fixture: allocations inside a [@hot] body.  The untagged twin at
   the bottom allocates identically and must not be flagged. *)
let[@hot] walk v curr =
  let pair = (v, curr) in
  let f = fun x -> x + v in
  let c = ref 0 in
  ignore pair;
  ignore f;
  ignore c;
  Some v

let[@hot] rec clean_walk v curr = if value curr < v then clean_walk v (next curr) else curr

let cold v = (v, v)
