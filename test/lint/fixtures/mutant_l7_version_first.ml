(* Mutant fixture: the PR 6 vbl_versioned bug shape.  [set_next] must
   write the next pointer before bumping the version — the bump is the
   publication witness optimistic readers validate against, so a
   version-first order lets a traversal observe the new version with the
   old next pointer.  L7 must flag the late next write; the corrected
   twin (the shape lib/lists/vbl_versioned.ml ships) stays clean. *)
let set_next_version_first n target =
  match n with
  | Node r ->
      M.set r.version (M.get r.version + 1);
      M.set r.next target
  | Tail -> ()

let set_next_correct n target =
  match n with
  | Node r ->
      M.set r.next target;
      M.set r.version (M.get r.version + 1)
  | Tail -> ()
