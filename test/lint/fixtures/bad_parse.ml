(* Parse fixture: a file that does not parse must yield one [Parse]
   finding instead of being silently skipped. *)
let broken = (
