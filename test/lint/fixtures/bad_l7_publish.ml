(* L7 fixture: publish-before-reachable.  Once the store into the list
   makes [x] reachable, late field initialization races with readers.
   The init-then-publish twin and the constant fully-linked flag (the
   deliberate post-publish idiom) are negative controls. *)
let publish_then_init t v curr =
  let x = M.recycle t.pool in
  M.set (next_cell t.head) x;
  match x with
  | Node n ->
      M.set n.value v;
      M.set n.next curr
  | Tail -> ()

let clean_init_then_publish t v curr =
  let x = M.recycle t.pool in
  (match x with
  | Node n ->
      M.set n.value v;
      M.set n.next curr
  | Tail -> ());
  M.set (next_cell t.head) x

let clean_flag_after_publish t x =
  M.set (next_cell t.head) x;
  match x with
  | Node n -> M.set n.fully_linked true
  | Tail -> ()
