(* L5 fixture: epoch-bracket discipline in a reclaiming module (the file
   applies M.op_enter/M.retire, so the rule arms).  [shielded],
   [unreclaiming_twin] and the [@quiescent] observer are negative
   controls and must stay clean. *)
let deref_helper c = M.get c

let unsafe_root t =
  let v = M.get t.head in
  ignore (deref_helper t.head);
  v

let leaky_bracket t cond =
  let h = M.op_enter t.pool in
  if cond then begin
    M.op_exit t.pool h;
    true
  end
  else false

let shielded t =
  let h = M.op_enter t.pool in
  let v = deref_helper t.head in
  if v then M.retire t.pool t.head;
  M.op_exit t.pool h;
  v

let unreclaiming_twin t =
  if M.reclaiming then begin
    let h = M.op_enter t.pool in
    let r = deref_helper t.head in
    M.op_exit t.pool h;
    r
  end
  else deref_helper t.head

let[@quiescent] observer t = M.get t.head
