(* Fixture-driven tests for the AST concurrency-discipline lint.  Each
   bad_* fixture seeds violations whose rule, line and column are
   asserted exactly; the clean_* fixtures are negative controls —
   including [clean_comments.ml], the regression for the grep lint's
   false positives on comments and string literals, and
   [clean_reclaim.ml], the disciplined reclaiming shape that must stay
   clean under L5/L6/L7 without any [@protected] annotations. *)

module F = Vbl_lint.Finding
module L = Vbl_lint.Lint

let fixture name = Filename.concat "fixtures" name

let spans ?rules name =
  L.lint_file ?rules (fixture name)
  |> List.map (fun (f : F.t) -> (F.rule_to_string f.rule, f.line, f.col))

let span = Alcotest.(triple string int int)
let check_spans name expected actual = Alcotest.(check (list span)) name expected actual

let l1_atomics () =
  check_spans "direct, aliased and opened Atomic/Mutex are all flagged"
    [
      ("L1", 5, 14);
      (* [A.make] resolves through the [module A = Atomic] alias *)
      ("L1", 6, 14);
      ("L1", 7, 8);
      ("L1", 10, 2);
      ("L1", 12, 2);
      ("L1", 15, 0);
      (* the [open Atomic] itself *)
    ]
    (spans ~rules:[ F.L1 ] "bad_l1_atomic.ml")

let l1_mutation () =
  check_spans "mutable field, setfield and escaping refs are flagged; local ref temporary is not"
    [ ("L1", 4, 11); ("L1", 6, 13); ("L1", 7, 11); ("L1", 8, 22) ]
    (spans ~rules:[ F.L1 ] "bad_l1_mutation.ml")

let l2_naming () =
  check_spans "unguarded Naming mentions flagged, guarded and when-guarded ones clean"
    [ ("L2", 11, 13); ("L2", 11, 31); ("L2", 12, 19); ("L2", 12, 32); ("L2", 15, 27) ]
    (spans ~rules:[ F.L2 ] "bad_l2_naming.ml")

let l3_leak () =
  check_spans
    "branch leak, one-sided acquire and loop leak flagged; balanced/try-lock/protect/[@acquires] clean"
    [ ("L3", 10, 7); ("L3", 13, 2); ("L3", 18, 2) ]
    (spans ~rules:[ F.L3 ] "bad_l3_leak.ml")

let l4_hot () =
  check_spans "tuple, closure, ref and constructor in a [@hot] body flagged; untagged twin clean"
    [ ("L4", 4, 13); ("L4", 5, 10); ("L4", 6, 10); ("L4", 10, 2) ]
    (spans ~rules:[ F.L4 ] "bad_l4_hot.ml")

let l4_reclaim () =
  check_spans
    "option-boxing and consing in a [@hot] recycle flagged; dummy-sentinel twin clean"
    (* the cons doubles as constructor application and list allocation,
       so its span reports twice *)
    [ ("L4", 10, 6); ("L4", 16, 19); ("L4", 16, 19) ]
    (spans ~rules:[ F.L4 ] "bad_reclaim.ml")

let l5_bracket () =
  check_spans
    "unbracketed root deref, unsafe call to a touching helper, and a leaked bracket flagged; \
     bracketed, unreclaiming-guarded and [@quiescent] shapes clean"
    [ ("L5", 8, 10); ("L5", 9, 10); ("L5", 18, 7) ]
    (spans ~rules:[ F.L5 ] "bad_l5_bracket.ml")

let l6_retire () =
  check_spans
    "unlock-after-retire, double retire and undominated retire flagged; unlink-then-retire, \
     fresh-node retire and sibling-branch use clean"
    [ ("L6", 8, 22); ("L6", 13, 18); ("L6", 16, 18) ]
    (spans ~rules:[ F.L6 ] "bad_l6_use_after_retire.ml")

let l7_publish () =
  check_spans
    "field initialization after the publishing store flagged; init-then-publish and the \
     constant fully-linked flag clean"
    [ ("L7", 10, 6); ("L7", 11, 6) ]
    (spans ~rules:[ F.L7 ] "bad_l7_publish.ml")

let l7_version_mutant () =
  (* The PR 6 vbl_versioned bug shape, under every rule: the only
     finding is L7 on the next write that trails the version bump. *)
  check_spans "the version-before-next mutant is caught statically, and only it"
    [ ("L7", 11, 6) ]
    (spans "mutant_l7_version_first.ml")

let clean_reclaim () =
  check_spans
    "disciplined reclaiming module (bracketed ops, helpers inheriting protection through the \
     call graph, unlink-then-retire, init-then-publish) is clean under all rules"
    []
    (spans "clean_reclaim.ml")

let clean_fixtures () =
  check_spans "disciplined miniature list is clean under all rules" []
    (spans "clean_list.ml");
  check_spans "Atomic/Mutex/<- in comments and strings produce no findings" []
    (spans "clean_comments.ml")

let rule_selection () =
  check_spans "an L1-riddled file is clean when only L2 is requested" []
    (spans ~rules:[ F.L2 ] "bad_l1_atomic.ml");
  check_spans "an L4-riddled file is clean when only L3 is requested" []
    (spans ~rules:[ F.L3 ] "bad_l4_hot.ml");
  check_spans "an L5-riddled file is clean when only L6 is requested" []
    (spans ~rules:[ F.L6 ] "bad_l5_bracket.ml")

let parse_failure () =
  match L.lint_file (fixture "bad_parse.ml") with
  | [ f ] ->
      Alcotest.(check string) "rule" "parse" (F.rule_to_string f.rule);
      Alcotest.(check int) "line" 4 f.line
  | fs -> Alcotest.failf "expected exactly one parse finding, got %d" (List.length fs)

let missing_dir () =
  match L.lint_root ~targets:[ ("no/such/dir", F.all_rules) ] "." with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "lint_root must refuse a missing directory, not skip it"

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "L1 atomics" `Quick l1_atomics;
          Alcotest.test_case "L1 mutation" `Quick l1_mutation;
          Alcotest.test_case "L2 naming" `Quick l2_naming;
          Alcotest.test_case "L3 lock pairing" `Quick l3_leak;
          Alcotest.test_case "L4 hot allocation" `Quick l4_hot;
        ] );
      ( "reclaim",
        [
          Alcotest.test_case "L4 reclaim recycle" `Quick l4_reclaim;
          Alcotest.test_case "L5 epoch bracket" `Quick l5_bracket;
          Alcotest.test_case "L6 retire/use" `Quick l6_retire;
          Alcotest.test_case "L7 publish order" `Quick l7_publish;
          Alcotest.test_case "L7 version-first mutant" `Quick l7_version_mutant;
          Alcotest.test_case "clean reclaiming module" `Quick clean_reclaim;
        ] );
      ( "driver",
        [
          Alcotest.test_case "clean fixtures" `Quick clean_fixtures;
          Alcotest.test_case "rule selection" `Quick rule_selection;
          Alcotest.test_case "parse failure" `Quick parse_failure;
          Alcotest.test_case "missing directory" `Quick missing_dir;
        ] );
    ]
