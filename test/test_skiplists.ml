(* Tests for the skip-list extension: sequential semantics against the
   Set model, structural invariants at every level, domain stress with
   linearizability checking, and instrumented-backend determinism. *)

module IntSet = Set.Make (Int)

let impls = Vbl_skiplists.Registry.all

let unit_tests (impl : Vbl_skiplists.Registry.impl) =
  let module S = (val impl) in
  let mk name fn = Alcotest.test_case (S.name ^ ": " ^ name) `Quick fn in
  [
    mk "empty" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "contains" false (S.contains t 1);
        Alcotest.(check (list int)) "to_list" [] (S.to_list t));
    mk "insert/contains/remove cycle" (fun () ->
        let t = S.create () in
        Alcotest.(check bool) "insert" true (S.insert t 10);
        Alcotest.(check bool) "dup" false (S.insert t 10);
        Alcotest.(check bool) "present" true (S.contains t 10);
        Alcotest.(check bool) "remove" true (S.remove t 10);
        Alcotest.(check bool) "gone" false (S.contains t 10);
        Alcotest.(check bool) "re-remove" false (S.remove t 10));
    mk "many keys stay sorted" (fun () ->
        let t = S.create () in
        let keys = [ 41; 7; 99; 3; 55; 12; 68; 1; 88; 23 ] in
        List.iter (fun v -> ignore (S.insert t v)) keys;
        Alcotest.(check (list int)) "sorted" (List.sort compare keys) (S.to_list t);
        Alcotest.(check int) "size" 10 (S.size t));
    mk "levels hold invariants after churn" (fun () ->
        let t = S.create () in
        let rng = Vbl_util.Rng.create ~seed:5L () in
        for _ = 1 to 2_000 do
          let v = Vbl_util.Rng.in_range rng ~lo:0 ~hi:200 in
          match Vbl_util.Rng.int rng 3 with
          | 0 -> ignore (S.insert t v)
          | 1 -> ignore (S.remove t v)
          | _ -> ignore (S.contains t v)
        done;
        match S.check_invariants t with Ok () -> () | Error m -> Alcotest.fail m);
    mk "sentinel keys rejected" (fun () ->
        let t = S.create () in
        Alcotest.check_raises "min_int"
          (Invalid_argument "skip list: key must be strictly between min_int and max_int")
          (fun () -> ignore (S.insert t min_int)));
  ]

type op = Insert of int | Remove of int | Contains of int

let pp_op = function
  | Insert v -> Printf.sprintf "insert %d" v
  | Remove v -> Printf.sprintf "remove %d" v
  | Contains v -> Printf.sprintf "contains %d" v

let ops_gen =
  QCheck2.Gen.(
    list_size (int_range 0 200)
      (let* v = int_range (-25) 25 in
       oneofl [ Insert v; Remove v; Contains v ]))

let agrees_with_model (impl : Vbl_skiplists.Registry.impl) ops =
  let module S = (val impl) in
  let t = S.create () in
  let model = ref IntSet.empty in
  let step op =
    match op with
    | Insert v ->
        let expected = not (IntSet.mem v !model) in
        model := IntSet.add v !model;
        S.insert t v = expected
    | Remove v ->
        let expected = IntSet.mem v !model in
        model := IntSet.remove v !model;
        S.remove t v = expected
    | Contains v -> S.contains t v = IntSet.mem v !model
  in
  List.for_all step ops
  && S.to_list t = IntSet.elements !model
  && S.check_invariants t = Ok ()

let property_tests impl =
  let module S = (val impl : Vbl_lists.Set_intf.S) in
  [
    QCheck_alcotest.to_alcotest
      (QCheck2.Test.make ~count:200
         ~name:(S.name ^ ": random ops agree with Set model")
         ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
         ops_gen (agrees_with_model impl));
  ]

(* Domain stress with full linearizability checking, mirroring
   test_lists_concurrent. *)
let stress (impl : Vbl_skiplists.Registry.impl) ~domains ~ops_per_domain ~key_range
    ~update_percent ~seed =
  let module S = (val impl) in
  let module H = Vbl_spec.History in
  let t = S.create () in
  let master = Vbl_util.Rng.create ~seed () in
  let initial = ref [] in
  for v = 1 to key_range do
    if Vbl_util.Rng.bool master then if S.insert t v then initial := v :: !initial
  done;
  let recorder = H.Recorder.create () in
  let seeds = Array.init domains (fun _ -> Vbl_util.Rng.split master) in
  let worker d () =
    let rng = seeds.(d) in
    for _ = 1 to ops_per_domain do
      let v = 1 + Vbl_util.Rng.int rng key_range in
      let roll = Vbl_util.Rng.int rng 100 in
      let op : Vbl_spec.Set_model.op =
        if roll < update_percent then
          if roll mod 2 = 0 then Vbl_spec.Set_model.Insert v else Vbl_spec.Set_model.Remove v
        else Vbl_spec.Set_model.Contains v
      in
      ignore
        (H.Recorder.record recorder ~thread:d op (fun op ->
             match op with
             | Vbl_spec.Set_model.Insert v -> S.insert t v
             | Vbl_spec.Set_model.Remove v -> S.remove t v
             | Vbl_spec.Set_model.Contains v -> S.contains t v))
    done
  in
  List.iter Domain.join (List.init domains (fun d -> Domain.spawn (worker d)));
  let invariants = S.check_invariants t in
  let final = S.to_list t in
  let entries =
    List.map
      (fun (o : H.operation) ->
        (o.thread, o.index, o.op, o.invoked_at, o.completion, o.returned_at))
      (H.operations (H.Recorder.history recorder))
  in
  let horizon = 1 + List.fold_left (fun acc (_, _, _, _, _, r) -> max acc r) 0 entries in
  let seed_entries =
    List.mapi
      (fun k v ->
        (1000 + k, 0, Vbl_spec.Set_model.Insert v, -2 * (k + 1), H.Returned true, (-2 * (k + 1)) + 1))
      (List.sort_uniq compare !initial)
  in
  let probes =
    List.mapi
      (fun k v ->
        ( 2000 + k,
          0,
          Vbl_spec.Set_model.Contains v,
          horizon + (2 * k) + 1,
          H.Returned (List.mem v final),
          horizon + (2 * k) + 2 ))
      (List.init key_range (fun i -> i + 1))
  in
  (invariants, Vbl_spec.Linearizability.check (H.of_list (seed_entries @ entries @ probes)))

let stress_tests =
  List.map
    (fun impl ->
      let module S = (val impl : Vbl_lists.Set_intf.S) in
      Alcotest.test_case (S.name ^ ": domain stress linearizable") `Slow (fun () ->
          List.iteri
            (fun i (domains, ops, range, update) ->
              let invariants, linearizable =
                stress impl ~domains ~ops_per_domain:ops ~key_range:range
                  ~update_percent:update ~seed:(Int64.of_int (50 + i))
              in
              (match invariants with
              | Ok () -> ()
              | Error msg -> Alcotest.failf "config %d: %s" i msg);
              if not linearizable then Alcotest.failf "config %d: non-linearizable" i)
            [ (4, 300, 8, 60); (4, 300, 64, 20); (2, 800, 4, 100) ]))
    impls

(* The instrumented backend runs skip lists too (the functor pays off):
   deterministic simulated runs. *)
let sim_tests =
  [
    Alcotest.test_case "instrumented skip lists are deterministic" `Quick (fun () ->
        let run () =
          let module S = Vbl_skiplists.Registry.Vbl_skip_i in
          Vbl_memops.Instr_mem.run_sequential (fun () ->
              let t = S.create () in
              for v = 1 to 50 do
                ignore (S.insert t v)
              done;
              for v = 1 to 50 do
                if v mod 3 = 0 then ignore (S.remove t v)
              done;
              S.to_list t)
        in
        Alcotest.(check (list int)) "same result" (run ()) (run ()));
    Alcotest.test_case "level generator is geometric-ish and capped" `Quick (fun () ->
        let g = Vbl_util.Level_gen.create () in
        let counts = Array.make (Vbl_util.Level_gen.max_level + 1) 0 in
        let n = 20_000 in
        for _ = 1 to n do
          let l = Vbl_util.Level_gen.next_level g in
          if l < 1 || l > Vbl_util.Level_gen.max_level then
            Alcotest.failf "level %d out of bounds" l;
          counts.(l) <- counts.(l) + 1
        done;
        (* About half the towers have height 1; between an eighth and a
           half height 2 (loose bounds: just rule out degenerate output). *)
        Alcotest.(check bool) "height-1 frequency sane" true
          (counts.(1) > n * 2 / 5 && counts.(1) < n * 3 / 5);
        Alcotest.(check bool) "tall towers rare" true (counts.(8) < n / 100));
  ]

(* The lock-free skip list has no blocking waits at all, so the explorer
   can cover same-key races too. *)
let explore_tests =
  let config =
    { Vbl_sched.Explore.max_executions = 200_000; preemption_bound = Some 2; max_steps = 5_000 }
  in
  let lin_ok name initial ops =
    Alcotest.test_case ("lockfree-skiplist: " ^ name) `Slow (fun () ->
        let scenario =
          Vbl_sched.Drive.explore_scenario
            (module Vbl_skiplists.Registry.Lockfree_skip_i)
            ~initial ~ops
        in
        let r = Vbl_sched.Explore.run ~config scenario in
        Alcotest.(check bool) "not truncated" false r.Vbl_sched.Explore.truncated;
        match r.Vbl_sched.Explore.failure with
        | None -> ()
        | Some f -> Alcotest.failf "%a" Vbl_sched.Explore.pp_failure f)
  in
  [
    lin_ok "concurrent inserts" []
      [ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.insert 2 ];
    lin_ok "same-key insert race" []
      [ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.insert 1 ];
    lin_ok "remove vs reinsert" [ 1 ]
      [ Vbl_sched.Ll_abstract.remove 1; Vbl_sched.Ll_abstract.insert 1 ];
    lin_ok "double remove" [ 1 ]
      [ Vbl_sched.Ll_abstract.remove 1; Vbl_sched.Ll_abstract.remove 1 ];
  ]

(* Range-operation semantics (Set_intf.Derive over the bottom level, so
   the family-wide best-effort contract) and a 3-thread range-query
   exploration on the versioned-lock variant — bounded scope, see the
   Derive ABA canary in test_lists_seq.ml. *)
let range_tests (impl : Vbl_skiplists.Registry.impl) =
  let module S = (val impl) in
  let mk name fn = Alcotest.test_case (S.name ^ ": " ^ name) `Quick fn in
  [
    mk "range edge cases" (fun () ->
        let t = S.create () in
        Alcotest.(check (list int)) "empty" [] (S.range_query t min_int max_int);
        List.iter (fun v -> ignore (S.insert t v)) [ 1; 3; 5; 7 ];
        Alcotest.(check (list int)) "inverted bounds" [] (S.range_query t 5 3);
        Alcotest.(check (list int)) "inclusive bounds" [ 3; 5 ] (S.range_query t 3 5);
        Alcotest.(check (list int)) "straddling bounds" [ 3; 5 ] (S.range_query t 2 6);
        Alcotest.(check (list int)) "singleton hit" [ 7 ] (S.range_query t 7 7);
        Alcotest.(check (list int)) "gap" [] (S.range_query t 4 4);
        Alcotest.(check (list int)) "full range equals to_list" (S.to_list t)
          (S.range_query t min_int max_int));
    mk "iter and approx_size agree with fold" (fun () ->
        let t = S.create () in
        List.iter (fun v -> ignore (S.insert t v)) [ 2; 9; 4 ];
        let seen = ref [] in
        S.iter (fun v -> seen := v :: !seen) t;
        Alcotest.(check (list int)) "iter ascending" [ 2; 4; 9 ] (List.rev !seen);
        Alcotest.(check int) "approx_size" 3 (S.approx_size t));
  ]

let range_explore_tests =
  let config =
    { Vbl_sched.Explore.max_executions = 200_000; preemption_bound = Some 2; max_steps = 5_000 }
  in
  let range_ok name impl initial range ops =
    Alcotest.test_case (name ^ ": range query linearizable") `Slow (fun () ->
        let scenario = Vbl_sched.Drive.explore_range_scenario impl ~initial ~range ~ops in
        let r = Vbl_sched.Explore.run ~config scenario in
        Alcotest.(check bool) "not truncated" false r.Vbl_sched.Explore.truncated;
        match r.Vbl_sched.Explore.failure with
        | None -> ()
        | Some f -> Alcotest.failf "%a" Vbl_sched.Explore.pp_failure f)
  in
  [
    range_ok "vbl-skiplist"
      (module Vbl_skiplists.Registry.Vbl_skip_i)
      [ 1; 3 ] (1, 3)
      [ Vbl_sched.Ll_abstract.remove 1; Vbl_sched.Ll_abstract.insert 2 ];
    (* No remove for the lazy variant: a parked remover leaves its victim
       marked and an insert validating against it retries unboundedly
       (the same loop the directed suite pins as a rejection), which the
       explorer would flag as a step-limit livelock. *)
    range_ok "lazy-skiplist"
      (module Vbl_skiplists.Registry.Lazy_skip_i)
      [ 2 ] (1, 3)
      [ Vbl_sched.Ll_abstract.insert 1; Vbl_sched.Ll_abstract.insert 3 ];
  ]

let () =
  Alcotest.run "skiplists"
    (List.map
       (fun impl ->
         let module S = (val impl : Vbl_lists.Set_intf.S) in
         (S.name, unit_tests impl @ range_tests impl @ property_tests impl))
       impls
    @ [
        ("stress", stress_tests);
        ("sim", sim_tests);
        ("explore", explore_tests);
        ("range explore", range_explore_tests);
      ])
