(* Tests for the schedule framework: the conductor, the bounded explorer
   (Theorem 1 on bounded configurations), the abstract LL schedule machine
   (Definitions 1-2), and the paper's Figure 2 / Figure 3 claims. *)

open Vbl_sched
module Instr = Vbl_memops.Instr_mem

(* ------------------------------------------------------------------ *)
(* Exec: the cooperative conductor.                                    *)
(* ------------------------------------------------------------------ *)

let exec_tests =
  [
    Alcotest.test_case "threads pause at their first access" `Quick (fun () ->
        let cell = Instr.make ~name:"c" ~line:(Instr.fresh_line ()) 0 in
        let exec = Exec.create [ (fun () -> Instr.set cell 1) ] in
        (match Exec.pending exec 0 with
        | Exec.Access a ->
            Alcotest.(check string) "name" "c" a.Instr.name;
            Alcotest.(check bool) "is write" true (a.Instr.kind = Instr.Write)
        | _ -> Alcotest.fail "expected pending access");
        Alcotest.(check bool) "value unchanged before step" true
          (Instr.run_sequential (fun () -> Instr.get cell) = 0);
        Exec.step exec 0;
        Alcotest.(check bool) "finished" true (Exec.finished exec);
        Alcotest.(check bool) "value written" true
          (Instr.run_sequential (fun () -> Instr.get cell) = 1));
    Alcotest.test_case "interleaving is scheduler-controlled" `Quick (fun () ->
        let line = Instr.fresh_line () in
        let cell = Instr.make ~name:"c" ~line 0 in
        let log = ref [] in
        let body tag () =
          let v = Instr.get cell in
          Instr.set cell (v + 1);
          log := tag :: !log
        in
        (* Step both reads before both writes: the classic lost update. *)
        let exec = Exec.create [ body "a"; body "b" ] in
        Exec.step exec 0 (* a reads 0 *);
        Exec.step exec 1 (* b reads 0 *);
        Exec.step exec 0 (* a writes 1 *);
        Exec.step exec 1 (* b writes 1 *);
        Alcotest.(check bool) "both finished" true (Exec.finished exec);
        Alcotest.(check int) "lost update observed" 1
          (Instr.run_sequential (fun () -> Instr.get cell)));
    Alcotest.test_case "lock blocks a second acquirer" `Quick (fun () ->
        let line = Instr.fresh_line () in
        let lock = Instr.make_lock ~name:"l" ~line () in
        let exec =
          Exec.create
            [
              (fun () -> Instr.lock lock);
              (fun () ->
                Instr.lock lock;
                Instr.unlock lock);
            ]
        in
        Exec.step exec 0 (* t0 takes the lock *);
        Alcotest.(check bool) "t0 done" true (Exec.pending exec 0 = Exec.Done);
        Exec.step exec 1 (* t1 tries, fails, parks *);
        (match Exec.pending exec 1 with
        | Exec.Blocked l -> Alcotest.(check string) "lock name" "l" l.Instr.l_name
        | _ -> Alcotest.fail "expected t1 blocked");
        Alcotest.(check bool) "t1 not runnable" false (Exec.runnable exec 1);
        Alcotest.(check bool) "deadlock detected" true (Exec.deadlocked exec));
    Alcotest.test_case "release wakes the waiter" `Quick (fun () ->
        let line = Instr.fresh_line () in
        let lock = Instr.make_lock ~name:"l" ~line () in
        let exec =
          Exec.create
            [
              (fun () ->
                Instr.lock lock;
                Instr.unlock lock);
              (fun () ->
                Instr.lock lock;
                Instr.unlock lock);
            ]
        in
        Exec.step exec 0 (* t0 acquires *);
        Exec.step exec 1 (* t1 parks *);
        Alcotest.(check bool) "t1 parked" false (Exec.runnable exec 1);
        Exec.step exec 0 (* t0 releases *);
        Alcotest.(check bool) "t0 done" true (Exec.pending exec 0 = Exec.Done);
        Alcotest.(check bool) "t1 runnable again" true (Exec.runnable exec 1);
        Exec.drain exec;
        Alcotest.(check bool) "all done" true (Exec.finished exec));
    Alcotest.test_case "drain completes a three-thread workout" `Quick (fun () ->
        let line = Instr.fresh_line () in
        let cell = Instr.make ~name:"c" ~line 0 in
        let lock = Instr.make_lock ~name:"l" ~line () in
        let body () =
          Instr.lock lock;
          Instr.set cell (Instr.get cell + 1);
          Instr.unlock lock
        in
        let exec = Exec.create [ body; body; body ] in
        Exec.drain exec;
        Alcotest.(check int) "all increments kept" 3
          (Instr.run_sequential (fun () -> Instr.get cell)));
  ]

(* ------------------------------------------------------------------ *)
(* Explore: bounded model checking.                                    *)
(* ------------------------------------------------------------------ *)

let ops2 = [ Ll_abstract.insert 1; Ll_abstract.insert 2 ]

(* Preemption-bounded: 3 preemptions suffice for every known bug pattern in
   these algorithms while keeping the schedule count tractable for the
   lock-heavy scenarios (two VBL removes take ~25 steps each). *)
let explore_config =
  { Explore.max_executions = 200_000; preemption_bound = Some 3; max_steps = 5_000 }

let explore_tests =
  let lin_ok name impl initial ops =
    Alcotest.test_case (name ^ ": all interleavings linearizable") `Slow (fun () ->
        let scenario = Drive.explore_scenario impl ~initial ~ops in
        let r = Explore.run ~config:explore_config scenario in
        Alcotest.(check bool) "not truncated" false r.Explore.truncated;
        (match r.Explore.failure with
        | None -> ()
        | Some f -> Alcotest.failf "%a" Explore.pp_failure f);
        Alcotest.(check bool) "explored some executions" true (r.Explore.executions > 1))
  in
  [
    Alcotest.test_case "sequential list caught violating linearizability" `Slow
      (fun () ->
        (* The unsynchronised list MUST exhibit a lost update under full
           exploration of two concurrent inserts at the same position:
           this validates the whole detection pipeline. *)
        let scenario =
          Drive.explore_scenario (module Drive.Seq_i) ~initial:[] ~ops:ops2
        in
        let r = Explore.run ~config:explore_config scenario in
        match r.Explore.failure with
        | Some (Explore.Not_linearizable _) | Some (Explore.Invariant_broken _) -> ()
        | Some f -> Alcotest.failf "unexpected failure kind: %a" Explore.pp_failure f
        | None -> Alcotest.fail "expected the sequential list to fail");
    lin_ok "vbl" (module Drive.Vbl_i) [] ops2;
    lin_ok "vbl contended remove"
      (module Drive.Vbl_i)
      [ 1; 2 ]
      [ Ll_abstract.remove 1; Ll_abstract.remove 2 ];
    lin_ok "vbl insert vs remove"
      (module Drive.Vbl_i)
      [ 2 ]
      [ Ll_abstract.insert 1; Ll_abstract.remove 2 ];
    lin_ok "vbl same-key insert/remove"
      (module Drive.Vbl_i)
      [ 1 ]
      [ Ll_abstract.remove 1; Ll_abstract.insert 1 ];
    lin_ok "vbl contains during remove"
      (module Drive.Vbl_i)
      [ 1 ]
      [ Ll_abstract.remove 1; Ll_abstract.contains 1 ];
    lin_ok "lazy" (module Drive.Lazy_i) [] ops2;
    lin_ok "lazy remove race"
      (module Drive.Lazy_i)
      [ 1 ]
      [ Ll_abstract.remove 1; Ll_abstract.insert 1 ];
    lin_ok "harris-michael" (module Drive.Hm_i) [] ops2;
    lin_ok "harris-michael remove race"
      (module Drive.Hm_i)
      [ 1 ]
      [ Ll_abstract.remove 1; Ll_abstract.insert 1 ];
    lin_ok "harris-michael-tagged" (module Drive.Hm_tagged_i) [] ops2;
    lin_ok "harris-michael-tagged deferred unlink"
      (module Drive.Hm_tagged_i)
      [ 1; 2 ]
      [ Ll_abstract.remove 1; Ll_abstract.remove 2 ];
    lin_ok "fomitchev-ruppert" (module Drive.Fr_i) [] ops2;
    lin_ok "fomitchev-ruppert remove race"
      (module Drive.Fr_i)
      [ 1 ]
      [ Ll_abstract.remove 1; Ll_abstract.insert 1 ];
    lin_ok "fomitchev-ruppert concurrent removes"
      (module Drive.Fr_i)
      [ 1; 2 ]
      [ Ll_abstract.remove 1; Ll_abstract.remove 2 ];
    lin_ok "vbl-postlock" (module Drive.Vbl_postlock_i) [] ops2;
    lin_ok "vbl-postlock remove race"
      (module Drive.Vbl_postlock_i)
      [ 1 ]
      [ Ll_abstract.remove 1; Ll_abstract.insert 1 ];
    lin_ok "coarse" (module Drive.Coarse_i) [] ops2;
    lin_ok "hand-over-hand" (module Drive.Hoh_i) [] ops2;
    lin_ok "optimistic" (module Drive.Optimistic_i) [] ops2;
  ]

(* ------------------------------------------------------------------ *)
(* Abstract LL schedules: Definition 1.                                *)
(* ------------------------------------------------------------------ *)

let ll_tests =
  [
    Alcotest.test_case "sequential execution is a correct schedule" `Quick (fun () ->
        let t = Ll_abstract.create ~initial:[ 2 ] ~ops:[ Ll_abstract.insert 1 ] in
        while not (Ll_abstract.finished t) do
          Ll_abstract.step t 0
        done;
        Alcotest.(check bool) "locally serializable" true (Ll_abstract.locally_serializable t);
        Alcotest.(check bool) "correct" true (Ll_abstract.correct t);
        Alcotest.(check (list int)) "final" [ 1; 2 ] (Ll_abstract.final_values t));
    Alcotest.test_case "lost update is incorrect (paper §2.2 example)" `Quick
      (fun () ->
        (* insert(1) and insert(2) on the empty list: both read head, both
           create, then both write head.next — the second write erases the
           first insert. *)
        let t = Ll_abstract.create ~initial:[] ~ops:ops2 in
        (* op0: R(h.next), R(t.val), new(X1) ; op1: R(h.next), R(t.val), new(X2) *)
        List.iter (Ll_abstract.step t) [ 0; 0; 0; 1; 1; 1 ];
        (* op0 writes, then op1 overwrites; both return true. *)
        List.iter (Ll_abstract.step t) [ 0; 0; 1; 1 ];
        Alcotest.(check bool) "finished" true (Ll_abstract.finished t);
        Alcotest.(check (list int)) "insert(1) lost" [ 2 ] (Ll_abstract.final_values t);
        Alcotest.(check bool) "locally serializable" true
          (Ll_abstract.locally_serializable t);
        Alcotest.(check bool) "but not correct" false (Ll_abstract.correct t));
    Alcotest.test_case "stale new-node link breaks local serializability" `Quick
      (fun () ->
        (* insert(2) then insert(3) at the same position: insert(3) creates
           its node after insert(2)'s write, so line 13 re-reads a
           different successor than its traversal saw. *)
        let t =
          Ll_abstract.create ~initial:[ 1 ]
            ~ops:[ Ll_abstract.insert 2; Ll_abstract.insert 3 ]
        in
        (* both traverse fully: R(h.next) R(X1.val) R(X1.next) R(t.val) *)
        List.iter (Ll_abstract.step t) [ 0; 0; 0; 0; 1; 1; 1; 1 ];
        (* op0: new(X2), W(X1.next), ret *)
        List.iter (Ll_abstract.step t) [ 0; 0; 0 ];
        (* op1: new(X3) — re-reads X1.next = X2 != curr(tail) *)
        List.iter (Ll_abstract.step t) [ 1; 1; 1 ];
        Alcotest.(check bool) "finished" true (Ll_abstract.finished t);
        Alcotest.(check bool) "not locally serializable" false
          (Ll_abstract.locally_serializable t));
    Alcotest.test_case "Figure 2 schedule is correct" `Quick (fun () ->
        let t = Paper_figures.Fig2.abstract () in
        Alcotest.(check bool) "finished" true (Ll_abstract.finished t);
        Alcotest.(check bool) "locally serializable" true
          (Ll_abstract.locally_serializable t);
        Alcotest.(check bool) "correct per Definition 1" true (Ll_abstract.correct t);
        Alcotest.(check (list int)) "final list" [ 1; 2 ] (Ll_abstract.final_values t);
        let results = Ll_abstract.results t in
        Alcotest.(check (option bool)) "insert(1)" (Some false) results.(0);
        Alcotest.(check (option bool)) "insert(2)" (Some true) results.(1));
    Alcotest.test_case "enumeration visits every interleaving" `Quick (fun () ->
        (* contains(1) (3 steps) vs contains(2) (5 steps) on {1}: the number
           of interleavings is C(8,3) = 56. *)
        let count = ref 0 in
        let complete =
          Ll_abstract.enumerate ~initial:[ 1 ]
            ~ops:[ Ll_abstract.contains 1; Ll_abstract.contains 2 ]
            (fun _ -> incr count)
        in
        Alcotest.(check bool) "complete" true complete;
        Alcotest.(check int) "count" 56 !count);
    Alcotest.test_case "read-only schedules are all correct" `Quick (fun () ->
        let all_correct = ref true in
        ignore
          (Ll_abstract.enumerate ~initial:[ 1 ]
             ~ops:[ Ll_abstract.contains 1; Ll_abstract.contains 2 ]
             (fun t -> if not (Ll_abstract.correct t) then all_correct := false));
        Alcotest.(check bool) "all correct" true !all_correct);
  ]

(* ------------------------------------------------------------------ *)
(* Figures 2 and 3: acceptance and rejection.                          *)
(* ------------------------------------------------------------------ *)

let outcome = Alcotest.testable (fun ppf o ->
    match o with
    | Directed.Accepted _ -> Format.pp_print_string ppf "Accepted"
    | Directed.Rejected { at; reason; _ } ->
        Format.fprintf ppf "Rejected at %d: %a" at Directed.pp_rejection reason)
    (fun a b -> Directed.accepted a = Directed.accepted b)

let accepted_outcome = Directed.Accepted { trace = [] }

let figure_tests =
  [
    Alcotest.test_case "Fig2: VBL accepts" `Quick (fun () ->
        Alcotest.check outcome "vbl" accepted_outcome
          (Paper_figures.Fig2.run (module Drive.Vbl_i)));
    Alcotest.test_case "Fig2: Lazy rejects (blocked on X1's lock)" `Quick (fun () ->
        match Paper_figures.Fig2.run (module Drive.Lazy_i) with
        | Directed.Rejected { reason = Directed.Thread_blocked { tid = 0; lock }; _ } ->
            Alcotest.(check string) "which lock" "X1.lock" lock
        | o -> Alcotest.failf "expected Thread_blocked for insert(1), got %a"
                 (Alcotest.pp outcome) o);
    Alcotest.test_case "Fig3: Harris-Michael (tagged) rejects at insert(4)'s unlink"
      `Quick (fun () ->
        match Paper_figures.Fig3.run (module Drive.Hm_tagged_i) with
        | Directed.Rejected { reason = Directed.Step_failed { tid = 3; _ }; _ } -> ()
        | o -> Alcotest.failf "expected Step_failed for insert(4), got %a"
                 (Alcotest.pp outcome) o);
    Alcotest.test_case "Fig3: Harris-Michael (AMR) rejects at insert(4)'s unlink"
      `Quick (fun () ->
        match Paper_figures.Fig3.run (module Drive.Hm_i) with
        | Directed.Rejected { reason = Directed.Step_failed { tid = 3; _ }; _ } -> ()
        | o -> Alcotest.failf "expected Step_failed for insert(4), got %a"
                 (Alcotest.pp outcome) o);
    Alcotest.test_case "Fig3 essence: VBL accepts the four-op scenario" `Quick
      (fun () ->
        Alcotest.check outcome "vbl" accepted_outcome (Paper_figures.Fig3.run_vbl ()));
  ]

(* ------------------------------------------------------------------ *)
(* Concurrency-optimality (Theorem 3, bounded): every correct abstract *)
(* schedule of small scenarios is accepted by VBL, and schedules VBL   *)
(* cannot export faithfully are exactly the incorrect ones.            *)
(* ------------------------------------------------------------------ *)

(* VBL accepts a schedule iff the directed driver realises its script AND
   the resulting execution has the schedule's outcome: results are enforced
   by the Ret directives, final contents are compared explicitly. *)
let vbl_exports t = Ll_abstract.to_script t

let optimality_scenarios =
  [
    ("fig2 family", [ 1 ], [ Ll_abstract.insert 1; Ll_abstract.insert 2 ]);
    ("insert vs remove", [ 2 ], [ Ll_abstract.insert 1; Ll_abstract.remove 2 ]);
    ("two removes", [ 1; 2 ], [ Ll_abstract.remove 1; Ll_abstract.remove 2 ]);
    ("contains vs remove", [ 2 ], [ Ll_abstract.contains 2; Ll_abstract.remove 2 ]);
    ("insert vs contains", [], [ Ll_abstract.insert 1; Ll_abstract.contains 1 ]);
    ("disjoint inserts", [ 5 ], [ Ll_abstract.insert 1; Ll_abstract.insert 9 ]);
  ]

let optimality_tests =
  List.map
    (fun (name, initial, ops) ->
      Alcotest.test_case ("VBL accepts all correct schedules: " ^ name) `Slow
        (fun () ->
          let correct_total = ref 0 and incorrect_total = ref 0 in
          let failures = ref [] in
          let complete =
            Ll_abstract.enumerate ~initial ~ops (fun t ->
                let script = vbl_exports t in
                if Ll_abstract.correct t then begin
                  incr correct_total;
                  let outcome, p =
                    Drive.run_script_full (module Drive.Vbl_i) ~initial ~ops script
                  in
                  let ok =
                    Directed.accepted outcome
                    && p.Drive.contents () = Ll_abstract.final_values t
                  in
                  if not ok then
                    failures :=
                      Format.asprintf "@[<v>schedule:@,%a@]"
                        (Format.pp_print_list Ll_abstract.pp_step)
                        (Ll_abstract.schedule t)
                      :: !failures
                end
                else incr incorrect_total)
          in
          Alcotest.(check bool) "enumeration complete" true complete;
          Alcotest.(check bool) "found correct schedules" true (!correct_total > 0);
          (match !failures with
          | [] -> ()
          | f :: _ ->
              Alcotest.failf "%d/%d correct schedules rejected; first:@.%s"
                (List.length !failures) !correct_total f);
          ignore !incorrect_total))
    optimality_scenarios

(* Randomised generalisation of the fixed scenarios: generate small random
   scenarios, enumerate all their schedules, and require (a) VBL exports
   every correct one, (b) VBL exports no incorrect one.  Scenarios that
   would create a node with the same value as an initial node are skipped:
   step names would be ambiguous ("X2" could denote two nodes), making the
   script-level check unreliable in both directions. *)
let random_scenario rng =
  let initial =
    List.filter (fun _ -> Vbl_util.Rng.bool rng) [ 1; 2; 3 ]
  in
  let op () =
    let v = 1 + Vbl_util.Rng.int rng 4 in
    match Vbl_util.Rng.int rng 3 with
    | 0 -> Ll_abstract.insert v
    | 1 -> Ll_abstract.remove v
    | _ -> Ll_abstract.contains v
  in
  let ops = [ op (); op () ] in
  let creates_duplicate_name =
    List.exists
      (fun (o : Ll_abstract.opspec) ->
        o.Ll_abstract.kind = Ll_abstract.Insert
        && (List.mem o.Ll_abstract.v initial
           || List.exists
                (fun (p : Ll_abstract.opspec) ->
                  p != o && p.Ll_abstract.v = o.Ll_abstract.v
                  && p.Ll_abstract.kind = Ll_abstract.Insert)
                ops))
      ops
  in
  if creates_duplicate_name then None else Some (initial, ops)

let random_optimality_test =
  Alcotest.test_case "random scenarios: VBL exports exactly the correct schedules"
    `Slow (fun () ->
      let rng = Vbl_util.Rng.create ~seed:2027L () in
      let scenarios_checked = ref 0 in
      let correct_checked = ref 0 and incorrect_checked = ref 0 in
      while !scenarios_checked < 25 do
        match random_scenario rng with
        | None -> ()
        | Some (initial, ops) ->
            incr scenarios_checked;
            ignore
              (Ll_abstract.enumerate ~initial ~ops ~max:3_000 (fun t ->
                   let script = Ll_abstract.to_script t in
                   let outcome, p =
                     Drive.run_script_full (module Drive.Vbl_i) ~initial ~ops script
                   in
                   let exported =
                     Directed.accepted outcome
                     && p.Drive.contents () = Ll_abstract.final_values t
                   in
                   if Ll_abstract.correct t then begin
                     incr correct_checked;
                     if not exported then
                       Alcotest.failf
                         "correct schedule rejected (initial {%s}):@.%s"
                         (String.concat "," (List.map string_of_int initial))
                         (String.concat "\n"
                            (List.map
                               (Format.asprintf "%a" Ll_abstract.pp_step)
                               (Ll_abstract.schedule t)))
                   end
                   else begin
                     incr incorrect_checked;
                     if exported then
                       Alcotest.failf
                         "incorrect schedule exported (initial {%s}):@.%s"
                         (String.concat "," (List.map string_of_int initial))
                         (String.concat "\n"
                            (List.map
                               (Format.asprintf "%a" Ll_abstract.pp_step)
                               (Ll_abstract.schedule t)))
                   end))
      done;
      Alcotest.(check bool) "exercised correct schedules" true (!correct_checked > 100);
      ignore !incorrect_checked)

(* The paper's §3 motivation for lockNextAtValue: thread A's remove(2)
   falls asleep after locating (X1, X2); meanwhile 2 is removed and
   re-inserted.  A's value-aware validation then succeeds on the NEW node
   with no re-traversal, whereas version- (or identity-) based validation
   must restart.  Measured here as post-wake step counts. *)
let aba_wakeup_steps (module S : Vbl_lists.Set_intf.S) =
  let t =
    Instr.run_sequential (fun () ->
        let t = S.create () in
        ignore (S.insert t 1);
        ignore (S.insert t 2);
        t)
  in
  let result_a = ref None in
  let bodies =
    [
      (fun () -> result_a := Some (S.remove t 2));
      (fun () ->
        ignore (S.remove t 2);
        ignore (S.insert t 2));
    ]
  in
  let exec = Exec.create bodies in
  (* Advance A to just after its traversal reads X2's value. *)
  let rec advance_a () =
    match Exec.pending exec 0 with
    | Exec.Access a when a.Instr.name = "X2.val" && a.Instr.kind = Instr.Read ->
        Exec.step exec 0
    | Exec.Access _ ->
        Exec.step exec 0;
        advance_a ()
    | Exec.Blocked _ | Exec.Done -> Alcotest.fail "remove(2) ended before locating X2"
  in
  advance_a ();
  (* Run B (remove 2; insert 2) to completion while A sleeps. *)
  while Exec.pending exec 1 <> Exec.Done do
    Exec.step exec 1
  done;
  (* Wake A and count its remaining steps. *)
  let steps = ref 0 in
  while Exec.pending exec 0 <> Exec.Done do
    Exec.step exec 0;
    incr steps
  done;
  Alcotest.(check (option bool)) "remove(2) succeeded" (Some true) !result_a;
  !steps

let aba_test =
  Alcotest.test_case "value-aware validation survives remove+reinsert (§3)" `Quick
    (fun () ->
      let vbl_steps = aba_wakeup_steps (module Drive.Vbl_i) in
      let versioned_steps = aba_wakeup_steps (module Drive.Vbl_versioned_i) in
      let postlock_steps = aba_wakeup_steps (module Drive.Vbl_postlock_i) in
      (* VBL needs no re-traversal: its post-wake work is bounded by the
         lock/validate/unlink sequence, well under one list traversal. *)
      Alcotest.(check bool)
        (Printf.sprintf "vbl wakes in few steps (%d)" vbl_steps)
        true (vbl_steps < 20);
      Alcotest.(check bool)
        (Printf.sprintf "versioned restarts (%d > vbl %d)" versioned_steps vbl_steps)
        true
        (versioned_steps > vbl_steps);
      Alcotest.(check bool)
        (Printf.sprintf "identity validation restarts too (%d > vbl %d)" postlock_steps
           vbl_steps)
        true
        (postlock_steps > vbl_steps))

(* ------------------------------------------------------------------ *)
(* Range queries under exploration: thread 0 runs a range_query        *)
(* against two mutator threads and the whole-state Multikey checker    *)
(* must accept every interleaving on the clean lists.  Bounded scope:  *)
(* two mutators never reach the six-update ABA toggle that defeats the *)
(* derived double-collect — that torn view is pinned by the scripted   *)
(* Derive canary in test_lists_seq.ml and rejected by Multikey in      *)
(* test_spec.ml.                                                       *)
(* ------------------------------------------------------------------ *)

let range_tests =
  let range_ok name impl initial range ops =
    Alcotest.test_case (name ^ ": range query linearizable") `Slow (fun () ->
        let scenario = Drive.explore_range_scenario impl ~initial ~range ~ops in
        let r = Explore.run ~config:explore_config scenario in
        Alcotest.(check bool) "not truncated" false r.Explore.truncated;
        (match r.Explore.failure with
        | None -> ()
        | Some f -> Alcotest.failf "%a" Explore.pp_failure f);
        Alcotest.(check bool) "explored some executions" true (r.Explore.executions > 1))
  in
  [
    range_ok "vbl" (module Drive.Vbl_i) [ 1; 3 ] (1, 3)
      [ Ll_abstract.remove 1; Ll_abstract.insert 2 ];
    range_ok "lazy" (module Drive.Lazy_i) [ 2 ] (1, 3)
      [ Ll_abstract.insert 1; Ll_abstract.remove 2 ];
    Alcotest.test_case "sequential list range caught (canary)" `Slow (fun () ->
        (* The unsynchronised list loses one of the racing inserts; the
           trailing contains probes contradict the range/op results and
           the multikey checker must reject some interleaving. *)
        let scenario =
          Drive.explore_range_scenario (module Drive.Seq_i) ~initial:[] ~range:(1, 3)
            ~ops:[ Ll_abstract.insert 1; Ll_abstract.insert 2 ]
        in
        let r = Explore.run ~config:explore_config scenario in
        match r.Explore.failure with
        | Some (Explore.Invariant_broken _) -> ()
        | Some f -> Alcotest.failf "unexpected failure: %a" Explore.pp_failure f
        | None -> Alcotest.fail "expected the sequential list to fail under a range query");
  ]

let () =
  Alcotest.run "sched"
    [
      ("exec", exec_tests);
      ("explore", explore_tests);
      ("ll-abstract", ll_tests);
      ("figures", figure_tests);
      ("optimality", optimality_tests @ [ random_optimality_test; aba_test ]);
      ("range", range_tests);
    ]
